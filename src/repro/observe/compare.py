"""Overlay analytic predictions on an observed span stream.

The paper's Section 4 validation compares per-component predicted times
against measured times.  ``breakdown`` reduces a tracer's phase stream
to the Figure-4 component buckets; ``predicted_vs_observed`` lines those
up against a :class:`~repro.perfmodel.predict.PredictedTimes`, producing
the predicted/measured/error table directly from a trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.observe.tracer import Span, Tracer

__all__ = ["breakdown", "observed_makespan", "predicted_vs_observed"]

#: Order of the paper's Figure 4 components in comparison tables.
COMPONENTS = ("chemistry", "transport", "io", "communication")


def breakdown(tracer: Tracer) -> Dict[str, float]:
    """Figure-4 component buckets from the phase stream.

    Buckets: ``chemistry`` (the replicated aerosol step folded in, as in
    the paper), ``transport``, ``io``, ``communication``; anything else
    lands in ``other`` so nothing is silently dropped.
    """
    out = {
        "chemistry": 0.0,
        "transport": 0.0,
        "io": 0.0,
        "communication": 0.0,
        "other": 0.0,
    }
    for (kind, name), secs in tracer.phase_totals.items():
        if kind == "comm":
            out["communication"] += secs
        elif kind == "io":
            out["io"] += secs
        elif name.startswith("chemistry") or name == "aerosol":
            out["chemistry"] += secs
        elif name.startswith("transport"):
            out["transport"] += secs
        else:
            out["other"] += secs
    return out


def predicted_vs_observed(
    predicted, tracer: Tracer
) -> Tuple[List[str], List[Sequence]]:
    """Per-component predicted-vs-observed table (header, rows).

    ``predicted`` is a :class:`~repro.perfmodel.predict.PredictedTimes`
    (anything with a ``compute_breakdown()`` returning the Figure-4
    buckets works).  Returns rows of
    ``(component, predicted s, observed s, error %)`` plus a total row,
    ready for :func:`repro.analysis.format_table`.
    """
    pred = predicted.compute_breakdown()
    obs = breakdown(tracer)
    header = ["component", "predicted s", "observed s", "error %"]
    rows: List[Sequence] = []
    for component in COMPONENTS:
        p = pred.get(component, 0.0)
        o = obs.get(component, 0.0)
        err = 100.0 * (p - o) / o if o else 0.0
        rows.append([component, p, o, err])
    p_tot = sum(pred.get(c, 0.0) for c in COMPONENTS)
    o_tot = sum(obs.get(c, 0.0) for c in COMPONENTS)
    err_tot = 100.0 * (p_tot - o_tot) / o_tot if o_tot else 0.0
    rows.append(["total", p_tot, o_tot, err_tot])
    return header, rows


def observed_makespan(
    spans: Iterable[Span],
    kinds: Optional[Sequence[str]] = None,
    exclude_wait: bool = False,
) -> float:
    """Elapsed seconds from the first span start to the last span end.

    With ``kinds`` given, only spans of those kinds contribute — e.g.
    ``("job",)`` measures a campaign's makespan from its per-job spans,
    which is the observed side of a scheduler's predicted-vs-observed
    comparison.  Returns 0.0 when no span matches.

    ``exclude_wait=True`` subtracts scheduling delay — the sum of the
    matching spans' ``queue_wait_s`` attributes on the worker that ends
    last (the critical-path worker; other workers' waits are hidden
    behind it) — so calibration fits see execution time, not retry
    backoff.  The result is clamped at 0.
    """
    start = None
    end = None
    last_node = None
    wait_by_node: dict = {}
    for s in spans:
        if kinds is not None and s.kind not in kinds:
            continue
        start = s.start if start is None else min(start, s.start)
        if end is None or s.end >= end:
            end = s.end if end is None else max(end, s.end)
            last_node = s.node
        if exclude_wait:
            wait = float(s.attrs.get("queue_wait_s", 0.0) or 0.0)
            wait_by_node[s.node] = wait_by_node.get(s.node, 0.0) + wait
    if start is None:
        return 0.0
    span = end - start
    if exclude_wait and last_node is not None:
        span -= wait_by_node.get(last_node, 0.0)
    return max(span, 0.0)
