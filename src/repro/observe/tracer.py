"""Span-based tracing for simulated and real execution.

The tracer is the observability substrate every layer emits into:

* the :class:`~repro.vm.cluster.Cluster` emits one **node span** per
  participating node per phase, with the node's exact busy interval —
  this is the profiler-grade record the paper's phase-by-phase
  measurements correspond to;
* the Fx runtime and the model drivers open **region spans**
  (``hour:06``, ``step:3``, pipeline stages) with the context-manager
  API, so the node spans nest under the program structure;
* :class:`~repro.observe.counters.CounterSet` totals (messages, bytes,
  redistributions, per-phase wall time) accumulate from the same stream.

Time sources
------------
A tracer reads time from a ``clock`` callable.  A cluster binds its own
simulated clock (:meth:`~repro.vm.cluster.Cluster.time`), so region
spans opened while running on a simulated machine bracket *simulated*
seconds; a standalone tracer defaults to wall time (``perf_counter``
relative to tracer creation), which is what
:class:`~repro.model.sequential.SequentialAirshed` profiles with.
A tracer should observe a single run: sharing one across clusters
mixes their clocks and double-counts totals.

Example::

    tracer = Tracer()
    with tracer.span("chemistry", kind="region", hour=7):
        tracer.emit("solve", "compute", 0.0, 1.5, node=3, busy=1.5)
"""

from __future__ import annotations

import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.observe.counters import CounterSet

__all__ = ["Span", "Tracer"]


@dataclass(slots=True)
class Span:
    """One timed interval of the run.

    Attributes
    ----------
    name:
        Phase or region label (``"chemistry"``, ``"D_Chem->D_Repl"``,
        ``"hour:06"``...).
    kind:
        ``"compute"`` / ``"comm"`` / ``"io"`` for node spans; region
        spans use structural kinds (``"region"``, ``"hour"``, ``"step"``,
        ``"stage"``).
    start / end:
        Seconds on the tracer's clock (simulated seconds on a cluster).
    node:
        Participating node id, or ``None`` for a program-level region.
    busy:
        The node's *active* seconds within ``[start, end]``; ``None``
        means the whole interval.  Communication spans of a collective
        share the phase interval but carry each node's own cost here.
    attrs:
        Free-form metadata (op counts, item indices, ...).
    """

    name: str
    kind: str
    start: float
    end: float
    node: Optional[int] = None
    busy: Optional[float] = None
    span_id: int = 0
    parent_id: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def busy_seconds(self) -> float:
        """Active seconds (falls back to the full interval)."""
        return self.duration if self.busy is None else self.busy


class Tracer:
    """Collects spans and counters for one run."""

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.spans: List[Span] = []
        self.counters = CounterSet()
        #: Wall seconds per (kind, name) phase, counted once per phase.
        self.phase_totals: Dict[Tuple[str, str], float] = {}
        self.phase_counts: Dict[Tuple[str, str], int] = {}
        self._stack: List[Span] = []
        self._next_id = 1
        if clock is None:
            epoch = _time.perf_counter()
            clock = lambda: _time.perf_counter() - epoch  # noqa: E731
        self._clock = clock

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def set_clock(self, clock: Callable[[], float]) -> None:
        """Rebind the time source (a cluster binds its simulated clock)."""
        self._clock = clock

    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------------
    # span emission
    # ------------------------------------------------------------------
    def current_span(self) -> Optional[Span]:
        """The innermost open region span, if any."""
        return self._stack[-1] if self._stack else None

    def _new_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    def emit(
        self,
        name: str,
        kind: str,
        start: float,
        end: float,
        node: Optional[int] = None,
        busy: Optional[float] = None,
        **attrs: Any,
    ) -> Span:
        """Record a complete span, parented under the open region."""
        if end < start:
            raise ValueError(f"span {name!r}: end {end} before start {start}")
        parent = self.current_span()
        span = Span(
            name=name,
            kind=kind,
            start=float(start),
            end=float(end),
            node=node,
            busy=None if busy is None else float(busy),
            span_id=self._new_id(),
            parent_id=parent.span_id if parent else None,
            attrs=attrs,
        )
        self.spans.append(span)
        return span

    def emit_many(
        self,
        name: str,
        kind: str,
        starts,
        ends,
        nodes,
        busys,
        ops=None,
    ) -> None:
        """Record one complete span per node in a single call.

        Semantically identical to calling :meth:`emit` once per node in
        order (same span ids, same parenting), but the per-call overhead
        — parent lookup, keyword plumbing, float coercion — is paid once
        per *phase* instead of once per *node*, which is what the
        replay's charging loops need (one span per node per phase is the
        tracing contract, and P=64 phases emit thousands of them).

        ``starts``/``ends`` may be scalars (a collective's shared
        interval) or per-node sequences; ``busys`` is per-node; ``ops``,
        when given, attaches ``attrs={"ops": ...}`` per node.
        """
        n = len(nodes)
        if not isinstance(starts, (list, tuple)):
            starts = [float(starts)] * n
        if not isinstance(ends, (list, tuple)):
            ends = [float(ends)] * n
        parent = self._stack[-1].span_id if self._stack else None
        sid = self._next_id
        append = self.spans.append
        for j in range(n):
            start = starts[j]
            end = ends[j]
            if end < start:
                raise ValueError(
                    f"span {name!r}: end {end} before start {start}"
                )
            append(Span(
                name=name,
                kind=kind,
                start=start,
                end=end,
                node=nodes[j],
                busy=busys[j],
                span_id=sid,
                parent_id=parent,
                attrs={} if ops is None else {"ops": ops[j]},
            ))
            sid += 1
        self._next_id = sid

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "region",
        clock: Optional[Callable[[], float]] = None,
        node: Optional[int] = None,
        **attrs: Any,
    ) -> Iterator[Span]:
        """Open a region span bracketing the ``with`` body.

        ``clock`` overrides the tracer clock for this span — pipeline
        stages pass their subgroup's local time so a stage region covers
        the stage's own simulated interval, not the global maximum.
        """
        read = clock if clock is not None else self._clock
        parent = self.current_span()
        span = Span(
            name=name,
            kind=kind,
            start=float(read()),
            end=float("nan"),
            node=node,
            span_id=self._new_id(),
            parent_id=parent.span_id if parent else None,
            attrs=attrs,
        )
        span.end = span.start
        self.spans.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.end = max(float(read()), span.start)

    # ------------------------------------------------------------------
    # phase-level accounting (fed by the cluster, once per phase)
    # ------------------------------------------------------------------
    def observe_phase(
        self, name: str, kind: str, duration: float, traffic=None,
        traffic_total=None,
    ) -> None:
        """Account one executed phase into the counter stream.

        ``duration`` is the phase's wall (simulated) duration; it is
        recorded once per phase regardless of how many node spans the
        phase emitted.  ``traffic`` is the phase's per-node
        :class:`~repro.vm.traffic.NodeTraffic` mapping, if any;
        ``traffic_total``, when supplied (the batched communication
        path pre-aggregates it), is the exact integer sum of ``traffic``
        and is accounted with one counter update per field instead of
        one per node.
        """
        key = (kind, name)
        self.phase_totals[key] = self.phase_totals.get(key, 0.0) + duration
        self.phase_counts[key] = self.phase_counts.get(key, 0) + 1
        self.counters.inc(f"phases:{kind}")
        self.counters.observe(f"phase_seconds:{name}", duration)
        if kind == "comm" and "->" in name:
            self.counters.inc("redistributions")
        if traffic_total is not None:
            self.counters.add_traffic(traffic_total)
        elif traffic:
            for node_traffic in traffic.values():
                self.counters.add_traffic(node_traffic)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def node_spans(self) -> List[Span]:
        """Spans attached to a node (the per-node busy record)."""
        return [s for s in self.spans if s.node is not None]

    def filter(
        self,
        name: Optional[str] = None,
        kind: Optional[str] = None,
        node: Optional[int] = None,
    ) -> List[Span]:
        out = self.spans
        if name is not None:
            out = [s for s in out if s.name == name]
        if kind is not None:
            out = [s for s in out if s.kind == kind]
        if node is not None:
            out = [s for s in out if s.node == node]
        return list(out)

    def time_by_phase(self) -> Dict[str, float]:
        """Wall seconds per phase name (each phase counted once)."""
        out: Dict[str, float] = {}
        for (kind, name), secs in self.phase_totals.items():
            out[name] = out.get(name, 0.0) + secs
        return out

    def time_by_kind(self) -> Dict[str, float]:
        """Wall seconds per phase kind (compute/comm/io)."""
        out: Dict[str, float] = {}
        for (kind, name), secs in self.phase_totals.items():
            out[kind] = out.get(kind, 0.0) + secs
        return out

    def busy_by_node(self) -> Dict[int, Dict[str, float]]:
        """Per-node busy seconds split by kind — the profiler totals."""
        out: Dict[int, Dict[str, float]] = {}
        for s in self.spans:
            if s.node is None:
                continue
            bucket = out.setdefault(s.node, {})
            bucket[s.kind] = bucket.get(s.kind, 0.0) + s.busy_seconds
        return out

    def total_time(self) -> float:
        """Latest span end seen (0 for an empty tracer)."""
        return max((s.end for s in self.spans), default=0.0)

    def __len__(self) -> int:
        return len(self.spans)
