"""Counters and histograms over the observability event stream.

A :class:`CounterSet` is the metric half of the tracer: monotonic
:class:`Counter` totals (messages sent, bytes moved, redistributions,
phases executed) plus :class:`Histogram` summaries of observed values
(per-phase wall durations).  The :class:`~repro.vm.cluster.Cluster`
feeds one via :meth:`~repro.observe.tracer.Tracer.observe_phase`, so the
counts agree exactly with the :class:`~repro.vm.traffic.Timeline` the
accounting used to live in.

Naming conventions (see ``docs/OBSERVABILITY.md``):

* traffic counters — ``messages_sent``, ``messages_received``,
  ``bytes_sent``, ``bytes_received``, ``bytes_copied``;
* ``redistributions`` — communication phases whose name contains
  ``"->"`` (the paper's ``D_Repl->D_Trans`` family);
* ``phases:<kind>`` — number of phases per kind (compute/comm/io);
* ``phase_seconds:<name>`` — histogram of wall durations per phase name.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["Counter", "Histogram", "CounterSet"]


class Counter:
    """A named monotonic total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: increment must be >= 0")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name}={self.value:g})"


class Histogram:
    """Summary statistics of a stream of observations."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name}: n={self.count}, total={self.total:g})"


class CounterSet:
    """A registry of counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def histogram(self, name: str) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name)
        return h

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def value(self, name: str) -> float:
        """Current total of a counter (0 if it never fired)."""
        c = self._counters.get(name)
        return c.value if c is not None else 0.0

    # ------------------------------------------------------------------
    def add_traffic(self, traffic) -> None:
        """Accumulate one node's :class:`~repro.vm.traffic.NodeTraffic`."""
        self.inc("messages_sent", traffic.messages_sent)
        self.inc("messages_received", traffic.messages_received)
        self.inc("bytes_sent", traffic.bytes_sent)
        self.inc("bytes_received", traffic.bytes_received)
        self.inc("bytes_copied", traffic.bytes_copied)

    def snapshot(self) -> Dict[str, Dict]:
        """Plain-dict view of every counter and histogram (for export)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "histograms": {
                n: h.to_dict() for n, h in sorted(self._histograms.items())
            },
        }
