"""Trace exporters: Chrome-trace JSON and flat CSV.

The Chrome trace loads directly in ``chrome://tracing`` or
https://ui.perfetto.dev: one row ("thread") per simulated node plus a
``program`` row for the driver's region spans (hours, steps, pipeline
stages).  Event durations are the node's *busy* seconds, so waiting
inside a collective shows up as visible gaps — idle time is never
painted over.

Timestamps are microseconds, as the format requires; span metadata
(attrs, the enclosing phase interval) rides along in ``args``.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List

from repro.observe.tracer import Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "csv_rows",
    "write_csv",
    "CSV_HEADER",
]

#: Process id used for all events (one simulated machine = one process).
PID = 1

CSV_HEADER = [
    "span_id",
    "parent_id",
    "name",
    "kind",
    "node",
    "start_s",
    "end_s",
    "duration_s",
    "busy_s",
]


def _driver_tid(tracer: Tracer) -> int:
    """Thread id for program-level region spans: one past the last node."""
    nodes = [s.node for s in tracer.spans if s.node is not None]
    return (max(nodes) + 1) if nodes else 0


def chrome_trace_events(tracer: Tracer) -> List[Dict]:
    """The ``traceEvents`` list: metadata + one complete event per span."""
    driver = _driver_tid(tracer)
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "args": {"name": "airshed (simulated machine)"},
        }
    ]
    tids = sorted({driver} | {s.node for s in tracer.spans if s.node is not None})
    for tid in tids:
        label = "program" if tid == driver else f"node {tid}"
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "args": {"name": label},
            }
        )
    for span in tracer.spans:
        tid = span.node if span.node is not None else driver
        args: Dict = {"kind": span.kind}
        if span.busy is not None:
            args["busy_s"] = span.busy
            args["phase_end_s"] = span.end
        args.update(span.attrs)
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.busy_seconds * 1e6,
                "pid": PID,
                "tid": tid,
                "args": args,
            }
        )
    return events


def chrome_trace(tracer: Tracer) -> Dict:
    """Full Chrome-trace JSON object (object form, with counters)."""
    return {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
        "otherData": tracer.counters.snapshot(),
    }


def write_chrome_trace(tracer: Tracer, path) -> Path:
    """Serialise the trace to ``path``; returns the path written."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(tracer)) + "\n")
    return path


def csv_rows(tracer: Tracer) -> List[List]:
    """Flat rows (one per span) matching :data:`CSV_HEADER`."""
    rows: List[List] = []
    for s in tracer.spans:
        rows.append(
            [
                s.span_id,
                s.parent_id if s.parent_id is not None else "",
                s.name,
                s.kind,
                s.node if s.node is not None else "",
                repr(s.start),
                repr(s.end),
                repr(s.duration),
                repr(s.busy_seconds),
            ]
        )
    return rows


def write_csv(tracer: Tracer, path) -> Path:
    path = Path(path)
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(CSV_HEADER)
    writer.writerows(csv_rows(tracer))
    path.write_text(buf.getvalue())
    return path
