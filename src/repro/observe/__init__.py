"""Observability subsystem: span tracing, counters and trace export.

One event stream underlies everything the performance analysis needs:

* :class:`Tracer` / :class:`Span` — per-node busy intervals emitted by
  the simulated cluster, nested under program-level region spans opened
  by the Fx runtime and the model drivers;
* :class:`CounterSet` — messages, bytes, redistributions and per-phase
  wall-time totals accumulated from the same stream;
* :mod:`repro.observe.export` — Chrome-trace JSON (``chrome://tracing``
  / Perfetto) and flat CSV exporters;
* :mod:`repro.observe.compare` — overlay of §4 analytic predictions on
  observed spans (the predicted-vs-measured tables).

See ``docs/OBSERVABILITY.md`` for the API walkthrough and the span
naming conventions.
"""

from repro.observe.compare import breakdown, observed_makespan, predicted_vs_observed
from repro.observe.counters import Counter, CounterSet, Histogram
from repro.observe.export import (
    chrome_trace,
    chrome_trace_events,
    csv_rows,
    write_chrome_trace,
    write_csv,
)
from repro.observe.tracer import Span, Tracer

__all__ = [
    "Span",
    "Tracer",
    "Counter",
    "CounterSet",
    "Histogram",
    "chrome_trace",
    "chrome_trace_events",
    "csv_rows",
    "write_chrome_trace",
    "write_csv",
    "breakdown",
    "observed_makespan",
    "predicted_vs_observed",
]
