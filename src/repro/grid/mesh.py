"""Triangular finite-element mesh over a multiscale point set.

The SUPG transport operator (Odman & Russell's scheme, used by Airshed
for horizontal transport) needs P1 finite elements.  We build a Delaunay
triangulation of the grid points and precompute the per-element geometry
(areas, basis-function gradients) the assembly uses, plus lumped nodal
areas and the boundary node set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import Delaunay

__all__ = ["TriMesh", "triangulate"]


@dataclass
class TriMesh:
    """Immutable P1 triangle mesh with precomputed geometry.

    Attributes
    ----------
    points:
        ``(n, 2)`` node coordinates (km).
    triangles:
        ``(m, 3)`` vertex indices, counter-clockwise.
    areas:
        ``(m,)`` element areas.
    grads:
        ``(m, 3, 2)`` gradient of each P1 basis function on each
        element (constant per element).
    node_areas:
        ``(n,)`` lumped (mass-matrix) areas: one third of the area of
        each incident triangle.
    boundary:
        ``(k,)`` indices of convex-hull (inflow/outflow boundary) nodes.
    """

    points: np.ndarray
    triangles: np.ndarray
    areas: np.ndarray
    grads: np.ndarray
    node_areas: np.ndarray
    boundary: np.ndarray

    @property
    def npoints(self) -> int:
        return len(self.points)

    @property
    def ntriangles(self) -> int:
        return len(self.triangles)

    def edge_lengths(self) -> np.ndarray:
        """Characteristic size per element: sqrt of twice the area."""
        return np.sqrt(2.0 * self.areas)

    def interpolate(self, nodal: np.ndarray, xy: np.ndarray) -> np.ndarray:
        """P1 interpolation of nodal values at query points ``xy``.

        Points outside the hull take the value of the nearest node.
        Used by diagnostics and the population-exposure module.
        """
        tri = Delaunay(self.points)
        simplex = tri.find_simplex(xy)
        out = np.empty(len(xy), dtype=float)
        inside = simplex >= 0
        if inside.any():
            trans = tri.transform[simplex[inside]]
            bary2 = np.einsum(
                "nij,nj->ni", trans[:, :2], xy[inside] - trans[:, 2]
            )
            bary = np.column_stack([bary2, 1.0 - bary2.sum(axis=1)])
            verts = tri.simplices[simplex[inside]]
            out[inside] = np.einsum("ni,ni->n", nodal[verts], bary)
        if (~inside).any():
            d2 = (
                (xy[~inside, None, :] - self.points[None, :, :]) ** 2
            ).sum(axis=2)
            out[~inside] = nodal[np.argmin(d2, axis=1)]
        return out


def triangulate(points: np.ndarray) -> TriMesh:
    """Delaunay-triangulate points and precompute P1 geometry."""
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (n, 2); got {points.shape}")
    if len(points) < 3:
        raise ValueError("need at least 3 points to triangulate")

    tri = Delaunay(points)
    simplices = tri.simplices.copy()

    p0 = points[simplices[:, 0]]
    p1 = points[simplices[:, 1]]
    p2 = points[simplices[:, 2]]
    # Signed double area; flip negatively oriented triangles to CCW.
    det = (p1[:, 0] - p0[:, 0]) * (p2[:, 1] - p0[:, 1]) - (
        p2[:, 0] - p0[:, 0]
    ) * (p1[:, 1] - p0[:, 1])
    flip = det < 0
    simplices[flip, 1], simplices[flip, 2] = (
        simplices[flip, 2].copy(),
        simplices[flip, 1].copy(),
    )
    det = np.abs(det)
    # Drop degenerate (collinear) slivers that would break the geometry.
    keep = det > 1e-12 * float(np.max(det))
    simplices = simplices[keep]
    det = det[keep]
    areas = 0.5 * det

    p0 = points[simplices[:, 0]]
    p1 = points[simplices[:, 1]]
    p2 = points[simplices[:, 2]]
    # P1 basis gradients: grad(phi_i) = rot90(p_k - p_j) / (2A).
    grads = np.empty((len(simplices), 3, 2))
    for i, (j, k) in enumerate(((1, 2), (2, 0), (0, 1))):
        edge = points[simplices[:, k]] - points[simplices[:, j]]
        grads[:, i, 0] = -edge[:, 1]
        grads[:, i, 1] = edge[:, 0]
    grads /= (2.0 * areas)[:, None, None]

    node_areas = np.zeros(len(points))
    np.add.at(node_areas, simplices.ravel(), np.repeat(areas / 3.0, 3))

    boundary = np.unique(tri.convex_hull.ravel())

    return TriMesh(
        points=points,
        triangles=simplices,
        areas=areas,
        grads=grads,
        node_areas=node_areas,
        boundary=boundary,
    )
