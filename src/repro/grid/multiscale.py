"""Multiscale grid generation.

Airshed is a *multiscale* grid version of the CIT model: to provide a
given accuracy a well-chosen multiscale grid is computationally much
cheaper than a uniform grid, because the expensive chemistry operator
``Lcz`` is evaluated at fewer points.  Dense resolution is placed over
urban cores (where gradients are sharp) and coarse resolution over open
country.

We generate such grids with a quadtree: start from a coarse uniform cell
cover and repeatedly split the cell with the highest *refinement
priority* (an emission/population density integral) into four children.
Each split adds exactly three cells, so a target point count is reached
deterministically.  Grid points are cell centres; each carries the cell
area, which the finite-element transport and the mass diagnostics use.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["RefinementCore", "MultiscaleGrid", "generate_multiscale_grid"]


@dataclass(frozen=True)
class RefinementCore:
    """A Gaussian density bump steering refinement (an urban core).

    ``x``/``y`` are km from the domain origin, ``weight`` scales the
    density, ``sigma`` is the spatial extent in km.
    """

    x: float
    y: float
    weight: float
    sigma: float

    def density(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        d2 = (px - self.x) ** 2 + (py - self.y) ** 2
        return self.weight * np.exp(-0.5 * d2 / self.sigma**2)


@dataclass
class MultiscaleGrid:
    """The generated grid: points, areas and refinement levels."""

    domain: Tuple[float, float]
    points: np.ndarray  # (n, 2) cell centres in km
    areas: np.ndarray  # (n,) cell areas in km^2
    levels: np.ndarray  # (n,) refinement level (0 = base cell)
    cores: Tuple[RefinementCore, ...]

    @property
    def npoints(self) -> int:
        return len(self.points)

    @property
    def finest_cell_size(self) -> float:
        """Linear size (km) of the smallest cell."""
        return float(np.sqrt(self.areas.min()))

    @property
    def coarsest_cell_size(self) -> float:
        return float(np.sqrt(self.areas.max()))

    def total_area(self) -> float:
        return float(self.areas.sum())

    def density(self) -> np.ndarray:
        """The refinement density evaluated at the grid points."""
        px, py = self.points[:, 0], self.points[:, 1]
        out = np.zeros(self.npoints)
        for core in self.cores:
            out += core.density(px, py)
        return out

    def equivalent_uniform_npoints(self) -> int:
        """Points a uniform grid needs to match the finest resolution.

        This is the paper's Section 2.1 argument: the chemistry operator
        cost scales with the point count, so the multiscale grid wins by
        this factor over an accuracy-equivalent uniform grid.
        """
        w, h = self.domain
        cell = self.finest_cell_size
        return math.ceil(w / cell) * math.ceil(h / cell)


def generate_multiscale_grid(
    domain: Tuple[float, float],
    base_shape: Tuple[int, int],
    target_points: int,
    cores: Sequence[RefinementCore],
) -> MultiscaleGrid:
    """Quadtree-refine a base grid until exactly ``target_points`` cells.

    ``target_points - base_nx*base_ny`` must be divisible by 3 (each
    split turns one cell into four).  Refinement order is deterministic:
    the cell with the largest ``density(centre) * area`` is split first,
    with ties broken by insertion order.
    """
    base_nx, base_ny = base_shape
    w, h = domain
    if base_nx < 1 or base_ny < 1:
        raise ValueError("base grid must have at least one cell per axis")
    if w <= 0 or h <= 0:
        raise ValueError("domain extents must be positive")
    nbase = base_nx * base_ny
    if target_points < nbase:
        raise ValueError(
            f"target_points {target_points} below base cell count {nbase}"
        )
    if (target_points - nbase) % 3 != 0:
        raise ValueError(
            f"cannot reach {target_points} points from a {base_nx}x{base_ny} "
            f"base by quadtree splits (need (target-{nbase}) % 3 == 0)"
        )
    nsplits = (target_points - nbase) // 3

    def priority(cx: float, cy: float, area: float) -> float:
        dens = sum(c.density(np.array(cx), np.array(cy)) for c in cores)
        return float(dens) * area

    # Max-heap of (-priority, tiebreak, x, y, w, h, level).
    counter = itertools.count()
    heap: List[Tuple[float, int, float, float, float, float, int]] = []
    cw, ch = w / base_nx, h / base_ny
    for j in range(base_ny):
        for i in range(base_nx):
            cx, cy = (i + 0.5) * cw, (j + 0.5) * ch
            heapq.heappush(
                heap, (-priority(cx, cy, cw * ch), next(counter), cx, cy, cw, ch, 0)
            )

    for _ in range(nsplits):
        _, _, cx, cy, ccw, cch, lvl = heapq.heappop(heap)
        qw, qh = ccw / 2.0, cch / 2.0
        for dx in (-0.5, 0.5):
            for dy in (-0.5, 0.5):
                nx_, ny_ = cx + dx * qw, cy + dy * qh
                heapq.heappush(
                    heap,
                    (-priority(nx_, ny_, qw * qh), next(counter), nx_, ny_, qw, qh, lvl + 1),
                )

    cells = sorted(heap, key=lambda c: (c[3], c[2]))  # stable order: y then x
    points = np.array([[c[2], c[3]] for c in cells])
    areas = np.array([c[4] * c[5] for c in cells])
    levels = np.array([c[6] for c in cells], dtype=int)
    return MultiscaleGrid(
        domain=(w, h),
        points=points,
        areas=areas,
        levels=levels,
        cores=tuple(cores),
    )
