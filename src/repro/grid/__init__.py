"""Multiscale grid, triangular FEM mesh and uniform-grid baseline."""

from repro.grid.mesh import TriMesh, triangulate
from repro.grid.multiscale import (
    MultiscaleGrid,
    RefinementCore,
    generate_multiscale_grid,
)
from repro.grid.uniform import UniformGrid, uniform_from_multiscale

__all__ = [
    "MultiscaleGrid",
    "RefinementCore",
    "TriMesh",
    "UniformGrid",
    "generate_multiscale_grid",
    "triangulate",
    "uniform_from_multiscale",
]
