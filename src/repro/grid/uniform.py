"""Uniform grids — the baseline the paper's Section 2.1/3 discusses.

The original CIT model (Dabdub & Seinfeld's parallel version) uses a
uniform grid with 1-D transport operators: more parallelism, but far
more points for the same accuracy, hence lower sequential efficiency.
This module provides the uniform grid used by the ablation benchmarks
and by the 1-D operator-splitting transport baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.grid.multiscale import MultiscaleGrid

__all__ = ["UniformGrid", "uniform_from_multiscale"]


@dataclass
class UniformGrid:
    """A regular nx-by-ny cell grid over a rectangular domain."""

    domain: Tuple[float, float]
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx < 2 or self.ny < 2:
            raise ValueError("uniform grid needs at least 2 cells per axis")
        if self.domain[0] <= 0 or self.domain[1] <= 0:
            raise ValueError("domain extents must be positive")

    @property
    def npoints(self) -> int:
        return self.nx * self.ny

    @property
    def dx(self) -> float:
        return self.domain[0] / self.nx

    @property
    def dy(self) -> float:
        return self.domain[1] / self.ny

    @property
    def shape(self) -> Tuple[int, int]:
        return (self.nx, self.ny)

    def points(self) -> np.ndarray:
        """``(nx*ny, 2)`` cell centres, x varying fastest."""
        xs = (np.arange(self.nx) + 0.5) * self.dx
        ys = (np.arange(self.ny) + 0.5) * self.dy
        gx, gy = np.meshgrid(xs, ys, indexing="ij")
        return np.column_stack([gx.ravel(), gy.ravel()])

    def areas(self) -> np.ndarray:
        return np.full(self.npoints, self.dx * self.dy)

    def to_field(self, flat: np.ndarray) -> np.ndarray:
        """Reshape a flat nodal vector to the (nx, ny) field."""
        return np.asarray(flat).reshape(self.nx, self.ny)

    def from_field(self, field: np.ndarray) -> np.ndarray:
        return np.asarray(field).reshape(self.npoints)


def uniform_from_multiscale(grid: MultiscaleGrid) -> UniformGrid:
    """The uniform grid matching a multiscale grid's *finest* resolution.

    This is the accuracy-equivalent uniform grid of the paper's
    efficiency argument: it needs ``equivalent_uniform_npoints`` cells,
    typically several times the multiscale count.
    """
    w, h = grid.domain
    cell = grid.finest_cell_size
    nx = max(2, int(np.ceil(w / cell)))
    ny = max(2, int(np.ceil(h / cell)))
    return UniformGrid(domain=grid.domain, nx=nx, ny=ny)
