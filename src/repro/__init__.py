"""Airshed pollution modeling in an HPF-style (Fx) environment.

A full reproduction of *"Airshed Pollution Modeling: A Case Study in
Application Development in an HPF Environment"* (Subhlok, Steenkiste,
Stichnoth, Lieu -- IPPS 1998): the multiscale urban/regional air-quality
model, the Fx data+task-parallel runtime it was written in, the three
parallel machines it was measured on, the Section 4 performance model,
and the PVM population-exposure foreign module.

See :mod:`repro.core` for the public API facade.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
