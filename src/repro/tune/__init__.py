"""Observed-span calibration and model-driven autotuning.

``repro.tune`` closes the paper's §4 loop: the predictor prices runs,
the observer measures them, and this package stores the measurements
(:mod:`repro.tune.store`), refits the model from them
(:func:`repro.perfmodel.calibrate.refit_observations`), and uses the
refit model to choose configurations before running
(:mod:`repro.tune.autotune`).  See ``docs/TUNING.md``.
"""

from repro.tune.autotune import (
    Autotuner,
    AutotunePlanner,
    TuneConfig,
    TuningDecision,
)
from repro.tune.harvest import (
    harvest_report,
    job_ops,
    observations_from_timelines,
    observations_from_tracer,
    traced_replay,
)
from repro.tune.store import (
    CalibrationStore,
    Observation,
    ScanResult,
    utc_timestamp,
)

__all__ = [
    "Observation",
    "CalibrationStore",
    "ScanResult",
    "utc_timestamp",
    "harvest_report",
    "job_ops",
    "observations_from_tracer",
    "observations_from_timelines",
    "traced_replay",
    "Autotuner",
    "AutotunePlanner",
    "TuneConfig",
    "TuningDecision",
]
