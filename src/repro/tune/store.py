"""Content-addressed, append-only calibration store.

One :class:`Observation` is a single per-phase measurement keyed by
*phase key* — ``dataset × machine × P × variant × chem_workers ×
phase`` — harvested from :mod:`repro.observe` span traces, campaign
reports, or simulated-replay timelines.  The :class:`CalibrationStore`
persists observations (and the autotuner's decision records) exactly
the way :class:`~repro.service.jobstore.JournalJobStore` persists
service events::

    <root>/journal.jsonl    one JSON event per line, append + fsync
    <root>/snapshot.json    atomically-replaced fold of older events

Every observation is **content addressed**: its digest covers the
measurement payload but *not* the frozen provenance timestamp, so
re-ingesting the same campaign twice is idempotent (the duplicate
collapses to one record) and the store's ``generation`` — the number of
distinct observation digests — advances only on genuinely new data.
The refit layer (:func:`repro.perfmodel.calibrate.refit_observations`)
never reads timestamps; they exist purely so a human can audit when a
measurement arrived.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

__all__ = [
    "Observation",
    "CalibrationStore",
    "ScanResult",
    "fingerprint_digests",
    "utc_timestamp",
]

#: Observation fields that are provenance, not measurement: excluded
#: from the content digest so identical measurements dedupe across
#: ingest runs.
_PROVENANCE_FIELDS = ("timestamp",)


def utc_timestamp() -> str:
    """Frozen provenance stamp for newly harvested observations.

    The wall-clock read lives here and only here: timestamps are
    excluded from every digest and phase key and never read by the
    refit or the autotuner (see ``.repro-determinism-allow``).
    """
    from datetime import datetime, timezone

    return datetime.now(timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ")


def fingerprint_digests(digests: Iterable[str]) -> str:
    """Order-independent content hash of an observation-digest set."""
    ordered = sorted(digests)
    if not ordered:
        return ""
    return hashlib.sha256("\n".join(ordered).encode()).hexdigest()[:12]


@dataclass(frozen=True)
class Observation:
    """One measured (phase key → seconds) sample.

    ``observed_s`` is the measurement; ``predicted_s`` (when known at
    harvest time) feeds drift detection; ``ops`` feeds compute-rate
    refits; ``messages`` / ``bytes_moved`` / ``bytes_copied`` feed the
    L/G/H refit (comm phases from simulated timelines).  ``machine`` is
    ``"host"`` for wall-clock measurements of the executing workstation
    and a machine short name (``t3e`` ...) for simulated-replay
    measurements.
    """

    dataset: str
    machine: str
    nprocs: int
    variant: str
    cores_per_job: int
    phase: str
    observed_s: float
    predicted_s: Optional[float] = None
    ops: Optional[float] = None
    messages: Optional[float] = None
    bytes_moved: Optional[float] = None
    bytes_copied: Optional[float] = None
    hours: int = 0
    source: str = ""
    timestamp: Optional[str] = None

    def __post_init__(self) -> None:
        if self.observed_s < 0:
            raise ValueError("observed_s must be non-negative")
        if self.nprocs < 0 or self.cores_per_job < 0:
            raise ValueError("nprocs/cores_per_job must be non-negative")

    @property
    def phase_key(self) -> str:
        """``dataset|machine|pP|variant|cC|phase`` — the calibration key."""
        return "|".join((
            self.dataset, self.machine, f"p{self.nprocs}", self.variant,
            f"c{self.cores_per_job}", self.phase,
        ))

    def payload(self) -> Dict[str, Any]:
        """The digested measurement fields (provenance excluded)."""
        d = asdict(self)
        for field in _PROVENANCE_FIELDS:
            d.pop(field, None)
        return d

    @property
    def digest(self) -> str:
        """Content hash of the measurement payload."""
        blob = json.dumps(self.payload(), sort_keys=True,
                          separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Observation":
        return cls(**d)


@dataclass
class ScanResult:
    """Tolerant load of a store: data plus any integrity errors."""

    observations: List[Observation]
    decisions: List[Dict[str, Any]]
    errors: List[str]


class CalibrationStore:
    """Append-only observation/decision journal with snapshot compaction.

    The on-disk idioms match
    :class:`~repro.service.jobstore.JournalJobStore`: ``add`` fsyncs
    each JSONL line before returning; loading folds ``snapshot.json``
    first and tolerates exactly one torn *final* journal line (a crash
    mid-append) while an unparseable interior line raises;
    :meth:`compact` swaps the snapshot via temp-file + ``os.replace``
    and truncates the journal.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self.snapshot_path = self.root / "snapshot.json"
        self._digest_cache: Optional[set] = None

    # -- writing -------------------------------------------------------
    def _append_event(self, event: Dict[str, Any]) -> None:
        line = json.dumps(event, sort_keys=True)
        with self.journal_path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def add(self, obs: Observation) -> bool:
        """Durably append one observation; ``False`` if already stored.

        Dedupe is by content digest, so the same measurement with a
        different provenance timestamp is still a duplicate.
        """
        digests = self._digests()
        if obs.digest in digests:
            return False
        self._append_event({
            "type": "obs", "digest": obs.digest, "obs": obs.to_dict(),
        })
        digests.add(obs.digest)
        return True

    def add_many(self, observations: Iterable[Observation]) -> int:
        """Append each new observation; returns how many were new."""
        return sum(1 for obs in observations if self.add(obs))

    def record_decision(self, record: Dict[str, Any]) -> None:
        """Journal one autotuner decision record (never deduped)."""
        self._append_event({"type": "decision", "record": record})

    # -- reading -------------------------------------------------------
    def _events(self, errors: Optional[List[str]] = None):
        """Yield events; strict unless an ``errors`` sink is given."""
        snap = None
        if self.snapshot_path.is_file():
            try:
                snap = json.loads(
                    self.snapshot_path.read_text(encoding="utf-8")
                )
            except json.JSONDecodeError as exc:
                if errors is None:
                    raise ValueError(
                        f"corrupt snapshot {self.snapshot_path}: {exc}"
                    )
                errors.append(f"corrupt snapshot: {exc}")
        if snap is not None:
            yield from snap.get("events", [])
        if not self.journal_path.is_file():
            return
        raw = self.journal_path.read_text(encoding="utf-8")
        lines = raw.splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1 and not raw.endswith("\n"):
                    return  # torn final append; all earlier lines durable
                msg = f"corrupt journal line {i + 1} in {self.journal_path}"
                if errors is None:
                    raise ValueError(msg)
                errors.append(msg)

    def scan(self) -> ScanResult:
        """Tolerant load: observations, decisions and integrity errors.

        A stored digest that no longer matches its payload (bit rot or
        a hand-edited journal) is reported and the record skipped; the
        strict loaders (:meth:`observations`) raise instead.
        """
        errors: List[str] = []
        observations, decisions = self._fold(
            self._events(errors=errors), errors=errors
        )
        return ScanResult(observations, decisions, errors)

    def _fold(self, events, errors: Optional[List[str]] = None):
        observations: List[Observation] = []
        decisions: List[Dict[str, Any]] = []
        seen: set = set()
        for event in events:
            etype = event.get("type")
            if etype == "decision":
                decisions.append(event.get("record", {}))
                continue
            if etype != "obs":
                continue
            try:
                obs = Observation.from_dict(event.get("obs", {}))
            except (TypeError, ValueError) as exc:
                msg = f"malformed observation record: {exc}"
                if errors is None:
                    raise ValueError(msg)
                errors.append(msg)
                continue
            stored = event.get("digest")
            if stored is not None and stored != obs.digest:
                msg = (
                    f"digest mismatch for {obs.phase_key}: "
                    f"stored {stored[:12]}, payload {obs.digest[:12]}"
                )
                if errors is None:
                    raise ValueError(msg)
                errors.append(msg)
                continue
            if obs.digest in seen:
                continue
            seen.add(obs.digest)
            observations.append(obs)
        return observations, decisions

    def observations(self) -> List[Observation]:
        """Every distinct stored observation (strict: corruption raises)."""
        observations, _ = self._fold(self._events())
        return observations

    def decisions(self) -> List[Dict[str, Any]]:
        """Journaled autotuner decision records, oldest first."""
        _, decisions = self._fold(self._events())
        return decisions

    def _digests(self) -> set:
        if self._digest_cache is None:
            self._digest_cache = {
                obs.digest for obs in self.observations()
            }
        return self._digest_cache

    # -- calibration identity ------------------------------------------
    @property
    def generation(self) -> int:
        """Number of distinct observations; 0 for an empty store."""
        return len(self.observations())

    @property
    def fingerprint(self) -> str:
        """Order-independent content hash of the whole observation set."""
        return fingerprint_digests(self._digests())

    def stats(self) -> Dict[str, Any]:
        scan = self.scan()
        by_key: Dict[str, int] = {}
        for obs in scan.observations:
            by_key[obs.phase_key] = by_key.get(obs.phase_key, 0) + 1
        return {
            "root": str(self.root),
            "generation": len(scan.observations),
            "fingerprint": fingerprint_digests(
                o.digest for o in scan.observations
            ),
            "n_observations": len(scan.observations),
            "n_decisions": len(scan.decisions),
            "n_errors": len(scan.errors),
            "phase_keys": dict(sorted(by_key.items())),
        }

    # -- compaction ----------------------------------------------------
    def compact(self) -> None:
        """Fold the journal into the snapshot (bounded on-disk state)."""
        observations, decisions = self._fold(self._events())
        events = [
            {"type": "obs", "digest": obs.digest, "obs": obs.to_dict()}
            for obs in observations
        ] + [{"type": "decision", "record": rec} for rec in decisions]
        tmp = self.snapshot_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps({"events": events}, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.snapshot_path)
        with self.journal_path.open("w", encoding="utf-8") as fh:
            fh.flush()
            os.fsync(fh.fileno())
