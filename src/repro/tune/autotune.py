"""Model-driven configuration choice for campaign jobs.

The :class:`Autotuner` closes the §4 loop at plan time: given a
:class:`~repro.sched.job.JobSpec`, it enumerates candidate execution
configurations — (machine, P, distribution variant, ``cores_per_job``)
— prices each with a :class:`~repro.sched.costmodel.CampaignCostModel`
built from the calibration store's refit model, and returns the argmin
together with a machine-readable *decision record* (every candidate
with its predicted costs, the chosen configuration, and the calibration
generation the decision was made under).

Safety property, enforced here and proven by the FX040 key-drift
verifier plus the golden-ladder tests: tuning rewrites only execution
(``variant``/``machine``/``nprocs``) and presentation
(``cores_per_job``) fields.  The science key — hence every science
cache entry and every bit of science output — is untouched by
construction, and :meth:`Autotuner.tune` raises if a rewrite ever
violated that.

:class:`AutotunePlanner` wraps the default
:class:`~repro.sched.planner.LPTPlanner` behind the
:class:`~repro.sched.interfaces.Planner` protocol: tune every spec,
delegate packing to the inner planner with the calibrated cost model,
and stamp the plan with the decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.perfmodel.calibrate import CalibratedModel, refit_observations
from repro.sched.costmodel import CampaignCostModel
from repro.sched.job import JobSpec
from repro.sched.planner import CampaignPlan, LPTPlanner
from repro.tune.store import CalibrationStore

__all__ = ["TuneConfig", "TuningDecision", "Autotuner", "AutotunePlanner"]

#: Node counts of the paper's scaling tables (Figures 5-7).
DEFAULT_NODE_COUNTS = (1, 4, 16, 64)


@dataclass(frozen=True)
class TuneConfig:
    """The candidate space one :class:`Autotuner` searches.

    ``variants=None`` keeps each spec's own variant (the conservative
    default: switching ``data`` to ``task`` changes which replay runs,
    which is a legitimate but opt-in degree of freedom).  Sequential
    specs never acquire a machine/P — only their core count is tuned.
    """

    machines: Tuple[str, ...] = ("t3e", "t3d", "paragon")
    node_counts: Tuple[int, ...] = DEFAULT_NODE_COUNTS
    cores_options: Tuple[int, ...] = (1,)
    variants: Optional[Tuple[str, ...]] = None
    objective: str = "wall+sim"

    def __post_init__(self) -> None:
        if not self.machines or not self.node_counts or not self.cores_options:
            raise ValueError("candidate space must be non-empty")
        if self.objective not in ("wall+sim", "wall", "sim"):
            raise ValueError(f"unknown objective {self.objective!r}")


@dataclass
class TuningDecision:
    """One tuned spec plus the record explaining the choice."""

    spec: JobSpec
    record: Dict[str, Any] = field(default_factory=dict)


def _config_row(spec: JobSpec) -> Dict[str, Any]:
    return {
        "variant": spec.variant,
        "machine": spec.machine if spec.variant != "sequential" else "",
        "nprocs": spec.nprocs if spec.variant != "sequential" else 0,
        "cores_per_job": spec.cores_per_job,
    }


class Autotuner:
    """Choose each job's execution configuration from the refit model."""

    def __init__(
        self,
        model: Optional[CalibratedModel] = None,
        store: Optional[CalibrationStore] = None,
        cache=None,
        config: Optional[TuneConfig] = None,
        steps_per_hour: int = 5,
    ):
        if model is None:
            if store is not None:
                model = refit_observations(store.observations()).model
                model = replace(
                    model,
                    generation=store.generation,
                    fingerprint=store.fingerprint,
                )
            else:
                model = CalibratedModel()
        self.model = model
        self.store = store
        self.cache = cache
        self.config = config or TuneConfig()
        self._cost_model = CampaignCostModel(
            ops_per_second=model.host_ops_per_second,
            cache=cache,
            steps_per_hour=steps_per_hour,
            machine_overrides={
                m: model.machine_spec(m) for m in self.config.machines
            },
            tile_fraction=model.tile_fraction,
        )

    def cost_model(self) -> CampaignCostModel:
        """The calibrated cost model the decisions were priced with."""
        return self._cost_model

    # ------------------------------------------------------------------
    def _candidates(self, spec: JobSpec) -> List[JobSpec]:
        cfg = self.config
        variants = cfg.variants if cfg.variants is not None else (spec.variant,)
        out: List[JobSpec] = []
        for variant in variants:
            for cores in cfg.cores_options:
                if variant == "sequential":
                    out.append(replace(
                        spec, variant=variant, cores_per_job=cores,
                    ))
                    continue
                for machine in cfg.machines:
                    for nprocs in cfg.node_counts:
                        out.append(replace(
                            spec, variant=variant, machine=machine,
                            nprocs=nprocs, cores_per_job=cores,
                        ))
        return out

    def _price(self, cand: JobSpec) -> Dict[str, float]:
        cost = self._cost_model.predict(cand)
        wall = cost.wall_s
        cached = False
        if self.cache is not None and self.cache.get_job(cand.key) is not None:
            # An already-stored result costs nothing to "re-run": this
            # keeps decisions stable across repeated campaigns instead
            # of oscillating once the first choice populates the cache.
            wall = 0.0
            cached = True
        if self.config.objective == "wall":
            total = wall
        elif self.config.objective == "sim":
            total = cost.sim_s
        else:
            total = wall + cost.sim_s
        return {
            "wall_s": round(wall, 6),
            "sim_s": round(cost.sim_s, 6),
            "total_s": round(total, 6),
            "cached": cached,
        }

    def tune(self, spec: JobSpec) -> TuningDecision:
        """Pick the cheapest candidate configuration for ``spec``.

        Ties break on enumeration order — the candidate space is a
        deterministic nest, so the same store state always yields the
        same decision.
        """
        rows: List[Dict[str, Any]] = []
        best: Optional[JobSpec] = None
        best_price: Optional[Dict[str, float]] = None
        for cand in self._candidates(spec):
            price = self._price(cand)
            rows.append({**_config_row(cand), **price})
            if best_price is None or price["total_s"] < best_price["total_s"]:
                best, best_price = cand, price
        assert best is not None and best_price is not None
        if best.science_key != spec.science_key:
            raise RuntimeError(
                "autotuner rewrote a science field: "
                f"{spec.science_key[:12]} -> {best.science_key[:12]}"
            )
        record = {
            "key": spec.key,
            "tuned_key": best.key,
            "label": spec.label,
            "science_key": spec.science_key,
            "original": _config_row(spec),
            "chosen": _config_row(best),
            "predicted": {
                "wall_s": best_price["wall_s"],
                "sim_s": best_price["sim_s"],
                "total_s": best_price["total_s"],
            },
            "candidates": rows,
            "generation": self.model.generation,
            "fingerprint": self.model.fingerprint,
        }
        return TuningDecision(spec=best, record=record)

    def tune_all(
        self, specs: Sequence[JobSpec]
    ) -> Tuple[List[JobSpec], List[Dict[str, Any]], Dict[str, str]]:
        """Tune every spec; returns (tuned specs, records, key map).

        The key map takes each *submitted* key to its tuned key, so a
        caller that indexed work by the original keys (the campaign
        service's subscriber table) can find the tuned results.
        """
        tuned: List[JobSpec] = []
        records: List[Dict[str, Any]] = []
        key_map: Dict[str, str] = {}
        for spec in specs:
            decision = self.tune(spec)
            tuned.append(decision.spec)
            records.append(decision.record)
            key_map[spec.key] = decision.spec.key
        return tuned, records, key_map


class AutotunePlanner:
    """A :class:`~repro.sched.interfaces.Planner` that tunes first.

    Every spec goes through the autotuner, then the inner planner packs
    the tuned specs with the *calibrated* cost model (the same one the
    decisions were priced with, so the plan's predictions agree with
    the decision records).  The plan carries the decisions in its
    ``tuning`` field.
    """

    def __init__(
        self,
        autotuner: Autotuner,
        inner=None,
    ):
        self.autotuner = autotuner
        self.inner = inner if inner is not None else LPTPlanner()

    def plan(
        self,
        specs: Sequence[JobSpec],
        *,
        workers: int,
        cost_model: Optional[CampaignCostModel] = None,
        fuse_ensembles: bool = True,
        host_cores: Optional[int] = None,
    ) -> CampaignPlan:
        tuned, records, _ = self.autotuner.tune_all(specs)
        plan = self.inner.plan(
            tuned,
            workers=workers,
            cost_model=self.autotuner.cost_model(),
            fuse_ensembles=fuse_ensembles,
            host_cores=host_cores,
        )
        plan.tuning = {
            "generation": self.autotuner.model.generation,
            "fingerprint": self.autotuner.model.fingerprint,
            "decisions": records,
        }
        return plan
