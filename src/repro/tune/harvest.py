"""Turning runs into :class:`~repro.tune.store.Observation` records.

Three harvest paths feed the calibration store:

* :func:`harvest_report` — a finished :class:`~repro.sched.report.
  CampaignReport`: one host ``job`` observation per executed job (wall
  seconds vs the plan's prediction, plus the §4 op count so the host
  rate can refit) and one ``makespan`` observation for the campaign.
* :func:`observations_from_tracer` — an observed span stream reduced to
  the Figure-4 component buckets, paired with the analytic prediction
  for the same (machine, P) point: the drift detector's diet.
* :func:`observations_from_timelines` — simulated-replay
  :class:`~repro.vm.traffic.Timeline` records, yielding per-phase comm
  observations carrying the exact (messages, bytes moved, bytes copied)
  counts that the L/G/H refit regresses against, and per-phase compute
  observations for the machine-rate refit.

:func:`traced_replay` runs the data-parallel replay with both a tracer
and the runtime timeline exposed (``replay_data_parallel`` returns only
the timing summary), optionally under a perturbed
:class:`~repro.vm.machine.MachineSpec` — which is how the drift tests
inject a miscalibrated profile.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.model.dataparallel import HourReplayer, declare_airshed_phases
from repro.model.results import WorkloadTrace
from repro.observe.compare import COMPONENTS, breakdown
from repro.observe.tracer import Tracer
from repro.perfmodel.predict import PerformancePredictor
from repro.tune.store import Observation, utc_timestamp
from repro.vm.machine import MachineSpec, get_machine
from repro.vm.traffic import Timeline

__all__ = [
    "job_ops",
    "harvest_report",
    "observations_from_tracer",
    "observations_from_timelines",
    "traced_replay",
]


def job_ops(spec, steps_per_hour: int = 5) -> float:
    """Total §4 abstract ops of a job's estimated workload trace."""
    from repro.perfmodel.estimate import estimated_trace
    from repro.sched.costmodel import _dataset_shape

    trace = estimated_trace(
        _dataset_shape(spec.dataset),
        hours=spec.hours,
        start_hour=spec.start_hour,
        steps_per_hour=steps_per_hour,
        dataset_name=spec.dataset,
    )
    return float(sum(trace.total_ops_by_phase().values()))


def harvest_report(
    report,
    *,
    source: str = "campaign",
    timestamp: Optional[str] = None,
    steps_per_hour: int = 5,
) -> List[Observation]:
    """Observations from one finished campaign report.

    Every executed (non-cached) ok job contributes a host ``job``
    observation — wall seconds already exclude retry queue wait (the
    runner measures the final attempt only) — and, when at least one
    job actually ran, the campaign contributes one host ``makespan``
    observation at the plan's worker count.  Cache hits carry no
    wall-clock signal and are skipped.
    """
    if timestamp is None:
        timestamp = utc_timestamp()
    out: List[Observation] = []
    datasets = set()
    executed = 0
    for r in report.results:
        if not r.ok or r.from_cache or r.wall_s <= 0:
            continue
        executed += 1
        datasets.add(r.spec.dataset)
        ops = None if r.science_cached else job_ops(
            r.spec, steps_per_hour=steps_per_hour
        )
        out.append(Observation(
            dataset=r.spec.dataset,
            machine="host",
            nprocs=1,
            variant=r.spec.variant,
            cores_per_job=r.spec.cores_per_job,
            phase="job",
            observed_s=float(r.wall_s),
            predicted_s=float(r.predicted_s) if r.predicted_s > 0 else None,
            ops=ops,
            hours=r.spec.hours,
            source=source,
            timestamp=timestamp,
        ))
    if executed and report.observed_makespan_s > 0:
        dataset = datasets.pop() if len(datasets) == 1 else "*"
        out.append(Observation(
            dataset=dataset,
            machine="host",
            nprocs=report.plan.workers,
            variant="campaign",
            cores_per_job=1,
            phase="makespan",
            observed_s=float(report.observed_makespan_s),
            predicted_s=float(report.predicted_makespan_s) or None,
            source=source,
            timestamp=timestamp,
        ))
    return out


def observations_from_tracer(
    tracer: Tracer,
    *,
    dataset: str,
    machine: str,
    nprocs: int,
    variant: str = "data",
    trace: Optional[WorkloadTrace] = None,
    machine_spec: Optional[MachineSpec] = None,
    source: str = "trace",
    timestamp: Optional[str] = None,
) -> List[Observation]:
    """Figure-4 bucket observations from an observed span stream.

    Each non-empty component bucket becomes one observation; when the
    workload ``trace`` is given, the §4 prediction for the same
    (machine, P) point is attached per bucket so the drift detector can
    compare.  ``machine_spec`` overrides the predicting profile (the
    perturbed-profile drift scenario); the observation still files
    under ``machine``'s name.
    """
    if timestamp is None:
        timestamp = utc_timestamp()
    obs_buckets = breakdown(tracer)
    pred_buckets: Dict[str, float] = {}
    if trace is not None:
        spec = machine_spec if machine_spec is not None else get_machine(machine)
        pred_buckets = PerformancePredictor(trace, spec).predict(
            nprocs
        ).compute_breakdown()
    out: List[Observation] = []
    for component in COMPONENTS:
        observed = obs_buckets.get(component, 0.0)
        if observed <= 0:
            continue
        out.append(Observation(
            dataset=dataset,
            machine=machine,
            nprocs=nprocs,
            variant=variant,
            cores_per_job=1,
            phase=component,
            observed_s=float(observed),
            predicted_s=pred_buckets.get(component),
            source=source,
            timestamp=timestamp,
        ))
    return out


def observations_from_timelines(
    timelines: Iterable[Timeline],
    *,
    dataset: str,
    machine: str,
    nprocs: int,
    variant: str = "data",
    source: str = "replay",
    timestamp: Optional[str] = None,
) -> List[Observation]:
    """Per-phase comm/compute observations from replay timelines.

    Communication records carry the bottleneck node's exact traffic
    counts — the rows :func:`repro.perfmodel.calibrate.
    refit_observations` regresses L/G/H from.  Compute records carry
    the bottleneck node's op count for the machine-rate refit.
    """
    if timestamp is None:
        timestamp = utc_timestamp()
    out: List[Observation] = []
    for timeline in timelines:
        for rec in timeline.records(kind="comm"):
            if rec.duration <= 0:
                continue
            t = rec.max_node_traffic()
            out.append(Observation(
                dataset=dataset,
                machine=machine,
                nprocs=nprocs,
                variant=variant,
                cores_per_job=1,
                phase=f"comm:{rec.name}",
                observed_s=float(rec.duration),
                messages=float(t.messages),
                bytes_moved=float(t.bytes_moved),
                bytes_copied=float(t.bytes_copied),
                source=source,
                timestamp=timestamp,
            ))
        for rec in timeline.records(kind="compute"):
            if rec.duration <= 0 or not rec.ops:
                continue
            out.append(Observation(
                dataset=dataset,
                machine=machine,
                nprocs=nprocs,
                variant=variant,
                cores_per_job=1,
                phase=f"compute:{rec.name}",
                observed_s=float(rec.duration),
                ops=float(max(rec.ops.values())),
                source=source,
                timestamp=timestamp,
            ))
    return out


def traced_replay(
    trace: WorkloadTrace,
    machine_spec: MachineSpec,
    nprocs: int,
):
    """Data-parallel replay returning ``(tracer, timeline)``.

    Mirrors :func:`repro.model.dataparallel.replay_data_parallel` but
    exposes both the span stream and the runtime
    :class:`~repro.vm.traffic.Timeline` (the public replay returns only
    the timing summary), and accepts an explicit — possibly perturbed —
    :class:`~repro.vm.machine.MachineSpec`.
    """
    from repro.fx.runtime import FxRuntime

    tracer = Tracer()
    rt = FxRuntime(machine_spec, nprocs, tracer=tracer)
    declare_airshed_phases(rt)
    replayer = HourReplayer(rt.world, trace)
    for hour in trace.hours:
        with rt.span(f"hour:{hour.hour:02d}", kind="hour", hour=hour.hour):
            rt.sequential_io("inputhour", hour.input_bytes, ops=hour.input_ops)
            rt.sequential_io("pretrans", 0.0, ops=hour.pretrans_ops)
            replayer.run_hour(hour)
            rt.sequential_io("outputhour", hour.output_bytes,
                             ops=hour.output_ops)
    return tracer, rt.timeline
