"""Human-readable reports for runs and timings."""

from __future__ import annotations

from typing import Sequence

from repro.model.results import WorkloadTrace
from repro.model.dataparallel import ParallelTiming
from repro.vm.metrics import UtilizationReport

__all__ = ["format_table", "trace_summary", "timing_report"]


def format_table(header: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Align a header + rows into a fixed-width text table."""
    def fmt(cell) -> str:
        if isinstance(cell, float):
            return f"{cell:.6g}"
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(header)
    ]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def trace_summary(trace: WorkloadTrace) -> str:
    """One-paragraph summary of a workload trace."""
    ops = trace.total_ops_by_phase()
    total_ops = sum(ops.values())
    lines = [
        f"dataset {trace.dataset_name}: A{trace.shape} "
        f"({trace.n_species} species x {trace.layers} layers x "
        f"{trace.npoints} points)",
        f"{trace.nhours} hours, {trace.total_steps()} main-loop steps, "
        f"{trace.expected_comm_steps()} redistributions",
        f"I/O volume {trace.total_io_bytes() / 1e6:.2f} MB",
        "sequential work: " + ", ".join(
            f"{k} {100 * v / total_ops:.1f}%" for k, v in ops.items()
        ),
    ]
    return "\n".join(lines)


def timing_report(timing: ParallelTiming,
                  util: UtilizationReport | None = None) -> str:
    """Breakdown of one simulated parallel run."""
    lines = [
        f"{timing.machine}, {timing.nprocs} nodes: "
        f"{timing.total_time:.2f} s simulated",
    ]
    total = timing.total_time or 1.0
    for phase in ("chemistry", "transport", "io", "communication"):
        v = timing.breakdown.get(phase, 0.0)
        lines.append(f"  {phase:>14}: {v:9.2f} s  ({100 * v / total:5.1f}%)")
    lines.append(f"  {'comm steps':>14}: {timing.comm_steps:6d}")
    if util is not None:
        lines.append(
            f"  {'utilisation':>14}: {100 * util.utilization:6.1f}%   "
            f"load imbalance {util.load_imbalance:.2f}x "
            f"(busiest node {util.busiest_node()})"
        )
    return "\n".join(lines)
