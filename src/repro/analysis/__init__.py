"""Analysis layer: figure regeneration and textual reports."""

from repro.analysis.figures import (
    DEFAULT_NODE_COUNTS,
    all_figures,
    figure2,
    figure4,
    figure5,
    figure6,
    figure7,
    figure9,
)
from repro.analysis.gantt import gantt_rows, render_gantt
from repro.analysis.report import format_table, timing_report, trace_summary

__all__ = [
    "gantt_rows",
    "render_gantt",
    "DEFAULT_NODE_COUNTS",
    "all_figures",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure9",
    "format_table",
    "timing_report",
    "trace_summary",
]
