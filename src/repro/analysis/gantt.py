"""Text Gantt charts of simulated schedules (the paper's Figure 8).

Renders a timeline's phases as per-node (or per-group) occupancy bars,
which makes the pipelined task parallelism visible exactly the way
Figure 8 draws it::

    input  |IIII|IIII|IIII|....
    main   |....|MMMMMMM|MMMMMMM|MMMMMMM
    output |............|OO|......|OO|

Pure text, fixed width, no plotting dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.vm.traffic import Timeline

__all__ = ["gantt_rows", "render_gantt"]

#: Phase-kind glyphs used in the bars.
GLYPHS = {"compute": "#", "comm": "~", "io": "I"}


def gantt_rows(
    timeline: Timeline,
    groups: Mapping[str, Sequence[int]],
) -> Dict[str, List[Tuple[float, float, str]]]:
    """Busy intervals per named node group.

    A phase is attributed to a group when *all* its participating nodes
    belong to the group (cross-group phases, e.g. pipeline handoffs,
    are attributed to every group they touch).
    """
    out: Dict[str, List[Tuple[float, float, str]]] = {g: [] for g in groups}
    sets = {g: set(ids) for g, ids in groups.items()}
    for rec in timeline:
        touched = set(rec.node_ids)
        for g, ids in sets.items():
            if touched & ids:
                out[g].append((rec.start, rec.end, rec.kind))
    return out


def render_gantt(
    timeline: Timeline,
    groups: Mapping[str, Sequence[int]],
    width: int = 78,
    label_width: Optional[int] = None,
) -> str:
    """Render per-group occupancy bars over simulated time.

    Each column of the bar is one time bucket; the glyph shows the kind
    of work dominating that bucket (``#`` compute, ``~`` communication,
    ``I`` I/O, ``.`` idle).
    """
    total = timeline.total_time()
    if total <= 0:
        return "(empty timeline)"
    rows = gantt_rows(timeline, groups)
    label_width = label_width or max(len(g) for g in groups)
    dt = total / width

    lines = []
    for g in groups:
        # Dominant kind per bucket.
        occupancy = [{"compute": 0.0, "comm": 0.0, "io": 0.0} for _ in range(width)]
        for start, end, kind in rows[g]:
            b0 = min(int(start / dt), width - 1)
            b1 = min(int(end / dt), width - 1)
            for b in range(b0, b1 + 1):
                lo = max(start, b * dt)
                hi = min(end, (b + 1) * dt)
                if hi > lo:
                    occupancy[b][kind] += hi - lo
        bar = []
        for bucket in occupancy:
            best = max(bucket, key=bucket.get)
            bar.append(GLYPHS[best] if bucket[best] > 0 else ".")
        lines.append(f"{g:>{label_width}} |{''.join(bar)}|")
    lines.append(
        f"{'':>{label_width}}  0{'':{width - 10}}{total:9.2f} s"
    )
    lines.append(
        f"{'':>{label_width}}  (# compute, ~ communication, I io, . idle)"
    )
    return "\n".join(lines)
