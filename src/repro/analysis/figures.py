"""Programmatic regeneration of the paper's figures from a trace.

Each function returns ``(header, rows)`` for one figure, computed from a
:class:`~repro.model.results.WorkloadTrace`.  The benchmark suite and
the CLI's ``figures`` command both consume these, so the figure logic
lives in exactly one place.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.model import (
    WorkloadTrace,
    replay_data_parallel,
    replay_task_parallel,
)
from repro.perfmodel import PerformancePredictor
from repro.vm import CRAY_T3D, CRAY_T3E, INTEL_PARAGON, MachineSpec

__all__ = [
    "DEFAULT_NODE_COUNTS",
    "figure2",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure9",
    "all_figures",
]

DEFAULT_NODE_COUNTS: Tuple[int, ...] = (4, 8, 16, 32, 64, 128)

Header = List[str]
Rows = List[List]

COMM_STEPS = ("D_Repl->D_Trans", "D_Trans->D_Chem", "D_Chem->D_Repl")
MACHINES = (CRAY_T3E, CRAY_T3D, INTEL_PARAGON)


def figure2(
    trace: WorkloadTrace,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
) -> Tuple[Header, Rows]:
    """Execution time per machine and node count."""
    times = {
        m.name: [replay_data_parallel(trace, m, P).total_time for P in node_counts]
        for m in MACHINES
    }
    rows = [
        [P] + [times[m.name][i] for m in MACHINES]
        for i, P in enumerate(node_counts)
    ]
    return ["nodes"] + [m.name for m in MACHINES], rows


def figure4(
    trace: WorkloadTrace,
    machine: MachineSpec = CRAY_T3E,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
) -> Tuple[Header, Rows]:
    """Component breakdown (comm/chemistry/transport/io) per node count."""
    rows = []
    for P in node_counts:
        b = replay_data_parallel(trace, machine, P).breakdown
        rows.append([P, b["communication"], b["chemistry"], b["transport"], b["io"]])
    return ["nodes", "comm", "chemistry", "transport", "io"], rows


def figure5(
    trace: WorkloadTrace,
    machine: MachineSpec = CRAY_T3E,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
) -> Tuple[Header, Rows]:
    """Cumulative time of each redistribution step per node count."""
    rows = []
    for P in node_counts:
        by_step = replay_data_parallel(trace, machine, P).comm_by_step
        rows.append([P] + [by_step[s] for s in COMM_STEPS])
    return ["nodes"] + list(COMM_STEPS), rows


def figure6(
    trace: WorkloadTrace,
    machine: MachineSpec = CRAY_T3E,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
) -> Tuple[Header, Rows]:
    """Measured vs predicted communication-step times."""
    predictor = PerformancePredictor(trace, machine)
    rows = []
    for P in node_counts:
        measured = replay_data_parallel(trace, machine, P).comm_by_step
        predicted = predictor.predict(P).comm_by_step
        for s in COMM_STEPS:
            rows.append([P, s, measured[s], predicted[s]])
    return ["nodes", "step", "measured", "predicted"], rows


def figure7(
    trace: WorkloadTrace,
    machine: MachineSpec = CRAY_T3E,
    node_counts: Sequence[int] = DEFAULT_NODE_COUNTS,
) -> Tuple[Header, Rows]:
    """Measured vs predicted phase times."""
    predictor = PerformancePredictor(trace, machine)
    rows = []
    for P in node_counts:
        measured = replay_data_parallel(trace, machine, P).breakdown
        predicted = predictor.predict(P).compute_breakdown()
        for phase in ("chemistry", "transport", "io", "communication"):
            rows.append([P, phase, measured[phase], predicted[phase]])
    return ["nodes", "phase", "measured", "predicted"], rows


def figure9(
    trace: WorkloadTrace,
    machine: MachineSpec = INTEL_PARAGON,
    node_counts: Sequence[int] = (4, 8, 16, 32, 64),
) -> Tuple[Header, Rows]:
    """Speedup: data-parallel vs task+data-parallel."""
    base = replay_data_parallel(trace, machine, 1).total_time
    rows = []
    for P in node_counts:
        dp = replay_data_parallel(trace, machine, P).total_time
        tp = (
            replay_task_parallel(trace, machine, P).total_time
            if P >= 3 else float("nan")
        )
        rows.append([P, base / dp, base / tp])
    return ["nodes", "data-parallel", "task+data"], rows


def all_figures(trace: WorkloadTrace) -> Dict[str, Tuple[Header, Rows]]:
    """Every trace-derivable figure, keyed by name."""
    return {
        "fig2_machines": figure2(trace),
        "fig4_components": figure4(trace),
        "fig5_redistribution": figure5(trace),
        "fig6_comm_predicted": figure6(trace),
        "fig7_comp_predicted": figure7(trace),
        "fig9_taskparallel": figure9(trace),
    }
