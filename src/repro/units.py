"""Physical constants and small unit helpers shared across the package.

The Airshed model mixes several unit systems (km for the horizontal grid,
m for vertical layers, ppm for gas concentrations, seconds for simulated
machine time).  Everything in :mod:`repro` uses the conventions collected
here so that modules do not have to re-declare magic numbers.
"""

from __future__ import annotations

#: Machine word size used by the paper's Cray measurements (bytes).
DEFAULT_WORDSIZE: int = 8

#: Seconds per hour; the Airshed outer loop advances one hour per iteration.
SECONDS_PER_HOUR: float = 3600.0

#: Kilometres -> metres.
KM: float = 1000.0

#: Conversion of a concentration in ppm to molecules/cm^3 at standard
#: surface conditions (approximate; used only to give the synthetic
#: chemistry realistic magnitudes).
PPM_TO_MOLEC_CM3: float = 2.46e13

#: Universal gas constant (J / (mol K)); used by Arrhenius rate laws.
R_GAS: float = 8.314

#: Boltzmann-ish reference temperature for rate evaluation (K).
T_REF: float = 298.0


def ppm(value: float) -> float:
    """Identity helper that documents a literal as a ppm mixing ratio."""
    return float(value)


def per_second(value: float) -> float:
    """Identity helper that documents a literal as a first-order rate."""
    return float(value)
