"""The public API of the reproduction, in one namespace.

``repro.core`` collects the objects a downstream user needs: datasets,
the Airshed drivers (sequential / data-parallel / task-parallel /
integrated), the machine models, and the Section 4 performance
predictor.  The implementation lives in the focused subpackages
(``repro.model``, ``repro.vm``, ``repro.fx``, ...); this module is the
stable facade.

Quickstart::

    from repro.core import (
        make_la, AirshedConfig, SequentialAirshed,
        replay_data_parallel, CRAY_T3E,
    )

    config = AirshedConfig(dataset=make_la(), hours=8, start_hour=6)
    result = SequentialAirshed(config).run()        # real numerics
    timing = replay_data_parallel(result.trace, CRAY_T3E, 64)
    print(timing.total_time, timing.breakdown)
"""

from repro.datasets import (
    Dataset,
    DatasetSpec,
    HourlyConditions,
    LA_SPEC,
    NE_SPEC,
    make_la,
    make_ne,
)
from repro.foreign import (
    ForeignModuleBinding,
    PopExpFx,
    PopExpPvm,
    PopulationRaster,
    Scenario,
    run_integrated,
)
from repro.model import (
    AirshedConfig,
    AirshedResult,
    DataParallelAirshed,
    ParallelTiming,
    SequentialAirshed,
    WorkloadTrace,
    replay_data_parallel,
    replay_task_parallel,
)
from repro.observe import (
    Tracer,
    predicted_vs_observed,
    write_chrome_trace,
    write_csv,
)
from repro.perfmodel import (
    ArrayGeometry,
    CommunicationModel,
    PerformancePredictor,
    fit_comm_parameters,
    fit_compute_rate,
)
from repro.vm import (
    CRAY_T3D,
    CRAY_T3E,
    INTEL_PARAGON,
    MACHINES,
    MachineSpec,
    get_machine,
)

__all__ = [
    "AirshedConfig",
    "AirshedResult",
    "ArrayGeometry",
    "CRAY_T3D",
    "CRAY_T3E",
    "CommunicationModel",
    "DataParallelAirshed",
    "Dataset",
    "DatasetSpec",
    "ForeignModuleBinding",
    "HourlyConditions",
    "INTEL_PARAGON",
    "LA_SPEC",
    "MACHINES",
    "MachineSpec",
    "NE_SPEC",
    "ParallelTiming",
    "PerformancePredictor",
    "PopExpFx",
    "PopExpPvm",
    "PopulationRaster",
    "Scenario",
    "SequentialAirshed",
    "Tracer",
    "WorkloadTrace",
    "fit_comm_parameters",
    "fit_compute_rate",
    "get_machine",
    "make_la",
    "make_ne",
    "predicted_vs_observed",
    "replay_data_parallel",
    "replay_task_parallel",
    "run_integrated",
    "write_chrome_trace",
    "write_csv",
]
