"""Synthetic dataset generation with the paper's exact dimensions.

The experiments in the paper use two input datasets:

* **Los Angeles basin**: 700 grid points, 5 layers, 35 species;
* **North East United States**: 3328 grid points, 5 layers, 35 species.

The real datasets (hourly meteorology, emission inventories, boundary
conditions) are not public; we generate deterministic synthetic
equivalents with the same array shapes and the same *structure*: hourly
inputs of sun and wind conditions plus release of additional chemicals
(traffic-peaked urban emission plumes around the refinement cores,
biogenic isoprene everywhere), which is exactly what drives the
performance behaviour being reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.chemistry import (
    Mechanism,
    cit_mechanism,
    default_kz_profile,
    default_layer_heights,
)
from repro.grid import (
    MultiscaleGrid,
    RefinementCore,
    TriMesh,
    generate_multiscale_grid,
    triangulate,
)
from repro.transport import WindField

__all__ = ["DatasetSpec", "Dataset", "HourlyConditions"]


@dataclass(frozen=True)
class HourlyConditions:
    """One hour of model inputs (what ``inputhour`` reads)."""

    hour: int
    temperature: float           # K, domain mean
    sun: float                   # actinic scale in [0, 1]
    emissions: np.ndarray        # (n_species, n_points) surface flux, ppm/s
    boundary: np.ndarray         # (n_species,) inflow concentrations, ppm
    #: Optional (n_species, layers, n_points) elevated point-source flux.
    elevated: Optional[np.ndarray] = None

    def nbytes(self) -> int:
        """Size of the serialised hourly input record."""
        extra = self.elevated.nbytes if self.elevated is not None else 0
        return int(self.emissions.nbytes + self.boundary.nbytes + extra + 3 * 8)


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for a dataset: domain, grid target and emission geography."""

    name: str
    domain: Tuple[float, float]
    base_shape: Tuple[int, int]
    npoints: int
    cores: Tuple[RefinementCore, ...]
    layers: int = 5
    seed: int = 0
    #: Elevated point sources (power plants etc.); empty by default.
    point_sources: Tuple = ()

    def build(self) -> "Dataset":
        return Dataset(self)


class Dataset:
    """A fully materialised dataset: grid, mesh, wind, hourly inputs."""

    def __init__(self, spec: DatasetSpec, mechanism: Optional[Mechanism] = None):
        self.spec = spec
        self.mechanism = mechanism or cit_mechanism()
        self.grid: MultiscaleGrid = generate_multiscale_grid(
            spec.domain, spec.base_shape, spec.npoints, spec.cores
        )
        self.mesh: TriMesh = triangulate(self.grid.points)
        self.wind = WindField(domain=spec.domain)
        self.layer_heights = default_layer_heights(spec.layers)
        self.kz_profile = default_kz_profile(spec.layers)
        self._emission_shape = self._build_emission_shape()

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def npoints(self) -> int:
        return self.grid.npoints

    @property
    def layers(self) -> int:
        return self.spec.layers

    @property
    def n_species(self) -> int:
        return self.mechanism.n_species

    @property
    def shape(self) -> Tuple[int, int, int]:
        """The concentration array shape ``A(species, layers, nodes)``."""
        return (self.n_species, self.layers, self.npoints)

    def array_nbytes(self, wordsize: int = 8) -> int:
        return self.n_species * self.layers * self.npoints * wordsize

    # ------------------------------------------------------------------
    def _build_emission_shape(self) -> np.ndarray:
        """Normalised spatial emission density at the grid points."""
        px, py = self.grid.points[:, 0], self.grid.points[:, 1]
        dens = np.zeros(self.npoints)
        for core in self.grid.cores:
            dens += core.density(px, py)
        peak = dens.max()
        return dens / peak if peak > 0 else dens

    @staticmethod
    def diurnal_sun(hour: int) -> float:
        """Clear-sky actinic flux factor: zero at night, peak at 13h."""
        h = hour % 24
        return max(0.0, float(np.sin(np.pi * (h - 6.0) / 14.0))) if 6 <= h <= 20 else 0.0

    @staticmethod
    def diurnal_temperature(hour: int) -> float:
        """Domain-mean temperature (K): 288 K base, afternoon maximum."""
        h = hour % 24
        return 288.0 + 8.0 * float(np.sin(np.pi * (h - 8.0) / 12.0))

    @staticmethod
    def traffic_factor(hour: int) -> float:
        """Morning and evening rush-hour peaks on a base load."""
        h = hour % 24
        peaks = np.exp(-0.5 * ((h - 8.0) / 1.5) ** 2) + np.exp(
            -0.5 * ((h - 18.0) / 1.5) ** 2
        )
        return float(0.3 + peaks)

    #: Urban surface emission strengths at the core peak (ppm/s into the
    #: surface layer), per species.
    EMITTED: Dict[str, float] = {
        "NO": 2.5e-5, "NO2": 3.0e-6, "CO": 3.0e-4, "HCHO": 1.5e-6,
        "ALD2": 1.0e-6, "ETH": 3.0e-6, "OLE": 2.0e-6, "PAR": 5.0e-5,
        "TOL": 4.0e-6, "XYL": 3.0e-6, "SO2": 5.0e-6, "NH3": 4.0e-6,
        "MEOH": 1.0e-6, "ETOH": 1.5e-6, "MEK": 8.0e-7,
    }

    #: Biogenic isoprene flux (ppm/s), daylight-scaled, everywhere.
    BIOGENIC_ISOP: float = 2.0e-6

    #: Clean continental background used for inflow boundaries (ppm).
    BACKGROUND: Dict[str, float] = {
        "O3": 0.04, "CO": 0.12, "NO": 1e-4, "NO2": 1e-3, "HCHO": 1e-3,
        "PAR": 5e-3, "SO2": 2e-4, "NH3": 5e-4, "H2O2": 1e-3,
    }

    def hourly(self, hour: int) -> HourlyConditions:
        """Deterministic hourly conditions (same hour -> same record)."""
        mech = self.mechanism
        sun = self.diurnal_sun(hour)
        temp = self.diurnal_temperature(hour)
        traffic = self.traffic_factor(hour)

        E = np.zeros((mech.n_species, self.npoints))
        for species, strength in self.EMITTED.items():
            E[mech.index[species]] = strength * traffic * self._emission_shape
        E[mech.index["ISOP"]] += self.BIOGENIC_ISOP * sun

        # Small deterministic hour-to-hour variability.  Determinism
        # audit (FX050): seeded from the dataset spec and the hour
        # only, so regenerating a dataset is bitwise-reproducible.
        rng = np.random.default_rng(self.spec.seed * 10007 + hour)
        E *= rng.uniform(0.9, 1.1, size=(1, self.npoints))

        boundary = np.zeros(mech.n_species)
        for species, value in self.BACKGROUND.items():
            boundary[mech.index[species]] = value

        from repro.datasets.sources import elevated_emissions

        elevated = elevated_emissions(
            self.spec.point_sources,
            hour,
            self.grid.points,
            self.layer_heights,
            mech.index,
            mech.n_species,
        )
        return HourlyConditions(
            hour=hour, temperature=temp, sun=sun, emissions=E,
            boundary=boundary, elevated=elevated,
        )

    def initial_conditions(self) -> np.ndarray:
        """Morning-start concentrations: background + urban NOx/VOC."""
        mech = self.mechanism
        c = np.zeros(self.shape)
        for species, value in self.BACKGROUND.items():
            c[mech.index[species]] = value
        urban = self._emission_shape[None, :]  # (1, npts)
        surface_add = {
            "NO": 0.03, "NO2": 0.05, "CO": 1.5, "HCHO": 5e-3, "ALD2": 4e-3,
            "ETH": 0.01, "OLE": 6e-3, "PAR": 0.25, "TOL": 0.012, "XYL": 0.012,
            "SO2": 0.01, "NH3": 6e-3,
        }
        # Pollution decays with altitude: weight per layer.
        layer_w = np.exp(-np.arange(self.layers) / 1.5)[:, None]
        for species, value in surface_add.items():
            c[mech.index[species]] += value * layer_w * urban
        return c

    def steps_per_hour(self, hour: int, min_steps: int = 2,
                       max_steps: int = 12) -> int:
        """Runtime transport step count (the paper's per-hour ``nsteps``).

        A CFL-style criterion on the finest cell with a relaxed target
        (the implicit SUPG scheme tolerates Courant numbers ~ 3).
        """
        n = self.wind.cfl_steps_per_hour(
            self.grid.finest_cell_size, self.layers - 1, hour, safety=3.0
        )
        return int(np.clip(n, min_steps, max_steps))
