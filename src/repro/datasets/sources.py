"""Elevated point sources (power plants, industrial stacks).

The CIT inventory distinguishes area emissions (traffic and the like —
released into the surface layer) from major point sources, whose
buoyant plumes inject into an elevated layer.  A power plant's NOx/SO2
entering layer 2 instead of layer 0 changes the chemistry it meets (no
fresh surface VOC, different titration) and is the textbook cause of
downwind ozone plumes.

:class:`PointSource` describes one stack; a dataset with sources emits
a 3-D ``(species, layers, points)`` elevated field each hour alongside
the usual surface field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

__all__ = ["PointSource", "elevated_emissions", "injection_layer"]


@dataclass(frozen=True)
class PointSource:
    """One elevated emitter.

    ``x``/``y`` in km; ``plume_height`` in metres (stack + plume rise);
    ``strengths`` maps species name to an emission rate (ppm/s at the
    receiving grid cell); ``diurnal`` scales the rate by hour of day
    (power plants run near-flat; default 1.0).
    """

    x: float
    y: float
    plume_height: float
    strengths: Mapping[str, float]
    name: str = "stack"

    def __post_init__(self) -> None:
        if self.plume_height < 0:
            raise ValueError("plume height must be non-negative")
        if not self.strengths:
            raise ValueError(f"{self.name}: no emitted species")
        for s, v in self.strengths.items():
            if v < 0:
                raise ValueError(f"{self.name}: negative rate for {s}")

    def diurnal(self, hour: int) -> float:
        """Load factor by hour: near-flat with a mild daytime peak."""
        h = hour % 24
        return 0.85 + 0.15 * float(np.sin(np.pi * (h - 5.0) / 14.0)) if 5 <= h <= 19 else 0.85


def injection_layer(plume_height: float, layer_heights: np.ndarray) -> int:
    """The model layer containing ``plume_height`` metres AGL."""
    tops = np.cumsum(layer_heights)
    # side="left": a plume exactly at a layer top stays in that layer.
    layer = int(np.searchsorted(tops, plume_height, side="left"))
    return min(layer, len(layer_heights) - 1)


def elevated_emissions(
    sources: Sequence[PointSource],
    hour: int,
    points: np.ndarray,
    layer_heights: np.ndarray,
    species_index: Mapping[str, int],
    n_species: int,
) -> Optional[np.ndarray]:
    """Build the ``(species, layers, points)`` elevated emission field.

    Each source injects into the grid point nearest its location, in
    the layer its plume reaches.  Returns ``None`` when there are no
    sources (the common case keeps the hourly record small).
    """
    if not sources:
        return None
    nlayers = len(layer_heights)
    E = np.zeros((n_species, nlayers, len(points)))
    for src in sources:
        d2 = (points[:, 0] - src.x) ** 2 + (points[:, 1] - src.y) ** 2
        target = int(np.argmin(d2))
        layer = injection_layer(src.plume_height, layer_heights)
        load = src.diurnal(hour)
        for species, rate in src.strengths.items():
            if species not in species_index:
                raise ValueError(
                    f"{src.name}: unknown species {species!r}"
                )
            E[species_index[species], layer, target] += rate * load
    return E
