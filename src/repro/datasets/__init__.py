"""Synthetic LA and NE datasets with the paper's exact dimensions."""

from repro.datasets.generators import Dataset, DatasetSpec, HourlyConditions
from repro.datasets.la import LA_SPEC, make_la
from repro.datasets.ne import NE_SPEC, make_ne
from repro.datasets.registry import (
    DATASET_BUILDERS,
    DEMO_SPEC,
    dataset_names,
    get_dataset,
    register_dataset,
)
from repro.datasets.sources import PointSource, elevated_emissions, injection_layer

__all__ = [
    "DATASET_BUILDERS",
    "DEMO_SPEC",
    "Dataset",
    "DatasetSpec",
    "HourlyConditions",
    "LA_SPEC",
    "NE_SPEC",
    "PointSource",
    "dataset_names",
    "elevated_emissions",
    "get_dataset",
    "injection_layer",
    "make_la",
    "make_ne",
    "register_dataset",
]
