"""The North-East United States dataset: 3328 points, 5 layers, 35 species.

A 1100 x 800 km domain covering the BosWash corridor schematically, with
refinement cores over the Washington/Baltimore, Philadelphia, New York
and Boston areas.  Array dimensions match the paper: ``A(35, 5, 3328)``.
"""

from __future__ import annotations

from repro.datasets.generators import Dataset, DatasetSpec
from repro.grid import RefinementCore

__all__ = ["NE_SPEC", "make_ne"]

#: 3328 = 16*13 base cells + 3 * 1040 quadtree splits.
NE_SPEC = DatasetSpec(
    name="ne",
    domain=(1100.0, 800.0),
    base_shape=(16, 13),
    npoints=3328,
    cores=(
        RefinementCore(x=280.0, y=200.0, weight=6.0, sigma=60.0),   # DC/Baltimore
        RefinementCore(x=450.0, y=320.0, weight=7.0, sigma=55.0),   # Philadelphia
        RefinementCore(x=560.0, y=420.0, weight=10.0, sigma=55.0),  # New York
        RefinementCore(x=800.0, y=560.0, weight=6.0, sigma=60.0),   # Boston
    ),
    layers=5,
    seed=17,
)


def make_ne() -> Dataset:
    """Build the NE dataset (deterministic)."""
    return NE_SPEC.build()
