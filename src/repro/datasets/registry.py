"""Named dataset registry shared by the CLI and the campaign scheduler.

Datasets are referred to by short names everywhere a run description is
serialised (CLI flags, :class:`~repro.sched.job.JobSpec` content
hashes, cache keys), so the name -> builder mapping has to live in one
place.  ``la`` and ``ne`` are the paper's datasets; ``demo`` is a small
grid for fast demonstration runs and CI smoke jobs.

Builders must be deterministic: two calls with the same name produce
bitwise-identical datasets, which is what makes content-addressed
result caching sound.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.generators import Dataset, DatasetSpec
from repro.datasets.la import make_la
from repro.datasets.ne import make_ne
from repro.grid import RefinementCore

__all__ = [
    "DATASET_BUILDERS",
    "DEMO_SPEC",
    "dataset_names",
    "get_dataset",
    "register_dataset",
]

#: A small grid for fast demonstration runs.
DEMO_SPEC = DatasetSpec(
    name="demo",
    domain=(160.0, 120.0),
    base_shape=(6, 5),
    npoints=30 + 3 * 40,
    cores=(RefinementCore(60.0, 60.0, 8.0, 25.0),),
    layers=4,
    seed=5,
)

#: The live name -> builder mapping (mutated by ``register_dataset``).
DATASET_BUILDERS: Dict[str, Callable[[], Dataset]] = {
    "la": make_la,
    "ne": make_ne,
    "demo": DEMO_SPEC.build,
}


def dataset_names() -> List[str]:
    return sorted(DATASET_BUILDERS)


def get_dataset(name: str) -> Dataset:
    """Build the registered dataset ``name`` (``la``/``ne``/``demo``)."""
    if name not in DATASET_BUILDERS:
        raise KeyError(
            f"unknown dataset {name!r}; choose from {dataset_names()}"
        )
    return DATASET_BUILDERS[name]()


def register_dataset(name: str, builder: Callable[[], Dataset]) -> None:
    """Add a named dataset builder (test fixtures, new inventories).

    The builder must be deterministic for result caching to be sound.
    Note that ``--executor process`` campaign workers import the
    registry fresh, so builders registered at runtime are only visible
    to in-process (thread/inline) execution.
    """
    DATASET_BUILDERS[name] = builder
