"""The Los Angeles basin dataset: 700 points, 5 layers, 35 species.

Geometry is schematic — a 400 x 300 km domain with dense refinement over
the LA urban core, a secondary core for the inland valleys, and a third
for the San Diego corridor — but the array dimensions match the paper's
dataset exactly: ``A(35, 5, 700)``.
"""

from __future__ import annotations

from repro.datasets.generators import Dataset, DatasetSpec
from repro.grid import RefinementCore

__all__ = ["LA_SPEC", "make_la"]

#: 700 = 10*10 base cells + 3 * 200 quadtree splits.
LA_SPEC = DatasetSpec(
    name="la",
    domain=(400.0, 300.0),
    base_shape=(10, 10),
    npoints=700,
    cores=(
        RefinementCore(x=120.0, y=170.0, weight=10.0, sigma=35.0),  # LA core
        RefinementCore(x=200.0, y=200.0, weight=4.0, sigma=45.0),   # inland
        RefinementCore(x=170.0, y=70.0, weight=3.0, sigma=40.0),    # SD corridor
    ),
    layers=5,
    seed=11,
)


def make_la() -> Dataset:
    """Build the LA dataset (deterministic)."""
    return LA_SPEC.build()
