"""Always-on, multi-tenant campaign service.

The one-shot CLI (``repro campaign run``) plans and executes a sweep,
prints a report and exits.  This package keeps the same scheduler —
composed over the seams in :mod:`repro.sched.interfaces` — resident:

* :mod:`repro.service.jobstore` — :class:`JournalJobStore`, the
  crash-safe persistent :class:`~repro.sched.interfaces.JobStore`
  (append-only JSONL journal + atomic snapshot compaction), and
  :class:`ServiceState`, the fold of its events;
* :mod:`repro.service.queue` — :class:`FairShareQueue`,
  weighted stride scheduling across tenants;
* :mod:`repro.service.daemon` — :class:`CampaignService`, the resident
  scheduler (submit / status / results / cancel / stats, wave-based
  incremental planning, restart resume) and its stdlib-HTTP JSON API;
* :mod:`repro.service.client` — :class:`ServiceClient`, the thin
  ``urllib`` client the CLI's ``--server`` path uses.

See ``docs/SERVICE.md`` for the API, tenancy and fair-share semantics.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.daemon import CampaignService, build_http_server
from repro.service.jobstore import (
    CampaignRecord,
    JournalJobStore,
    ServiceState,
)
from repro.service.queue import FairShareQueue, QueueItem

__all__ = [
    "CampaignRecord",
    "CampaignService",
    "FairShareQueue",
    "JournalJobStore",
    "QueueItem",
    "ServiceClient",
    "ServiceError",
    "ServiceState",
    "build_http_server",
]
