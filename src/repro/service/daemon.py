"""The resident campaign scheduler and its HTTP JSON API.

:class:`CampaignService` keeps the scheduler composed in
:mod:`repro.sched` always-on:

* **submit** journals the campaign (durable before the call returns)
  and enqueues its not-yet-done jobs into the
  :class:`~repro.service.queue.FairShareQueue`;
* a **scheduler loop** drains the queue in *waves* of at most
  ``workers`` jobs — each wave's specs feed the existing
  :class:`~repro.sched.interfaces.Planner` and run on one
  :class:`~repro.sched.runner.CampaignRunner` over the shared
  :class:`~repro.sched.cache.ShardedResultCache`, so planning is
  incremental (later submissions join the next wave) and overlapping
  submissions across tenants resolve from the content-addressed cache
  instead of re-executing;
* every job outcome is journaled before it is acknowledged, so a crash
  or restart resumes from the last durable state: unfinished jobs are
  re-enqueued, and anything that already ran replays from the full-job
  cache (``status="cached"``) rather than executing again;
* **cancel** drops a campaign's still-queued jobs (best effort; the
  in-flight wave completes) and journals the cancellation.

Observability rides the existing
:class:`~repro.observe.counters.CounterSet`: campaign counters
aggregate service-wide, per-tenant counters live under
``service:tenant:<name>:*`` and per-tenant queue-wait histograms under
``service:tenant:<name>:queue_wait_s``.

The HTTP layer (:func:`build_http_server`) is a stdlib
:class:`~http.server.ThreadingHTTPServer` speaking JSON::

    POST /api/submit            {"tenant", "specs": [spec dicts]}
    GET  /api/status/<cid>      campaign summary
    GET  /api/results/<cid>     per-job rows (key, status, sha256, ...)
    POST /api/cancel/<cid>
    GET  /api/stats             queue, tenants, cache, counters
    GET  /api/campaigns         all campaign summaries
    GET  /api/health

Job *results* over HTTP are the journaled rows (content hashes, replay
timings, attempt counts) — the science arrays stay in the cache.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import replace
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.observe.tracer import Tracer
from repro.sched.cache import ShardedResultCache
from repro.sched.interfaces import Executor, JobStore, ResultStore
from repro.sched.job import JobResult, JobSpec
from repro.sched.runner import CampaignRunner
from repro.service.jobstore import (
    ACTIVE_STATUSES,
    CampaignRecord,
    JournalJobStore,
    ServiceState,
)
from repro.service.queue import FairShareQueue, QueueItem

__all__ = ["CampaignService", "build_http_server"]


class CampaignService:
    """Multi-tenant always-on campaign scheduler.

    Parameters
    ----------
    root:
        Service state directory: the journal/snapshot live at its top
        level, the shared result cache under ``<root>/cache`` (unless
        an explicit ``cache`` store is passed).
    workers / executor / retries / backoff / timeout:
        Passed through to the per-wave
        :class:`~repro.sched.runner.CampaignRunner`; ``workers`` is
        also the wave width.
    tenant_weights:
        Fair-share weights (default 1.0 per tenant; a weight-2 tenant
        drains twice as fast under contention).
    cache_shards / cache_max_bytes:
        Layout and size cap of the default
        :class:`~repro.sched.cache.ShardedResultCache`.
    chem_workers:
        Service-wide default ``cores_per_job``: submitted specs that
        did not ask for intra-job cores (``cores_per_job == 1``) run
        their tiled chemistry on this many threads.  Placement is a
        service-side decision — the cores belong to the service host —
        and ``cores_per_job`` is presentation-only (tiled chemistry is
        bitwise-invariant in worker count), so the override never
        changes job keys or cache semantics.
    autotune / tune_store:
        ``autotune=True`` builds a fresh
        :class:`~repro.tune.autotune.Autotuner` per wave from the
        calibration store (``tune_store`` path or store; defaults to
        ``<root>/tune``), so the daemon replans every wave with the
        freshest calibration, and harvests each wave's report back into
        the store.  Tuning rewrites only execution/presentation fields
        — science keys, cache semantics and delivered results stay
        identical; rows are still journaled under the *submitted* keys.
        A ``tune_store`` without ``autotune`` harvests only.
    clock / sleep:
        Injectable time sources (tests drive the service with a fake
        clock and pay no wall time).
    """

    def __init__(
        self,
        root: Union[str, Path],
        cache: Optional[ResultStore] = None,
        store: Optional[JobStore] = None,
        workers: int = 4,
        executor: Union[str, Executor] = "thread",
        retries: int = 2,
        backoff: float = 0.25,
        timeout: Optional[float] = None,
        tenant_weights: Optional[Dict[str, float]] = None,
        cache_shards: int = 16,
        cache_max_bytes: Optional[int] = None,
        chem_workers: int = 1,
        fuse_ensembles: bool = True,
        autotune: bool = False,
        tune_store=None,
        tracer: Optional[Tracer] = None,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.cache: ResultStore = cache or ShardedResultCache(
            self.root / "cache", shards=cache_shards,
            max_bytes=cache_max_bytes,
        )
        self.store: JobStore = store or JournalJobStore(self.root)
        self.workers = int(workers)
        self.executor = executor
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        if chem_workers < 1:
            raise ValueError("chem_workers must be >= 1")
        self.chem_workers = int(chem_workers)
        self.fuse_ensembles = bool(fuse_ensembles)
        self.autotune = bool(autotune)
        self.tune_store = None
        if self.autotune or tune_store is not None:
            from repro.tune.store import CalibrationStore

            if tune_store is None:
                tune_store = self.root / "tune"
            self.tune_store = (
                tune_store if isinstance(tune_store, CalibrationStore)
                else CalibrationStore(tune_store)
            )
        self.queue = FairShareQueue()
        for tenant, weight in (tenant_weights or {}).items():
            self.queue.set_weight(tenant, weight)
        self.tracer = tracer or Tracer()
        self._clock = clock or time.monotonic
        self._sleep = sleep or time.sleep
        self._lock = threading.RLock()
        self._wake = threading.Event()
        self._stopping = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self.campaigns: Dict[str, CampaignRecord] = {}
        self._seq = 1
        self._resume()

    # -- durable state --------------------------------------------------
    def _resume(self) -> None:
        """Replay the journal; re-enqueue whatever was in flight."""
        state = ServiceState.fold(self.store.events())
        with self._lock:
            self.campaigns = state.campaigns
            self._seq = state.next_seq
            for cid in sorted(self.campaigns):
                record = self.campaigns[cid]
                if record.status in ACTIVE_STATUSES:
                    self._enqueue(record, record.pending_specs())

    def compact(self) -> None:
        """Fold the journal into the snapshot (bounded on-disk state)."""
        with self._lock:
            state = ServiceState()
            state.campaigns = dict(self.campaigns)
            self.store.compact({"events": state.to_events()})

    # -- observability ---------------------------------------------------
    def _count(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self.tracer.counters.inc(name, amount)

    def _observe(self, name: str, value: float) -> None:
        with self._lock:
            self.tracer.counters.observe(name, value)

    # -- the tenant-facing API -------------------------------------------
    def submit(self, tenant: str, specs: Sequence[JobSpec],
               workers: Optional[int] = None) -> str:
        """Journal and enqueue a campaign; returns its id."""
        specs = list(specs)
        if not specs:
            raise ValueError("a campaign needs at least one job spec")
        if self.chem_workers > 1:
            # Key-stable: cores_per_job is a presentation field.
            specs = [
                replace(s, cores_per_job=self.chem_workers)
                if s.cores_per_job == 1 else s
                for s in specs
            ]
        with self._lock:
            cid = f"c{self._seq:06d}"
            self._seq += 1
            record = CampaignRecord(
                cid=cid, tenant=tenant, specs=specs,
                workers=workers or self.workers,
                fuse=self.fuse_ensembles,
            )
            self.store.append({
                "type": "submit", "cid": cid, "tenant": tenant,
                "specs": [s.to_dict() for s in specs],
                "workers": record.workers, "fuse": record.fuse,
            })
            self.campaigns[cid] = record
            self._count(f"service:tenant:{tenant}:submitted_campaigns")
            self._count(f"service:tenant:{tenant}:submitted_jobs",
                        len(specs))
            self._enqueue(record, record.pending_specs())
        self._wake.set()
        return cid

    def _enqueue(self, record: CampaignRecord,
                 specs: Sequence[JobSpec]) -> None:
        now = self._clock()
        for spec in specs:
            # Fair-share currency is simulated hours: deterministic,
            # known pre-run, and proportional to the numerics cost.
            self.queue.push(QueueItem(
                tenant=record.tenant, cid=record.cid, spec=spec,
                cost=float(spec.hours), enqueued_at=now,
            ))

    def status(self, cid: str) -> Dict[str, Any]:
        with self._lock:
            record = self._record(cid)
            summary = record.summary()
            summary["queued"] = len(record.pending_specs())
            return summary

    def results(self, cid: str) -> List[Dict[str, Any]]:
        """The journaled per-job rows, campaign submission order."""
        with self._lock:
            record = self._record(cid)
            rows, seen = [], set()
            for spec in record.specs:
                if spec.key in seen:
                    continue
                seen.add(spec.key)
                if spec.key in record.jobs:
                    rows.append(record.jobs[spec.key])
            return rows

    def cancel(self, cid: str) -> bool:
        """Drop a campaign's queued jobs; in-flight jobs complete."""
        with self._lock:
            record = self._record(cid)
            if record.status not in ACTIVE_STATUSES:
                return False
            dropped = self.queue.drop(lambda item: item.cid == cid)
            record.status = "cancelled"
            self.store.append({"type": "cancel", "cid": cid})
            self._count(f"service:tenant:{record.tenant}:cancelled_jobs",
                        dropped)
            return True

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            snap = self.tracer.counters.snapshot()
            out = {
                "campaigns": [
                    self.campaigns[c].summary()
                    for c in sorted(self.campaigns)
                ],
                "queue": self.queue.pending(),
                "counters": snap["counters"],
                "histograms": snap["histograms"],
                "cache": self.cache.stats(),
            }
            if self.tune_store is not None:
                out["tune"] = self.tune_store.stats()
            return out

    def _record(self, cid: str) -> CampaignRecord:
        record = self.campaigns.get(cid)
        if record is None:
            raise KeyError(f"unknown campaign {cid!r}")
        return record

    # -- the scheduler loop ----------------------------------------------
    def run_wave(self) -> int:
        """Drain one wave synchronously; returns jobs dispatched."""
        wave = []
        with self._lock:
            while len(wave) < self.workers:
                item = self.queue.pop()
                if item is None:
                    break
                record = self.campaigns.get(item.cid)
                if record is None or record.status not in ACTIVE_STATUSES:
                    continue  # cancelled while queued
                wave.append(item)
        if not wave:
            return 0
        self._execute_wave(wave)
        return len(wave)

    def run_until_idle(self) -> int:
        """Drain waves until the queue is empty; returns jobs run."""
        total = 0
        while True:
            n = self.run_wave()
            if n == 0:
                return total
            total += n

    def _execute_wave(self, wave: List[QueueItem]) -> None:
        now = self._clock()
        subscribers: Dict[str, List[QueueItem]] = {}
        specs: List[JobSpec] = []
        for item in wave:
            self._observe(
                f"service:tenant:{item.tenant}:queue_wait_s",
                max(0.0, now - item.enqueued_at),
            )
            if item.spec.key not in subscribers:
                specs.append(item.spec)
            subscribers.setdefault(item.spec.key, []).append(item)

        run_specs = specs
        cost_model = None
        tuned_by_key: Dict[str, str] = {}
        if self.autotune:
            # A fresh autotuner per wave: every wave replans with the
            # freshest calibration in the store.  Tuning rewrites only
            # execution/presentation fields, never science keys.
            from repro.tune.autotune import Autotuner

            tuner = Autotuner(store=self.tune_store, cache=self.cache)
            run_specs, records, tuned_by_key = tuner.tune_all(specs)
            cost_model = tuner.cost_model()
            for record in records:
                self.tune_store.record_decision(record)
            self._count("service:tuned_jobs", len(records))

        runner = CampaignRunner(
            self.cache, workers=self.workers, retries=self.retries,
            backoff=self.backoff, timeout=self.timeout,
            executor=self.executor, fuse_ensembles=self.fuse_ensembles,
            cost_model=cost_model, sleep=self._sleep, clock=self._clock,
        )
        report = runner.run(run_specs)
        self._count("service:waves")
        with self._lock:
            for name, value in report.counters.items():
                self.tracer.counters.inc(name, value)
            results_by_key = {r.key: r for r in report.results}
            for submitted_key, items in subscribers.items():
                result = results_by_key.get(
                    tuned_by_key.get(submitted_key, submitted_key)
                )
                if result is None:
                    continue
                for item in items:
                    self._deliver(item, result, key=submitted_key)
            for cid in sorted({item.cid for item in wave}):
                self._maybe_finish(cid)
        if self.tune_store is not None:
            from repro.tune.harvest import harvest_report

            self.tune_store.add_many(
                harvest_report(report, source="service")
            )

    def _deliver(self, item: QueueItem, result: JobResult,
                 key: Optional[str] = None) -> None:
        record = self.campaigns.get(item.cid)
        if record is None:
            return
        # ``key`` is the *submitted* key — the one pending_specs() and
        # the results API index by.  An autotuned wave executed the job
        # under a rewritten (same-science) key, recorded alongside.
        key = key if key is not None else result.key
        row = {
            "key": key,
            "job": result.spec.label,
            "status": result.status,
            "attempts": result.attempts,
            "from_cache": result.from_cache,
            "science_cached": result.science_cached,
            "sha256": result.final_conc_sha256(),
            "sim_total_s": (
                round(result.timing.total_time, 10)
                if result.timing else None
            ),
            "error": result.error,
        }
        if result.key != key:
            row["tuned_key"] = result.key
        record.jobs[key] = row
        if record.status == "queued":
            record.status = "running"
        self.store.append({
            "type": "job", "cid": item.cid, "key": key, "row": row,
        })
        tenant = record.tenant
        self._count(f"service:tenant:{tenant}:completed_jobs")
        if result.from_cache:
            self._count(f"service:tenant:{tenant}:cache_hits")
        if not result.ok:
            self._count(f"service:tenant:{tenant}:failed_jobs")

    def _maybe_finish(self, cid: str) -> None:
        record = self.campaigns.get(cid)
        if record is None or record.status not in ACTIVE_STATUSES:
            return
        if record.pending_specs():
            return
        ok = all(
            row.get("status") in ("ok", "cached")
            for row in record.jobs.values()
        )
        record.status = "done" if ok else "failed"
        self.store.append({
            "type": "done", "cid": cid, "status": record.status,
        })
        self._count(f"service:tenant:{record.tenant}:completed_campaigns")

    # -- the daemon thread ----------------------------------------------
    def start(self) -> None:
        """Run the scheduler loop on a daemon thread."""
        if self._thread is not None:
            return
        self._stopping.clear()
        self._thread = threading.Thread(
            target=self._loop, name="campaign-service", daemon=True
        )
        self._thread.start()

    def stop(self, compact: bool = True) -> None:
        """Stop the loop (the in-flight wave completes) and compact."""
        self._stopping.set()
        self._wake.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join()
        if compact:
            self.compact()

    def _loop(self) -> None:
        while not self._stopping.is_set():
            if self.run_wave() == 0:
                self._wake.wait(timeout=0.05)
                self._wake.clear()


# ---------------------------------------------------------------------------
# HTTP layer
# ---------------------------------------------------------------------------
class _ServiceHandler(BaseHTTPRequestHandler):
    """JSON-over-HTTP facade for one :class:`CampaignService`."""

    service: CampaignService  # injected by build_http_server

    # -- plumbing -------------------------------------------------------
    def log_message(self, fmt: str, *args: Any) -> None:  # noqa: D102
        pass  # the service is the source of truth, not an access log

    def _reply(self, payload: Dict[str, Any], code: int = 200) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._reply({"error": message}, code=code)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0))
        if length <= 0:
            return {}
        data = json.loads(self.rfile.read(length).decode("utf-8"))
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- routes ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/api/health":
                self._reply({
                    "ok": True,
                    "campaigns": len(self.service.campaigns),
                })
            elif self.path == "/api/stats":
                self._reply(self.service.stats())
            elif self.path == "/api/campaigns":
                with self.service._lock:
                    self._reply({"campaigns": [
                        self.service.campaigns[c].summary()
                        for c in sorted(self.service.campaigns)
                    ]})
            elif self.path.startswith("/api/status/"):
                cid = self.path.rsplit("/", 1)[1]
                self._reply(self.service.status(cid))
            elif self.path.startswith("/api/results/"):
                cid = self.path.rsplit("/", 1)[1]
                self._reply({
                    "cid": cid, "jobs": self.service.results(cid),
                })
            else:
                self._error(404, f"no such resource: {self.path}")
        except KeyError as exc:
            self._error(404, str(exc.args[0]) if exc.args else str(exc))
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            self._error(500, f"{type(exc).__name__}: {exc}")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            if self.path == "/api/submit":
                body = self._body()
                specs = [
                    JobSpec.from_dict(d) for d in body.get("specs", [])
                ]
                cid = self.service.submit(
                    tenant=str(body.get("tenant", "default")),
                    specs=specs,
                    workers=body.get("workers"),
                )
                self._reply({"cid": cid}, code=201)
            elif self.path.startswith("/api/cancel/"):
                cid = self.path.rsplit("/", 1)[1]
                self._reply({
                    "cid": cid, "cancelled": self.service.cancel(cid),
                })
            else:
                self._error(404, f"no such resource: {self.path}")
        except KeyError as exc:
            self._error(404, str(exc.args[0]) if exc.args else str(exc))
        except (TypeError, ValueError) as exc:
            self._error(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            self._error(500, f"{type(exc).__name__}: {exc}")


def build_http_server(service: CampaignService, host: str = "127.0.0.1",
                      port: int = 0) -> ThreadingHTTPServer:
    """A :class:`ThreadingHTTPServer` bound to ``host:port``.

    ``port=0`` binds an ephemeral port (tests); the caller owns the
    server lifecycle (``serve_forever`` / ``shutdown``).
    """
    handler = type(
        "BoundServiceHandler", (_ServiceHandler,), {"service": service}
    )
    return ThreadingHTTPServer((host, port), handler)
