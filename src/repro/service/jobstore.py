"""Crash-safe persistent campaign state for the service.

:class:`JournalJobStore` implements the
:class:`~repro.sched.interfaces.JobStore` protocol as an event journal
on disk::

    <root>/journal.jsonl    one JSON event per line, append + fsync
    <root>/snapshot.json    atomically-replaced fold of older events

``append`` makes each event durable (flush + fsync) before returning,
so after a crash the journal holds every acknowledged transition; at
worst the *final* line is torn mid-write, and ``events`` tolerates
exactly that (appends are sequential, so nothing before the last line
can be torn — an unparseable interior line is real corruption and
raises).  ``compact`` folds the event history into ``snapshot.json``
via temp-file + ``os.replace`` and then truncates the journal, so the
journal stays bounded and the snapshot swap can never leave a
half-written state file.

:class:`ServiceState` is the pure fold of those events into
:class:`CampaignRecord` objects — the daemon replays it on startup and
re-enqueues whatever was in flight (each job's ``job`` event is written
only after its result is cached, so a resumed job either replays from
the full-job cache or genuinely never ran).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.sched.job import JobSpec

__all__ = ["CampaignRecord", "JournalJobStore", "ServiceState"]

#: Campaign states a restart must re-enqueue.
ACTIVE_STATUSES = ("queued", "running")
#: Campaign states that are final.
TERMINAL_STATUSES = ("done", "failed", "cancelled")


@dataclass
class CampaignRecord:
    """One submitted campaign, as folded from the journal."""

    cid: str
    tenant: str
    specs: List[JobSpec]
    workers: int
    fuse: bool = True
    status: str = "queued"
    jobs: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def n_jobs(self) -> int:
        return len({s.key for s in self.specs})

    @property
    def n_done(self) -> int:
        return len(self.jobs)

    def pending_specs(self) -> List[JobSpec]:
        """Unique specs with no durable job outcome yet."""
        pending, seen = [], set()
        for spec in self.specs:
            if spec.key in self.jobs or spec.key in seen:
                continue
            seen.add(spec.key)
            pending.append(spec)
        return pending

    def summary(self) -> Dict[str, Any]:
        return {
            "cid": self.cid,
            "tenant": self.tenant,
            "status": self.status,
            "n_jobs": self.n_jobs,
            "n_done": self.n_done,
            "n_ok": sum(
                1 for j in self.jobs.values()
                if j.get("status") in ("ok", "cached")
            ),
            "workers": self.workers,
        }


class JournalJobStore:
    """Append-only JSONL journal with atomic snapshot compaction."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.root / "journal.jsonl"
        self.snapshot_path = self.root / "snapshot.json"

    # -- the JobStore protocol -----------------------------------------
    def append(self, event: Dict[str, Any]) -> None:
        """Durably append one event (flush + fsync before returning)."""
        line = json.dumps(event, sort_keys=True)
        with self.journal_path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def snapshot(self) -> Optional[Dict[str, Any]]:
        if not self.snapshot_path.is_file():
            return None
        return json.loads(self.snapshot_path.read_text(encoding="utf-8"))

    def events(self) -> Iterator[Dict[str, Any]]:
        """Every durable event: snapshot fold first, then the journal.

        A torn *final* journal line (a crash mid-append) is skipped;
        an unparseable interior line means real corruption and raises.
        """
        snap = self.snapshot()
        if snap is not None:
            yield from snap.get("events", [])
        if not self.journal_path.is_file():
            return
        raw = self.journal_path.read_text(encoding="utf-8")
        lines = raw.splitlines()
        for i, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1 and not raw.endswith("\n"):
                    return  # torn final append; everything before is durable
                raise ValueError(
                    f"corrupt journal line {i + 1} in {self.journal_path}"
                )

    def compact(self, state: Dict[str, Any]) -> None:
        """Atomically fold history into the snapshot, truncate journal."""
        tmp = self.snapshot_path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(state, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.snapshot_path)
        with self.journal_path.open("w", encoding="utf-8") as fh:
            fh.flush()
            os.fsync(fh.fileno())


class ServiceState:
    """The pure fold of journal events into campaign records."""

    def __init__(self) -> None:
        self.campaigns: Dict[str, CampaignRecord] = {}
        self.next_seq = 1

    @classmethod
    def fold(cls, events: Iterator[Dict[str, Any]]) -> "ServiceState":
        state = cls()
        for event in events:
            state.apply(event)
        return state

    def apply(self, event: Dict[str, Any]) -> None:
        etype = event.get("type")
        cid = event.get("cid", "")
        if etype == "submit":
            self.campaigns[cid] = CampaignRecord(
                cid=cid,
                tenant=event.get("tenant", "default"),
                specs=[JobSpec.from_dict(d) for d in event.get("specs", [])],
                workers=int(event.get("workers", 1)),
                fuse=bool(event.get("fuse", True)),
            )
            try:
                self.next_seq = max(self.next_seq, int(cid[1:]) + 1)
            except ValueError:
                pass
            return
        record = self.campaigns.get(cid)
        if record is None:
            return  # event for a campaign compacted away
        if etype == "job":
            record.jobs[event["key"]] = event.get("row", {})
            if record.status == "queued":
                record.status = "running"
        elif etype == "done":
            record.status = event.get("status", "done")
        elif etype == "cancel":
            record.status = "cancelled"

    def to_events(self) -> List[Dict[str, Any]]:
        """Re-serialize the folded state as a minimal event list."""
        events: List[Dict[str, Any]] = []
        for cid in sorted(self.campaigns):
            record = self.campaigns[cid]
            events.append({
                "type": "submit",
                "cid": record.cid,
                "tenant": record.tenant,
                "specs": [s.to_dict() for s in record.specs],
                "workers": record.workers,
                "fuse": record.fuse,
            })
            for key in sorted(record.jobs):
                events.append({
                    "type": "job", "cid": record.cid, "key": key,
                    "row": record.jobs[key],
                })
            if record.status in TERMINAL_STATUSES:
                etype = "cancel" if record.status == "cancelled" else "done"
                events.append({
                    "type": etype, "cid": record.cid,
                    "status": record.status,
                })
        return events
