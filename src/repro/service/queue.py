"""Fair-share weighted queueing across tenants.

Classic stride scheduling: every tenant carries a *virtual time* that
advances by ``cost / weight`` each time one of its items is dispatched,
and the queue always serves the eligible tenant with the lowest virtual
time (ties break on tenant name, so dispatch order is deterministic).
A tenant with weight 2 therefore drains twice as fast as a tenant with
weight 1 under contention, while an uncontended tenant gets the whole
machine.  When an idle tenant becomes active again its virtual time is
clamped up to the minimum active virtual time — it competes fairly from
*now* instead of replaying the service time it never claimed.

The queue holds :class:`QueueItem` envelopes (tenant, campaign id, job
spec, enqueue timestamp); it never looks inside the spec.  All methods
are thread-safe.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["FairShareQueue", "QueueItem"]


@dataclass
class QueueItem:
    """One queued job submission."""

    tenant: str
    cid: str
    spec: Any
    cost: float = 1.0
    enqueued_at: float = 0.0


@dataclass
class _Tenant:
    weight: float = 1.0
    vtime: float = 0.0
    items: Deque[QueueItem] = field(default_factory=deque)


class FairShareQueue:
    """Weighted stride scheduling over per-tenant FIFO queues."""

    def __init__(self, default_weight: float = 1.0):
        if default_weight <= 0:
            raise ValueError("default_weight must be positive")
        self.default_weight = float(default_weight)
        self._tenants: Dict[str, _Tenant] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _tenant(self, name: str) -> _Tenant:
        t = self._tenants.get(name)
        if t is None:
            t = self._tenants[name] = _Tenant(weight=self.default_weight)
        return t

    def set_weight(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ValueError(f"tenant {tenant!r}: weight must be positive")
        with self._lock:
            self._tenant(tenant).weight = float(weight)

    def push(self, item: QueueItem) -> None:
        with self._lock:
            t = self._tenant(item.tenant)
            if not t.items:
                # Re-activating after idle: compete from now, don't
                # monopolize to repay service time never claimed.
                active = [
                    o.vtime for o in self._tenants.values() if o.items
                ]
                if active:
                    t.vtime = max(t.vtime, min(active))
            t.items.append(item)

    def pop(self) -> Optional[QueueItem]:
        """Dispatch the next item, fair-share order; ``None`` if empty."""
        with self._lock:
            eligible = [
                (t.vtime, name, t)
                for name, t in self._tenants.items() if t.items
            ]
            if not eligible:
                return None
            _, _, tenant = min(eligible, key=lambda e: (e[0], e[1]))
            item = tenant.items.popleft()
            tenant.vtime += item.cost / tenant.weight
            return item

    def pop_wave(self, max_items: int) -> List[QueueItem]:
        """Up to ``max_items`` items, fair-share interleaved."""
        wave: List[QueueItem] = []
        while len(wave) < max_items:
            item = self.pop()
            if item is None:
                break
            wave.append(item)
        return wave

    def drop(self, predicate: Callable[[QueueItem], bool]) -> int:
        """Remove every queued item matching ``predicate`` (cancel)."""
        dropped = 0
        with self._lock:
            for t in self._tenants.values():
                kept = deque(i for i in t.items if not predicate(i))
                dropped += len(t.items) - len(kept)
                t.items = kept
        return dropped

    def pending(self) -> Dict[str, int]:
        """Queued item count per tenant (empty tenants omitted)."""
        with self._lock:
            return {
                name: len(t.items)
                for name, t in sorted(self._tenants.items()) if t.items
            }

    def __len__(self) -> int:
        with self._lock:
            return sum(len(t.items) for t in self._tenants.values())
