"""Thin JSON client for the campaign service.

:class:`ServiceClient` wraps the daemon's HTTP API with ``urllib``
(stdlib only).  It speaks spec dicts on the wire —
:meth:`~repro.sched.job.JobSpec.to_dict` out,
journaled job rows back — so the CLI's ``repro campaign run --server``
path submits exactly what the local path would have executed.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.sched.job import JobSpec

__all__ = ["ServiceClient", "ServiceError"]

#: Campaign states the poll loop treats as finished.
TERMINAL = ("done", "failed", "cancelled")


class ServiceError(RuntimeError):
    """The service answered with an error (or not at all)."""

    def __init__(self, message: str, code: Optional[int] = None):
        super().__init__(message)
        self.code = code


class ServiceClient:
    """HTTP client for one :class:`~repro.service.daemon.CampaignService`.

    ``sleep`` / ``clock`` are injectable so tests can poll without wall
    time; ``timeout`` is the per-request socket timeout.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self._sleep = sleep or time.sleep
        self._clock = clock or time.monotonic

    # -- transport ------------------------------------------------------
    def _request(self, path: str, payload: Optional[Dict] = None) -> Dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        req = urllib.request.Request(
            f"{self.base_url}{path}", data=data, headers=headers,
            method="POST" if payload is not None else "GET",
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(exc))
            except Exception:  # noqa: BLE001 - non-JSON error body
                message = str(exc)
            raise ServiceError(message, code=exc.code) from exc
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"campaign service unreachable at {self.base_url}: "
                f"{exc.reason}"
            ) from exc

    # -- API ------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        return self._request("/api/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("/api/stats")

    def campaigns(self) -> List[Dict[str, Any]]:
        return self._request("/api/campaigns")["campaigns"]

    def submit(self, specs: Sequence[Union[JobSpec, Dict]],
               tenant: str = "default",
               workers: Optional[int] = None) -> str:
        """Submit a campaign; returns its id."""
        payload = {
            "tenant": tenant,
            "specs": [
                s.to_dict() if isinstance(s, JobSpec) else dict(s)
                for s in specs
            ],
        }
        if workers is not None:
            payload["workers"] = workers
        return self._request("/api/submit", payload)["cid"]

    def status(self, cid: str) -> Dict[str, Any]:
        return self._request(f"/api/status/{cid}")

    def results(self, cid: str) -> List[Dict[str, Any]]:
        return self._request(f"/api/results/{cid}")["jobs"]

    def cancel(self, cid: str) -> bool:
        return bool(self._request(f"/api/cancel/{cid}", {})["cancelled"])

    def wait(self, cid: str, timeout: float = 300.0,
             poll: float = 0.2) -> Dict[str, Any]:
        """Poll until the campaign reaches a terminal state."""
        deadline = self._clock() + timeout
        while True:
            status = self.status(cid)
            if status.get("status") in TERMINAL:
                return status
            if self._clock() >= deadline:
                raise TimeoutError(
                    f"campaign {cid} still {status.get('status')!r} "
                    f"after {timeout:g}s"
                )
            self._sleep(poll)
