"""Campaign summary reporting.

One :class:`CampaignReport` per run: per-job status (attempts, retries,
cache hits, predicted-vs-observed wall time), the campaign counters,
and the headline predicted-vs-observed makespan from the cost-model
plan versus the observed span stream.  Renders as a fixed-width text
table (CLI) or JSON (machines).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List

from repro.analysis.report import format_table
from repro.sched.cache import ResultCache
from repro.sched.job import JobResult
from repro.sched.planner import CampaignPlan

__all__ = ["CampaignReport", "status_rows"]


@dataclass
class CampaignReport:
    """Outcome of one campaign run."""

    plan: CampaignPlan
    results: List[JobResult]
    observed_makespan_s: float
    counters: Dict[str, float] = field(default_factory=dict)

    # -- aggregates ----------------------------------------------------
    @property
    def predicted_makespan_s(self) -> float:
        return self.plan.predicted_makespan

    @property
    def makespan_error_pct(self) -> float:
        if self.observed_makespan_s <= 0:
            return 0.0
        p, o = self.predicted_makespan_s, self.observed_makespan_s
        return 100.0 * (p - o) / o

    @property
    def n_ok(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def n_failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    @property
    def cache_hits(self) -> int:
        return sum(1 for r in self.results if r.from_cache)

    @property
    def total_retries(self) -> int:
        return sum(r.retries for r in self.results)

    @property
    def complete(self) -> bool:
        """Every planned job ended in a usable result."""
        return self.n_failed == 0 and len(self.results) == self.plan.n_jobs

    # -- rendering -----------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        return [r.summary_row() for r in self.results]

    def to_dict(self) -> Dict[str, object]:
        out = {
            "workers": self.plan.workers,
            "n_jobs": self.plan.n_jobs,
            "n_duplicates": self.plan.n_duplicates,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "cache_hits": self.cache_hits,
            "retries": self.total_retries,
            "predicted_makespan_s": round(self.predicted_makespan_s, 4),
            "observed_makespan_s": round(self.observed_makespan_s, 4),
            "makespan_error_pct": round(self.makespan_error_pct, 2),
            "complete": self.complete,
            "counters": self.counters,
            "jobs": self.rows(),
        }
        if self.plan.tuning is not None:
            out["tuning"] = self.plan.tuning
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        header = ["key", "job", "status", "attempts", "retries", "cached",
                  "predicted s", "wall s"]
        rows = [
            [r["key"], r["job"], r["status"], r["attempts"], r["retries"],
             "yes" if r["cached"] else
             ("science" if r["science_cached"] else "no"),
             r["predicted_s"], r["wall_s"]]
            for r in self.rows()
        ]
        lines = [format_table(header, rows)] if rows else ["(empty campaign)"]
        lines.append("")
        lines.append(
            f"jobs: {self.n_ok} ok, {self.n_failed} failed "
            f"({self.plan.n_duplicates} duplicates deduped, "
            f"{self.cache_hits} cache hits, {self.total_retries} retries)"
        )
        lines.append(
            f"makespan: predicted {self.predicted_makespan_s:.3f}s, "
            f"observed {self.observed_makespan_s:.3f}s "
            f"({self.makespan_error_pct:+.1f}% error) "
            f"on {self.plan.workers} workers"
        )
        return "\n".join(lines)


def status_rows(cache: ResultCache) -> List[Dict[str, object]]:
    """Stored job entries of a cache, for ``repro campaign status``."""
    from repro.sched.job import JobSpec

    rows = []
    for payload in cache.iter_jobs():
        spec = payload.get("spec", {})
        try:
            key = JobSpec.from_dict(spec).key
        except (TypeError, ValueError):
            key = payload.get("science_key", "")
        rows.append({
            "key": key[:12],
            "dataset": spec.get("dataset", "?"),
            "hours": spec.get("hours", "?"),
            "variant": spec.get("variant", "?"),
            "machine": spec.get("machine", ""),
            "nprocs": spec.get("nprocs", ""),
            "status": payload.get("status", "?"),
            "sha256": payload.get("final_conc_sha256", "")[:12],
        })
    return rows
