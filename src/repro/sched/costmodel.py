"""Pricing campaign jobs with the Section 4 performance model.

The planner needs two numbers per job before anything runs:

* ``wall_s`` — predicted wall-clock seconds to *execute* the job on
  this host.  Executing means running the real Python numerics
  (sequential, dominated by chemistry) plus, for parallel variants, a
  cheap replay of the recorded workload.  The science part is a
  Section-4 prediction of an
  :func:`~repro.perfmodel.estimate.estimated_trace` on the
  :func:`~repro.vm.machine.workstation_spec` host profile at P=1 —
  the same ``T_par = T_seq / min(parallelism, P)`` machinery, pointed
  at the machine that actually does the work;
* ``sim_s`` — predicted *simulated* seconds on the job's target
  machine/P, the number the paper's tables report.  Pure bookkeeping
  for the plan output, but free once the estimated trace exists.

Jobs sharing a science key share one expensive numerics run (the
runner caches it), so the model charges the science cost once per
science key and a replay-only cost to the rest; a cache-aware model
(constructed with the campaign's cache) charges nothing for science
that is already stored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.analyze.programs import DATASET_SHAPES
from repro.perfmodel.estimate import estimated_trace
from repro.perfmodel.intranode import chemistry_fraction, intra_job_speedup
from repro.perfmodel.predict import PerformancePredictor
from repro.sched.cache import ResultCache
from repro.sched.job import JobResult, JobSpec
from repro.vm.machine import (
    HOST_OPS_PER_SECOND,
    MachineSpec,
    get_machine,
    workstation_spec,
)

__all__ = ["PredictedJobCost", "CampaignCostModel"]

#: Wall overhead of replaying a recorded workload on the simulated
#: machine: per main-loop step plus a fixed layout/plan setup cost.
REPLAY_WALL_PER_STEP = 2e-3
REPLAY_WALL_BASE = 0.05

#: Wall fraction of the *chemistry* phase that an additional member of
#: a batched ensemble sweep costs, relative to running it alone.  The
#: batched solver amortises the adaptive loop's fixed per-iteration
#: overhead (gather/scatter setup, mask bookkeeping, kernel dispatch)
#: across members while the per-point arithmetic still scales with
#: member count, so the marginal member pays roughly this share
#: (measured in ``benchmarks/perf``; see ``docs/SCHEDULER.md``).
#: Non-chemistry phases (transport application, aerosol, I/O packing)
#: run per member and are charged in full.
ENSEMBLE_MARGINAL_CHEMISTRY = 0.3

#: Known (species, layers, points) shapes, shared with the static
#: analyzer so pricing a job never materialises a shipped dataset;
#: unknown (registered) datasets are materialised once and memoized.
_SHAPE_CACHE: Dict[str, Tuple[int, int, int]] = dict(DATASET_SHAPES)


def _dataset_shape(name: str) -> Tuple[int, int, int]:
    if name not in _SHAPE_CACHE:
        from repro.datasets.registry import get_dataset

        _SHAPE_CACHE[name] = get_dataset(name).shape
    return _SHAPE_CACHE[name]


@dataclass(frozen=True)
class PredictedJobCost:
    """The cost model's answer for one job."""

    wall_s: float        # predicted wall-clock to execute here
    science_s: float     # wall share of the sequential numerics
    replay_s: float      # wall share of the simulated replay
    sim_s: float         # predicted simulated seconds on the target

    @property
    def replay_only(self) -> bool:
        return self.science_s == 0.0


class CampaignCostModel:
    """Price jobs for planning; optionally cache-aware.

    ``ops_per_second`` is the host's abstract-op throughput
    (:data:`~repro.vm.machine.HOST_OPS_PER_SECOND` by default);
    :meth:`calibrated` refits it from observed job runtimes, closing
    the predict -> observe -> recalibrate loop of the paper's
    methodology at the campaign level.
    """

    def __init__(
        self,
        ops_per_second: float = HOST_OPS_PER_SECOND,
        cache: Optional[ResultCache] = None,
        steps_per_hour: int = 5,
        machine_overrides: Optional[Dict[str, MachineSpec]] = None,
        tile_fraction: Optional[float] = None,
    ):
        if ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        self.ops_per_second = float(ops_per_second)
        self.cache = cache
        self.steps_per_hour = int(steps_per_hour)
        #: Calibrated machine profiles (``repro.tune``) keyed by short
        #: name; missing names fall back to the paper constants.
        self.machine_overrides = dict(machine_overrides or {})
        #: Refit effective tiled fraction f*e; ``None`` keeps the
        #: per-trace ``chemistry_fraction * TILE_EFFICIENCY`` path.
        self.tile_fraction = tile_fraction
        self._host = workstation_spec(self.ops_per_second)

    def _machine(self, name: str) -> MachineSpec:
        override = self.machine_overrides.get(name)
        return override if override is not None else get_machine(name)

    # ------------------------------------------------------------------
    def _trace(self, spec: JobSpec):
        return estimated_trace(
            _dataset_shape(spec.dataset),
            hours=spec.hours,
            start_hour=spec.start_hour,
            steps_per_hour=self.steps_per_hour,
            dataset_name=spec.dataset,
        )

    def science_seconds(self, spec: JobSpec) -> float:
        """Predicted wall seconds of the sequential numerics.

        ``spec.cores_per_job > 1`` divides the single-core prediction
        by the Amdahl intra-job speedup of the tiled chemistry engine
        (:func:`repro.perfmodel.intranode.intra_job_speedup`): only the
        trace's chemistry fraction tiles, everything else stays serial.
        """
        trace = self._trace(spec)
        base = PerformancePredictor(trace, self._host).predict_total(1)
        if spec.cores_per_job <= 1:
            return base
        if self.tile_fraction is not None:
            # Calibrated Amdahl: the refit f*e replaces the per-trace
            # chemistry_fraction * TILE_EFFICIENCY estimate.
            c = spec.cores_per_job
            fe = min(max(self.tile_fraction, 0.0), 1.0)
            return base * ((1.0 - fe) + fe / c)
        return base / intra_job_speedup(
            spec.cores_per_job, chemistry_fraction(trace)
        )

    def marginal_science_seconds(self, spec: JobSpec) -> float:
        """Predicted wall seconds one *extra* batched member adds.

        The §4 trace decomposition prices the fused sweep: the member's
        chemistry share shrinks to :data:`ENSEMBLE_MARGINAL_CHEMISTRY`
        of its standalone cost (amortised adaptive-loop overhead), and
        every other phase — applied per member even in a batch — is
        charged in full.
        """
        trace = self._trace(spec)
        phases = trace.total_ops_by_phase()
        total = sum(phases.values())
        chem_frac = phases["chemistry"] / total if total > 0 else 0.0
        full = self.science_seconds(spec)
        return full * (1.0 - chem_frac * (1.0 - ENSEMBLE_MARGINAL_CHEMISTRY))

    def predict(
        self,
        spec: JobSpec,
        science_charged: bool = True,
        fused_member: bool = False,
    ) -> PredictedJobCost:
        """Price one job.

        ``science_charged=False`` marks a job whose science run is paid
        by an earlier job in the same campaign (shared science key);
        a cache-aware model also waives science that is already stored.
        ``fused_member`` marks a job whose science runs as an
        additional member of a batched ensemble sweep, priced at the
        marginal batched cost instead of the standalone cost.
        """
        if science_charged and self.cache is not None:
            if self.cache.get_science(spec.science_key) is not None:
                science_charged = False
        if not science_charged:
            science_s = 0.0
        elif fused_member:
            science_s = self.marginal_science_seconds(spec)
        else:
            science_s = self.science_seconds(spec)
        if spec.variant == "sequential":
            replay_s = 0.0
            sim_s = 0.0
        else:
            trace = self._trace(spec)
            steps = trace.total_steps()
            replay_s = REPLAY_WALL_BASE + REPLAY_WALL_PER_STEP * steps
            sim_s = PerformancePredictor(
                trace, self._machine(spec.machine)
            ).predict_total(spec.nprocs)
        return PredictedJobCost(
            wall_s=science_s + replay_s,
            science_s=science_s,
            replay_s=replay_s,
            sim_s=sim_s,
        )

    # ------------------------------------------------------------------
    def calibrated(self, results: Iterable[JobResult]) -> "CampaignCostModel":
        """Refit the host rate from executed (non-cached) job results.

        Each observed job contributes ``predicted_ops / wall_s``; the
        median becomes the new rate.  Results that did no science work
        (cache hits, failures) are ignored.  Returns ``self`` when
        nothing usable was observed.
        """
        rates = []
        for r in results:
            if not r.ok or r.from_cache or r.science_cached or r.wall_s <= 0:
                continue
            ops = self.science_seconds(r.spec) * self.ops_per_second
            rates.append(ops / r.wall_s)
        if not rates:
            return self
        rates.sort()
        new_rate = rates[len(rates) // 2]
        return CampaignCostModel(
            ops_per_second=new_rate,
            cache=self.cache,
            steps_per_hour=self.steps_per_hour,
            machine_overrides=self.machine_overrides,
            tile_fraction=self.tile_fraction,
        )
