"""Sweep generators: the campaign shapes the paper's studies need.

Each generator expands one study design into a list of
:class:`~repro.sched.job.JobSpec`:

* :func:`machine_grid` — the Figure 2 machine-comparison study, one job
  per (machine, node count);
* :func:`scaling_ladder` — a P-scaling ladder on one machine (the
  speedup curves of Section 4);
* :func:`ensemble_sweep` — the members of an
  :class:`~repro.model.ensemble.EmissionEnsemble`, one perturbed
  inventory per member, as independently schedulable (and cacheable)
  jobs.

All jobs produced from the same (dataset, hours) share a science key,
so the planner chains them onto one worker and the numerics run once
per distinct scenario.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.sched.job import JobSpec

__all__ = [
    "machine_grid", "scaling_ladder", "ensemble_sweep", "ensemble_batches",
]


def machine_grid(
    dataset: str = "la",
    machines: Sequence[str] = ("t3e", "t3d", "paragon"),
    node_counts: Sequence[int] = (16, 64),
    hours: int = 2,
    start_hour: int = 6,
    variant: str = "data",
    io_nodes: int = 1,
) -> List[JobSpec]:
    """One job per (machine, P): the machine-comparison study."""
    return [
        JobSpec(
            dataset=dataset, hours=hours, start_hour=start_hour,
            variant=variant, machine=m, nprocs=p, io_nodes=io_nodes,
            tag=f"{dataset}:{m}/{p}",
        )
        for m in machines
        for p in node_counts
    ]


def scaling_ladder(
    dataset: str = "la",
    machine: str = "t3e",
    node_counts: Sequence[int] = (1, 2, 4, 8, 16, 32, 64),
    hours: int = 2,
    start_hour: int = 6,
    variant: str = "data",
    io_nodes: int = 1,
) -> List[JobSpec]:
    """One job per node count on one machine: a speedup ladder."""
    return [
        JobSpec(
            dataset=dataset, hours=hours, start_hour=start_hour,
            variant=variant, machine=machine, nprocs=p, io_nodes=io_nodes,
            tag=f"{dataset}:{machine}/P{p}",
        )
        for p in node_counts
    ]


def ensemble_sweep(
    dataset: str = "la",
    members: int = 8,
    sigma: float = 0.3,
    seed: int = 0,
    hours: int = 2,
    start_hour: int = 6,
    variant: str = "sequential",
    machine: str = "t3e",
    nprocs: int = 64,
    io_nodes: int = 1,
) -> List[JobSpec]:
    """The emission-uncertainty ensemble as independent jobs.

    Member seeds follow :class:`~repro.model.ensemble.EmissionEnsemble`
    (``seed * 7919 + index``), so a campaign-run ensemble reproduces
    the in-process one member for member.
    """
    if members < 1:
        raise ValueError("members must be >= 1")
    return [
        JobSpec(
            dataset=dataset, hours=hours, start_hour=start_hour,
            variant=variant, machine=machine, nprocs=nprocs,
            io_nodes=io_nodes,
            perturb_seed=seed * 7919 + i, perturb_sigma=sigma,
            tag=f"{dataset}:member{i}",
        )
        for i in range(members)
    ]


def ensemble_batches(specs: Sequence[JobSpec]) -> Dict[str, List[JobSpec]]:
    """Group specs into batchable ensemble member sets.

    Returns ``ensemble_key -> members`` for every group of two or more
    specs that share an :attr:`~repro.sched.job.JobSpec.ensemble_key`
    but have distinct member seeds — exactly the sets whose sequential
    numerics :func:`repro.model.batched.run_batched` can fuse into one
    sweep with bitwise-identical per-member results.  Members are
    ordered deterministically by ``(perturb_seed, key)``; specs sharing
    a science key are collapsed to one representative (their science is
    one cache entry regardless of execution configuration).
    """
    by_ensemble: Dict[str, Dict[str, JobSpec]] = {}
    for spec in specs:
        ek = spec.ensemble_key
        if ek is None:
            continue
        by_ensemble.setdefault(ek, {}).setdefault(spec.science_key, spec)
    return {
        ek: sorted(members.values(), key=lambda s: (s.perturb_seed, s.key))
        for ek, members in sorted(by_ensemble.items())
        if len(members) >= 2
    }
