"""Deterministic fault injection for exercising campaign failure paths.

Real campaigns see workers die and jobs wedge; tests need those paths
without flaky timing.  A :class:`FaultPolicy` deterministically selects
jobs — by explicit key or by a seeded hash fraction — and makes each
selected job misbehave **once** (on its first attempt), either by
raising :class:`InjectedFault` or by hanging, so retry, timeout and
backoff handling are exercised and the retry then succeeds.

Selection is a pure function of ``(seed, job key)``: the same campaign
with the same policy faults the same jobs on every machine, and the
policy is a plain picklable dataclass so process-pool workers apply it
identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

__all__ = ["FaultPolicy", "InjectedFault", "InjectedHang"]


class InjectedFault(RuntimeError):
    """Raised by a job selected for a ``raise`` fault."""


class InjectedHang(RuntimeError):
    """Raised where an in-process executor simulates a wedged job.

    Thread and inline executors cannot kill a genuinely spinning job,
    so a ``hang`` fault surfaces as this exception at the fault point
    and the runner handles it through its timeout path.  The process
    executor really does hang (and gets terminated).
    """


@dataclass(frozen=True)
class FaultPolicy:
    """Seeded, deterministic selection of jobs to fault once.

    Parameters
    ----------
    seed:
        Namespace for the hash-fraction selection.
    fraction:
        Fault this fraction of job keys (hash-uniform in [0, 1)).
    keys:
        Explicitly faulted job keys (full keys or unambiguous prefixes
        work; matching is by prefix).
    mode:
        ``"raise"`` (default) or ``"hang"``.
    after_hours:
        The fault fires after this many simulated hours complete, so a
        checkpoint exists and the retry exercises resume (0 faults the
        job before any work).
    """

    seed: int = 0
    fraction: float = 0.0
    keys: Tuple[str, ...] = field(default_factory=tuple)
    mode: str = "raise"
    after_hours: int = 1

    def __post_init__(self) -> None:
        if not (0.0 <= self.fraction <= 1.0):
            raise ValueError("fraction must lie in [0, 1]")
        if self.mode not in ("raise", "hang"):
            raise ValueError('mode must be "raise" or "hang"')
        if self.after_hours < 0:
            raise ValueError("after_hours must be non-negative")

    def selects(self, key: str) -> bool:
        """Whether this policy faults the job with content hash ``key``."""
        if any(key.startswith(k) for k in self.keys if k):
            return True
        if self.fraction <= 0.0:
            return False
        h = hashlib.sha256(f"{self.seed}:{key}".encode()).digest()
        u = int.from_bytes(h[:8], "big") / 2**64
        return u < self.fraction

    def action(self, key: str, attempt: int) -> Optional[str]:
        """The fault to apply on this attempt (``None`` for none).

        Faults fire once: only on attempt 0.
        """
        if attempt == 0 and self.selects(key):
            return self.mode
        return None

    @staticmethod
    def pick(keys: Sequence[str], n: int, seed: int = 0,
             mode: str = "raise", after_hours: int = 1) -> "FaultPolicy":
        """A policy faulting a deterministic choice of ``n`` of ``keys``.

        Keys are ranked by ``sha256(seed:key)`` — stable across runs and
        independent of submission order.
        """
        if n < 0:
            raise ValueError("n must be non-negative")
        ranked = sorted(
            set(keys),
            key=lambda k: hashlib.sha256(f"{seed}:{k}".encode()).hexdigest(),
        )
        return FaultPolicy(seed=seed, keys=tuple(ranked[:n]), mode=mode,
                           after_hours=after_hours)
