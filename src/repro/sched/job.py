"""Campaign job descriptions and their content-addressed identity.

A :class:`JobSpec` is the unit of campaign work: one simulation
scenario (dataset, hours, emission perturbation) evaluated under one
execution configuration (machine profile, node count, model variant).
Its identity is a **content hash** over the fields that determine the
outputs, so

* resubmitting the same spec hits the result cache,
* duplicate specs inside one campaign collapse to a single execution,
* presentation-only fields (``tag``) never fragment the cache.

Two hash scopes matter.  The *science* of a job — the sequential
numerics producing the :class:`~repro.model.results.AirshedResult` —
depends only on (dataset, hours, start_hour, scenario), not on which
simulated machine the trace is later replayed on.  ``science_key``
hashes exactly that subset, so a machine-comparison grid over M
machines and N node counts runs the expensive numerics once and replays
them M*N times.  ``key`` additionally hashes the execution
configuration and names the full job result.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from repro.model.dataparallel import ParallelTiming

__all__ = ["JobSpec", "JobResult", "VARIANTS", "JOB_STATUSES"]

#: Execution variants a job can request.  ``sequential`` is the pure
#: science run; ``data`` / ``task`` additionally replay the recorded
#: workload on the simulated machine (Sections 2.2 and 5).
VARIANTS = ("sequential", "data", "task")

#: Terminal states a job can end a campaign in.
JOB_STATUSES = ("ok", "cached", "failed", "timeout")

_SCIENCE_FIELDS = (
    "dataset",
    "hours",
    "start_hour",
    "perturb_seed",
    "perturb_sigma",
)
_EXEC_FIELDS = ("variant", "machine", "nprocs", "io_nodes")

# Every dataclass field must appear in _SCIENCE_FIELDS, _EXEC_FIELDS or
# the class's PRESENTATION_FIELDS — the FX040 key-drift verifier
# (repro.analyze.campaign) introspects live instances to enforce it, so
# a new physics field that is not hashed fails `repro lint --campaign`.


@dataclass(frozen=True)
class JobSpec:
    """One campaign job.

    Parameters
    ----------
    dataset:
        Registered dataset name (:mod:`repro.datasets.registry`).
    hours / start_hour:
        Simulated episode length and local start hour.
    variant:
        ``sequential`` | ``data`` | ``task`` (see :data:`VARIANTS`).
    machine / nprocs / io_nodes:
        Replay configuration for the parallel variants; ignored by
        ``sequential`` jobs and excluded from their content hash.
    perturb_seed / perturb_sigma:
        When ``perturb_seed`` is not ``None``, the job runs a
        :class:`~repro.model.ensemble.PerturbedDataset` member with a
        log-normal emission perturbation — the ensemble-sweep scenario.
    cores_per_job:
        Worker-pool width handed to the job's tiled chemistry engine
        (:mod:`repro.model.tiled`).  Results are bitwise identical at
        every core count — the tiling is a wall-clock knob — so this is
        a presentation/placement field, never hashed: resubmitting a
        cached job with a different core count must stay a cache hit.
    tag:
        Free-form label for reports; never hashed.
    """

    #: Fields that are presentation-only by design: excluded from the
    #: content hash AND exempt from the FX040 drift check.  Subclasses
    #: adding cosmetic fields must extend this tuple.  ``cores_per_job``
    #: qualifies because tiled chemistry is bitwise-invariant in the
    #: worker count (pinned by tests/chemistry/test_tiled.py).
    PRESENTATION_FIELDS = ("tag", "cores_per_job")

    dataset: str = "demo"
    hours: int = 2
    start_hour: int = 6
    variant: str = "data"
    machine: str = "t3e"
    nprocs: int = 64
    io_nodes: int = 1
    perturb_seed: Optional[int] = None
    perturb_sigma: float = 0.0
    cores_per_job: int = 1
    tag: str = ""

    def __post_init__(self) -> None:
        if self.hours < 1:
            raise ValueError("hours must be >= 1")
        if self.cores_per_job < 1:
            raise ValueError("cores_per_job must be >= 1")
        if self.variant not in VARIANTS:
            raise ValueError(
                f"unknown variant {self.variant!r}; choose from {VARIANTS}"
            )
        if self.variant != "sequential" and self.nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if self.perturb_sigma < 0:
            raise ValueError("perturb_sigma must be non-negative")

    # -- identity ------------------------------------------------------
    def science_fields(self) -> Dict[str, Any]:
        d = asdict(self)
        return {k: d[k] for k in _SCIENCE_FIELDS}

    def exec_fields(self) -> Dict[str, Any]:
        d = asdict(self)
        out = {k: d[k] for k in _EXEC_FIELDS}
        if self.variant == "sequential":
            # Machine/node choices don't affect a sequential job.
            out.update(machine="", nprocs=0, io_nodes=0)
        return out

    @property
    def science_key(self) -> str:
        """Content hash of the fields determining the science output."""
        return _digest(self.science_fields())

    @property
    def key(self) -> str:
        """Content hash naming the full job (science + execution)."""
        return _digest({**self.science_fields(), **self.exec_fields()})

    @property
    def ensemble_key(self) -> Optional[str]:
        """Content hash of the science fields minus the member seed.

        Two jobs with the same ``ensemble_key`` are members of one
        emission ensemble: identical base dataset, episode window and
        perturbation width, differing only in ``perturb_seed``.  Their
        sequential numerics can then run as one batched sweep
        (:func:`repro.model.batched.run_batched`) with bitwise-identical
        per-member results — which is why the planner may fuse them
        without touching cache semantics.  ``None`` for unperturbed
        jobs: a lone deterministic run has nothing to fuse with.
        """
        if self.perturb_seed is None:
            return None
        fields = self.science_fields()
        fields.pop("perturb_seed")
        return _digest(fields)

    # -- presentation --------------------------------------------------
    @property
    def label(self) -> str:
        """Human-readable one-liner for plans and reports."""
        if self.tag:
            return self.tag
        parts = [self.dataset, f"{self.hours}h", self.variant]
        if self.variant != "sequential":
            parts.append(f"{self.machine}/{self.nprocs}")
        if self.perturb_seed is not None:
            parts.append(f"member{self.perturb_seed}")
        if self.cores_per_job > 1:
            parts.append(f"{self.cores_per_job}c")
        return ":".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "JobSpec":
        return cls(**d)


def _digest(fields: Dict[str, Any]) -> str:
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(payload.encode()).hexdigest()
    if os.environ.get("REPRO_SANITIZE"):
        # Sanitizer mode: shim every hash input through the stability
        # checks (insertion order, JSON round-trip, cross-process
        # ledger).  Imported lazily — the analyze package must not load
        # on the hot path, and importing it here at module scope would
        # be circular (analyze.campaign imports this module).
        from repro.analyze.sanitize import check_digest

        check_digest(fields, payload, digest)
    return digest


@dataclass
class JobResult:
    """Terminal record of one campaign job.

    ``result`` is the science output (``None`` when the job failed);
    ``timing`` is the simulated-machine replay summary for parallel
    variants.  ``attempts`` counts executions actually started (0 for a
    pure cache hit); ``backoffs`` records the deterministic retry delays
    that were charged.
    """

    spec: JobSpec
    status: str
    result: Optional[Any] = None          # AirshedResult
    timing: Optional[ParallelTiming] = None
    attempts: int = 0
    retries: int = 0
    from_cache: bool = False
    science_cached: bool = False
    wall_s: float = 0.0
    predicted_s: float = 0.0
    error: str = ""
    backoffs: list = field(default_factory=list)

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")

    def final_conc_sha256(self) -> Optional[str]:
        if self.result is None:
            return None
        return hashlib.sha256(self.result.final_conc.tobytes()).hexdigest()

    def summary_row(self) -> Dict[str, Any]:
        """Flat dict for report tables and JSON output."""
        return {
            "key": self.spec.key[:12],
            "job": self.spec.label,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "cached": self.from_cache,
            "science_cached": self.science_cached,
            "predicted_s": round(self.predicted_s, 4),
            "wall_s": round(self.wall_s, 4),
            "sha256": self.final_conc_sha256(),
            "error": self.error,
        }
