"""Default :class:`~repro.sched.interfaces.Executor` implementations.

One attempt of one job — science (cached or run) plus replay — can
execute three ways, unchanged from the original runner:

* :class:`ThreadExecutor` (``thread``) — in the calling process;
  independent chains dispatch onto pool threads; the per-attempt
  deadline is checked cooperatively at checkpoint boundaries;
* :class:`InlineExecutor` (``inline``) — same in-process attempt, but
  chains run deterministically in plan order on the calling thread;
* :class:`ProcessExecutor` (``process``) — each attempt in a child
  process the timeout can really kill (``Process.join(timeout)``).

:func:`execute_job` / :func:`execute_science` are the executor-agnostic
attempt bodies (checkpointed science chunks, fault points, replay);
they are what both the in-process executors and the child-process entry
point call, so every executor produces bitwise-identical results.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.datasets.registry import get_dataset
from repro.model.checkpoint import load_checkpoint, resume_config, save_checkpoint
from repro.model.config import AirshedConfig
from repro.model.dataparallel import replay_data_parallel
from repro.model.ensemble import PerturbedDataset
from repro.model.results import AirshedResult, concat_results
from repro.model.sequential import SequentialAirshed
from repro.model.taskparallel import replay_task_parallel
from repro.sched.faults import FaultPolicy, InjectedFault, InjectedHang
from repro.sched.interfaces import AttemptEnv, AttemptOutcome, Executor
from repro.sched.job import JobSpec
from repro.vm.machine import get_machine

__all__ = [
    "EXECUTORS",
    "InlineExecutor",
    "JobTimeoutError",
    "ProcessExecutor",
    "ThreadExecutor",
    "build_executor",
    "execute_job",
    "execute_science",
]

#: The built-in executor names, in CLI order.
EXECUTORS = ("thread", "process", "inline")


class JobTimeoutError(RuntimeError):
    """An attempt exceeded its per-job timeout."""


# ---------------------------------------------------------------------------
# job execution (runs in a worker thread or a child process)
# ---------------------------------------------------------------------------
def _build_dataset(spec: JobSpec):
    dataset = get_dataset(spec.dataset)
    if spec.perturb_seed is not None:
        dataset = PerturbedDataset(
            dataset, member_seed=spec.perturb_seed, sigma=spec.perturb_sigma
        )
    return dataset


def _load_scratch(cache, science_key: str):
    """Completed chunks of an interrupted science run, oldest first."""
    scratch = cache.scratch_dir(science_key)
    parts: List[AirshedResult] = []
    checkpoint = None
    idx = 0
    while True:
        part_path = scratch / f"part_{idx:03d}.pkl"
        ck_path = scratch / f"ck_{idx:03d}.npz"
        if not (part_path.is_file() and ck_path.is_file()):
            break
        try:
            with part_path.open("rb") as fh:
                part = pickle.load(fh)
            checkpoint = load_checkpoint(ck_path)
        except Exception:
            break  # unreadable chunk: resume up to the last good one
        parts.append(part)
        idx += 1
    return parts, checkpoint, scratch


def execute_science(
    spec: JobSpec,
    cache,
    fault_point: Callable[[int], None],
    check_time: Callable[[], None],
    checkpoint_hours: int = 1,
    on_hours: Optional[Callable[[int], None]] = None,
) -> AirshedResult:
    """Run (or resume) the sequential numerics of one science key.

    The run advances in chunks of ``checkpoint_hours``; after each
    chunk the chunk result and a :mod:`repro.model.checkpoint` land in
    the cache's scratch area, so a retry resumes instead of restarting.
    ``fault_point(hours_completed)`` is called at every chunk boundary
    (fault injection); ``check_time()`` enforces the cooperative
    deadline.  On success the joined result is cached and the scratch
    cleared.
    """
    if checkpoint_hours < 1:
        raise ValueError("checkpoint_hours must be >= 1")
    dataset = _build_dataset(spec)
    # cores_per_job widens the tiled chemistry pool; bitwise-invariant,
    # so cached results stay valid across core counts.
    full_cfg = AirshedConfig(
        dataset=dataset, hours=spec.hours, start_hour=spec.start_hour,
        chem_workers=spec.cores_per_job,
    )
    parts, checkpoint, scratch = _load_scratch(cache, spec.science_key)
    hours_done = checkpoint.hours_completed if checkpoint else 0

    while hours_done < spec.hours:
        check_time()
        fault_point(hours_done)
        chunk = min(checkpoint_hours, spec.hours - hours_done)
        if hours_done == 0:
            cfg = replace(full_cfg, hours=chunk)
        else:
            cfg = replace(resume_config(full_cfg, checkpoint), hours=chunk)
        part = SequentialAirshed(cfg).run()
        idx = len(parts)
        with (scratch / f"part_{idx:03d}.pkl").open("wb") as fh:
            pickle.dump(part, fh, protocol=pickle.HIGHEST_PROTOCOL)
        checkpoint = save_checkpoint(
            replace(full_cfg, hours=hours_done + chunk),
            part,
            scratch / f"ck_{idx:03d}.npz",
        )
        parts.append(part)
        hours_done += chunk
        if on_hours is not None:
            on_hours(chunk)
    fault_point(hours_done)

    result = concat_results(parts)
    cache.put_science(spec.science_key, result)
    cache.clear_scratch(spec.science_key)
    return result


def execute_job(
    spec: JobSpec,
    cache,
    policy: Optional[FaultPolicy] = None,
    attempt: int = 0,
    checkpoint_hours: int = 1,
    check_time: Optional[Callable[[], None]] = None,
    hang: Optional[Callable[[], None]] = None,
    on_hours: Optional[Callable[[int], None]] = None,
) -> Tuple[AirshedResult, Optional[object], bool]:
    """One attempt at one job: science (cached or run) plus replay.

    Returns ``(science result, replay timing or None, science_cached)``.
    Raises whatever the attempt died of — an injected fault, a
    simulated hang, a cooperative timeout, or a real error.
    """
    if check_time is None:
        check_time = lambda: None  # noqa: E731

    def fault_point(hours_completed: int) -> None:
        action = policy.action(spec.key, attempt) if policy else None
        if action is None or hours_completed < policy.after_hours:
            return
        if action == "raise":
            raise InjectedFault(
                f"injected fault in {spec.label} after {hours_completed}h"
            )
        if hang is not None:
            hang()
        raise InjectedHang(f"injected hang in {spec.label}")

    science = cache.get_science(spec.science_key)
    science_cached = science is not None
    if science_cached:
        fault_point(spec.hours)  # replay-only jobs still get their fault
    else:
        science = execute_science(
            spec, cache, fault_point, check_time,
            checkpoint_hours=checkpoint_hours, on_hours=on_hours,
        )

    check_time()
    if spec.variant == "data":
        timing = replay_data_parallel(
            science.trace, get_machine(spec.machine), spec.nprocs
        )
    elif spec.variant == "task":
        timing = replay_task_parallel(
            science.trace, get_machine(spec.machine), spec.nprocs,
            io_nodes=spec.io_nodes,
        )
    else:
        timing = None
    return science, timing, science_cached


def _process_entry(
    spec_dict: Dict,
    cache,
    policy: Optional[FaultPolicy],
    attempt: int,
    checkpoint_hours: int,
    out_path: str,
) -> None:
    """Child-process attempt: run the job, pickle the outcome.

    ``cache`` is the parent's result store, shipped whole (stores are
    picklable) so a sharded store keeps its exact layout in the child.
    """
    spec = JobSpec.from_dict(spec_dict)
    stats = {"sim_hours": 0}

    def on_hours(h: int) -> None:
        stats["sim_hours"] += h

    def hang() -> None:  # a genuinely wedged worker; the parent kills us
        while True:
            time.sleep(0.05)

    try:
        _, timing, science_cached = execute_job(
            spec, cache, policy=policy, attempt=attempt,
            checkpoint_hours=checkpoint_hours, hang=hang, on_hours=on_hours,
        )
        payload = {
            "ok": True,
            "timing": timing,
            "science_cached": science_cached,
            "stats": stats,
        }
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        payload = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "stats": stats,
        }
    tmp = f"{out_path}.tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    Path(tmp).replace(out_path)


# ---------------------------------------------------------------------------
# the executors
# ---------------------------------------------------------------------------
class _InProcessExecutor:
    """Shared attempt body for the thread and inline executors."""

    name = "thread"
    concurrent = True

    def run_attempt(self, spec: JobSpec, attempt: int,
                    env: AttemptEnv) -> AttemptOutcome:
        deadline = (
            None if env.timeout is None else env.clock() + env.timeout
        )

        def check_time() -> None:
            if deadline is not None and env.clock() > deadline:
                raise JobTimeoutError(
                    f"{spec.label} exceeded {env.timeout:g}s"
                )

        def on_hours(h: int) -> None:
            env.count("campaign:sim_hours", h)

        return execute_job(
            spec, env.cache, policy=env.fault_policy, attempt=attempt,
            checkpoint_hours=env.checkpoint_hours, check_time=check_time,
            hang=None, on_hours=on_hours,
        )


class ThreadExecutor(_InProcessExecutor):
    """In-process attempts; chains dispatch onto pool threads."""


class InlineExecutor(_InProcessExecutor):
    """In-process attempts; chains run in plan order, one thread."""

    name = "inline"
    concurrent = False


class ProcessExecutor:
    """Each attempt in a child process a timeout can really kill."""

    name = "process"
    concurrent = True

    def run_attempt(self, spec: JobSpec, attempt: int,
                    env: AttemptEnv) -> AttemptOutcome:
        import multiprocessing

        out_dir = env.cache.root / "scratch"
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / f"attempt-{spec.key[:16]}-{attempt}.pkl"
        out_path.unlink(missing_ok=True)
        proc = multiprocessing.Process(
            target=_process_entry,
            args=(spec.to_dict(), env.cache, env.fault_policy,
                  attempt, env.checkpoint_hours, str(out_path)),
        )
        proc.start()
        proc.join(env.timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join()
            out_path.unlink(missing_ok=True)
            raise JobTimeoutError(
                f"{spec.label} exceeded {env.timeout:g}s (worker killed)"
            )
        if not out_path.is_file():
            raise RuntimeError(
                f"{spec.label} worker died (exit code {proc.exitcode})"
            )
        with out_path.open("rb") as fh:
            payload = pickle.load(fh)
        out_path.unlink(missing_ok=True)
        env.count("campaign:sim_hours", payload["stats"]["sim_hours"])
        if not payload["ok"]:
            err_type = payload.get("error_type", "")
            message = payload.get("error", "job failed")
            if err_type in ("InjectedHang", "JobTimeoutError"):
                raise JobTimeoutError(message)
            if err_type == "InjectedFault":
                raise InjectedFault(message)
            raise RuntimeError(f"{err_type}: {message}")
        science = env.cache.get_science(spec.science_key)
        if science is None:
            raise RuntimeError(
                f"{spec.label} worker reported success but cached no result"
            )
        return science, payload["timing"], payload["science_cached"]


def build_executor(executor) -> Executor:
    """Resolve an executor name (or pass through an instance)."""
    if isinstance(executor, str):
        if executor == "thread":
            return ThreadExecutor()
        if executor == "process":
            return ProcessExecutor()
        if executor == "inline":
            return InlineExecutor()
        raise ValueError(
            f"unknown executor {executor!r}; choose from {EXECUTORS}"
        )
    if not isinstance(executor, Executor):
        raise ValueError(
            f"executor must be one of {EXECUTORS} or implement the "
            "Executor protocol"
        )
    return executor
