"""Campaign scheduler: cost-model-driven sweeps as managed jobs.

The production payoff of the paper's *predictable performance* claim:
if a simple analytic model prices every run in advance (Section 4),
then large sweeps — machine comparisons, P-scaling ladders, emission
ensembles — can be *scheduled* rather than scripted.  This package
executes such campaigns as managed jobs with content-addressed caching,
bounded-pool LPT packing, per-job timeout, deterministic retry with
checkpoint resume, and a predicted-vs-observed makespan report.

Layers (see ``docs/SCHEDULER.md``):

* :mod:`repro.sched.interfaces` — the pluggable seams: the
  :class:`Executor`, :class:`ResultStore`, :class:`Planner` and
  :class:`JobStore` protocols everything below implements;
* :mod:`repro.sched.job` — :class:`JobSpec` (content-hashed identity)
  and :class:`JobResult`;
* :mod:`repro.sched.cache` — :class:`ResultCache`, the on-disk
  content-addressed store, and :class:`ShardedResultCache`, its
  sharded, size-capped, LRU-evicting service-grade evolution;
* :mod:`repro.sched.costmodel` — :class:`CampaignCostModel`, pricing
  jobs with :mod:`repro.perfmodel` before anything runs;
* :mod:`repro.sched.planner` — dedupe, science-chaining and LPT
  packing into a :class:`CampaignPlan` (:class:`LPTPlanner`);
* :mod:`repro.sched.executors` — the default attempt executors
  (``thread`` | ``process`` | ``inline``);
* :mod:`repro.sched.runner` — :class:`CampaignRunner`, the
  fault-tolerant bounded pool, composed over the seams;
* :mod:`repro.sched.faults` — :class:`FaultPolicy`, deterministic
  fault injection for drills and tests;
* :mod:`repro.sched.sweeps` — generators for the standard studies;
* :mod:`repro.sched.report` — :class:`CampaignReport`.

The always-on, multi-tenant campaign service built on these seams
lives in :mod:`repro.service` (see ``docs/SERVICE.md``).
"""

from repro.sched.cache import ResultCache, ShardedResultCache
from repro.sched.costmodel import CampaignCostModel, PredictedJobCost
from repro.sched.executors import (
    EXECUTORS,
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
    build_executor,
)
from repro.sched.faults import FaultPolicy, InjectedFault, InjectedHang
from repro.sched.interfaces import (
    AttemptEnv,
    Executor,
    JobStore,
    Planner,
    ResultStore,
)
from repro.sched.job import JOB_STATUSES, VARIANTS, JobResult, JobSpec
from repro.sched.planner import (
    CampaignPlan,
    LPTPlanner,
    PlannedJob,
    plan_campaign,
)
from repro.sched.report import CampaignReport, status_rows
from repro.sched.runner import CampaignRunner, JobTimeoutError, execute_job
from repro.sched.sweeps import (
    ensemble_batches,
    ensemble_sweep,
    machine_grid,
    scaling_ladder,
)

__all__ = [
    "AttemptEnv",
    "CampaignCostModel",
    "CampaignPlan",
    "CampaignReport",
    "CampaignRunner",
    "EXECUTORS",
    "Executor",
    "FaultPolicy",
    "InjectedFault",
    "InjectedHang",
    "InlineExecutor",
    "JOB_STATUSES",
    "JobResult",
    "JobSpec",
    "JobStore",
    "JobTimeoutError",
    "LPTPlanner",
    "Planner",
    "PlannedJob",
    "PredictedJobCost",
    "ProcessExecutor",
    "ResultCache",
    "ResultStore",
    "ShardedResultCache",
    "ThreadExecutor",
    "VARIANTS",
    "build_executor",
    "ensemble_batches",
    "ensemble_sweep",
    "execute_job",
    "machine_grid",
    "plan_campaign",
    "scaling_ladder",
    "status_rows",
]
