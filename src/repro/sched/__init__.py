"""Campaign scheduler: cost-model-driven sweeps as managed jobs.

The production payoff of the paper's *predictable performance* claim:
if a simple analytic model prices every run in advance (Section 4),
then large sweeps — machine comparisons, P-scaling ladders, emission
ensembles — can be *scheduled* rather than scripted.  This package
executes such campaigns as managed jobs with content-addressed caching,
bounded-pool LPT packing, per-job timeout, deterministic retry with
checkpoint resume, and a predicted-vs-observed makespan report.

Layers (see ``docs/SCHEDULER.md``):

* :mod:`repro.sched.job` — :class:`JobSpec` (content-hashed identity)
  and :class:`JobResult`;
* :mod:`repro.sched.cache` — :class:`ResultCache`, the on-disk
  content-addressed store;
* :mod:`repro.sched.costmodel` — :class:`CampaignCostModel`, pricing
  jobs with :mod:`repro.perfmodel` before anything runs;
* :mod:`repro.sched.planner` — dedupe, science-chaining and LPT
  packing into a :class:`CampaignPlan`;
* :mod:`repro.sched.runner` — :class:`CampaignRunner`, the
  fault-tolerant bounded pool;
* :mod:`repro.sched.faults` — :class:`FaultPolicy`, deterministic
  fault injection for drills and tests;
* :mod:`repro.sched.sweeps` — generators for the standard studies;
* :mod:`repro.sched.report` — :class:`CampaignReport`.
"""

from repro.sched.cache import ResultCache
from repro.sched.costmodel import CampaignCostModel, PredictedJobCost
from repro.sched.faults import FaultPolicy, InjectedFault, InjectedHang
from repro.sched.job import JOB_STATUSES, VARIANTS, JobResult, JobSpec
from repro.sched.planner import CampaignPlan, PlannedJob, plan_campaign
from repro.sched.report import CampaignReport, status_rows
from repro.sched.runner import CampaignRunner, JobTimeoutError, execute_job
from repro.sched.sweeps import (
    ensemble_batches,
    ensemble_sweep,
    machine_grid,
    scaling_ladder,
)

__all__ = [
    "CampaignCostModel",
    "CampaignPlan",
    "CampaignReport",
    "CampaignRunner",
    "FaultPolicy",
    "InjectedFault",
    "InjectedHang",
    "JOB_STATUSES",
    "JobResult",
    "JobSpec",
    "JobTimeoutError",
    "PlannedJob",
    "PredictedJobCost",
    "ResultCache",
    "VARIANTS",
    "ensemble_batches",
    "ensemble_sweep",
    "execute_job",
    "machine_grid",
    "plan_campaign",
    "scaling_ladder",
    "status_rows",
]
