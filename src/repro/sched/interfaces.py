"""The scheduler's pluggable seams.

PR 4 grew :class:`~repro.sched.runner.CampaignRunner` as one class that
hard-wired how attempts execute, how results persist, how campaigns are
planned and where job state lives.  Promoting the scheduler into an
always-on service (:mod:`repro.service`) requires swapping each of
those roles independently, so they are now explicit protocols:

* :class:`Executor` — runs **one attempt** of one job and says whether
  chains may execute concurrently.  Default implementations live in
  :mod:`repro.sched.executors` (``thread`` / ``process`` / ``inline``);
* :class:`ResultStore` — the content-addressed result store.  The
  default is :class:`~repro.sched.cache.ResultCache`; the service uses
  the sharded, size-capped
  :class:`~repro.sched.cache.ShardedResultCache`;
* :class:`Planner` — turns a bag of specs into a
  :class:`~repro.sched.planner.CampaignPlan`.  The default is
  :class:`~repro.sched.planner.LPTPlanner` (dedupe → science chaining →
  ensemble fusion → LPT packing);
* :class:`JobStore` — durable campaign/job state for long-running
  services.  The one-shot CLI keeps none; the service journals every
  transition through a
  :class:`~repro.service.jobstore.JournalJobStore`.

All four are structural (:func:`typing.runtime_checkable` protocols):
any object with the right methods plugs in, no inheritance required.
:class:`AttemptEnv` is the narrow slice of runner state an
:class:`Executor` may touch — cache, fault policy, deadline policy and
a counter sink — so custom executors cannot reach into the runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

__all__ = [
    "AttemptEnv",
    "AttemptOutcome",
    "Executor",
    "JobStore",
    "Planner",
    "ResultStore",
]

#: What one attempt returns: ``(science result, replay timing or None,
#: science_cached)`` — exactly the historical ``execute_job`` contract.
AttemptOutcome = Tuple[Any, Optional[Any], bool]


@dataclass
class AttemptEnv:
    """The runner state one attempt is allowed to see.

    ``count(name, amount)`` is the only write path back into the
    runner's observability (it feeds the campaign counters under the
    runner's lock); ``clock`` is the runner's injectable monotonic
    clock, so executors honour fake clocks in tests.
    """

    cache: "ResultStore"
    fault_policy: Optional[Any] = None
    checkpoint_hours: int = 1
    timeout: Optional[float] = None
    clock: Callable[[], float] = None  # type: ignore[assignment]
    count: Callable[..., None] = None  # type: ignore[assignment]


@runtime_checkable
class Executor(Protocol):
    """Runs one attempt of one job.

    ``name`` is the CLI-facing identifier (``thread`` | ``process`` |
    ``inline`` | custom); ``concurrent`` tells the runner whether
    independent chains may be dispatched onto pool threads (``False``
    forces deterministic, plan-ordered execution on the calling
    thread).
    """

    name: str
    concurrent: bool

    def run_attempt(self, spec: Any, attempt: int,
                    env: AttemptEnv) -> AttemptOutcome:
        """One attempt; raises whatever the attempt died of."""
        ...


@runtime_checkable
class ResultStore(Protocol):
    """Content-addressed store for science results and job payloads.

    The two-level keying contract is the cache's (science shared across
    replay jobs, job payloads referencing their science by key); see
    :class:`~repro.sched.cache.ResultCache` for the reference
    implementation and the atomicity guarantees implementations must
    keep.
    """

    def get_science(self, science_key: str) -> Optional[Any]: ...

    def put_science(self, science_key: str, result: Any) -> None: ...

    def get_job(self, key: str) -> Optional[Dict[str, Any]]: ...

    def put_job(self, key: str, payload: Dict[str, Any]) -> None: ...

    def iter_jobs(self) -> Iterator[Dict[str, Any]]: ...

    def scratch_dir(self, science_key: str) -> Path: ...

    def clear_scratch(self, science_key: str) -> None: ...

    def stats(self) -> Dict[str, Any]: ...


@runtime_checkable
class Planner(Protocol):
    """Builds an executable plan from a bag of job specs."""

    def plan(self, specs: Sequence[Any], *, workers: int,
             cost_model: Any, fuse_ensembles: bool) -> Any:
        """Return a :class:`~repro.sched.planner.CampaignPlan`."""
        ...


@runtime_checkable
class JobStore(Protocol):
    """Durable, replayable campaign/job state for a service.

    The contract is an event journal: ``append`` must make each event
    durable before returning, ``events`` replays everything already
    durable (tolerating a torn final write), and ``compact`` atomically
    folds history into a snapshot so the journal stays bounded.
    """

    def append(self, event: Dict[str, Any]) -> None: ...

    def events(self) -> Iterator[Dict[str, Any]]: ...

    def compact(self, state: Dict[str, Any]) -> None: ...

    def snapshot(self) -> Optional[Dict[str, Any]]: ...
