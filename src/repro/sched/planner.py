"""Cost-model-driven campaign planning.

The planner turns a bag of :class:`~repro.sched.job.JobSpec` into an
executable plan:

1. **dedupe** — jobs with equal content hashes collapse to one
   execution (the duplicates are recorded, their submitters all get the
   same result);
2. **chain** — jobs sharing a *science* key form a chain that runs
   sequentially on one worker, so the expensive numerics run once and
   the replay-only followers hit the in-campaign science cache instead
   of racing a twin on another worker;
3. **fuse** — chains whose jobs share an *ensemble* key (same base
   dataset/episode/sigma, different member seeds) merge into one
   super-chain, member order deterministic by seed.  Co-location is
   what lets the runner execute the members' science as one batched
   sweep (:func:`repro.model.batched.run_batched`) and stock the
   per-member science cache; the cost model prices the first member in
   full and the rest at the marginal batched rate;
4. **pack** — chains are placed longest-predicted-time-first (LPT) onto
   the bounded worker pool; the resulting per-worker load profile gives
   the predicted makespan the runner later compares against the
   observed one.

Everything is deterministic: ties break on content hash, so the same
campaign yields the same plan on every machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.sched.cache import ResultCache
from repro.sched.costmodel import CampaignCostModel
from repro.sched.job import JobSpec

__all__ = ["PlannedJob", "CampaignPlan", "LPTPlanner", "plan_campaign"]


@dataclass
class PlannedJob:
    """One unique job with its predicted placement."""

    spec: JobSpec
    predicted_s: float      # wall prediction for this job
    sim_s: float            # predicted simulated seconds on the target
    science_charged: bool   # this job pays its chain's science run
    fused: bool = False     # science priced as a marginal batched member
    worker: int = 0
    start_s: float = 0.0
    end_s: float = 0.0

    @property
    def key(self) -> str:
        return self.spec.key

    def row(self) -> Dict[str, object]:
        return {
            "key": self.spec.key[:12],
            "job": self.spec.label,
            "predicted_s": round(self.predicted_s, 4),
            "sim_s": round(self.sim_s, 4),
            "fused": self.fused,
            "worker": self.worker,
            "start_s": round(self.start_s, 4),
            "end_s": round(self.end_s, 4),
        }


@dataclass
class CampaignPlan:
    """Deduped, chained, LPT-packed execution plan."""

    jobs: List[PlannedJob]          # execution order (chains contiguous)
    chains: List[List[int]]         # indices into ``jobs``, LPT order
    workers: int
    predicted_makespan: float
    duplicates: Dict[str, int] = field(default_factory=dict)
    #: Autotuner provenance (``repro.tune``): calibration generation,
    #: store fingerprint and per-job decision records.  ``None`` for
    #: untuned plans — the default planner never sets it.
    tuning: Optional[Dict[str, object]] = None

    @property
    def n_jobs(self) -> int:
        return len(self.jobs)

    @property
    def n_duplicates(self) -> int:
        return sum(self.duplicates.values())

    def predicted_for(self, key: str) -> float:
        for job in self.jobs:
            if job.key == key:
                return job.predicted_s
        raise KeyError(f"no planned job with key {key}")

    def to_dict(self) -> Dict[str, object]:
        out = {
            "workers": self.workers,
            "predicted_makespan_s": round(self.predicted_makespan, 4),
            "n_jobs": self.n_jobs,
            "n_duplicates": self.n_duplicates,
            "jobs": [j.row() for j in self.jobs],
        }
        if self.tuning is not None:
            out["tuning"] = self.tuning
        return out


def plan_campaign(
    specs: Sequence[JobSpec],
    workers: int = 4,
    cost_model: Optional[CampaignCostModel] = None,
    cache: Optional[ResultCache] = None,
    fuse_ensembles: bool = True,
    host_cores: Optional[int] = None,
) -> CampaignPlan:
    """Build the campaign plan for ``specs`` on ``workers`` slots.

    ``fuse_ensembles`` merges science chains that are members of one
    emission ensemble (shared :attr:`~repro.sched.job.JobSpec.
    ensemble_key`) into a single super-chain so the runner can batch
    their numerics; disable it to schedule members as independent
    chains (``repro campaign --no-fuse``).

    ``host_cores`` bounds the *total* cores the plan may occupy at
    once: each worker slot runs one job, and a job with
    ``cores_per_job > 1`` hands that many cores to its tiled chemistry
    pool, so the effective slot count is clamped to
    ``host_cores // max(cores_per_job)``.  This is the pool-width vs.
    per-job-cores trade the cost model prices — fewer, faster jobs
    against more, slower ones (see ``docs/SCHEDULER.md``).
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if host_cores is not None:
        if host_cores < 1:
            raise ValueError("host_cores must be >= 1")
        widest = max((s.cores_per_job for s in specs), default=1)
        workers = max(1, min(workers, host_cores // widest))
    if cost_model is None:
        cost_model = CampaignCostModel(cache=cache)

    # 1. dedupe by content hash, keeping first submission order.
    unique: Dict[str, JobSpec] = {}
    duplicates: Dict[str, int] = {}
    for spec in specs:
        if spec.key in unique:
            duplicates[spec.key] = duplicates.get(spec.key, 0) + 1
        else:
            unique[spec.key] = spec

    # 2. chain by science key; first job of a chain pays the science.
    chains_by_science: Dict[str, List[JobSpec]] = {}
    for spec in unique.values():
        chains_by_science.setdefault(spec.science_key, []).append(spec)

    # 2b. fuse: merge the science chains of one ensemble (same base
    # dataset/episode/sigma, differing member seed) into a super-chain,
    # deterministically ordered by member seed.  Every spec in a
    # science chain shares its science fields, hence its ensemble key.
    science_order = sorted(chains_by_science)
    merged: List[List[str]] = []
    if fuse_ensembles:
        by_ensemble: Dict[str, List[str]] = {}
        for sk in science_order:
            ek = chains_by_science[sk][0].ensemble_key
            if ek is not None:
                by_ensemble.setdefault(ek, []).append(sk)
        fused_keys = set()
        for ek in sorted(by_ensemble):
            group = by_ensemble[ek]
            if len(group) < 2:
                continue
            group.sort(
                key=lambda sk: (chains_by_science[sk][0].perturb_seed, sk)
            )
            merged.append(group)
            fused_keys.update(group)
        merged.extend([sk] for sk in science_order if sk not in fused_keys)
        merged.sort(key=lambda g: g[0])
    else:
        merged = [[sk] for sk in science_order]

    planned: List[PlannedJob] = []
    chain_groups: List[List[PlannedJob]] = []
    for science_keys in merged:
        group = []
        for m, science_key in enumerate(science_keys):
            members = sorted(
                chains_by_science[science_key], key=lambda s: s.key
            )
            for i, spec in enumerate(members):
                fused = m > 0 and i == 0
                cost = cost_model.predict(
                    spec, science_charged=(i == 0), fused_member=fused
                )
                group.append(PlannedJob(
                    spec=spec,
                    predicted_s=cost.wall_s,
                    sim_s=cost.sim_s,
                    science_charged=cost.science_s > 0.0,
                    fused=fused and cost.science_s > 0.0,
                ))
        chain_groups.append(group)

    # 3. LPT over chains: longest chain first, least-loaded worker.
    chain_groups.sort(
        key=lambda g: (-sum(j.predicted_s for j in g), g[0].key)
    )
    load = [0.0] * workers
    chains: List[List[int]] = []
    for group in chain_groups:
        worker = min(range(workers), key=lambda w: (load[w], w))
        indices = []
        for job in group:
            job.worker = worker
            job.start_s = load[worker]
            load[worker] += job.predicted_s
            job.end_s = load[worker]
            indices.append(len(planned))
            planned.append(job)
        chains.append(indices)

    return CampaignPlan(
        jobs=planned,
        chains=chains,
        workers=workers,
        predicted_makespan=max(load) if planned else 0.0,
        duplicates=duplicates,
    )


class LPTPlanner:
    """The default :class:`~repro.sched.interfaces.Planner`.

    A stateless wrapper around :func:`plan_campaign` (dedupe → science
    chaining → ensemble fusion → LPT packing), so the runner and the
    campaign service compose against the ``Planner`` protocol and a
    different packing strategy can be plugged in without touching
    either.
    """

    def plan(
        self,
        specs: Sequence[JobSpec],
        *,
        workers: int,
        cost_model: Optional[CampaignCostModel] = None,
        fuse_ensembles: bool = True,
        host_cores: Optional[int] = None,
    ) -> CampaignPlan:
        return plan_campaign(specs, workers=workers, cost_model=cost_model,
                             fuse_ensembles=fuse_ensembles,
                             host_cores=host_cores)
