"""Fault-tolerant campaign execution on a bounded worker pool.

The runner is a thin composition over the scheduler's pluggable seams
(:mod:`repro.sched.interfaces`):

* an :class:`~repro.sched.interfaces.Executor` runs each attempt
  (``thread`` | ``process`` | ``inline``, see
  :mod:`repro.sched.executors`) and decides whether independent chains
  may run concurrently;
* a :class:`~repro.sched.interfaces.ResultStore` persists science
  results and job payloads (:class:`~repro.sched.cache.ResultCache` by
  default; resubmitting a finished campaign does zero simulation work);
* a :class:`~repro.sched.interfaces.Planner` builds the execution plan
  (:class:`~repro.sched.planner.LPTPlanner` by default: dedupe →
  science chaining → ensemble fusion → LPT packing).

What the runner itself owns is the campaign policy loop: per-job
retries after a deterministic exponential backoff
(``backoff * 2**(attempt-1)``; the sleep function is injectable so
tests pay no wall-clock), per-attempt timeouts (cooperative at
checkpoint boundaries in-process, preemptive ``Process.join`` under the
process executor), checkpoint resume (a retry continues from the last
completed chunk and the joined result stays bitwise identical to an
unbroken run), batched-ensemble science prefetch, and observability:
every job emits a ``kind="job"`` span (node = worker slot) into a
:class:`~repro.observe.tracer.Tracer`, and campaign counters (cache
hits, retries, faults, timeouts, simulated hours) accumulate alongside,
so the report's predicted-vs-observed makespan comes straight off the
span stream.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.model.batched import run_batched
from repro.model.config import AirshedConfig
from repro.observe.compare import observed_makespan
from repro.observe.tracer import Tracer
from repro.sched.cache import ResultCache
from repro.sched.costmodel import CampaignCostModel
from repro.sched.executors import (
    JobTimeoutError,
    _build_dataset,
    build_executor,
    execute_job,
)
from repro.sched.faults import FaultPolicy, InjectedFault, InjectedHang
from repro.sched.interfaces import AttemptEnv, Executor, Planner, ResultStore
from repro.sched.job import JobResult, JobSpec
from repro.sched.planner import CampaignPlan, LPTPlanner, PlannedJob
from repro.sched.report import CampaignReport
from repro.sched.sweeps import ensemble_batches

__all__ = ["CampaignRunner", "JobTimeoutError", "execute_job"]


class CampaignRunner:
    """Plan and execute campaigns against one result store.

    Parameters
    ----------
    cache:
        A :class:`~repro.sched.interfaces.ResultStore` (e.g.
        :class:`~repro.sched.cache.ResultCache`) or a directory path.
    workers:
        Bounded pool width (and the planner's packing width).
    retries / backoff:
        Failed attempts retry up to ``retries`` times; attempt ``k``
        waits ``backoff * 2**(k-1)`` seconds first (deterministic).
    timeout:
        Per-attempt seconds; ``None`` disables.  See the module docs
        for cooperative versus preemptive enforcement.
    executor:
        ``"thread"`` (default) | ``"process"`` | ``"inline"``, or any
        :class:`~repro.sched.interfaces.Executor` instance.
    fault_policy:
        Optional :class:`~repro.sched.faults.FaultPolicy` for tests and
        smoke drills.
    checkpoint_hours:
        Science checkpoint cadence (simulated hours per chunk).
    cost_model:
        Planner pricing; defaults to a cache-aware
        :class:`~repro.sched.costmodel.CampaignCostModel`.
    planner:
        A :class:`~repro.sched.interfaces.Planner`; defaults to
        :class:`~repro.sched.planner.LPTPlanner`.
    tracer / sleep / clock:
        Observability sink and injectable time sources (tests pass a
        recording ``sleep`` so backoff charges no wall-clock).
    """

    def __init__(
        self,
        cache: Union[ResultStore, str, Path],
        workers: int = 4,
        retries: int = 2,
        backoff: float = 0.25,
        timeout: Optional[float] = None,
        executor: Union[str, Executor] = "thread",
        fault_policy: Optional[FaultPolicy] = None,
        checkpoint_hours: int = 1,
        cost_model: Optional[CampaignCostModel] = None,
        planner: Optional[Planner] = None,
        tracer: Optional[Tracer] = None,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Optional[Callable[[], float]] = None,
        fuse_ensembles: bool = True,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        if isinstance(cache, (str, Path)):
            cache = ResultCache(cache)
        self.cache: ResultStore = cache
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self._executor_impl = build_executor(executor)
        self.executor = self._executor_impl.name
        self.fault_policy = fault_policy
        self.checkpoint_hours = checkpoint_hours
        self.cost_model = cost_model or CampaignCostModel(cache=self.cache)
        self.planner: Planner = planner or LPTPlanner()
        self.tracer = tracer or Tracer()
        self._sleep = sleep or time.sleep
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self.fuse_ensembles = bool(fuse_ensembles)

    # -- observability -------------------------------------------------
    def _count(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self.tracer.counters.inc(name, amount)

    def _emit_job_span(self, spec: JobSpec, slot: int, start: float,
                       end: float, status: str, attempts: int,
                       wait_s: float = 0.0) -> None:
        # ``wait_s`` is the span's scheduling-delay share (retry backoff
        # sleeps); the makespan computation subtracts it so observed
        # fits aren't polluted by queue wait.
        with self._lock:
            self.tracer.emit(
                f"job:{spec.label}", "job", start, end, node=slot,
                key=spec.key, status=status, attempts=attempts,
                queue_wait_s=round(wait_s, 6),
            )

    # -- planning ------------------------------------------------------
    def plan(self, specs: Sequence[JobSpec]) -> CampaignPlan:
        return self.planner.plan(specs, workers=self.workers,
                                 cost_model=self.cost_model,
                                 fuse_ensembles=self.fuse_ensembles)

    # -- execution -----------------------------------------------------
    def run(self, specs: Sequence[JobSpec],
            plan: Optional[CampaignPlan] = None) -> CampaignReport:
        """Execute ``specs`` (deduped) and report the campaign."""
        if plan is None:
            plan = self.plan(specs)
        results: Dict[str, JobResult] = {}
        if plan.jobs:
            chains = [[plan.jobs[i] for i in chain] for chain in plan.chains]
            slots = list(range(self.workers))
            if not self._executor_impl.concurrent or self.workers == 1:
                for chain in chains:
                    self._run_chain(chain, chain[0].worker, results)
            else:
                slot_pool: List[int] = slots.copy()

                def run_chain(chain: List[PlannedJob]) -> None:
                    with self._lock:
                        slot = slot_pool.pop(0)
                    try:
                        self._run_chain(chain, slot, results)
                    finally:
                        with self._lock:
                            slot_pool.append(slot)

                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    futures = [pool.submit(run_chain, c) for c in chains]
                    for f in futures:
                        f.result()

        observed = observed_makespan(self.tracer.spans, kinds=("job",),
                                     exclude_wait=True)
        ordered = [results[j.key] for j in plan.jobs if j.key in results]
        return CampaignReport(
            plan=plan,
            results=ordered,
            observed_makespan_s=observed,
            counters={
                name: value for name, value in
                self.tracer.counters.snapshot()["counters"].items()
                if name.startswith("campaign:")
            },
        )

    def _run_chain(self, chain: List[PlannedJob], slot: int,
                   results: Dict[str, JobResult]) -> None:
        if self.fuse_ensembles:
            self._prefetch_ensembles(chain, slot)
        for planned in chain:
            result = self._run_job(planned, slot)
            with self._lock:
                results[planned.key] = result

    # -- batched-ensemble science prefetch -----------------------------
    def _prefetch_ensembles(self, chain: List[PlannedJob],
                            slot: int) -> None:
        """Run a chain's fused ensemble members as one batched sweep.

        The planner co-locates an ensemble's member chains on one
        worker; here their sequential numerics execute as a single
        :func:`~repro.model.batched.run_batched` call and each member's
        (bitwise-identical) result lands in the per-member science
        cache.  The per-job flow downstream is untouched — every job
        still passes its own cache lookup, fault points, retries and
        replay, it just finds its science already stored.  Batching is
        exact over any member subset, so partially cached ensembles
        batch only the missing members.  Any batch failure falls back
        to per-job execution silently (the jobs simply run unfused).
        """
        for ek, members in ensemble_batches(
            [p.spec for p in chain]
        ).items():
            todo = [
                s for s in members
                if self.cache.get_science(s.science_key) is None
            ]
            if len(todo) < 2:
                continue
            start = self.tracer.now()
            try:
                configs = [
                    AirshedConfig(
                        dataset=_build_dataset(s), hours=s.hours,
                        start_hour=s.start_hour,
                        chem_workers=s.cores_per_job,
                    )
                    for s in todo
                ]
                batch_results = run_batched(configs)
            except Exception:  # noqa: BLE001 - fall back to per-job runs
                self._count("campaign:batch_fallbacks")
                continue
            for s, res in zip(todo, batch_results):
                self.cache.put_science(s.science_key, res)
                self._count("campaign:sim_hours", s.hours)
            self._count("campaign:batches")
            self._count("campaign:batched_members", len(todo))
            with self._lock:
                self.tracer.emit(
                    f"batch:{todo[0].dataset}x{len(todo)}", "batch",
                    start, self.tracer.now(), node=slot,
                    ensemble_key=ek, members=len(todo),
                )

    # -- one job, with retries ----------------------------------------
    def _run_job(self, planned: PlannedJob, slot: int) -> JobResult:
        spec = planned.spec
        span_start = self.tracer.now()
        self._count("campaign:jobs")

        payload = self.cache.get_job(spec.key)
        if payload is not None:
            self._count("campaign:cache_hits")
            jr = JobResult(
                spec=spec, status="cached", result=payload["result"],
                timing=payload.get("timing"), attempts=0, from_cache=True,
                science_cached=True, wall_s=0.0,
                predicted_s=planned.predicted_s,
            )
            self._emit_job_span(spec, slot, span_start, self.tracer.now(),
                                "cached", 0)
            return jr

        backoffs: List[float] = []
        last_error = ""
        timed_out = False
        attempts = 0
        for attempt in range(1 + self.retries):
            if attempt > 0:
                delay = self.backoff * (2 ** (attempt - 1))
                backoffs.append(delay)
                self._count("campaign:retries")
                if delay > 0:
                    self._sleep(delay)
            attempts = attempt + 1
            t0 = self._clock()
            try:
                science, timing, science_cached = self._attempt(spec, attempt)
            except (InjectedHang, JobTimeoutError) as exc:
                timed_out = True
                last_error = f"{type(exc).__name__}: {exc}"
                self._count("campaign:timeouts")
                continue
            except InjectedFault as exc:
                timed_out = False
                last_error = f"{type(exc).__name__}: {exc}"
                self._count("campaign:faults")
                continue
            except Exception as exc:  # noqa: BLE001 - job isolation
                timed_out = False
                last_error = f"{type(exc).__name__}: {exc}"
                self._count("campaign:failures")
                continue

            wall = self._clock() - t0
            if science_cached:
                self._count("campaign:science_cache_hits")
            digest = hashlib.sha256(science.final_conc.tobytes()).hexdigest()
            self.cache.put_job(spec.key, {
                "spec": spec.to_dict(),
                "science_key": spec.science_key,
                "timing": timing,
                "status": "ok",
                "final_conc_sha256": digest,
            })
            jr = JobResult(
                spec=spec, status="ok", result=science, timing=timing,
                attempts=attempts, retries=attempts - 1,
                science_cached=science_cached, wall_s=wall,
                predicted_s=planned.predicted_s, backoffs=backoffs,
            )
            self._emit_job_span(spec, slot, span_start, self.tracer.now(),
                                "ok", attempts, wait_s=sum(backoffs))
            return jr

        status = "timeout" if timed_out else "failed"
        jr = JobResult(
            spec=spec, status=status, attempts=attempts,
            retries=attempts - 1, predicted_s=planned.predicted_s,
            error=last_error, backoffs=backoffs,
        )
        self._emit_job_span(spec, slot, span_start, self.tracer.now(),
                            status, attempts, wait_s=sum(backoffs))
        return jr

    # -- one attempt ---------------------------------------------------
    def _attempt(self, spec: JobSpec, attempt: int):
        env = AttemptEnv(
            cache=self.cache,
            fault_policy=self.fault_policy,
            checkpoint_hours=self.checkpoint_hours,
            timeout=self.timeout,
            clock=self._clock,
            count=self._count,
        )
        return self._executor_impl.run_attempt(spec, attempt, env)
