"""Fault-tolerant campaign execution on a bounded worker pool.

The runner takes a :class:`~repro.sched.planner.CampaignPlan` and
drives it to completion:

* **pool** — chains execute on ``workers`` slots (``thread`` pool by
  default; ``process`` isolates each attempt in a subprocess that a
  timeout can really kill; ``inline`` runs everything on the calling
  thread, deterministically, in plan order);
* **timeout** — each attempt gets ``timeout`` seconds.  In-process
  executors check the deadline cooperatively at checkpoint boundaries
  (and treat an injected hang as a wedged job); the process executor
  enforces it preemptively with ``Process.join(timeout)``;
* **retry** — a failed or timed-out attempt is retried up to
  ``retries`` times after a deterministic exponential backoff
  (``backoff * 2**(attempt-1)``; the sleep function is injectable so
  tests pay no wall-clock);
* **resume** — the science loop checkpoints every ``checkpoint_hours``
  simulated hours (:mod:`repro.model.checkpoint` plus a pickled chunk
  result), so a retry continues from the last completed chunk instead
  of restarting, and the joined result stays bitwise identical to an
  unbroken run;
* **cache** — finished jobs and their science results go into the
  :class:`~repro.sched.cache.ResultCache`; resubmitting a finished
  campaign does zero simulation work;
* **observe** — every job emits a ``kind="job"`` span (node = worker
  slot) into a :class:`~repro.observe.tracer.Tracer`, and campaign
  counters (cache hits, retries, faults, timeouts, simulated hours)
  accumulate alongside, so the report's predicted-vs-observed makespan
  comes straight off the span stream.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.datasets.registry import get_dataset
from repro.model.batched import run_batched
from repro.model.checkpoint import load_checkpoint, resume_config, save_checkpoint
from repro.model.config import AirshedConfig
from repro.model.dataparallel import replay_data_parallel
from repro.model.ensemble import PerturbedDataset
from repro.model.results import AirshedResult, concat_results
from repro.model.sequential import SequentialAirshed
from repro.model.taskparallel import replay_task_parallel
from repro.observe.compare import observed_makespan
from repro.observe.tracer import Tracer
from repro.sched.cache import ResultCache
from repro.sched.costmodel import CampaignCostModel
from repro.sched.faults import FaultPolicy, InjectedFault, InjectedHang
from repro.sched.job import JobResult, JobSpec
from repro.sched.planner import CampaignPlan, PlannedJob, plan_campaign
from repro.sched.report import CampaignReport
from repro.sched.sweeps import ensemble_batches
from repro.vm.machine import get_machine

__all__ = ["CampaignRunner", "JobTimeoutError", "execute_job"]

EXECUTORS = ("thread", "process", "inline")


class JobTimeoutError(RuntimeError):
    """An attempt exceeded its per-job timeout."""


# ---------------------------------------------------------------------------
# job execution (runs in a worker thread or a child process)
# ---------------------------------------------------------------------------
def _build_dataset(spec: JobSpec):
    dataset = get_dataset(spec.dataset)
    if spec.perturb_seed is not None:
        dataset = PerturbedDataset(
            dataset, member_seed=spec.perturb_seed, sigma=spec.perturb_sigma
        )
    return dataset


def _load_scratch(cache: ResultCache, science_key: str):
    """Completed chunks of an interrupted science run, oldest first."""
    scratch = cache.scratch_dir(science_key)
    parts: List[AirshedResult] = []
    checkpoint = None
    idx = 0
    while True:
        part_path = scratch / f"part_{idx:03d}.pkl"
        ck_path = scratch / f"ck_{idx:03d}.npz"
        if not (part_path.is_file() and ck_path.is_file()):
            break
        try:
            with part_path.open("rb") as fh:
                part = pickle.load(fh)
            checkpoint = load_checkpoint(ck_path)
        except Exception:
            break  # unreadable chunk: resume up to the last good one
        parts.append(part)
        idx += 1
    return parts, checkpoint, scratch


def execute_science(
    spec: JobSpec,
    cache: ResultCache,
    fault_point: Callable[[int], None],
    check_time: Callable[[], None],
    checkpoint_hours: int = 1,
    on_hours: Optional[Callable[[int], None]] = None,
) -> AirshedResult:
    """Run (or resume) the sequential numerics of one science key.

    The run advances in chunks of ``checkpoint_hours``; after each
    chunk the chunk result and a :mod:`repro.model.checkpoint` land in
    the cache's scratch area, so a retry resumes instead of restarting.
    ``fault_point(hours_completed)`` is called at every chunk boundary
    (fault injection); ``check_time()`` enforces the cooperative
    deadline.  On success the joined result is cached and the scratch
    cleared.
    """
    if checkpoint_hours < 1:
        raise ValueError("checkpoint_hours must be >= 1")
    dataset = _build_dataset(spec)
    full_cfg = AirshedConfig(
        dataset=dataset, hours=spec.hours, start_hour=spec.start_hour
    )
    parts, checkpoint, scratch = _load_scratch(cache, spec.science_key)
    hours_done = checkpoint.hours_completed if checkpoint else 0

    while hours_done < spec.hours:
        check_time()
        fault_point(hours_done)
        chunk = min(checkpoint_hours, spec.hours - hours_done)
        if hours_done == 0:
            cfg = replace(full_cfg, hours=chunk)
        else:
            cfg = replace(resume_config(full_cfg, checkpoint), hours=chunk)
        part = SequentialAirshed(cfg).run()
        idx = len(parts)
        with (scratch / f"part_{idx:03d}.pkl").open("wb") as fh:
            pickle.dump(part, fh, protocol=pickle.HIGHEST_PROTOCOL)
        checkpoint = save_checkpoint(
            replace(full_cfg, hours=hours_done + chunk),
            part,
            scratch / f"ck_{idx:03d}.npz",
        )
        parts.append(part)
        hours_done += chunk
        if on_hours is not None:
            on_hours(chunk)
    fault_point(hours_done)

    result = concat_results(parts)
    cache.put_science(spec.science_key, result)
    cache.clear_scratch(spec.science_key)
    return result


def execute_job(
    spec: JobSpec,
    cache: ResultCache,
    policy: Optional[FaultPolicy] = None,
    attempt: int = 0,
    checkpoint_hours: int = 1,
    check_time: Optional[Callable[[], None]] = None,
    hang: Optional[Callable[[], None]] = None,
    on_hours: Optional[Callable[[int], None]] = None,
) -> Tuple[AirshedResult, Optional[object], bool]:
    """One attempt at one job: science (cached or run) plus replay.

    Returns ``(science result, replay timing or None, science_cached)``.
    Raises whatever the attempt died of — an injected fault, a
    simulated hang, a cooperative timeout, or a real error.
    """
    if check_time is None:
        check_time = lambda: None  # noqa: E731

    def fault_point(hours_completed: int) -> None:
        action = policy.action(spec.key, attempt) if policy else None
        if action is None or hours_completed < policy.after_hours:
            return
        if action == "raise":
            raise InjectedFault(
                f"injected fault in {spec.label} after {hours_completed}h"
            )
        if hang is not None:
            hang()
        raise InjectedHang(f"injected hang in {spec.label}")

    science = cache.get_science(spec.science_key)
    science_cached = science is not None
    if science_cached:
        fault_point(spec.hours)  # replay-only jobs still get their fault
    else:
        science = execute_science(
            spec, cache, fault_point, check_time,
            checkpoint_hours=checkpoint_hours, on_hours=on_hours,
        )

    check_time()
    if spec.variant == "data":
        timing = replay_data_parallel(
            science.trace, get_machine(spec.machine), spec.nprocs
        )
    elif spec.variant == "task":
        timing = replay_task_parallel(
            science.trace, get_machine(spec.machine), spec.nprocs,
            io_nodes=spec.io_nodes,
        )
    else:
        timing = None
    return science, timing, science_cached


def _process_entry(
    spec_dict: Dict,
    cache_root: str,
    policy: Optional[FaultPolicy],
    attempt: int,
    checkpoint_hours: int,
    out_path: str,
) -> None:
    """Child-process attempt: run the job, pickle the outcome."""
    spec = JobSpec.from_dict(spec_dict)
    cache = ResultCache(cache_root)
    stats = {"sim_hours": 0}

    def on_hours(h: int) -> None:
        stats["sim_hours"] += h

    def hang() -> None:  # a genuinely wedged worker; the parent kills us
        while True:
            time.sleep(0.05)

    try:
        _, timing, science_cached = execute_job(
            spec, cache, policy=policy, attempt=attempt,
            checkpoint_hours=checkpoint_hours, hang=hang, on_hours=on_hours,
        )
        payload = {
            "ok": True,
            "timing": timing,
            "science_cached": science_cached,
            "stats": stats,
        }
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        payload = {
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
            "stats": stats,
        }
    tmp = f"{out_path}.tmp"
    with open(tmp, "wb") as fh:
        pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
    Path(tmp).replace(out_path)


# ---------------------------------------------------------------------------
# the runner
# ---------------------------------------------------------------------------
class CampaignRunner:
    """Plan and execute campaigns against one result cache.

    Parameters
    ----------
    cache:
        A :class:`~repro.sched.cache.ResultCache` or a directory path.
    workers:
        Bounded pool width (and the planner's packing width).
    retries / backoff:
        Failed attempts retry up to ``retries`` times; attempt ``k``
        waits ``backoff * 2**(k-1)`` seconds first (deterministic).
    timeout:
        Per-attempt seconds; ``None`` disables.  See the module docs
        for cooperative versus preemptive enforcement.
    executor:
        ``"thread"`` (default) | ``"process"`` | ``"inline"``.
    fault_policy:
        Optional :class:`~repro.sched.faults.FaultPolicy` for tests and
        smoke drills.
    checkpoint_hours:
        Science checkpoint cadence (simulated hours per chunk).
    cost_model:
        Planner pricing; defaults to a cache-aware
        :class:`~repro.sched.costmodel.CampaignCostModel`.
    tracer / sleep / clock:
        Observability sink and injectable time sources (tests pass a
        recording ``sleep`` so backoff charges no wall-clock).
    """

    def __init__(
        self,
        cache: Union[ResultCache, str, Path],
        workers: int = 4,
        retries: int = 2,
        backoff: float = 0.25,
        timeout: Optional[float] = None,
        executor: str = "thread",
        fault_policy: Optional[FaultPolicy] = None,
        checkpoint_hours: int = 1,
        cost_model: Optional[CampaignCostModel] = None,
        tracer: Optional[Tracer] = None,
        sleep: Optional[Callable[[float], None]] = None,
        clock: Optional[Callable[[], float]] = None,
        fuse_ensembles: bool = True,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if backoff < 0:
            raise ValueError("backoff must be non-negative")
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        self.cache = cache if isinstance(cache, ResultCache) else ResultCache(cache)
        self.workers = workers
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.executor = executor
        self.fault_policy = fault_policy
        self.checkpoint_hours = checkpoint_hours
        self.cost_model = cost_model or CampaignCostModel(cache=self.cache)
        self.tracer = tracer or Tracer()
        self._sleep = sleep or time.sleep
        self._clock = clock or time.monotonic
        self._lock = threading.Lock()
        self.fuse_ensembles = bool(fuse_ensembles)

    # -- observability -------------------------------------------------
    def _count(self, name: str, amount: float = 1.0) -> None:
        with self._lock:
            self.tracer.counters.inc(name, amount)

    def _emit_job_span(self, spec: JobSpec, slot: int, start: float,
                       end: float, status: str, attempts: int) -> None:
        with self._lock:
            self.tracer.emit(
                f"job:{spec.label}", "job", start, end, node=slot,
                key=spec.key, status=status, attempts=attempts,
            )

    # -- planning ------------------------------------------------------
    def plan(self, specs: Sequence[JobSpec]) -> CampaignPlan:
        return plan_campaign(specs, workers=self.workers,
                             cost_model=self.cost_model,
                             fuse_ensembles=self.fuse_ensembles)

    # -- execution -----------------------------------------------------
    def run(self, specs: Sequence[JobSpec],
            plan: Optional[CampaignPlan] = None) -> CampaignReport:
        """Execute ``specs`` (deduped) and report the campaign."""
        if plan is None:
            plan = self.plan(specs)
        results: Dict[str, JobResult] = {}
        if plan.jobs:
            chains = [[plan.jobs[i] for i in chain] for chain in plan.chains]
            slots = list(range(self.workers))
            if self.executor == "inline" or self.workers == 1:
                for chain in chains:
                    self._run_chain(chain, chain[0].worker, results)
            else:
                slot_pool: List[int] = slots.copy()

                def run_chain(chain: List[PlannedJob]) -> None:
                    with self._lock:
                        slot = slot_pool.pop(0)
                    try:
                        self._run_chain(chain, slot, results)
                    finally:
                        with self._lock:
                            slot_pool.append(slot)

                with ThreadPoolExecutor(max_workers=self.workers) as pool:
                    futures = [pool.submit(run_chain, c) for c in chains]
                    for f in futures:
                        f.result()

        observed = observed_makespan(self.tracer.spans, kinds=("job",))
        ordered = [results[j.key] for j in plan.jobs if j.key in results]
        return CampaignReport(
            plan=plan,
            results=ordered,
            observed_makespan_s=observed,
            counters={
                name: value for name, value in
                self.tracer.counters.snapshot()["counters"].items()
                if name.startswith("campaign:")
            },
        )

    def _run_chain(self, chain: List[PlannedJob], slot: int,
                   results: Dict[str, JobResult]) -> None:
        if self.fuse_ensembles:
            self._prefetch_ensembles(chain, slot)
        for planned in chain:
            result = self._run_job(planned, slot)
            with self._lock:
                results[planned.key] = result

    # -- batched-ensemble science prefetch -----------------------------
    def _prefetch_ensembles(self, chain: List[PlannedJob],
                            slot: int) -> None:
        """Run a chain's fused ensemble members as one batched sweep.

        The planner co-locates an ensemble's member chains on one
        worker; here their sequential numerics execute as a single
        :func:`~repro.model.batched.run_batched` call and each member's
        (bitwise-identical) result lands in the per-member science
        cache.  The per-job flow downstream is untouched — every job
        still passes its own cache lookup, fault points, retries and
        replay, it just finds its science already stored.  Batching is
        exact over any member subset, so partially cached ensembles
        batch only the missing members.  Any batch failure falls back
        to per-job execution silently (the jobs simply run unfused).
        """
        for ek, members in ensemble_batches(
            [p.spec for p in chain]
        ).items():
            todo = [
                s for s in members
                if self.cache.get_science(s.science_key) is None
            ]
            if len(todo) < 2:
                continue
            start = self.tracer.now()
            try:
                configs = [
                    AirshedConfig(
                        dataset=_build_dataset(s), hours=s.hours,
                        start_hour=s.start_hour,
                    )
                    for s in todo
                ]
                batch_results = run_batched(configs)
            except Exception:  # noqa: BLE001 - fall back to per-job runs
                self._count("campaign:batch_fallbacks")
                continue
            for s, res in zip(todo, batch_results):
                self.cache.put_science(s.science_key, res)
                self._count("campaign:sim_hours", s.hours)
            self._count("campaign:batches")
            self._count("campaign:batched_members", len(todo))
            with self._lock:
                self.tracer.emit(
                    f"batch:{todo[0].dataset}x{len(todo)}", "batch",
                    start, self.tracer.now(), node=slot,
                    ensemble_key=ek, members=len(todo),
                )

    # -- one job, with retries ----------------------------------------
    def _run_job(self, planned: PlannedJob, slot: int) -> JobResult:
        spec = planned.spec
        span_start = self.tracer.now()
        self._count("campaign:jobs")

        payload = self.cache.get_job(spec.key)
        if payload is not None:
            self._count("campaign:cache_hits")
            jr = JobResult(
                spec=spec, status="cached", result=payload["result"],
                timing=payload.get("timing"), attempts=0, from_cache=True,
                science_cached=True, wall_s=0.0,
                predicted_s=planned.predicted_s,
            )
            self._emit_job_span(spec, slot, span_start, self.tracer.now(),
                                "cached", 0)
            return jr

        backoffs: List[float] = []
        last_error = ""
        timed_out = False
        attempts = 0
        for attempt in range(1 + self.retries):
            if attempt > 0:
                delay = self.backoff * (2 ** (attempt - 1))
                backoffs.append(delay)
                self._count("campaign:retries")
                if delay > 0:
                    self._sleep(delay)
            attempts = attempt + 1
            t0 = self._clock()
            try:
                science, timing, science_cached = self._attempt(spec, attempt)
            except (InjectedHang, JobTimeoutError) as exc:
                timed_out = True
                last_error = f"{type(exc).__name__}: {exc}"
                self._count("campaign:timeouts")
                continue
            except InjectedFault as exc:
                timed_out = False
                last_error = f"{type(exc).__name__}: {exc}"
                self._count("campaign:faults")
                continue
            except Exception as exc:  # noqa: BLE001 - job isolation
                timed_out = False
                last_error = f"{type(exc).__name__}: {exc}"
                self._count("campaign:failures")
                continue

            wall = self._clock() - t0
            if science_cached:
                self._count("campaign:science_cache_hits")
            digest = hashlib.sha256(science.final_conc.tobytes()).hexdigest()
            self.cache.put_job(spec.key, {
                "spec": spec.to_dict(),
                "science_key": spec.science_key,
                "timing": timing,
                "status": "ok",
                "final_conc_sha256": digest,
            })
            jr = JobResult(
                spec=spec, status="ok", result=science, timing=timing,
                attempts=attempts, retries=attempts - 1,
                science_cached=science_cached, wall_s=wall,
                predicted_s=planned.predicted_s, backoffs=backoffs,
            )
            self._emit_job_span(spec, slot, span_start, self.tracer.now(),
                                "ok", attempts)
            return jr

        status = "timeout" if timed_out else "failed"
        jr = JobResult(
            spec=spec, status=status, attempts=attempts,
            retries=attempts - 1, predicted_s=planned.predicted_s,
            error=last_error, backoffs=backoffs,
        )
        self._emit_job_span(spec, slot, span_start, self.tracer.now(),
                            status, attempts)
        return jr

    # -- one attempt ---------------------------------------------------
    def _attempt(self, spec: JobSpec, attempt: int):
        if self.executor == "process":
            return self._attempt_process(spec, attempt)

        deadline = (
            None if self.timeout is None else self._clock() + self.timeout
        )

        def check_time() -> None:
            if deadline is not None and self._clock() > deadline:
                raise JobTimeoutError(
                    f"{spec.label} exceeded {self.timeout:g}s"
                )

        def on_hours(h: int) -> None:
            self._count("campaign:sim_hours", h)

        return execute_job(
            spec, self.cache, policy=self.fault_policy, attempt=attempt,
            checkpoint_hours=self.checkpoint_hours, check_time=check_time,
            hang=None, on_hours=on_hours,
        )

    def _attempt_process(self, spec: JobSpec, attempt: int):
        out_dir = self.cache.root / "scratch"
        out_dir.mkdir(parents=True, exist_ok=True)
        out_path = out_dir / f"attempt-{spec.key[:16]}-{attempt}.pkl"
        out_path.unlink(missing_ok=True)
        proc = multiprocessing.Process(
            target=_process_entry,
            args=(spec.to_dict(), str(self.cache.root), self.fault_policy,
                  attempt, self.checkpoint_hours, str(out_path)),
        )
        proc.start()
        proc.join(self.timeout)
        if proc.is_alive():
            proc.terminate()
            proc.join()
            out_path.unlink(missing_ok=True)
            raise JobTimeoutError(
                f"{spec.label} exceeded {self.timeout:g}s (worker killed)"
            )
        if not out_path.is_file():
            raise RuntimeError(
                f"{spec.label} worker died (exit code {proc.exitcode})"
            )
        with out_path.open("rb") as fh:
            payload = pickle.load(fh)
        out_path.unlink(missing_ok=True)
        self._count("campaign:sim_hours", payload["stats"]["sim_hours"])
        if not payload["ok"]:
            err_type = payload.get("error_type", "")
            message = payload.get("error", "job failed")
            if err_type in ("InjectedHang", "JobTimeoutError"):
                raise JobTimeoutError(message)
            if err_type == "InjectedFault":
                raise InjectedFault(message)
            raise RuntimeError(f"{err_type}: {message}")
        science = self.cache.get_science(spec.science_key)
        if science is None:
            raise RuntimeError(
                f"{spec.label} worker reported success but cached no result"
            )
        return science, payload["timing"], payload["science_cached"]
