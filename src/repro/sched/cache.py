"""Content-addressed on-disk result cache for campaign jobs.

Layout under the cache root::

    science/<k[:2]>/<k>.pkl   one AirshedResult per science key
    jobs/<k[:2]>/<k>.pkl      job payload: spec, science key, timing
    scratch/<science_key>/    in-flight checkpoint chunks (see runner)

Science results (the expensive sequential numerics) are stored once per
*science* key; a job entry references its science key instead of
duplicating the arrays, so a machine-comparison grid shares one science
pickle across all its replay jobs.  Keys are the
:class:`~repro.sched.job.JobSpec` content hashes, and builders are
deterministic, so a cache hit returns a bitwise-identical result.

Writes are atomic (temp file + ``os.replace``): a campaign killed
mid-write never leaves a truncated entry behind.  Unreadable entries are
treated as misses and removed.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Union

__all__ = ["ResultCache"]


class ResultCache:
    """Campaign result store rooted at a directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # -- paths ---------------------------------------------------------
    def _entry(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def science_path(self, science_key: str) -> Path:
        return self._entry("science", science_key)

    def job_path(self, key: str) -> Path:
        return self._entry("jobs", key)

    def scratch_dir(self, science_key: str) -> Path:
        """Checkpoint scratch area for one in-flight science run."""
        d = self.root / "scratch" / science_key
        d.mkdir(parents=True, exist_ok=True)
        return d

    def clear_scratch(self, science_key: str) -> None:
        d = self.root / "scratch" / science_key
        if d.is_dir():
            for p in d.iterdir():
                p.unlink()
            d.rmdir()

    # -- low-level pickle I/O ------------------------------------------
    @staticmethod
    def _load(path: Path) -> Optional[Any]:
        if not path.is_file():
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            # A corrupt entry is a miss; drop it so it gets rebuilt.
            path.unlink(missing_ok=True)
            return None

    @staticmethod
    def _store(path: Path, obj: Any) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)

    # -- science results -----------------------------------------------
    def get_science(self, science_key: str) -> Optional[Any]:
        return self._load(self.science_path(science_key))

    def put_science(self, science_key: str, result: Any) -> None:
        self._store(self.science_path(science_key), result)

    # -- job entries ---------------------------------------------------
    def get_job(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored job payload, or ``None`` on any kind of miss.

        The payload references its science result by key; if that
        science entry has been evicted the job entry is useless and is
        reported (and removed) as a miss.
        """
        payload = self._load(self.job_path(key))
        if payload is None:
            return None
        science = self.get_science(payload["science_key"])
        if science is None:
            self.job_path(key).unlink(missing_ok=True)
            return None
        payload["result"] = science
        return payload

    def put_job(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a job payload (must carry ``science_key``; the science
        result itself goes through :meth:`put_science`)."""
        payload = dict(payload)
        payload.pop("result", None)
        if "science_key" not in payload:
            raise ValueError("job payload must reference a science_key")
        self._store(self.job_path(key), payload)

    def iter_jobs(self) -> Iterator[Dict[str, Any]]:
        """Yield every readable job payload (for ``campaign status``)."""
        jobs = self.root / "jobs"
        if not jobs.is_dir():
            return
        for path in sorted(jobs.glob("*/*.pkl")):
            payload = self._load(path)
            if payload is not None:
                yield payload
