"""Content-addressed on-disk result caches for campaign jobs.

:class:`ResultCache` — the reference
:class:`~repro.sched.interfaces.ResultStore` — lays out entries under
its root::

    science/<k[:2]>/<k>.pkl   one AirshedResult per science key
    jobs/<k[:2]>/<k>.pkl      job payload: spec, science key, timing
    scratch/<science_key>/    in-flight checkpoint chunks (see runner)

Science results (the expensive sequential numerics) are stored once per
*science* key; a job entry references its science key instead of
duplicating the arrays, so a machine-comparison grid shares one science
pickle across all its replay jobs.  Keys are the
:class:`~repro.sched.job.JobSpec` content hashes, and builders are
deterministic, so a cache hit returns a bitwise-identical result.

Writes are atomic (temp file + ``os.replace``): a campaign killed
mid-write never leaves a truncated entry behind.  Unreadable entries
are treated as misses and removed on the get path; :meth:`iter_jobs`
merely skips them (a status scan must not abort — or delete — anything
because one entry rotted).  Every cache instance keeps hit/miss/
eviction/corrupt tallies, exposed by :meth:`stats` together with
per-shard occupancy (for the plain cache the ``<k[:2]>`` fan-out
directories are the shards).

:class:`ShardedResultCache` is the service-grade evolution: a fixed
shard count (stable hash of the key, so occupancy is inspectable per
shard), a total size cap, and LRU eviction — reads touch the entry's
mtime, and a put that pushes the cache over ``max_bytes`` evicts the
least-recently-used entries (jobs before science, then oldest first)
until it fits, so an always-on service can absorb millions of
overlapping submissions without unbounded disk growth.
"""

from __future__ import annotations

import os
import pickle
import threading
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

__all__ = ["ResultCache", "ShardedResultCache"]


class ResultCache:
    """Campaign result store rooted at a directory."""

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self._stats_lock = threading.Lock()
        self._counters = {
            "hits": 0, "misses": 0, "evictions": 0, "corrupt_entries": 0,
        }

    # -- pickling (the process executor ships the cache to workers) ----
    def __getstate__(self) -> Dict[str, Any]:
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    # -- stats ---------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        with self._stats_lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def stats(self) -> Dict[str, Any]:
        """Counter totals plus on-disk occupancy, per kind and shard."""
        kinds: Dict[str, Any] = {}
        for kind in ("science", "jobs"):
            shards: Dict[str, Dict[str, int]] = {}
            entries = nbytes = 0
            base = self.root / kind
            if base.is_dir():
                for path in sorted(base.glob("*/*.pkl")):
                    shard = shards.setdefault(
                        path.parent.name, {"entries": 0, "bytes": 0}
                    )
                    size = path.stat().st_size
                    shard["entries"] += 1
                    shard["bytes"] += size
                    entries += 1
                    nbytes += size
            kinds[kind] = {
                "entries": entries,
                "bytes": nbytes,
                "shards": {k: shards[k] for k in sorted(shards)},
            }
        with self._stats_lock:
            counters = dict(self._counters)
        return {
            "root": str(self.root),
            "counters": counters,
            "kinds": kinds,
            "total_bytes": sum(k["bytes"] for k in kinds.values()),
            "total_entries": sum(k["entries"] for k in kinds.values()),
        }

    # -- paths ---------------------------------------------------------
    def _shard(self, key: str) -> str:
        return key[:2]

    def _entry(self, kind: str, key: str) -> Path:
        return self.root / kind / self._shard(key) / f"{key}.pkl"

    def science_path(self, science_key: str) -> Path:
        return self._entry("science", science_key)

    def job_path(self, key: str) -> Path:
        return self._entry("jobs", key)

    def scratch_dir(self, science_key: str) -> Path:
        """Checkpoint scratch area for one in-flight science run."""
        d = self.root / "scratch" / science_key
        d.mkdir(parents=True, exist_ok=True)
        return d

    def clear_scratch(self, science_key: str) -> None:
        d = self.root / "scratch" / science_key
        if d.is_dir():
            for p in d.iterdir():
                p.unlink()
            d.rmdir()

    # -- low-level pickle I/O ------------------------------------------
    def _load(self, path: Path) -> Optional[Any]:
        if not path.is_file():
            return None
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except Exception:
            # A corrupt entry is a miss; drop it so it gets rebuilt.
            self._bump("corrupt_entries")
            path.unlink(missing_ok=True)
            return None

    def _store(self, path: Path, obj: Any) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        with tmp.open("wb") as fh:
            pickle.dump(obj, fh, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        self._after_store(path)

    def _after_store(self, path: Path) -> None:
        """Hook for subclasses (size accounting / eviction)."""

    def _touch(self, path: Path) -> None:
        """Hook for subclasses (LRU recency on reads)."""

    # -- science results -----------------------------------------------
    def get_science(self, science_key: str) -> Optional[Any]:
        result = self._load(self.science_path(science_key))
        if result is None:
            self._bump("misses")
        else:
            self._bump("hits")
            self._touch(self.science_path(science_key))
        return result

    def put_science(self, science_key: str, result: Any) -> None:
        self._store(self.science_path(science_key), result)

    # -- job entries ---------------------------------------------------
    def get_job(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored job payload, or ``None`` on any kind of miss.

        The payload references its science result by key; if that
        science entry has been evicted the job entry is useless and is
        reported (and removed) as a miss.
        """
        payload = self._load(self.job_path(key))
        if payload is None:
            self._bump("misses")
            return None
        science = self._load(self.science_path(payload["science_key"]))
        if science is None:
            self._bump("misses")
            self._bump("evictions")
            self.job_path(key).unlink(missing_ok=True)
            return None
        self._bump("hits")
        self._touch(self.job_path(key))
        self._touch(self.science_path(payload["science_key"]))
        payload["result"] = science
        return payload

    def put_job(self, key: str, payload: Dict[str, Any]) -> None:
        """Store a job payload (must carry ``science_key``; the science
        result itself goes through :meth:`put_science`)."""
        payload = dict(payload)
        payload.pop("result", None)
        if "science_key" not in payload:
            raise ValueError("job payload must reference a science_key")
        self._store(self.job_path(key), payload)

    def iter_jobs(self) -> Iterator[Dict[str, Any]]:
        """Yield every readable job payload (for ``campaign status``).

        A status scan is read-only and best-effort: an entry that fails
        to unpickle — or unpickles to something that is not a payload
        dict — is *skipped* (and tallied in the ``corrupt_entries``
        counter), never deleted, and never aborts the scan.
        """
        jobs = self.root / "jobs"
        if not jobs.is_dir():
            return
        for path in sorted(jobs.glob("*/*.pkl")):
            try:
                with path.open("rb") as fh:
                    payload = pickle.load(fh)
            except Exception:
                self._bump("corrupt_entries")
                continue
            if not isinstance(payload, dict):
                self._bump("corrupt_entries")
                continue
            yield payload


class ShardedResultCache(ResultCache):
    """A sharded, size-capped, LRU-evicting :class:`ResultCache`.

    Parameters
    ----------
    root:
        Cache directory.
    shards:
        Fixed shard count; an entry's shard is a stable function of its
        content hash (``int(key[:8], 16) % shards``), so occupancy per
        shard is inspectable and rebalancing never happens behind a
        running service's back.
    max_bytes:
        Total on-disk budget across science and job entries (scratch is
        exempt — in-flight checkpoints must survive).  ``None`` means
        unbounded.  When a put pushes the total over budget, the least
        recently *used* entries are evicted — job payloads before
        science results (jobs are cheap to lose: they re-derive from
        science), oldest access first — until the cache fits.  The
        entry just written is never evicted by its own put.
    """

    def __init__(self, root: Union[str, Path], shards: int = 16,
                 max_bytes: Optional[int] = None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None)")
        super().__init__(root)
        self.shards = int(shards)
        self.max_bytes = max_bytes
        self._evict_lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        state = super().__getstate__()
        del state["_evict_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        super().__setstate__(state)
        self._evict_lock = threading.Lock()

    # -- layout --------------------------------------------------------
    def _shard(self, key: str) -> str:
        return f"shard-{int(key[:8], 16) % self.shards:03d}"

    # -- LRU recency ---------------------------------------------------
    def _touch(self, path: Path) -> None:
        try:
            os.utime(path)
        except OSError:  # raced with an eviction: recency is best-effort
            pass

    # -- size-capped eviction ------------------------------------------
    def _entries_by_recency(self) -> List[Tuple[int, Path]]:
        """(size, path) for every entry — jobs before science, LRU-first
        within each kind (ties broken by path for determinism)."""
        ranked: List[Tuple[int, float, str, int, Path]] = []
        for rank, kind in enumerate(("jobs", "science")):
            base = self.root / kind
            if not base.is_dir():
                continue
            for path in base.glob("*/*.pkl"):
                try:
                    st = path.stat()
                except OSError:
                    continue
                ranked.append((rank, st.st_mtime, str(path), st.st_size, path))
        ranked.sort(key=lambda t: t[:3])
        return [(size, path) for _, _, _, size, path in ranked]

    def _after_store(self, path: Path) -> None:
        if self.max_bytes is None:
            return
        with self._evict_lock:
            entries = self._entries_by_recency()
            total = sum(size for size, _ in entries)
            if total <= self.max_bytes:
                return
            for size, victim in entries:
                if victim == path:
                    continue  # never evict the entry just written
                try:
                    victim.unlink()
                except OSError:
                    continue
                self._bump("evictions")
                total -= size
                if total <= self.max_bytes:
                    break
