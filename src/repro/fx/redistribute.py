"""Redistribution planning: the communication generator of the Fx compiler.

Given a source and a target :class:`~repro.fx.distribution.ArrayLayout`
over the same array and processor group, the planner produces the exact
set of point-to-point transfers and local copies needed to change the
layout.  These counts drive both the *execution* of a redistribution on
the simulated machine and the *validation* of the paper's closed-form
cost equations (Section 4.2):

* ``D_Repl -> D_Trans``: replicated source means all data is already
  local — the plan is pure local copies (the ``H`` term only).
* ``D_Trans -> D_Chem``: the few layer-owners each send to all ``P``
  nodes — sender-dominated cost.
* ``D_Chem -> D_Repl``: all-gather; every node receives (almost) the
  whole array — receiver-dominated cost, ``~2*L*P`` latency term.

The planner is exact where the paper's formulas are approximations, so
predicted-vs-measured comparisons (Figure 6) show the same small gaps
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Tuple

import numpy as np

from repro.fx.distribution import ArrayLayout
from repro.vm.cluster import Transfer
from repro.vm.transferbatch import TransferBatch

__all__ = ["RedistributionPlan", "plan_redistribution"]

#: Module-level plan cache; plans are pure functions of the layouts.
_PLAN_CACHE: Dict[Tuple[ArrayLayout, ArrayLayout, int], "RedistributionPlan"] = {}


@dataclass(frozen=True)
class RedistributionPlan:
    """Immutable result of planning one redistribution."""

    source: ArrayLayout
    target: ArrayLayout
    itemsize: int
    transfers: Tuple[Transfer, ...]

    @cached_property
    def batch(self) -> TransferBatch:
        """The same transfer set as a :class:`TransferBatch`.

        Computed once per plan (plans themselves are cached), so
        charging a redistribution is array work only — no per-transfer
        Python records on the hot path.
        """
        return TransferBatch.from_transfers(self.transfers)

    def network_bytes(self) -> int:
        """Total bytes crossing the network (excludes local copies)."""
        return sum(t.nbytes for t in self.transfers if t.src != t.dst)

    def copied_bytes(self) -> int:
        """Total bytes copied locally (the ``H`` term)."""
        return sum(t.nbytes for t in self.transfers if t.src == t.dst)

    def message_count(self) -> int:
        """Number of network messages (one per communicating pair)."""
        return sum(t.messages for t in self.transfers if t.src != t.dst)

    def bytes_sent_by(self, node: int) -> int:
        return sum(t.nbytes for t in self.transfers if t.src == node and t.dst != node)

    def bytes_received_by(self, node: int) -> int:
        return sum(t.nbytes for t in self.transfers if t.dst == node and t.src != node)

    def bytes_copied_by(self, node: int) -> int:
        return sum(t.nbytes for t in self.transfers if t.src == node and t.dst == node)

    def is_empty(self) -> bool:
        return not self.transfers


def plan_redistribution(
    source: ArrayLayout, target: ArrayLayout, itemsize: int
) -> RedistributionPlan:
    """Plan the transfers converting ``source`` layout into ``target``.

    Both layouts must describe the same global shape and processor
    count.  The plan is cached: Airshed re-executes the same three
    redistributions thousands of times per run.
    """
    if source.shape != target.shape:
        raise ValueError(
            f"layout shapes differ: {source.shape} vs {target.shape}"
        )
    if source.nprocs != target.nprocs:
        raise ValueError(
            f"layout processor counts differ: {source.nprocs} vs {target.nprocs}"
        )
    key = (source, target, int(itemsize))
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    plan = RedistributionPlan(
        source=source,
        target=target,
        itemsize=int(itemsize),
        transfers=tuple(_build_transfers(source, target, int(itemsize))),
    )
    _PLAN_CACHE[key] = plan
    return plan


def _build_transfers(
    src_layout: ArrayLayout, dst_layout: ArrayLayout, itemsize: int
) -> List[Transfer]:
    P = src_layout.nprocs
    shape = src_layout.shape

    # Identical layouts (including repl -> repl): nothing moves.
    if src_layout == dst_layout or (
        src_layout.is_replicated and dst_layout.is_replicated
    ):
        return []

    transfers: List[Transfer] = []

    if src_layout.is_replicated:
        # Data is locally available everywhere: each node copies out the
        # part it owns under the target layout.  No network traffic —
        # this is the paper's D_Repl -> D_Trans step.
        for node in range(P):
            nbytes = dst_layout.local_nbytes(node, itemsize)
            if nbytes:
                transfers.append(Transfer(node, node, nbytes))
        return transfers

    if dst_layout.is_replicated:
        # All-gather: every node needs the full array.  Each source block
        # goes to all other nodes; the node's own block is a local copy.
        for src in range(P):
            nbytes = src_layout.local_nbytes(src, itemsize)
            if not nbytes:
                continue
            for dst in range(P):
                transfers.append(Transfer(src, dst, nbytes))
        return transfers

    # Both distributed.
    dim_s, dim_t = src_layout.dim, dst_layout.dim
    if dim_s == dim_t:
        # Same dimension: pairwise index-set intersections.
        other = src_layout.other_size()
        owned_s = [src_layout.owned_indices(i) for i in range(P)]
        owned_t = [dst_layout.owned_indices(i) for i in range(P)]
        for src in range(P):
            if owned_s[src].size == 0:
                continue
            for dst in range(P):
                if owned_t[dst].size == 0:
                    continue
                common = np.intersect1d(
                    owned_s[src], owned_t[dst], assume_unique=True
                )
                if common.size:
                    transfers.append(
                        Transfer(src, dst, int(common.size) * other * itemsize)
                    )
        return transfers

    # Distributed along different dimensions (D_Trans -> D_Chem): the
    # data for (i in A(src), j in B(dst)) forms a rectangular tile.
    other = 1
    for d, s in enumerate(shape):
        if d not in (dim_s, dim_t):
            other *= s
    for src in range(P):
        n_src = len(src_layout.owned_indices(src))
        if n_src == 0:
            continue
        for dst in range(P):
            n_dst = len(dst_layout.owned_indices(dst))
            if n_dst == 0:
                continue
            nbytes = n_src * n_dst * other * itemsize
            transfers.append(Transfer(src, dst, nbytes))
    return transfers
