"""Redistribution planning: the communication generator of the Fx compiler.

Given a source and a target :class:`~repro.fx.distribution.ArrayLayout`
over the same array and processor group, the planner produces the exact
set of point-to-point transfers and local copies needed to change the
layout.  These counts drive both the *execution* of a redistribution on
the simulated machine and the *validation* of the paper's closed-form
cost equations (Section 4.2):

* ``D_Repl -> D_Trans``: replicated source means all data is already
  local — the plan is pure local copies (the ``H`` term only).
* ``D_Trans -> D_Chem``: the few layer-owners each send to all ``P``
  nodes — sender-dominated cost.
* ``D_Chem -> D_Repl``: all-gather; every node receives (almost) the
  whole array — receiver-dominated cost, ``~2*L*P`` latency term.

The planner is exact where the paper's formulas are approximations, so
predicted-vs-measured comparisons (Figure 6) show the same small gaps
the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Tuple

import numpy as np

from repro.fx.distribution import ArrayLayout
from repro.vm.cluster import Transfer
from repro.vm.transferbatch import TransferBatch

__all__ = ["RedistributionPlan", "plan_redistribution"]

#: Module-level plan cache; plans are pure functions of the layouts.
_PLAN_CACHE: Dict[Tuple[ArrayLayout, ArrayLayout, int], "RedistributionPlan"] = {}


@dataclass(frozen=True)
class RedistributionPlan:
    """Immutable result of planning one redistribution.

    The transfer set is held as a :class:`TransferBatch` (parallel
    ``src``/``dst``/``nbytes`` arrays, built vectorised by the planner
    — the ``D_Chem -> D_Repl`` all-gather is O(P^2) records and
    dominates cold planning time as Python objects).  ``transfers``
    derives the record view on first use for the analyzers and tests
    that still walk records.  Identity is the (source, target,
    itemsize) triple; the batch is a pure function of it.
    """

    source: ArrayLayout
    target: ArrayLayout
    itemsize: int
    batch: TransferBatch = field(compare=False)

    @cached_property
    def transfers(self) -> Tuple[Transfer, ...]:
        """The equivalent ``Transfer`` record view (planning order)."""
        return tuple(self.batch.to_transfers())

    def network_bytes(self) -> int:
        """Total bytes crossing the network (excludes local copies)."""
        b = self.batch
        return int(b.nbytes[b.src != b.dst].sum())

    def copied_bytes(self) -> int:
        """Total bytes copied locally (the ``H`` term)."""
        b = self.batch
        return int(b.nbytes[b.src == b.dst].sum())

    def message_count(self) -> int:
        """Number of network messages (one per communicating pair)."""
        b = self.batch
        net = b.src != b.dst
        if b.messages is None:
            return int(net.sum())
        return int(b.messages[net].sum())

    def bytes_sent_by(self, node: int) -> int:
        b = self.batch
        return int(b.nbytes[(b.src == node) & (b.dst != node)].sum())

    def bytes_received_by(self, node: int) -> int:
        b = self.batch
        return int(b.nbytes[(b.dst == node) & (b.src != node)].sum())

    def bytes_copied_by(self, node: int) -> int:
        b = self.batch
        return int(b.nbytes[(b.src == node) & (b.dst == node)].sum())

    def is_empty(self) -> bool:
        return len(self.batch) == 0


def plan_redistribution(
    source: ArrayLayout, target: ArrayLayout, itemsize: int
) -> RedistributionPlan:
    """Plan the transfers converting ``source`` layout into ``target``.

    Both layouts must describe the same global shape and processor
    count.  The plan is cached: Airshed re-executes the same three
    redistributions thousands of times per run.
    """
    if source.shape != target.shape:
        raise ValueError(
            f"layout shapes differ: {source.shape} vs {target.shape}"
        )
    if source.nprocs != target.nprocs:
        raise ValueError(
            f"layout processor counts differ: {source.nprocs} vs {target.nprocs}"
        )
    key = (source, target, int(itemsize))
    cached = _PLAN_CACHE.get(key)
    if cached is not None:
        return cached
    plan = RedistributionPlan(
        source=source,
        target=target,
        itemsize=int(itemsize),
        batch=_build_batch(source, target, int(itemsize)),
    )
    _PLAN_CACHE[key] = plan
    return plan


_EMPTY = np.empty(0, dtype=np.int64)


def _build_batch(
    src_layout: ArrayLayout, dst_layout: ArrayLayout, itemsize: int
) -> TransferBatch:
    """The transfer set as parallel arrays, in record-planning order.

    Each branch builds ``(src, dst, nbytes)`` vectorised but enumerates
    pairs exactly as the original record loop did (source-major, then
    destination), so :attr:`RedistributionPlan.transfers` reproduces the
    historical tuple element for element.
    """
    P = src_layout.nprocs
    shape = src_layout.shape

    # Identical layouts (including repl -> repl): nothing moves.
    if src_layout == dst_layout or (
        src_layout.is_replicated and dst_layout.is_replicated
    ):
        return TransferBatch(_EMPTY, _EMPTY, _EMPTY)

    if src_layout.is_replicated:
        # Data is locally available everywhere: each node copies out the
        # part it owns under the target layout.  No network traffic —
        # this is the paper's D_Repl -> D_Trans step.
        nbytes = np.fromiter(
            (dst_layout.local_nbytes(node, itemsize) for node in range(P)),
            np.int64, count=P,
        )
        nodes = np.flatnonzero(nbytes).astype(np.int64)
        return TransferBatch(nodes, nodes, nbytes[nodes])

    if dst_layout.is_replicated:
        # All-gather: every node needs the full array.  Each source block
        # goes to all other nodes; the node's own block is a local copy.
        nbytes = np.fromiter(
            (src_layout.local_nbytes(node, itemsize) for node in range(P)),
            np.int64, count=P,
        )
        senders = np.flatnonzero(nbytes).astype(np.int64)
        return TransferBatch(
            np.repeat(senders, P),
            np.tile(np.arange(P, dtype=np.int64), senders.size),
            np.repeat(nbytes[senders], P),
        )

    # Both distributed.
    dim_s, dim_t = src_layout.dim, dst_layout.dim
    if dim_s == dim_t:
        # Same dimension: pairwise index-set intersections.
        other = src_layout.other_size()
        owned_s = [src_layout.owned_indices(i) for i in range(P)]
        owned_t = [dst_layout.owned_indices(i) for i in range(P)]
        srcs, dsts, sizes = [], [], []
        for src in range(P):
            if owned_s[src].size == 0:
                continue
            for dst in range(P):
                if owned_t[dst].size == 0:
                    continue
                common = np.intersect1d(
                    owned_s[src], owned_t[dst], assume_unique=True
                )
                if common.size:
                    srcs.append(src)
                    dsts.append(dst)
                    sizes.append(int(common.size) * other * itemsize)
        return TransferBatch(srcs, dsts, sizes)

    # Distributed along different dimensions (D_Trans -> D_Chem): the
    # data for (i in A(src), j in B(dst)) forms a rectangular tile.
    other = 1
    for d, s in enumerate(shape):
        if d not in (dim_s, dim_t):
            other *= s
    n_src = np.fromiter(
        (len(src_layout.owned_indices(i)) for i in range(P)),
        np.int64, count=P,
    )
    n_dst = np.fromiter(
        (len(dst_layout.owned_indices(i)) for i in range(P)),
        np.int64, count=P,
    )
    senders = np.flatnonzero(n_src).astype(np.int64)
    receivers = np.flatnonzero(n_dst).astype(np.int64)
    return TransferBatch(
        np.repeat(senders, receivers.size),
        np.tile(receivers, senders.size),
        np.repeat(n_src[senders], receivers.size)
        * np.tile(n_dst[receivers], senders.size)
        * (other * itemsize),
    )
