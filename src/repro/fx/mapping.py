"""Optimal processor allocation for task-parallel pipelines.

The paper's task-parallel Airshed fixes one node each for the input and
output stages.  Its authors' companion work (Subhlok & Vondran,
"Optimal mapping of sequences of data parallel tasks", PPoPP'95; and
"Optimal latency-throughput tradeoffs for data parallel pipelines",
SPAA'96 — both cited in Section 5) computes the allocation instead:
given each stage's execution-time function of its node count, choose
the split of P nodes across stages that minimises the pipeline's
steady-state period (the bottleneck stage time).

This module implements that optimisation for stage models of the form
``t(p) = sequential + parallel_work / min(p, max_parallelism)``, which
covers every Airshed stage, plus a helper that picks the best
*configuration* for the Airshed pipeline itself (including the
degenerate all-nodes-data-parallel configuration, so small machines are
never hurt by dedicating I/O nodes — the Figure 9 small-P anomaly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

__all__ = ["StageModel", "optimal_pipeline_mapping", "best_airshed_mapping"]


@dataclass(frozen=True)
class StageModel:
    """Execution-time model of one pipeline stage.

    ``time(p) = sequential + parallel_work / min(p, max_parallelism)``
    (seconds per pipeline item on ``p`` nodes).
    """

    name: str
    sequential: float
    parallel_work: float = 0.0
    max_parallelism: int = 1

    def __post_init__(self) -> None:
        if self.sequential < 0 or self.parallel_work < 0:
            raise ValueError("stage times must be non-negative")
        if self.max_parallelism < 1:
            raise ValueError("max_parallelism must be >= 1")

    def time(self, p: int) -> float:
        if p < 1:
            raise ValueError("p must be >= 1")
        return self.sequential + self.parallel_work / min(p, self.max_parallelism)


@dataclass(frozen=True)
class PipelineMapping:
    """Result of the allocation: nodes per stage and the period."""

    allocation: Tuple[int, ...]
    period: float
    stage_times: Tuple[float, ...]


def optimal_pipeline_mapping(
    stages: Sequence[StageModel], nprocs: int
) -> PipelineMapping:
    """Minimise the pipeline period over all allocations summing to P.

    Exact dynamic program over (stage, nodes-used): state cost is the
    max stage time so far; O(S * P^2), tiny for Airshed-scale problems.
    Every stage gets at least one node.
    """
    S = len(stages)
    if S == 0:
        raise ValueError("need at least one stage")
    if nprocs < S:
        raise ValueError(f"{S} stages need at least {S} nodes; got {nprocs}")

    # dp[used] = (best period, allocation tuple) after assigning a prefix.
    INF = float("inf")
    dp: Dict[int, Tuple[float, Tuple[int, ...]]] = {0: (0.0, ())}
    for s, stage in enumerate(stages):
        remaining_stages = S - s - 1
        ndp: Dict[int, Tuple[float, Tuple[int, ...]]] = {}
        for used, (period, alloc) in dp.items():
            max_here = nprocs - used - remaining_stages
            for p in range(1, max_here + 1):
                cand = max(period, stage.time(p))
                key = used + p
                if key not in ndp or cand < ndp[key][0]:
                    ndp[key] = (cand, alloc + (p,))
        dp = ndp
    # Using fewer than all nodes is allowed (leftover nodes idle), so
    # take the best over all totals.
    best_period, best_alloc = min(dp.values(), key=lambda t: t[0])
    times = tuple(
        stage.time(p) for stage, p in zip(stages, best_alloc)
    )
    return PipelineMapping(
        allocation=best_alloc, period=best_period, stage_times=times
    )


def best_airshed_mapping(
    io_input: StageModel,
    main: StageModel,
    io_output: StageModel,
    nprocs: int,
) -> Tuple[str, PipelineMapping]:
    """Choose between pipelined and pure data-parallel configurations.

    Returns ``(mode, mapping)`` where mode is ``"pipelined"`` or
    ``"data-parallel"``.  The data-parallel configuration runs all three
    stages serially on all nodes (period = sum of stage times at P),
    which is exactly the Figure 9 baseline; the optimiser picks whichever
    period is lower, so small machines keep their nodes.
    """
    serial_period = (
        io_input.time(nprocs) + main.time(nprocs) + io_output.time(nprocs)
    )
    serial = PipelineMapping(
        allocation=(nprocs,),
        period=serial_period,
        stage_times=(serial_period,),
    )
    if nprocs < 3:
        return ("data-parallel", serial)
    piped = optimal_pipeline_mapping([io_input, main, io_output], nprocs)
    if piped.period < serial_period:
        return ("pipelined", piped)
    return ("data-parallel", serial)
