"""HPF/Fx-style data distributions.

Fx (like HPF) lets the programmer annotate each array dimension with a
layout directive.  Airshed uses three layouts of its concentration array
``A(species, layers, nodes)``:

* ``D_Repl``  = ``A(*,*,*)``      — fully replicated,
* ``D_Trans`` = ``A(*,BLOCK,*)``  — block-distributed over *layers*,
* ``D_Chem``  = ``A(*,*,BLOCK)``  — block-distributed over *grid nodes*.

This module implements the general machinery (``BLOCK``, ``CYCLIC`` and
``BLOCK_CYCLIC`` along one dimension, or full replication) and computes
exact per-node ownership, which the redistribution planner uses to count
messages, bytes and local copies.

A deliberate restriction, matching Airshed's needs: at most one dimension
of an array is distributed at a time.  (HPF permits multi-dimensional
processor grids; Airshed never uses them.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["DistKind", "Distribution", "ArrayLayout"]


class DistKind(Enum):
    """Layout of the single distributed dimension."""

    BLOCK = "block"
    CYCLIC = "cyclic"
    BLOCK_CYCLIC = "block_cyclic"


@dataclass(frozen=True)
class Distribution:
    """A distribution directive for an ``ndim``-dimensional array.

    ``dim is None`` means fully replicated (HPF ``(*,...,*)`` onto every
    processor).  Otherwise dimension ``dim`` is laid out across the
    processor group according to ``kind``.
    """

    ndim: int
    dim: Optional[int] = None
    kind: DistKind = DistKind.BLOCK
    block_size: int = 1

    def __post_init__(self) -> None:
        if self.ndim < 1:
            raise ValueError("ndim must be >= 1")
        if self.dim is not None and not (0 <= self.dim < self.ndim):
            raise ValueError(f"dim {self.dim} out of range for ndim {self.ndim}")
        if self.kind is DistKind.BLOCK_CYCLIC and self.block_size < 1:
            raise ValueError("block_size must be >= 1 for BLOCK_CYCLIC")

    # -- constructors ---------------------------------------------------
    @staticmethod
    def replicated(ndim: int) -> "Distribution":
        """``A(*,...,*)`` — every node holds the whole array."""
        return Distribution(ndim=ndim, dim=None)

    @staticmethod
    def block(ndim: int, dim: int) -> "Distribution":
        """``BLOCK`` along ``dim``: contiguous chunks of near-equal size."""
        return Distribution(ndim=ndim, dim=dim, kind=DistKind.BLOCK)

    @staticmethod
    def cyclic(ndim: int, dim: int) -> "Distribution":
        """``CYCLIC`` along ``dim``: index ``i`` lives on node ``i % P``."""
        return Distribution(ndim=ndim, dim=dim, kind=DistKind.CYCLIC)

    @staticmethod
    def block_cyclic(ndim: int, dim: int, block_size: int) -> "Distribution":
        """``CYCLIC(k)``: blocks of ``k`` dealt round-robin to nodes."""
        return Distribution(
            ndim=ndim, dim=dim, kind=DistKind.BLOCK_CYCLIC, block_size=block_size
        )

    @staticmethod
    def parse(directive: str) -> "Distribution":
        """Parse an HPF-style directive string, e.g. ``"(*,BLOCK,*)"``.

        Accepts ``*``, ``BLOCK``, ``CYCLIC`` and ``CYCLIC(k)`` (case
        insensitive), with at most one distributed dimension — the
        subset of HPF that Fx-Airshed uses.  Inverse of :meth:`spec`.
        """
        text = directive.strip()
        if not (text.startswith("(") and text.endswith(")")):
            raise ValueError(f"directive must be parenthesised: {directive!r}")
        parts = [p.strip().upper() for p in text[1:-1].split(",")]
        if not parts or any(not p for p in parts):
            raise ValueError(f"empty dimension in directive {directive!r}")
        dist_dim: Optional[int] = None
        kind = DistKind.BLOCK
        block_size = 1
        for d, token in enumerate(parts):
            if token == "*":
                continue
            if dist_dim is not None:
                raise ValueError(
                    f"{directive!r}: at most one distributed dimension is "
                    "supported (Airshed never uses processor grids)"
                )
            dist_dim = d
            if token == "BLOCK":
                kind = DistKind.BLOCK
            elif token == "CYCLIC":
                kind = DistKind.CYCLIC
            elif token.startswith("CYCLIC(") and token.endswith(")"):
                kind = DistKind.BLOCK_CYCLIC
                try:
                    block_size = int(token[7:-1])
                except ValueError:
                    raise ValueError(f"bad CYCLIC block size in {directive!r}")
            else:
                raise ValueError(f"unknown directive token {token!r}")
        if dist_dim is None:
            return Distribution.replicated(len(parts))
        return Distribution(
            ndim=len(parts), dim=dist_dim, kind=kind, block_size=block_size
        )

    @property
    def is_replicated(self) -> bool:
        return self.dim is None

    def spec(self) -> str:
        """HPF-ish directive string, e.g. ``A(*,BLOCK,*)``."""
        parts = []
        for d in range(self.ndim):
            if d != self.dim:
                parts.append("*")
            elif self.kind is DistKind.BLOCK:
                parts.append("BLOCK")
            elif self.kind is DistKind.CYCLIC:
                parts.append("CYCLIC")
            else:
                parts.append(f"CYCLIC({self.block_size})")
        return "(" + ",".join(parts) + ")"

    def layout(self, shape: Sequence[int], nprocs: int) -> "ArrayLayout":
        """The (cached) concrete layout of this distribution.

        Layouts are immutable pure functions of ``(distribution, shape,
        nprocs)``; the main loop asks for the same handful over and over
        (once per redistribution per step), so they are memoized at
        module level.  The cache is cleared wholesale when it grows past
        a bound — only property-based tests ever produce that many
        distinct layouts.
        """
        key = (self, tuple(int(s) for s in shape), int(nprocs))
        cached = _LAYOUT_CACHE.get(key)
        if cached is None:
            if len(_LAYOUT_CACHE) >= _LAYOUT_CACHE_MAX:
                _LAYOUT_CACHE.clear()
            cached = ArrayLayout(self, key[1], key[2])
            _LAYOUT_CACHE[key] = cached
        return cached


#: Memoized layouts keyed by (distribution, shape, nprocs); see
#: :meth:`Distribution.layout`.
_LAYOUT_CACHE: dict = {}
_LAYOUT_CACHE_MAX = 4096


class ArrayLayout:
    """Concrete ownership map: a Distribution applied to a shape and P.

    For a replicated layout every node *holds* the full array.  For a
    distributed layout each node owns a subset of the indices along the
    distributed dimension (possibly empty when ``P`` exceeds the extent,
    which is exactly the situation of Airshed's transport phase: 5 layers
    on up to 128 nodes).
    """

    def __init__(self, distribution: Distribution, shape: Tuple[int, ...], nprocs: int):
        if len(shape) != distribution.ndim:
            raise ValueError(
                f"shape {shape} does not match ndim {distribution.ndim}"
            )
        if any(s < 0 for s in shape):
            raise ValueError(f"negative extent in shape {shape}")
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        self.distribution = distribution
        self.shape = shape
        self.nprocs = int(nprocs)
        # Per-node ownership cache; the returned arrays are shared and
        # therefore marked read-only.
        self._owned_cache: dict = {}

    # -- basic properties -----------------------------------------------
    @property
    def dim(self) -> Optional[int]:
        return self.distribution.dim

    @property
    def is_replicated(self) -> bool:
        return self.distribution.is_replicated

    @property
    def extent(self) -> int:
        """Extent of the distributed dimension (full size if replicated)."""
        if self.is_replicated:
            return int(np.prod(self.shape)) if self.shape else 1
        return self.shape[self.dim]

    def other_size(self) -> int:
        """Number of elements per index of the distributed dimension."""
        if self.is_replicated:
            return 1
        n = 1
        for d, s in enumerate(self.shape):
            if d != self.dim:
                n *= s
        return n

    def total_elements(self) -> int:
        n = 1
        for s in self.shape:
            n *= s
        return n

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayLayout)
            and self.distribution == other.distribution
            and self.shape == other.shape
            and self.nprocs == other.nprocs
        )

    def __hash__(self) -> int:
        return hash((self.distribution, self.shape, self.nprocs))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ArrayLayout(A{self.distribution.spec()}, shape={self.shape}, "
            f"P={self.nprocs})"
        )

    # -- ownership ------------------------------------------------------
    def owned_indices(self, node: int) -> np.ndarray:
        """Global indices along the distributed dim owned by ``node``.

        Only defined for distributed layouts; a replicated layout has no
        distinguished dimension (every node holds everything).  The
        result is cached per node and returned as a *read-only* array —
        the replay loop asks for the same ownership sets every step.
        """
        node = int(node)
        cached = self._owned_cache.get(node)
        if cached is not None:
            return cached
        if not (0 <= node < self.nprocs):
            raise ValueError(f"node {node} out of range for P={self.nprocs}")
        if self.is_replicated:
            raise ValueError("owned_indices is undefined for replicated layouts")
        n = self.shape[self.dim]
        kind = self.distribution.kind
        if kind is DistKind.BLOCK:
            lo, hi = self.block_bounds(node)
            idx = np.arange(lo, hi)
        elif kind is DistKind.CYCLIC:
            idx = np.arange(node, n, self.nprocs)
        else:  # BLOCK_CYCLIC
            bs = self.distribution.block_size
            all_idx = np.arange(n)
            idx = all_idx[(all_idx // bs) % self.nprocs == node]
        idx.setflags(write=False)
        self._owned_cache[node] = idx
        return idx

    def block_bounds(self, node: int) -> Tuple[int, int]:
        """Half-open ``[lo, hi)`` interval for a BLOCK layout.

        HPF BLOCK semantics: block size ``ceil(n/P)``; trailing nodes may
        own a short or empty block.
        """
        if self.is_replicated or self.distribution.kind is not DistKind.BLOCK:
            raise ValueError("block_bounds only applies to BLOCK layouts")
        n = self.shape[self.dim]
        if n == 0:
            return (0, 0)
        bs = math.ceil(n / self.nprocs)
        lo = min(node * bs, n)
        hi = min(lo + bs, n)
        return (lo, hi)

    def local_count(self, node: int) -> int:
        """Number of array *elements* (not indices) held by ``node``."""
        if self.is_replicated:
            return self.total_elements()
        return len(self.owned_indices(node)) * self.other_size()

    def local_nbytes(self, node: int, itemsize: int) -> int:
        return self.local_count(node) * itemsize

    def max_local_count(self) -> int:
        """Elements on the most loaded node — the paper's ``ceil`` terms."""
        if self.is_replicated:
            return self.total_elements()
        n = self.shape[self.dim]
        if n == 0:
            return 0
        kind = self.distribution.kind
        if kind in (DistKind.BLOCK, DistKind.CYCLIC):
            per = math.ceil(n / self.nprocs)
        else:
            # BLOCK_CYCLIC: the last block may be short, so count exactly.
            per = max(
                len(self.owned_indices(node)) for node in range(self.nprocs)
            )
        return per * self.other_size()

    def owner_of(self, index: int) -> int:
        """Owning node of ``index`` along the distributed dimension.

        For replicated layouts ownership is shared; by convention the
        *primary* owner is node 0 (used when a unique sender is needed).
        """
        if self.is_replicated:
            return 0
        n = self.shape[self.dim]
        if not (0 <= index < n):
            raise ValueError(f"index {index} out of range 0..{n - 1}")
        kind = self.distribution.kind
        if kind is DistKind.BLOCK:
            bs = math.ceil(n / self.nprocs)
            return index // bs
        if kind is DistKind.CYCLIC:
            return index % self.nprocs
        bs = self.distribution.block_size
        return (index // bs) % self.nprocs

    def holders_count(self, index: int) -> int:
        """How many nodes hold ``index``: P if replicated, else 1."""
        return self.nprocs if self.is_replicated else 1

    def degree_of_parallelism(self) -> int:
        """Useful parallelism: nodes with non-empty ownership."""
        if self.is_replicated:
            return 1
        return min(self.nprocs, max(self.shape[self.dim], 1))

    def local_slice(self, node: int) -> Tuple[slice, ...]:
        """Index tuple selecting the node's data as a *view* of the
        global array.  BLOCK uses a contiguous slice, CYCLIC a strided
        slice; BLOCK_CYCLIC generally needs fancy indexing and raises.
        """
        if self.is_replicated:
            return tuple(slice(None) for _ in self.shape)
        kind = self.distribution.kind
        out = [slice(None)] * len(self.shape)
        if kind is DistKind.BLOCK:
            lo, hi = self.block_bounds(node)
            out[self.dim] = slice(lo, hi)
        elif kind is DistKind.CYCLIC:
            out[self.dim] = slice(node, None, self.nprocs)
        else:
            raise ValueError("BLOCK_CYCLIC layouts have no contiguous view")
        return tuple(out)
