"""The Fx runtime: ties distributions, loops and redistribution together.

An :class:`FxRuntime` owns a simulated :class:`~repro.vm.cluster.Cluster`
and exposes the operations an Fx-compiled program performs:

* creating distributed arrays,
* redistributing them (charging the communication cost of the planner's
  exact transfer set),
* running owner-computes parallel loops and replicated computations,
* sequential I/O processing,
* splitting the machine into task subgroups.

The phase naming convention is load-bearing for the benchmarks:
compute phases carry their component name (``"chemistry"``,
``"transport"``, ``"aerosol"``), I/O phases are prefixed ``"io:"``, and
redistributions carry the paper's names (``"D_Repl->D_Trans"`` etc.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence

import numpy as np

from repro.fx.darray import DistributedArray
from repro.fx.distribution import Distribution
from repro.fx.ploop import Kernel, parallel_do, replicated_do
from repro.fx.tasks import Pipeline, PipelineStage, split_cluster
from repro.observe.compare import breakdown as _span_breakdown
from repro.observe.tracer import Tracer
from repro.vm.cluster import Cluster, Subgroup
from repro.vm.machine import MachineSpec
from repro.vm.traffic import PhaseRecord, Timeline

__all__ = ["FxRuntime", "PhaseIO", "dist_label"]


@dataclass(frozen=True)
class PhaseIO:
    """Declared input/output variable sets of one named phase.

    The Fx compiler derives these from the directives; our drivers
    declare them explicitly so the static analyzer
    (:mod:`repro.analyze`) can reason about data flow without executing
    the program.
    """

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()


def dist_label(distribution: Distribution) -> str:
    """Paper-style short name for a distribution of A(species,layers,nodes)."""
    if distribution.is_replicated:
        return "D_Repl"
    if distribution.ndim == 3 and distribution.dim == 1:
        return "D_Trans"
    if distribution.ndim == 3 and distribution.dim == 2:
        return "D_Chem"
    return f"D_dim{distribution.dim}"


class FxRuntime:
    """Execution context for one Fx program on one simulated machine."""

    def __init__(
        self, machine: MachineSpec, nprocs: int, tracer: Optional[Tracer] = None
    ) -> None:
        self.cluster = Cluster(machine, nprocs, tracer=tracer)
        self.world = self.cluster.subgroup(range(nprocs))
        #: Declared data-access sets per phase name (``repro.analyze``
        #: consumes these; execution ignores them).
        self.phase_decls: Dict[str, PhaseIO] = {}

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def machine(self) -> MachineSpec:
        return self.cluster.machine

    @property
    def nprocs(self) -> int:
        return self.cluster.nprocs

    @property
    def timeline(self) -> Timeline:
        return self.cluster.timeline

    @property
    def tracer(self) -> Tracer:
        return self.cluster.tracer

    def span(self, name: str, kind: str = "region", **attrs):
        """Open a region span on the run's tracer (context manager)."""
        return self.tracer.span(name, kind=kind, **attrs)

    def time(self) -> float:
        return self.cluster.time()

    # ------------------------------------------------------------------
    # arrays
    # ------------------------------------------------------------------
    def darray(
        self,
        name: str,
        data: np.ndarray,
        distribution: Distribution,
        group: Optional[Subgroup] = None,
    ) -> DistributedArray:
        return DistributedArray(name, data, distribution, group or self.world)

    def redistribute(
        self,
        array: DistributedArray,
        new_distribution: Distribution,
        label: Optional[str] = None,
    ) -> PhaseRecord | None:
        """Change an array's layout, charging the planner's exact cost.

        Returns the communication phase record, or ``None`` when the
        plan is empty (identical layouts: the Fx compiler emits no code).
        """
        if label is None:
            label = f"{dist_label(array.distribution)}->{dist_label(new_distribution)}"
        plan = array.set_distribution(new_distribution)
        if plan.is_empty():
            return None
        return array.group.charge_communication(label, plan.batch)

    # ------------------------------------------------------------------
    # program description
    # ------------------------------------------------------------------
    def declare_phase(
        self,
        name: str,
        reads: Iterable[str] = (),
        writes: Iterable[str] = (),
    ) -> PhaseIO:
        """Register the declared read/write sets of a named phase.

        Mirrors the input/output annotations of an Fx task region;
        purely declarative (no effect on execution or timing).
        """
        decl = PhaseIO(reads=frozenset(reads), writes=frozenset(writes))
        self.phase_decls[name] = decl
        return decl

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    def parallel_do(self, array: DistributedArray, name: str, kernel: Kernel) -> PhaseRecord:
        return parallel_do(array, name, kernel)

    def replicated_do(
        self,
        array: DistributedArray,
        name: str,
        kernel: Callable[[np.ndarray], float],
        ops: Optional[float] = None,
    ) -> PhaseRecord:
        return replicated_do(array, name, kernel, ops=ops)

    def sequential_io(
        self,
        name: str,
        nbytes: float,
        ops: float = 0.0,
        group: Optional[Subgroup] = None,
        rank: int = 0,
        blocking: bool = True,
    ) -> PhaseRecord:
        grp = group or self.world
        return grp.charge_io(f"io:{name}", nbytes, ops=ops, rank=rank, blocking=blocking)

    # ------------------------------------------------------------------
    # task parallelism
    # ------------------------------------------------------------------
    def split(self, sizes: Sequence[int]) -> List[Subgroup]:
        return split_cluster(self.cluster, sizes)

    def pipeline(self, stages: Sequence[PipelineStage]) -> Pipeline:
        return Pipeline(self.cluster, stages)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def phase_times(self) -> Dict[str, float]:
        """Simulated seconds per phase name."""
        return self.timeline.time_by_name()

    def breakdown(self) -> Dict[str, float]:
        """The paper's Figure 4 decomposition of total execution time.

        Buckets: ``chemistry`` (the tiny replicated aerosol step folded
        in, as in the paper), ``transport``, ``io`` and
        ``communication``; anything else lands in ``other`` so nothing
        is silently dropped.  Computed from the observability event
        stream (:func:`repro.observe.breakdown`), which mirrors the
        timeline exactly.
        """
        return _span_breakdown(self.tracer)
