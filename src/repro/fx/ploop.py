"""Owner-computes parallel loops.

Fx expresses loop parallelism with a ``parallel do`` construct; the
compiler assigns iterations to the node owning the data they touch.  In
the reproduction a kernel is invoked once per subgroup rank on that
rank's partition (a numpy view of the canonical array) and returns the
number of abstract work units it performed.  The cluster then charges
each node its own cost, so load imbalance (e.g. 5 layers on 4 nodes: one
node gets 2 layers) shows up exactly as it does in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.fx.darray import DistributedArray
from repro.vm.cluster import Transfer
from repro.vm.traffic import PhaseRecord

__all__ = ["parallel_do", "parallel_reduce", "replicated_do", "Kernel"]

#: Kernel signature: (local_view, global_indices, rank) -> ops performed.
Kernel = Callable[[np.ndarray, np.ndarray, int], float]


def parallel_do(
    array: DistributedArray,
    name: str,
    kernel: Kernel,
) -> PhaseRecord:
    """Run ``kernel`` on every rank's partition of a *distributed* array.

    The kernel receives a writable view into the canonical array, so the
    real numerics are computed exactly once across the group, while each
    node's simulated clock advances by the cost of its own share.
    Ranks owning nothing participate with zero ops (they still
    synchronise at the next collective, as on the real machine).
    """
    if array.layout.is_replicated:
        raise ValueError(
            f"parallel_do needs a distributed layout; {array.name} is replicated "
            "(use replicated_do)"
        )
    if array.is_materialized:
        raise ValueError("parallel_do operates on canonical-mode arrays")

    ops_by_rank: Dict[int, float] = {}
    for rank in range(array.group.size):
        indices = array.local_indices(rank)
        if indices.size == 0:
            ops_by_rank[rank] = 0.0
            continue
        local = array.local_view(rank)
        ops = float(kernel(local, indices, rank))
        if ops < 0:
            raise ValueError(f"kernel returned negative ops for rank {rank}")
        ops_by_rank[rank] = ops
    return array.group.charge_compute(name, ops_by_rank)


def parallel_reduce(
    array: DistributedArray,
    name: str,
    kernel: Callable[[np.ndarray, np.ndarray, int], Tuple[np.ndarray, float]],
    combine: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> np.ndarray:
    """Fx "do&merge": an owner-computes loop with a reduction.

    ``kernel(local, indices, rank)`` returns ``(partial_value, ops)``;
    partials are combined pairwise along a binary tree whose message
    costs are charged (``ceil(log2(P))`` rounds of value-sized sends),
    followed by a broadcast of the result down the same tree — i.e. an
    allreduce, which is what Fx's merge produces on every node.

    Returns the combined value.  The combine order is a fixed tree, so
    results are deterministic (independent of timing).
    """
    if array.layout.is_replicated:
        raise ValueError("parallel_reduce needs a distributed layout")
    if array.is_materialized:
        raise ValueError("parallel_reduce operates on canonical-mode arrays")

    group = array.group
    P = group.size
    partials: Dict[int, np.ndarray] = {}
    ops_by_rank: Dict[int, float] = {}
    for rank in range(P):
        indices = array.local_indices(rank)
        if indices.size == 0:
            ops_by_rank[rank] = 0.0
            continue
        value, ops = kernel(array.local_view(rank), indices, rank)
        if ops < 0:
            raise ValueError(f"kernel returned negative ops for rank {rank}")
        partials[rank] = np.asarray(value, dtype=float)
        ops_by_rank[rank] = float(ops)
    group.charge_compute(name, ops_by_rank)

    if not partials:
        raise ValueError("no rank produced a partial value")
    value_bytes = next(iter(partials.values())).nbytes

    # Binary-tree combine: at stride s, rank r receives from r+s.
    current = dict(partials)
    stride = 1
    while stride < P:
        transfers = []
        for r in range(0, P, 2 * stride):
            src = r + stride
            if src in current and r in current:
                current[r] = combine(current[r], current.pop(src))
                transfers.append(Transfer(src, r, value_bytes))
            elif src in current:  # hole at r: shift the partial down
                current[r] = current.pop(src)
                transfers.append(Transfer(src, r, value_bytes))
        if transfers:
            group.charge_communication(f"{name}:reduce", transfers)
        stride *= 2
    result = current[0]

    # Broadcast the merged value back down the tree (allreduce).
    stride = 1 << max(P - 1, 0).bit_length()
    transfers = []
    covered = {0}
    s = stride
    while s >= 1:
        for r in sorted(covered.copy()):
            dst = r + s
            if dst < P and dst not in covered:
                transfers.append(Transfer(r, dst, value_bytes))
                covered.add(dst)
        s //= 2
    if transfers:
        group.charge_communication(f"{name}:bcast", transfers)
    return result


def replicated_do(
    array: DistributedArray,
    name: str,
    kernel: Callable[[np.ndarray], float],
    ops: Optional[float] = None,
) -> PhaseRecord:
    """Run a *replicated* computation (the aerosol step).

    On the real machine every node executes the same code on the whole
    array.  Here the kernel runs once on the canonical array (computing
    the real result and reporting its op count), and every node in the
    group is charged that same cost.  Pass ``ops`` to override the
    charge, e.g. when the kernel's count is not representative.
    """
    if not array.layout.is_replicated:
        raise ValueError(
            f"replicated_do needs a replicated layout; {array.name} is "
            f"A{array.distribution.spec()}"
        )
    measured = float(kernel(array.data))
    if measured < 0:
        raise ValueError("kernel returned negative ops")
    charge = measured if ops is None else float(ops)
    return array.group.charge_replicated_compute(name, charge)
