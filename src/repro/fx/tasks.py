"""Task parallelism: processor subgroups and pipelined stages.

Fx task parallelism (Section 5 of the paper) places independent
sequential or data-parallel routines on disjoint processor subgroups so
they execute concurrently.  Airshed uses a three-stage pipeline::

    Processing Inputs   |  Transport/Chemistry  |  Processing Outputs
        hour i+1        |        hour i         |       hour i-1

This module provides the generic pieces: partitioning a cluster into
subgroups, a :class:`PipelineStage` abstraction, and a :class:`Pipeline`
scheduler that executes items through the stages with correct
simulated-time dependencies (a stage starts an item when both the stage
itself and the upstream item are done, plus any inter-stage transfer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Sequence, Tuple

from repro.vm.cluster import Cluster, Subgroup, Transfer

__all__ = ["split_cluster", "PipelineStage", "Pipeline", "PipelineResult"]


def split_cluster(cluster: Cluster, sizes: Sequence[int]) -> List[Subgroup]:
    """Partition the cluster's nodes into consecutive subgroups.

    ``sizes`` must name at least one subgroup and sum to at most
    ``cluster.nprocs``; leftover nodes are simply unused (matching Fx,
    where a task region need not cover the whole machine).
    """
    if not sizes:
        raise ValueError(
            "sizes is empty: a task region needs at least one subgroup"
        )
    if any(s < 1 for s in sizes):
        raise ValueError("every subgroup needs at least one node")
    if sum(sizes) > cluster.nprocs:
        raise ValueError(
            f"subgroup sizes {list(sizes)} exceed cluster size {cluster.nprocs}"
        )
    groups = []
    start = 0
    for s in sizes:
        groups.append(cluster.subgroup(range(start, start + s)))
        start += s
    return groups


@dataclass
class PipelineStage:
    """One stage of a task-parallel pipeline.

    ``run(item_index)`` must charge simulated time onto ``group`` (via
    compute/io/communication phases) and perform any real computation
    the stage owns.  ``output_bytes(item_index)`` sizes the handoff to
    the next stage (0 = no transfer).

    ``reads`` / ``writes`` declare the named variables the stage touches
    per item — the Fx task-region input/output sets of Section 5.  They
    do not affect execution; :mod:`repro.analyze` uses them to detect
    racy overlaps between pipelined stages.  ``handoff`` names the
    variables whose per-item ownership passes to the *next* stage with
    the inter-stage transfer (a sanctioned producer/consumer flow).
    """

    name: str
    group: Subgroup
    run: Callable[[int], None]
    output_bytes: Callable[[int], int] = field(default=lambda i: 0)
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    handoff: FrozenSet[str] = frozenset()


@dataclass
class PipelineResult:
    """Timing summary of one pipeline execution."""

    makespan: float
    completion: Dict[Tuple[str, int], float]
    stage_busy: Dict[str, float]

    def stage_completion(self, stage: str, item: int) -> float:
        return self.completion[(stage, item)]


class Pipeline:
    """Execute items through pipelined stages on disjoint subgroups.

    Dependencies enforced per item ``i`` and stage ``s``:

    * stage ``s`` must have finished item ``i-1`` (its subgroup clock),
    * stage ``s-1`` must have finished item ``i`` and transferred the
      handoff data (a synchronous subgroup-to-subgroup send).

    With a single stage covering all nodes this degenerates to plain
    data parallelism, which is how the benchmarks compare the two modes.
    """

    def __init__(self, cluster: Cluster, stages: Sequence[PipelineStage]) -> None:
        if not stages:
            raise ValueError("pipeline needs at least one stage")
        seen: set[int] = set()
        for st in stages:
            overlap = seen & set(st.group.node_ids)
            if overlap:
                raise ValueError(
                    f"stage {st.name!r} overlaps earlier stages on nodes {sorted(overlap)}"
                )
            seen |= set(st.group.node_ids)
        self.cluster = cluster
        self.stages = list(stages)

    def _transfer(self, src: Subgroup, dst: Subgroup, nbytes: int, label: str) -> None:
        """Synchronous handoff: root of ``src`` sends to root of ``dst``."""
        if nbytes <= 0:
            return
        ids = tuple(src.node_ids) + tuple(dst.node_ids)
        self.cluster.charge_communication(
            label,
            [Transfer(src.node_ids[0], dst.node_ids[0], int(nbytes))],
            node_ids=ids,
        )

    def execute(self, nitems: int) -> PipelineResult:
        if nitems < 0:
            raise ValueError("nitems must be non-negative")
        completion: Dict[Tuple[str, int], float] = {}
        busy_before = {st.name: st.group.time() for st in self.stages}

        for i in range(nitems):
            for s, stage in enumerate(self.stages):
                if s > 0:
                    prev = self.stages[s - 1]
                    # The stage cannot start item i before its upstream
                    # finished it, even when the handoff carries no data.
                    stage.group.wait_until(completion[(prev.name, i)])
                    # Handoff of item i from stage s-1; synchronises the
                    # two subgroups (blocking send/recv semantics).
                    self._transfer(
                        prev.group,
                        stage.group,
                        prev.output_bytes(i),
                        f"pipe:{prev.name}->{stage.name}",
                    )
                stage.run(i)
                stage.group.barrier()
                completion[(stage.name, i)] = stage.group.time()

        makespan = max(
            (st.group.time() for st in self.stages),
            default=0.0,
        )
        stage_busy = {
            st.name: st.group.time() - busy_before[st.name] for st in self.stages
        }
        return PipelineResult(
            makespan=makespan, completion=completion, stage_busy=stage_busy
        )
