"""Fx/HPF-style data- and task-parallel runtime (simulated).

Implements the programming model the paper's Airshed was written in:
HPF-style data distributions with compiler-generated redistribution,
owner-computes parallel loops, replicated computations, processor
subgroups and pipelined task parallelism.
"""

from repro.fx.darray import DistributedArray
from repro.fx.distribution import ArrayLayout, DistKind, Distribution
from repro.fx.ploop import parallel_do, parallel_reduce, replicated_do
from repro.fx.redistribute import RedistributionPlan, plan_redistribution
from repro.fx.runtime import FxRuntime, PhaseIO, dist_label
from repro.fx.tasks import Pipeline, PipelineResult, PipelineStage, split_cluster

__all__ = [
    "ArrayLayout",
    "DistKind",
    "Distribution",
    "DistributedArray",
    "FxRuntime",
    "PhaseIO",
    "Pipeline",
    "PipelineResult",
    "PipelineStage",
    "RedistributionPlan",
    "dist_label",
    "parallel_do",
    "parallel_reduce",
    "plan_redistribution",
    "replicated_do",
    "split_cluster",
]
