"""Distributed arrays over the simulated cluster.

A :class:`DistributedArray` pairs a numpy array with an
:class:`~repro.fx.distribution.ArrayLayout` on a processor (sub)group.

Two execution modes are supported:

* **canonical** (default): one globally consistent numpy array backs the
  distributed array; ``local_view`` hands each node a *view* of its own
  partition, so owner-computes parallel loops execute the real numerics
  exactly once while the cluster charges simulated per-node time.  This
  is the mode production runs use.
* **materialized**: every node's partition is physically copied into the
  node's local store, and redistributions actually move bytes between
  stores according to the planner's transfers.  This mode exists to
  *prove* that the plans are correct (every element arrives exactly
  once); the test-suite exercises it heavily.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.fx.distribution import ArrayLayout, Distribution
from repro.fx.redistribute import RedistributionPlan, plan_redistribution
from repro.vm.cluster import Subgroup

__all__ = ["DistributedArray"]


class DistributedArray:
    """An array distributed across an Fx processor subgroup."""

    def __init__(
        self,
        name: str,
        data: np.ndarray,
        distribution: Distribution,
        group: Subgroup,
    ) -> None:
        if distribution.ndim != data.ndim:
            raise ValueError(
                f"distribution ndim {distribution.ndim} != array ndim {data.ndim}"
            )
        self.name = name
        self.group = group
        self._data = np.ascontiguousarray(data)
        self._layout = distribution.layout(self._data.shape, group.size)
        self._materialized: Optional[Dict[int, np.ndarray]] = None

    # ------------------------------------------------------------------
    # basic properties
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self._data.shape

    @property
    def dtype(self):
        return self._data.dtype

    @property
    def itemsize(self) -> int:
        return self._data.dtype.itemsize

    @property
    def layout(self) -> ArrayLayout:
        return self._layout

    @property
    def distribution(self) -> Distribution:
        return self._layout.distribution

    @property
    def data(self) -> np.ndarray:
        """The canonical global array (shared by all views)."""
        return self._data

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    # ------------------------------------------------------------------
    # canonical mode
    # ------------------------------------------------------------------
    def local_view(self, rank: int) -> np.ndarray:
        """View of the partition owned by subgroup rank ``rank``.

        Writable: owner-computes kernels update the canonical array
        through this view.  BLOCK and CYCLIC layouts (and replication)
        yield true views; BLOCK_CYCLIC has no strided view and raises.
        """
        return self._data[self._layout.local_slice(rank)]

    def local_indices(self, rank: int) -> np.ndarray:
        """Global indices along the distributed dim owned by ``rank``."""
        if self._layout.is_replicated:
            raise ValueError("replicated arrays have no distributed indices")
        return self._layout.owned_indices(rank)

    # ------------------------------------------------------------------
    # layout changes (costs are charged by the runtime, not here)
    # ------------------------------------------------------------------
    def plan_change(self, new_distribution: Distribution) -> RedistributionPlan:
        new_layout = new_distribution.layout(self._data.shape, self.group.size)
        return plan_redistribution(self._layout, new_layout, self.itemsize)

    def set_distribution(self, new_distribution: Distribution) -> RedistributionPlan:
        """Change layout; in materialized mode also move the bytes."""
        plan = self.plan_change(new_distribution)
        new_layout = new_distribution.layout(self._data.shape, self.group.size)
        if self._materialized is not None:
            self._materialized = _apply_plan_materialized(
                self._data.shape,
                self._data.dtype,
                self._materialized,
                self._layout,
                new_layout,
            )
        self._layout = new_layout
        return plan

    # ------------------------------------------------------------------
    # materialized mode (plan verification)
    # ------------------------------------------------------------------
    @property
    def is_materialized(self) -> bool:
        return self._materialized is not None

    def materialize(self) -> None:
        """Physically scatter the canonical data into per-node blocks."""
        blocks: Dict[int, np.ndarray] = {}
        for rank in range(self.group.size):
            blocks[rank] = np.array(self._extract_block(self._layout, rank))
        self._materialized = blocks
        for rank, node_id in enumerate(self.group.node_ids):
            self.group.cluster.nodes[node_id].store[f"darray:{self.name}"] = blocks[rank]

    def local_block(self, rank: int) -> np.ndarray:
        """The physically held block of ``rank`` (materialized mode)."""
        if self._materialized is None:
            raise ValueError("array is not materialized")
        return self._materialized[rank]

    def check_consistency(self) -> bool:
        """Every materialized block equals the canonical partition."""
        if self._materialized is None:
            raise ValueError("array is not materialized")
        for rank in range(self.group.size):
            expected = self._extract_block(self._layout, rank)
            if not np.array_equal(self._materialized[rank], expected):
                return False
        return True

    def _extract_block(self, layout: ArrayLayout, rank: int) -> np.ndarray:
        """Canonical data restricted to the partition of ``rank``."""
        if layout.is_replicated:
            return self._data
        idx = layout.owned_indices(rank)
        return np.take(self._data, idx, axis=layout.dim)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DistributedArray({self.name!r}, shape={self.shape}, "
            f"dist=A{self.distribution.spec()}, P={self.group.size})"
        )


def _apply_plan_materialized(
    shape,
    dtype,
    old_blocks: Dict[int, np.ndarray],
    src_layout: ArrayLayout,
    dst_layout: ArrayLayout,
) -> Dict[int, np.ndarray]:
    """Physically rebuild per-node blocks for the target layout.

    Implements the receive side of the redistribution: each node's new
    block is assembled purely from old blocks (its own for local copies,
    other nodes' for network transfers) — never from the canonical
    array.  This is what lets tests prove the data movement is complete
    and correct.
    """
    P = src_layout.nprocs
    ndim = len(shape)
    new_blocks: Dict[int, np.ndarray] = {}

    for dst in range(P):
        # Shape of the new block on dst.
        if dst_layout.is_replicated:
            block_shape = tuple(shape)
        else:
            idx_t = dst_layout.owned_indices(dst)
            block_shape = tuple(
                len(idx_t) if d == dst_layout.dim else s for d, s in enumerate(shape)
            )
        new = np.empty(block_shape, dtype=dtype)

        if src_layout.is_replicated:
            # Local copy out of the node's own full-array replica.
            if dst_layout.is_replicated:
                new[...] = old_blocks[dst]
            else:
                new[...] = np.take(
                    old_blocks[dst], dst_layout.owned_indices(dst), axis=dst_layout.dim
                )
            new_blocks[dst] = new
            continue

        if dst_layout.is_replicated:
            # Gather every source block into the full array.
            for src in range(P):
                idx_s = src_layout.owned_indices(src)
                if idx_s.size == 0:
                    continue
                sel = [slice(None)] * ndim
                sel[src_layout.dim] = idx_s
                new[tuple(sel)] = old_blocks[src]
            new_blocks[dst] = new
            continue

        if src_layout.dim == dst_layout.dim:
            # Same-dimension repartition: splice intersecting index runs.
            dim = src_layout.dim
            idx_t = dst_layout.owned_indices(dst)
            for src in range(P):
                idx_s = src_layout.owned_indices(src)
                common = np.intersect1d(idx_s, idx_t, assume_unique=True)
                if common.size == 0:
                    continue
                pos_in_src = np.searchsorted(idx_s, common)
                pos_in_dst = np.searchsorted(idx_t, common)
                sel_src = [slice(None)] * ndim
                sel_src[dim] = pos_in_src
                sel_dst = [slice(None)] * ndim
                sel_dst[dim] = pos_in_dst
                new[tuple(sel_dst)] = old_blocks[src][tuple(sel_src)]
            new_blocks[dst] = new
            continue

        # Different dimensions: each (src, dst) pair exchanges a tile.
        dim_s, dim_t = src_layout.dim, dst_layout.dim
        idx_t = dst_layout.owned_indices(dst)
        for src in range(P):
            idx_s = src_layout.owned_indices(src)
            if idx_s.size == 0 or idx_t.size == 0:
                continue
            # From src's old block (full extent along dim_t), select the
            # dst-owned indices along dim_t...
            tile = np.take(old_blocks[src], idx_t, axis=dim_t)
            # ...and place it at src's global positions along dim_s (the
            # new block has the full extent along dim_s).
            sel = [slice(None)] * ndim
            sel[dim_s] = idx_s
            new[tuple(sel)] = tile
        new_blocks[dst] = new

    return new_blocks
