"""Allocation-free fast path for the chemistry hot loop.

:class:`FastKernel` evaluates the mechanism's production/loss form and
the Young–Boris predictor/corrector stages into preallocated workspace
buffers.  The solver spends ~97% of a sequential Airshed hour here; the
reference implementation (:meth:`repro.chemistry.mechanism.Mechanism.
production_loss` plus the solver's ``_substep``) allocates dozens of
temporaries per substep and touches every array several times.  The
kernel removes the temporaries and fuses passes while producing
**bitwise-identical** results.

Each stage has two interchangeable backends:

* a pure-numpy path using ``out=`` buffers (always available), and
* C fused loops (:mod:`repro.chemistry.cfused`), compiled on demand,
  that collapse each stage's ufunc chain into a single pass.

Bitwise-identity ground rules (verified empirically on this codebase,
documented in ``docs/PERFORMANCE.md``):

* elementwise ufuncs with ``out=`` buffers, operand swaps of
  commutative ops (``x*y`` vs ``y*x``) and shared subexpressions with
  identical expression trees are all exact;
* gather -> compute -> scatter on a contiguous subset is exact for
  ``exp``, division and the other elementwise ops (per-element results
  do not depend on neighbours);
* C loops that perform the same IEEE-754 operations in the same
  per-element order are exact, provided FMA contraction and fast-math
  are disabled (see ``_cfused.c``);
* the ``(35, n_r) @ (n_r, m)`` matmuls must be fed the *same* operand
  content as the reference — BLAS dgemm results for one column depend
  on the matrix's overall width and the column's position (micro-kernel
  edge handling), so the matmuls stay in BLAS and only their
  surroundings are optimized;
* dgemm on a *column slice* of a wider C-order operand (strided ``ldb``)
  is bitwise equal to dgemm on a contiguous copy of the same columns —
  packing reads the logical matrix — which is what lets the batched
  ensemble path keep its per-member matmuls inside the stacked batch
  buffer (verified empirically, pinned by ``tests/model/test_batched``).

Workspace buffers are prefix views of flat arrays, so every view is
C-contiguous regardless of the active-point count ``m``.

**Batched ensembles.**  All solver stages are elementwise per column,
so N scenario members stacked along the point axis into one
``(ns, members*m)`` block integrate in a single sweep.  The only
width-sensitive operations are the two BLAS matmuls; ``col_slices``
on :meth:`FastKernel.production_loss` performs them per member slice,
feeding dgemm exactly the operand each member's independent run would
see.  Everything else runs over the full flattened width unchanged.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.chemistry import cfused
from repro.chemistry.mechanism import Mechanism
from repro.chemistry.tiling import TilePool, tile_spans

__all__ = ["FastKernel", "asymptotic_subset"]


class FastKernel:
    """Workspace-backed solver stages for one solver instance.

    Not thread-safe: buffers are shared across calls by design.

    Parameters
    ----------
    mechanism:
        The compiled mechanism.
    use_c:
        ``None`` (default) auto-detects the C fused kernels; ``False``
        forces the pure-numpy path (used by the bitwise-equivalence
        tests); ``True`` requires them and raises if unavailable.
    """

    #: (ns, m) float buffers handed out by :meth:`mat`.
    _SPECIES_BUFFERS = (
        "P0", "L0", "P1", "L1", "Lh", "R0", "t0", "t1", "cp", "c1", "Ea",
        "c0",
    )

    def __init__(self, mechanism: Mechanism, use_c: Optional[bool] = None):
        self.mechanism = mechanism
        self.ns = mechanism.n_species
        self.nr = mechanism.n_reactions
        self._r1 = mechanism._r1
        self._r2_safe = mechanism._r2_safe
        self._unimol_rows = mechanism._unimol_rows
        self._prod = mechanism._prod
        self._loss = mechanism._loss
        # int64 copies for the C kernels (r2 < 0 flags unimolecular).
        self._r1_i64 = np.ascontiguousarray(mechanism._r1, dtype=np.int64)
        self._r2_i64 = np.ascontiguousarray(mechanism._r2, dtype=np.int64)
        self._c = cfused.load() if use_c in (None, True) else None
        if use_c and self._c is None:
            raise RuntimeError("C fused kernels requested but unavailable")
        #: Multi-core tiling (see configure_tiling); None = sequential.
        self._pool: Optional[TilePool] = None
        self._tile_cols: Optional[int] = None
        self._tile_min_cols = 128
        self.capacity = 0
        self._flat: Dict[str, np.ndarray] = {}
        self._stiff_flat: np.ndarray = np.zeros(0, dtype=bool)
        self._stiff_idx: np.ndarray = np.zeros(0, dtype=np.int64)
        self._stiff_merge: np.ndarray = np.zeros(0, dtype=np.int64)
        self._err: np.ndarray = np.zeros(0)
        #: Raw buffer addresses for the C kernels, refreshed by ensure().
        self._addr: Dict[str, int] = {}
        #: Per-slot "L still holds the raw loss rate" flags (see
        #: production_loss(defer_finish=True)).
        self._pl_pending = [False, False]

    @property
    def uses_c(self) -> bool:
        """Whether the C fused backend is active."""
        return self._c is not None

    # ------------------------------------------------------------------
    # workspace
    # ------------------------------------------------------------------
    def ensure(self, npts: int) -> None:
        """Grow the workspace to hold ``npts`` points."""
        if npts <= self.capacity:
            return
        self.capacity = int(npts)
        for name in self._SPECIES_BUFFERS:
            self._flat[name] = np.empty(self.ns * self.capacity)
        for name in ("rates", "fac"):
            self._flat[name] = np.empty(self.nr * self.capacity)
        self._stiff_flat = np.empty(self.ns * self.capacity, dtype=bool)
        self._stiff_idx = np.empty(self.ns * self.capacity, dtype=np.int64)
        self._stiff_merge = np.empty(self.ns * self.capacity,
                                     dtype=np.int64)
        self._err = np.empty(self.capacity)
        self._addr = {name: arr.ctypes.data for name, arr in
                      self._flat.items()}
        self._addr["stiff_idx"] = self._stiff_idx.ctypes.data
        self._addr["err"] = self._err.ctypes.data
        self._addr["r1"] = self._r1_i64.ctypes.data
        self._addr["r2"] = self._r2_i64.ctypes.data

    def mat(self, name: str, m: int) -> np.ndarray:
        """Contiguous ``(ns, m)`` view of the named buffer."""
        return self._flat[name][: self.ns * m].reshape(self.ns, m)

    def stiff_mask(self, m: int) -> np.ndarray:
        """Contiguous ``(ns, m)`` bool scratch for stiffness masks."""
        return self._stiff_flat[: self.ns * m].reshape(self.ns, m)

    # ------------------------------------------------------------------
    # multi-core tiling
    # ------------------------------------------------------------------
    def configure_tiling(
        self,
        pool: Optional[TilePool],
        tile_cols: Optional[int] = None,
        min_cols: int = 128,
    ) -> None:
        """Fan elementwise stages out over ``pool`` (``None`` disables).

        Columns split into contiguous tiles (``tile_cols`` wide, or one
        balanced tile per pool worker when ``None``); each tile runs the
        exact per-element operation sequence of the sequential stage and
        writes a disjoint column range, so results are bitwise-identical
        for every worker count and tile size (see
        :mod:`repro.chemistry.tiling`).  The BLAS matmuls, ``np.exp``
        asymptotic updates and the stiff-index merge stay on the calling
        thread.  Stages with fewer than ``min_cols`` active columns run
        untiled — dispatch overhead would exceed the work; perf-only,
        never a results choice.
        """
        self._pool = pool
        self._tile_cols = None if tile_cols is None else int(tile_cols)
        self._tile_min_cols = int(min_cols)

    def _spans(self, m: int):
        """Tile spans for an ``m``-column stage, or None to run untiled."""
        if self._pool is None or m < self._tile_min_cols:
            return None
        spans = tile_spans(m, self._pool.workers, self._tile_cols)
        return spans if len(spans) > 1 else None

    def _merge_stiff(self, spans, counts) -> np.ndarray:
        """Merge per-tile stiff indices into the sequential enumeration.

        Tile ``(c0, c1)`` wrote its stiff elements' GLOBAL row-major
        flat indices at segment offset ``ns*c0`` of ``_stiff_idx``
        (ascending within the tile).  The tiles partition the column
        set, so the sorted concatenation is exactly the full-width
        ascending enumeration the sequential kernel returns.
        """
        total = 0
        merge = self._stiff_merge
        for (c0, _c1), cnt in zip(spans, counts):
            if cnt:
                base = self.ns * c0
                merge[total:total + cnt] = self._stiff_idx[base:base + cnt]
                total += cnt
        out = merge[:total]
        out.sort()
        return out

    # ------------------------------------------------------------------
    # mechanism evaluation
    # ------------------------------------------------------------------
    def production_loss(
        self, conc: np.ndarray, k: np.ndarray, slot: int,
        defer_finish: bool = False,
        col_slices: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Production ``P`` and loss coefficient ``L`` into slot buffers.

        Bitwise-identical to ``Mechanism.production_loss`` for 2-D
        input.  ``slot`` selects the ``(P0, L0)`` or ``(P1, L1)`` buffer
        pair so predictor and corrector evaluations can coexist.

        With ``defer_finish`` the C backend may leave ``L`` holding the
        raw loss *rate* and fold the ``L /= max(conc, 1e-30)`` pass
        into the next :meth:`predictor`/:meth:`corrector` call (saving
        a full read+write sweep); the returned ``L`` must then not be
        consumed directly.  The numpy backend always finishes.

        ``col_slices`` (batched ensembles) runs the two BLAS matmuls
        once per ``(start, stop)`` column range instead of over the full
        width, so each ensemble member's dgemm sees exactly the operand
        its independent run would — the matmuls are the only stage whose
        results depend on operand width.  All elementwise work still
        covers the full block in one pass.
        """
        m = conc.shape[1]
        rates = self._flat["rates"][: self.nr * m].reshape(self.nr, m)
        P = self.mat(f"P{slot}", m)
        L = self.mat(f"L{slot}", m)
        self._pl_pending[slot] = False
        spans = self._spans(m)
        if self._c is not None and conc.flags.c_contiguous:
            a = self._addr
            conc_p = conc.ctypes.data
            if spans is None:
                self._c.build_rates(self.nr, m, k.ctypes.data, a["r1"],
                                    a["r2"], conc_p, a["rates"])
            else:
                kp = k.ctypes.data
                self._pool.run(
                    lambda si, s0, s1: self._c.build_rates_span(
                        self.nr, m, s0, s1, kp, a["r1"], a["r2"],
                        conc_p, a["rates"]),
                    spans)
            self._pl_matmuls(rates, P, L, col_slices)
            if defer_finish:
                self._pl_pending[slot] = True
            elif spans is None:
                self._c.pl_finish(self.ns * m, conc_p, a[f"L{slot}"])
            else:
                Lp = a[f"L{slot}"]
                self._pool.run(
                    lambda si, s0, s1: self._c.pl_finish_span(
                        self.ns, m, s0, s1, conc_p, Lp),
                    spans)
            return P, L
        fac = self._flat["fac"][: self.nr * m].reshape(self.nr, m)
        t = self.mat("t0", m)
        if spans is not None:
            # rates = k * conc[r1] (* conc[r2] when bimolecular), per
            # tile: pure elementwise work on disjoint column slices.
            def _rates_tile(si: int, s0: int, s1: int) -> None:
                cs = conc[:, s0:s1]
                rs = rates[:, s0:s1]
                fs = fac[:, s0:s1]
                np.take(cs, self._r1, axis=0, out=rs)
                np.multiply(rs, k[:, None], out=rs)
                np.take(cs, self._r2_safe, axis=0, out=fs)
                fs[self._unimol_rows] = 1.0
                np.multiply(rs, fs, out=rs)

            self._pool.run(_rates_tile, spans)
            self._pl_matmuls(rates, P, L, col_slices)

            def _finish_tile(si: int, s0: int, s1: int) -> None:
                ts = t[:, s0:s1]
                Ls = L[:, s0:s1]
                np.maximum(conc[:, s0:s1], 1e-30, out=ts)
                np.divide(Ls, ts, out=Ls)

            self._pool.run(_finish_tile, spans)
            return P, L
        # rates = k * conc[r1]; bimolecular rows gain a conc[r2] factor.
        np.take(conc, self._r1, axis=0, out=rates)
        np.multiply(rates, k[:, None], out=rates)
        np.take(conc, self._r2_safe, axis=0, out=fac)
        fac[self._unimol_rows] = 1.0
        np.multiply(rates, fac, out=rates)
        self._pl_matmuls(rates, P, L, col_slices)  # L: rate until divided
        np.maximum(conc, 1e-30, out=t)
        np.divide(L, t, out=L)
        return P, L

    def _pl_matmuls(
        self, rates: np.ndarray, P: np.ndarray, L: np.ndarray,
        col_slices: Optional[Sequence[Tuple[int, int]]],
    ) -> None:
        if col_slices is None:
            np.matmul(self._prod, rates, out=P)
            np.matmul(self._loss, rates, out=L)
            return
        # dgemm on a column slice of the wider C-order operand equals
        # dgemm on a contiguous copy of those columns (strided-ldb
        # packing reads the logical matrix), so slicing in place is safe.
        for start, stop in col_slices:
            if stop > start:
                np.matmul(self._prod, rates[:, start:stop],
                          out=P[:, start:stop])
                np.matmul(self._loss, rates[:, start:stop],
                          out=L[:, start:stop])

    # ------------------------------------------------------------------
    # solver stages
    # ------------------------------------------------------------------
    def predictor(
        self,
        c0: np.ndarray,
        h: np.ndarray,
        Ea: Optional[np.ndarray],
        thresh: float,
        floor: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Explicit predictor from the slot-0 ``(P0, L0)`` state.

        Applies ``P0 += Ea`` in place, then computes ``Lh = L0*h``,
        ``R0 = P0 - L0*c0`` and the floored explicit update
        ``cp = max(c0 + R0*h, floor)``.  Stiff elements (``Lh >
        thresh``) are returned as ascending row-major flat indices;
        their ``cp`` entries are left for the caller to overwrite with
        the (floored) asymptotic update.  Returns ``(cp, Lh, R0,
        stiff_flat_indices)``.
        """
        m = c0.shape[1]
        P0, L0 = self.mat("P0", m), self.mat("L0", m)
        Lh = self.mat("Lh", m)
        R0 = self.mat("R0", m)
        cp = self.mat("cp", m)
        divide = self._pl_pending[0]
        self._pl_pending[0] = False
        spans = self._spans(m)
        if self._c is not None and c0.flags.c_contiguous and (
            Ea is None or Ea.flags.c_contiguous
        ):
            a = self._addr
            if spans is None:
                n = self._c.predictor(
                    self.ns, m, a["P0"], a["L0"], c0.ctypes.data,
                    h.ctypes.data, None if Ea is None else Ea.ctypes.data,
                    thresh, floor, int(divide),
                    a["Lh"], a["R0"], a["cp"], a["stiff_idx"],
                )
                return cp, Lh, R0, self._stiff_idx[:n]
            c0p, hp = c0.ctypes.data, h.ctypes.data
            Eap = None if Ea is None else Ea.ctypes.data
            counts = [0] * len(spans)

            def _pred_tile(si: int, s0: int, s1: int) -> None:
                # each tile's stiff indices land in its own disjoint
                # _stiff_idx segment (element offset ns*s0).
                counts[si] = self._c.predictor_span(
                    self.ns, m, s0, s1, a["P0"], a["L0"], c0p, hp, Eap,
                    thresh, floor, int(divide),
                    a["Lh"], a["R0"], a["cp"],
                    a["stiff_idx"] + 8 * self.ns * s0,
                )

            self._pool.run(_pred_tile, spans)
            return cp, Lh, R0, self._merge_stiff(spans, counts)
        sm = self.stiff_mask(m)
        t0 = self.mat("t0", m)
        t1 = self.mat("t1", m)
        if spans is not None:
            def _pred_tile(si: int, s0: int, s1: int) -> None:
                L0s, c0s = L0[:, s0:s1], c0[:, s0:s1]
                if divide:
                    np.maximum(c0s, 1e-30, out=t1[:, s0:s1])
                    np.divide(L0s, t1[:, s0:s1], out=L0s)
                if Ea is not None:
                    np.add(P0[:, s0:s1], Ea[:, s0:s1], out=P0[:, s0:s1])
                np.multiply(L0s, h[s0:s1], out=Lh[:, s0:s1])
                np.greater(Lh[:, s0:s1], thresh, out=sm[:, s0:s1])
                np.multiply(L0s, c0s, out=t0[:, s0:s1])
                np.subtract(P0[:, s0:s1], t0[:, s0:s1], out=R0[:, s0:s1])
                np.multiply(R0[:, s0:s1], h[s0:s1], out=cp[:, s0:s1])
                np.add(c0s, cp[:, s0:s1], out=cp[:, s0:s1])
                np.maximum(cp[:, s0:s1], floor, out=cp[:, s0:s1])

            self._pool.run(_pred_tile, spans)
            # full-mask flatnonzero on the main thread reproduces the
            # sequential ascending enumeration with no index math.
            return cp, Lh, R0, np.flatnonzero(sm)
        if divide:
            np.maximum(c0, 1e-30, out=t1)
            np.divide(L0, t1, out=L0)
        if Ea is not None:
            np.add(P0, Ea, out=P0)
        np.multiply(L0, h, out=Lh)
        np.greater(Lh, thresh, out=sm)
        flat = np.flatnonzero(sm)
        np.multiply(L0, c0, out=t0)
        np.subtract(P0, t0, out=R0)
        np.multiply(R0, h, out=cp)
        np.add(c0, cp, out=cp)
        np.maximum(cp, floor, out=cp)
        return cp, Lh, R0, flat

    def corrector(
        self,
        cp: np.ndarray,
        c0: np.ndarray,
        h: np.ndarray,
        Ea: Optional[np.ndarray],
        thresh: float,
        floor: float,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Trapezoidal corrector from the slot-1 ``(P1, L1)`` state.

        Applies ``P1 += Ea`` in place, forms the averaged loss ``Lm =
        (L0 + L1)/2`` and ``Lmh = Lm*h``, and the floored trapezoidal
        update ``c1 = max(c0 + 0.5*h*(R0 + (P1 - L1*cp)), floor)``.
        Stiff elements (``Lmh > thresh``) are returned as flat indices
        for the caller's asymptotic overwrite.  Returns ``(c1, Lm, Lmh,
        stiff_flat_indices)``.
        """
        m = c0.shape[1]
        P1, L1 = self.mat("P1", m), self.mat("L1", m)
        L0 = self.mat("L0", m)
        R0 = self.mat("R0", m)
        Lm = self.mat("t0", m)
        Lmh = self.mat("Lh", m)  # the predictor's L*h buffer is free now
        c1 = self.mat("c1", m)
        divide = self._pl_pending[1]
        self._pl_pending[1] = False
        spans = self._spans(m)
        if self._c is not None and c0.flags.c_contiguous and (
            Ea is None or Ea.flags.c_contiguous
        ):
            a = self._addr
            if spans is None:
                n = self._c.corrector(
                    self.ns, m, a["P1"], a["L0"], a["L1"], a["R0"],
                    a["cp"], c0.ctypes.data, h.ctypes.data,
                    None if Ea is None else Ea.ctypes.data,
                    thresh, floor, int(divide),
                    a["t0"], a["Lh"], a["c1"], a["stiff_idx"],
                )
                return c1, Lm, Lmh, self._stiff_idx[:n]
            c0p, hp = c0.ctypes.data, h.ctypes.data
            Eap = None if Ea is None else Ea.ctypes.data
            counts = [0] * len(spans)

            def _corr_tile(si: int, s0: int, s1: int) -> None:
                counts[si] = self._c.corrector_span(
                    self.ns, m, s0, s1, a["P1"], a["L0"], a["L1"],
                    a["R0"], a["cp"], c0p, hp, Eap,
                    thresh, floor, int(divide),
                    a["t0"], a["Lh"], a["c1"],
                    a["stiff_idx"] + 8 * self.ns * s0,
                )

            self._pool.run(_corr_tile, spans)
            return c1, Lm, Lmh, self._merge_stiff(spans, counts)
        sm = self.stiff_mask(m)
        t1 = self.mat("t1", m)
        if spans is not None:
            def _corr_tile(si: int, s0: int, s1: int) -> None:
                L1s, cps = L1[:, s0:s1], cp[:, s0:s1]
                c1s = c1[:, s0:s1]
                if divide:
                    np.maximum(cps, 1e-30, out=c1s)  # c1 scratch
                    np.divide(L1s, c1s, out=L1s)
                if Ea is not None:
                    np.add(P1[:, s0:s1], Ea[:, s0:s1], out=P1[:, s0:s1])
                np.add(L0[:, s0:s1], L1s, out=Lm[:, s0:s1])
                np.multiply(Lm[:, s0:s1], 0.5, out=Lm[:, s0:s1])
                np.multiply(Lm[:, s0:s1], h[s0:s1], out=Lmh[:, s0:s1])
                np.greater(Lmh[:, s0:s1], thresh, out=sm[:, s0:s1])
                t1s = t1[:, s0:s1]
                np.multiply(L1s, cps, out=t1s)
                np.subtract(P1[:, s0:s1], t1s, out=t1s)
                np.add(R0[:, s0:s1], t1s, out=t1s)
                np.multiply(t1s, 0.5 * h[s0:s1], out=t1s)
                np.add(c0[:, s0:s1], t1s, out=c1s)
                np.maximum(c1s, floor, out=c1s)

            self._pool.run(_corr_tile, spans)
            return c1, Lm, Lmh, np.flatnonzero(sm)
        if divide:
            np.maximum(cp, 1e-30, out=c1)  # c1 is scratch until written
            np.divide(L1, c1, out=L1)
        if Ea is not None:
            np.add(P1, Ea, out=P1)
        np.add(L0, L1, out=Lm)
        np.multiply(Lm, 0.5, out=Lm)
        np.multiply(Lm, h, out=Lmh)
        np.greater(Lmh, thresh, out=sm)
        flatm = np.flatnonzero(sm)
        np.multiply(L1, cp, out=t1)
        np.subtract(P1, t1, out=t1)
        np.add(R0, t1, out=t1)  # (P0 - L0*c0) + (P1 - L1*cp)
        np.multiply(t1, 0.5 * h, out=t1)
        np.add(c0, t1, out=c1)
        np.maximum(c1, floor, out=c1)
        return c1, Lm, Lmh, flatm

    def errmax(self, c1: np.ndarray, cp: np.ndarray) -> np.ndarray:
        """Per-point convergence error ``max_i |c1-cp| / denom``.

        ``denom = max(max(c1, cp), 1e-7)`` (CHEMEQ-style).  Must be
        called after the asymptotic scatters so the stiff elements'
        final values enter the test.
        """
        m = c1.shape[1]
        spans = self._spans(m)
        if self._c is not None and c1.flags.c_contiguous \
                and cp.flags.c_contiguous:
            if spans is None:
                self._c.errmax(self.ns, m, c1.ctypes.data,
                               cp.ctypes.data, self._addr["err"])
            else:
                c1p, cpp = c1.ctypes.data, cp.ctypes.data
                ep = self._addr["err"]
                self._pool.run(
                    lambda si, s0, s1: self._c.errmax_span(
                        self.ns, m, s0, s1, c1p, cpp, ep),
                    spans)
            return self._err[:m]
        t0, t1 = self.mat("t0", m), self.mat("t1", m)
        if spans is not None:
            err = self._err[:m]

            def _err_tile(si: int, s0: int, s1: int) -> None:
                t0s, t1s = t0[:, s0:s1], t1[:, s0:s1]
                np.subtract(c1[:, s0:s1], cp[:, s0:s1], out=t0s)
                np.abs(t0s, out=t0s)
                np.maximum(c1[:, s0:s1], cp[:, s0:s1], out=t1s)
                np.maximum(t1s, 1e-7, out=t1s)
                np.divide(t0s, t1s, out=t0s)
                t0s.max(axis=0, out=err[s0:s1])

            self._pool.run(_err_tile, spans)
            return err
        np.subtract(c1, cp, out=t0)
        np.abs(t0, out=t0)
        np.maximum(c1, cp, out=t1)
        np.maximum(t1, 1e-7, out=t1)
        np.divide(t0, t1, out=t0)
        return t0.max(axis=0)

    # ------------------------------------------------------------------
    # batched-ensemble data movement
    # ------------------------------------------------------------------
    def gather_cols(
        self, src: np.ndarray, idx: np.ndarray, name: str = "c0",
    ) -> np.ndarray:
        """Gather ``src[:, idx]`` into the named workspace buffer.

        Pure data movement (bitwise-trivial); the C backend fuses the
        column gather into one pass, which matters when the batched
        ensemble sweep gathers hundreds of thousands of columns per
        adaptive iteration.  ``idx`` must be int64 and ascending-sorted
        the way the callers produce it.  ``name`` defaults to the
        solver's ``c0`` state buffer; the tiled solver also gathers
        emissions into ``Ea``.
        """
        m = idx.size
        out = self.mat(name, m)
        spans = self._spans(m)
        if self._c is not None and src.flags.c_contiguous \
                and idx.flags.c_contiguous:
            if spans is None:
                self._c.gather_cols(self.ns, src.shape[1], m,
                                    src.ctypes.data, idx.ctypes.data,
                                    self._addr[name])
            else:
                sp, ip = src.ctypes.data, idx.ctypes.data
                ncols, op = src.shape[1], self._addr[name]
                self._pool.run(
                    lambda si, s0, s1: self._c.gather_cols_span(
                        self.ns, ncols, m, s0, s1, sp, ip, op),
                    spans)
            return out
        if spans is not None:
            self._pool.run(
                lambda si, s0, s1: np.take(
                    src, idx[s0:s1], axis=1, out=out[:, s0:s1]),
                spans)
            return out
        np.take(src, idx, axis=1, out=out)
        return out

    def scatter_cols(
        self, dst: np.ndarray, src: np.ndarray, idx: np.ndarray,
        ok: np.ndarray,
    ) -> None:
        """``dst[:, idx[p]] = src[:, p]`` wherever ``ok[p]`` is set.

        The accepted-substep scatter ``dst[:, idx[ok]] = src[:, ok]``
        without materializing the intermediate fancy-index arrays.
        Tiles write disjoint destination columns (``idx`` ascending),
        so the tiled scatter is race-free and bit-identical.
        """
        spans = self._spans(idx.size)
        if self._c is not None and dst.flags.c_contiguous \
                and src.flags.c_contiguous and idx.flags.c_contiguous \
                and ok.flags.c_contiguous:
            if spans is None:
                self._c.scatter_cols(self.ns, dst.shape[1], idx.size,
                                     src.ctypes.data, idx.ctypes.data,
                                     ok.ctypes.data, dst.ctypes.data)
                return
            sp, ip = src.ctypes.data, idx.ctypes.data
            okp, dp = ok.ctypes.data, dst.ctypes.data
            ncols = dst.shape[1]
            self._pool.run(
                lambda si, s0, s1: self._c.scatter_cols_span(
                    self.ns, ncols, idx.size, s0, s1, sp, ip, okp, dp),
                spans)
            return
        if spans is not None:
            self._pool.run(
                lambda si, s0, s1: dst.__setitem__(
                    (slice(None), idx[s0:s1][ok[s0:s1]]),
                    src[:, s0:s1][:, ok[s0:s1]]),
                spans)
            return
        dst[:, idx[ok]] = src[:, ok]


def asymptotic_subset(
    cf: np.ndarray, Pf: np.ndarray, Lf: np.ndarray, Lhf: np.ndarray
) -> np.ndarray:
    """The Young–Boris asymptotic update on gathered flat subsets.

    Mirrors ``YoungBorisSolver._asymptotic`` element-for-element:
    ``ceq + (c - ceq) * exp(-min(L*h, 50))`` with ``ceq = P/L`` guarded
    at zero loss.  ``Lhf`` must hold the already-formed ``L*h`` values
    for the subset (same product the mask was computed from).  ``exp``
    stays in numpy on all backends: numpy's SIMD ``exp`` is not
    bitwise-reproducible by libm.
    """
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        ceq = np.where(Lf > 0, Pf / np.maximum(Lf, 1e-300), 0.0)
        decay = np.exp(-np.minimum(Lhf, 50.0))
    return ceq + (cf - ceq) * decay
