"""The aerosol step — the computation that forces replication.

The paper: "The exception is the aerosol computation, which happens at
the end of the chemistry phase.  It cannot be parallelized and is
therefore replicated.  While the aerosol computation consumes a
negligible portion of the total computation time, it has a significant
impact, since it forces the redistribution of the concentration array."

Our surrogate preserves exactly those properties.  It performs a
sulfate/ammonia gas-to-particle conversion whose condensation
efficiency depends on the *domain-wide* mean aerosol loading (a bulk
condensation-sink closure) — a genuinely global quantity, which is what
makes the step non-parallelisable over grid points.  The work is tiny
compared to the gas-phase chemistry.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chemistry.mechanism import Mechanism

__all__ = ["AerosolModel"]

#: Abstract ops per (point): a handful of arithmetic operations.
OPS_PER_POINT = 8.0


@dataclass
class AerosolModel:
    """Bulk sulfate-ammonium gas->particle conversion.

    Parameters
    ----------
    mechanism:
        Supplies the SULF / NH3 / AERO species indices.
    base_rate:
        Fraction of available sulfate converted per call at zero
        aerosol loading.
    sink_scale:
        Aerosol loading (ppm) at which the condensation sink doubles
        the conversion efficiency.
    """

    mechanism: Mechanism
    base_rate: float = 0.05
    sink_scale: float = 0.01

    def __post_init__(self) -> None:
        if not (0.0 < self.base_rate <= 1.0):
            raise ValueError("base_rate must be in (0, 1]")
        if self.sink_scale <= 0:
            raise ValueError("sink_scale must be positive")
        idx = self.mechanism.index
        for s in ("SULF", "NH3", "AERO"):
            if s not in idx:
                raise ValueError(f"mechanism lacks species {s!r}")
        self._i_sulf = idx["SULF"]
        self._i_nh3 = idx["NH3"]
        self._i_aero = idx["AERO"]

    def step(self, conc: np.ndarray) -> float:
        """Update ``conc`` (n_species, ..., n_points) in place.

        Returns the deterministic op count.  The conversion fraction
        uses the global mean aerosol burden, so the result genuinely
        depends on every grid point — running it on a partition would
        give a different (wrong) answer, which is why Airshed replicates
        it on fully assembled data.
        """
        conc = np.asarray(conc)
        if conc.shape[0] != self.mechanism.n_species:
            raise ValueError("concentration array species dimension mismatch")
        sulf = conc[self._i_sulf]
        nh3 = conc[self._i_nh3]
        aero = conc[self._i_aero]

        # Global condensation sink: more existing aerosol surface means
        # faster condensation.  THIS is the global coupling.
        global_loading = float(aero.mean())
        eff = self.base_rate * (1.0 + global_loading / self.sink_scale)
        eff = min(eff, 1.0)

        # (NH4)2SO4-like neutralisation: 2 NH3 per SULF.
        transfer = eff * np.minimum(sulf, 0.5 * nh3)
        sulf -= transfer
        nh3 -= 2.0 * transfer
        aero += transfer

        n_points = int(np.prod(conc.shape[1:])) if conc.ndim > 1 else 1
        return n_points * OPS_PER_POINT
