/* Fused elementwise kernels for the Young-Boris chemistry fast path.
 *
 * Compiled on demand by repro.chemistry.cfused (plain `cc -O3 -shared`,
 * no Python headers needed) and called through ctypes.  Every routine
 * fuses a chain of numpy ufunc calls into a single pass while keeping
 * the per-element IEEE-754 operation sequence IDENTICAL to the numpy
 * code it replaces, so results are bitwise equal:
 *
 *   - each intermediate is rounded exactly once, in the same order the
 *     numpy expression tree rounds it (the build flags disable FMA
 *     contraction and fast-math so the compiler cannot re-associate);
 *   - numpy's `maximum` semantics are replicated literally as
 *     `(a > b || isnan(a)) ? a : b` (second operand wins ties, NaN
 *     propagates from either side);
 *   - comparisons against NaN are false, matching `np.greater`.
 *
 * Only elementwise work lives here.  The (n_species, n_reactions) @
 * (n_reactions, m) matmuls stay in numpy/BLAS: dgemm results depend on
 * operand width and column position, so they must be fed the exact
 * same matrices as the reference implementation.
 */

#include <math.h>
#include <stdint.h>

/* numpy maximum: second operand wins ties, NaN propagates. */
static double np_max(double a, double b)
{
    return (a > b || isnan(a)) ? a : b;
}

/* rates[j,p] = (k[j] * conc[r1[j],p]) * conc[r2[j],p]   (bimolecular)
 *            =  k[j] * conc[r1[j],p]                    (r2[j] < 0)
 *
 * Fuses: take(conc, r1) -> * k[:,None] -> take(conc, r2) -> * fac.
 * Multiplying unimolecular rows by 1.0 is an exact identity, so the
 * branch form matches the reference's masked multiply bit for bit. */
void yb_build_rates(int64_t nr, int64_t m,
                    const double *k, const int64_t *r1, const int64_t *r2,
                    const double *conc, double *rates)
{
    int64_t j, p;
    for (j = 0; j < nr; ++j) {
        const double kj = k[j];
        const double *a = conc + r1[j] * m;
        double *out = rates + j * m;
        if (r2[j] >= 0) {
            const double *b = conc + r2[j] * m;
            for (p = 0; p < m; ++p)
                out[p] = (kj * a[p]) * b[p];
        } else {
            for (p = 0; p < m; ++p)
                out[p] = kj * a[p];
        }
    }
}

/* L[i] = L[i] / max(conc[i], 1e-30) over the flattened (ns, m) block.
 * Fuses: maximum(conc, 1e-30, out=t); divide(L, t, out=L). */
void yb_pl_finish(int64_t n, const double *conc, double *L)
{
    int64_t i;
    for (i = 0; i < n; ++i)
        L[i] = L[i] / np_max(conc[i], 1e-30);
}

/* Predictor stage over the (ns, m) active block.
 *
 *   P0 += E                      (when E is non-NULL)
 *   Lh  = L0 * h[col]
 *   R0  = P0 - L0 * c0
 *   cp  = c0 + R0 * h[col]
 *   stiff (Lh > thresh): record flat index, leave cp un-floored (the
 *       caller scatters the floored asymptotic update over it);
 *   else: cp = max(cp, floor).
 *
 * Returns the number of stiff elements written to stiff_idx (row-major
 * flat indices, ascending — the order np.flatnonzero produces). */
int64_t yb_predictor(int64_t ns, int64_t m,
                     double *P0, double *L0, const double *c0,
                     const double *h, const double *E,
                     double thresh, double floor_, int64_t divide,
                     double *Lh, double *R0, double *cp,
                     int64_t *stiff_idx)
{
    int64_t cnt = 0, i, p;
    for (i = 0; i < ns; ++i) {
        const int64_t off = i * m;
        for (p = 0; p < m; ++p) {
            const int64_t q = off + p;
            double P = P0[q];
            double l = L0[q];
            if (E) {
                P = P + E[q];
                P0[q] = P;
            }
            if (divide) {
                /* Deferred yb_pl_finish: L0 still holds the raw loss
                 * rate; same per-element ops, one fewer full pass. */
                l = l / np_max(c0[q], 1e-30);
                L0[q] = l;
            }
            {
                const double lh = l * h[p];
                const double lc = l * c0[q];
                const double r = P - lc;
                const double rh = r * h[p];
                const double v = c0[q] + rh;
                Lh[q] = lh;
                R0[q] = r;
                if (lh > thresh) {
                    stiff_idx[cnt++] = q;
                    cp[q] = v;
                } else {
                    cp[q] = np_max(v, floor_);
                }
            }
        }
    }
    return cnt;
}

/* Corrector stage over the (ns, m) active block.
 *
 *   P1 += E                         (when E is non-NULL)
 *   Lm  = (L0 + L1) * 0.5
 *   Lmh = Lm * h[col]
 *   c1  = c0 + ((R0 + (P1 - L1*cp)) * (0.5 * h[col]))
 *   stiff (Lmh > thresh): record flat index, leave c1 un-floored;
 *   else: c1 = max(c1, floor).
 */
int64_t yb_corrector(int64_t ns, int64_t m,
                     double *P1, const double *L0, double *L1,
                     const double *R0, const double *cp, const double *c0,
                     const double *h, const double *E,
                     double thresh, double floor_, int64_t divide,
                     double *Lm, double *Lmh, double *c1,
                     int64_t *stiff_idx)
{
    int64_t cnt = 0, i, p;
    for (i = 0; i < ns; ++i) {
        const int64_t off = i * m;
        for (p = 0; p < m; ++p) {
            const int64_t q = off + p;
            double P = P1[q];
            double l1v = L1[q];
            if (E) {
                P = P + E[q];
                P1[q] = P;
            }
            if (divide) {
                /* Deferred yb_pl_finish for the corrector evaluation:
                 * the divisor is the predicted state cp. */
                l1v = l1v / np_max(cp[q], 1e-30);
                L1[q] = l1v;
            }
            {
                const double lsum = L0[q] + l1v;
                const double lm = lsum * 0.5;
                const double lmh = lm * h[p];
                const double t1 = l1v * cp[q];
                const double t2 = P - t1;
                const double t3 = R0[q] + t2;
                const double hh = 0.5 * h[p];
                const double t4 = t3 * hh;
                const double v = c0[q] + t4;
                Lm[q] = lm;
                Lmh[q] = lmh;
                if (lmh > thresh) {
                    stiff_idx[cnt++] = q;
                    c1[q] = v;
                } else {
                    c1[q] = np_max(v, floor_);
                }
            }
        }
    }
    return cnt;
}

/* Batched-ensemble data movement.
 *
 * The batched ensemble engine stacks N scenario members into one
 * (ns, members*cells) structure-of-arrays block and runs the adaptive
 * substep loop over the flattened axis.  Each iteration gathers the
 * still-active columns into the contiguous workspace and scatters the
 * accepted ones back; with hundreds of thousands of columns those two
 * moves become a measurable share of the sweep, so they get fused C
 * loops.  Both are pure data movement — bitwise exactness is trivial.
 */

/* dst[i, p] = src[i, idx[p]] over an (ns, ncols) C-order source: the
 * active-column gather, np.take(src, idx, axis=1) fused into one pass. */
void yb_gather_cols(int64_t ns, int64_t ncols, int64_t m,
                    const double *src, const int64_t *idx, double *dst)
{
    int64_t i, p;
    for (i = 0; i < ns; ++i) {
        const double *row = src + i * ncols;
        double *out = dst + i * m;
        for (p = 0; p < m; ++p)
            out[p] = row[idx[p]];
    }
}

/* dst[:, idx[p]] = src[:, p] for every column with ok[p] != 0: the
 * accepted-substep scatter dst[:, idx[ok]] = src[:, ok]. */
void yb_scatter_cols(int64_t ns, int64_t ncols, int64_t m,
                     const double *src, const int64_t *idx,
                     const unsigned char *ok, double *dst)
{
    int64_t i, p;
    for (i = 0; i < ns; ++i) {
        const double *row = src + i * m;
        double *out = dst + i * ncols;
        for (p = 0; p < m; ++p)
            if (ok[p])
                out[idx[p]] = row[p];
    }
}

/* ------------------------------------------------------------------
 * Column-span variants for the tiled multi-core engine.
 *
 * Each *_span routine performs the EXACT per-element operation
 * sequence of its full-width sibling, restricted to the columns
 * [col0, col1) of the same (ns, m) row-major block.  Because every
 * operation here is elementwise per column, partitioning the column
 * axis into contiguous tiles and running the tiles on pool threads
 * cannot change any result bit: each element is computed from the same
 * inputs by the same instruction sequence, and tiles write disjoint
 * column ranges of the shared workspaces.  ctypes calls release the
 * GIL, so tiles genuinely overlap on multi-core hosts.
 */

void yb_build_rates_span(int64_t nr, int64_t m, int64_t col0, int64_t col1,
                         const double *k, const int64_t *r1,
                         const int64_t *r2, const double *conc,
                         double *rates)
{
    int64_t j, p;
    for (j = 0; j < nr; ++j) {
        const double kj = k[j];
        const double *a = conc + r1[j] * m;
        double *out = rates + j * m;
        if (r2[j] >= 0) {
            const double *b = conc + r2[j] * m;
            for (p = col0; p < col1; ++p)
                out[p] = (kj * a[p]) * b[p];
        } else {
            for (p = col0; p < col1; ++p)
                out[p] = kj * a[p];
        }
    }
}

void yb_pl_finish_span(int64_t ns, int64_t m, int64_t col0, int64_t col1,
                       const double *conc, double *L)
{
    int64_t i, p;
    for (i = 0; i < ns; ++i) {
        const int64_t off = i * m;
        for (p = col0; p < col1; ++p)
            L[off + p] = L[off + p] / np_max(conc[off + p], 1e-30);
    }
}

/* Stiff indices are GLOBAL row-major flat indices (i*m + p), written
 * to the caller-offset stiff_idx in (row, column) order — ascending
 * within the tile.  The Python caller concatenates the per-tile lists
 * and sorts, reproducing the full-width ascending enumeration. */
int64_t yb_predictor_span(int64_t ns, int64_t m, int64_t col0, int64_t col1,
                          double *P0, double *L0, const double *c0,
                          const double *h, const double *E,
                          double thresh, double floor_, int64_t divide,
                          double *Lh, double *R0, double *cp,
                          int64_t *stiff_idx)
{
    int64_t cnt = 0, i, p;
    for (i = 0; i < ns; ++i) {
        const int64_t off = i * m;
        for (p = col0; p < col1; ++p) {
            const int64_t q = off + p;
            double P = P0[q];
            double l = L0[q];
            if (E) {
                P = P + E[q];
                P0[q] = P;
            }
            if (divide) {
                l = l / np_max(c0[q], 1e-30);
                L0[q] = l;
            }
            {
                const double lh = l * h[p];
                const double lc = l * c0[q];
                const double r = P - lc;
                const double rh = r * h[p];
                const double v = c0[q] + rh;
                Lh[q] = lh;
                R0[q] = r;
                if (lh > thresh) {
                    stiff_idx[cnt++] = q;
                    cp[q] = v;
                } else {
                    cp[q] = np_max(v, floor_);
                }
            }
        }
    }
    return cnt;
}

int64_t yb_corrector_span(int64_t ns, int64_t m, int64_t col0, int64_t col1,
                          double *P1, const double *L0, double *L1,
                          const double *R0, const double *cp,
                          const double *c0, const double *h,
                          const double *E, double thresh, double floor_,
                          int64_t divide, double *Lm, double *Lmh,
                          double *c1, int64_t *stiff_idx)
{
    int64_t cnt = 0, i, p;
    for (i = 0; i < ns; ++i) {
        const int64_t off = i * m;
        for (p = col0; p < col1; ++p) {
            const int64_t q = off + p;
            double P = P1[q];
            double l1v = L1[q];
            if (E) {
                P = P + E[q];
                P1[q] = P;
            }
            if (divide) {
                l1v = l1v / np_max(cp[q], 1e-30);
                L1[q] = l1v;
            }
            {
                const double lsum = L0[q] + l1v;
                const double lm = lsum * 0.5;
                const double lmh = lm * h[p];
                const double t1 = l1v * cp[q];
                const double t2 = P - t1;
                const double t3 = R0[q] + t2;
                const double hh = 0.5 * h[p];
                const double t4 = t3 * hh;
                const double v = c0[q] + t4;
                Lm[q] = lm;
                Lmh[q] = lmh;
                if (lmh > thresh) {
                    stiff_idx[cnt++] = q;
                    c1[q] = v;
                } else {
                    c1[q] = np_max(v, floor_);
                }
            }
        }
    }
    return cnt;
}

void yb_gather_cols_span(int64_t ns, int64_t ncols, int64_t m,
                         int64_t col0, int64_t col1,
                         const double *src, const int64_t *idx, double *dst)
{
    int64_t i, p;
    for (i = 0; i < ns; ++i) {
        const double *row = src + i * ncols;
        double *out = dst + i * m;
        for (p = col0; p < col1; ++p)
            out[p] = row[idx[p]];
    }
}

/* idx is strictly ascending (active-column indices), so tiles write
 * disjoint destination columns. */
void yb_scatter_cols_span(int64_t ns, int64_t ncols, int64_t m,
                          int64_t col0, int64_t col1,
                          const double *src, const int64_t *idx,
                          const unsigned char *ok, double *dst)
{
    int64_t i, p;
    for (i = 0; i < ns; ++i) {
        const double *row = src + i * m;
        double *out = dst + i * ncols;
        for (p = col0; p < col1; ++p)
            if (ok[p])
                out[idx[p]] = row[p];
    }
}

void yb_errmax_span(int64_t ns, int64_t m, int64_t col0, int64_t col1,
                    const double *c1, const double *cp, double *err)
{
    int64_t i, p;
    for (p = col0; p < col1; ++p) {
        const double d = fabs(c1[p] - cp[p]);
        const double den = np_max(np_max(c1[p], cp[p]), 1e-7);
        err[p] = d / den;
    }
    for (i = 1; i < ns; ++i) {
        const double *a = c1 + i * m;
        const double *b = cp + i * m;
        for (p = col0; p < col1; ++p) {
            const double d = fabs(a[p] - b[p]);
            const double den = np_max(np_max(a[p], b[p]), 1e-7);
            const double r = d / den;
            err[p] = np_max(err[p], r);
        }
    }
}

/* err[p] = max_i |c1 - cp| / max(max(c1, cp), 1e-7)
 *
 * Fuses the convergence test's five full-width passes plus the axis-0
 * max reduction.  `max` is associative and the ratios are never -0.0
 * (fabs numerator, positive denominator), so the row-by-row reduction
 * order matches numpy's maximum.reduce bit for bit. */
void yb_errmax(int64_t ns, int64_t m,
               const double *c1, const double *cp, double *err)
{
    int64_t i, p;
    for (p = 0; p < m; ++p) {
        const double d = fabs(c1[p] - cp[p]);
        const double den = np_max(np_max(c1[p], cp[p]), 1e-7);
        err[p] = d / den;
    }
    for (i = 1; i < ns; ++i) {
        const double *a = c1 + i * m;
        const double *b = cp + i * m;
        for (p = 0; p < m; ++p) {
            const double d = fabs(a[p] - b[p]);
            const double den = np_max(np_max(a[p], b[p]), 1e-7);
            const double r = d / den;
            err[p] = np_max(err[p], r);
        }
    }
}
