"""Young–Boris hybrid integrator for stiff chemical kinetics.

Airshed solves the chemistry (and vertical transport) operator ``Lcz``
with "the hybrid scheme of Young and Boris for stiff systems of ordinary
differential equations" (Young & Boris, J. Phys. Chem. 81, 1977).

The scheme writes each species' equation in production/loss form
``dc/dt = P - L*c`` and classifies species per point and per substep:

* **stiff** (``L*h`` large): use the asymptotic exponential update
  ``c(t+h) = P/L + (c - P/L) * exp(-L*h)``, exact for frozen P, L;
* **non-stiff**: explicit predictor.

A corrector pass re-evaluates ``P, L`` at the predicted state and
averages, giving second-order accuracy for the non-stiff species and a
stable treatment of the stiff ones.  Substep sizes adapt per grid point
to the fastest *non-stiff* timescale; everything is vectorised across
points with an active mask, so points in clean air take a handful of
substeps while the urban core takes many — the source of the chemistry
load variation the data distribution has to spread.

The integrator reports a deterministic operation count (substeps summed
over points, scaled by per-substep work), which drives the simulated
machine time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.chemistry.mechanism import Mechanism

__all__ = ["ChemistryStats", "YoungBorisSolver"]

#: Abstract ops per (species, point) per substep: two mechanism
#: evaluations (predictor + corrector) plus the update arithmetic.
OPS_PER_SUBSTEP_PER_SPECIES = 60.0


@dataclass
class ChemistryStats:
    """Deterministic work accounting for one integration call."""

    substeps_total: int = 0
    max_substeps: int = 0
    points: int = 0
    ops: float = 0.0
    #: Substep attempts per point of the *last* merged call — the
    #: per-point work profile the workload trace records.
    per_point_substeps: Optional[np.ndarray] = None

    def merge(self, other: "ChemistryStats") -> None:
        self.substeps_total += other.substeps_total
        self.max_substeps = max(self.max_substeps, other.max_substeps)
        self.points += other.points
        self.ops += other.ops
        if other.per_point_substeps is not None:
            self.per_point_substeps = other.per_point_substeps


class YoungBorisSolver:
    """Hybrid stiff/non-stiff kinetics integrator.

    Parameters
    ----------
    mechanism:
        The compiled :class:`~repro.chemistry.mechanism.Mechanism`.
    eps:
        Relative accuracy target steering the adaptive substep size.
    stiff_threshold:
        Species with ``L*h > stiff_threshold`` take the asymptotic
        update (Young & Boris use ~1).
    min_substeps / max_substeps:
        Bounds on substeps per call, keeping work finite on
        pathological states.
    h_max:
        Hard cap on the substep length (seconds).  The asymptotic
        update freezes each stiff species' equilibrium over a substep;
        coupled stiff cycles (the NOx photostationary state) need that
        equilibrium refreshed on a tens-of-seconds cadence to converge.
    floor:
        Concentration floor (ppm); negative excursions are clipped.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        eps: float = 0.01,
        stiff_threshold: float = 1.0,
        min_substeps: int = 2,
        max_substeps: int = 300,
        h_max: float = 20.0,
        floor: float = 0.0,
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_substeps < 1 or max_substeps < min_substeps:
            raise ValueError("bad substep bounds")
        if h_max <= 0:
            raise ValueError("h_max must be positive")
        self.mechanism = mechanism
        self.eps = float(eps)
        self.stiff_threshold = float(stiff_threshold)
        self.min_substeps = int(min_substeps)
        self.max_substeps = int(max_substeps)
        self.h_max = float(h_max)
        self.floor = float(floor)

    # ------------------------------------------------------------------
    def choose_substeps(
        self, conc: np.ndarray, k: np.ndarray, dt: float
    ) -> np.ndarray:
        """Per-point substep counts from the non-stiff timescales.

        The step is limited by ``eps * c / |dc/dt|`` over the species
        that the hybrid scheme treats explicitly; stiff species are
        handled stably by the asymptotic update and do not constrain h.
        """
        P, L = self.mechanism.production_loss(conc, k)
        c = np.atleast_2d(conc)
        rate = np.abs(P - L * c)
        # Dynamic absolute scale: 1% of the point's largest mixing ratio
        # (so trace species near zero do not force the minimum step).
        atol = np.maximum(1e-4, 0.01 * c.max(axis=0, initial=0.0))
        tau = (c + atol[None, :]) / np.maximum(rate, 1e-30)
        # Only non-stiff species constrain the explicit step; stiff ones
        # are unconditionally stable under the asymptotic update.
        trial_h = dt / self.min_substeps
        nonstiff = (L * trial_h) <= self.stiff_threshold
        tau = np.where(nonstiff, tau, np.inf)
        # Allow ~20*eps relative change per substep (eps=0.01 -> 20%),
        # and never exceed the stiff-equilibrium refresh cadence h_max.
        h_point = np.maximum(np.min(tau, axis=0) * (20.0 * self.eps), 1e-12)
        h_point = np.minimum(h_point, self.h_max)
        n = np.ceil(dt / h_point).astype(int)
        return np.clip(n, self.min_substeps, self.max_substeps)

    # ------------------------------------------------------------------
    def integrate(
        self,
        conc: np.ndarray,
        dt: float,
        temperature: float,
        sun: float,
        emissions: Optional[np.ndarray] = None,
        stats: Optional[ChemistryStats] = None,
    ) -> np.ndarray:
        """Advance ``conc`` (n_species, n_points) by ``dt`` seconds.

        ``emissions`` (ppm/s, same shape) enter as an extra production
        term.  Returns a new array; the input is not modified.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        conc = np.asarray(conc, dtype=float)
        # A 1-D state is one point's (n_species,) column.
        c = np.array(conc[:, None] if conc.ndim == 1 else conc, dtype=float)
        if c.shape[0] != self.mechanism.n_species:
            raise ValueError(
                f"conc has {c.shape[0]} species, mechanism expects "
                f"{self.mechanism.n_species}"
            )
        npts = c.shape[1]
        k = self.mechanism.rate_constants(temperature, sun)
        E = None
        if emissions is not None:
            E = np.atleast_2d(np.asarray(emissions, dtype=float))
            if E.shape != c.shape:
                raise ValueError(
                    f"emissions shape {E.shape} != concentration shape {c.shape}"
                )

        # Per-point adaptive substepping with the Young-Boris corrector
        # convergence test: a substep is accepted when predictor and
        # corrector agree to within ``eps`` relative (the convergence
        # criterion of the original paper); otherwise the point retries
        # with half the step.  This is what keeps the stiff (asymptotic)
        # and non-stiff (trapezoidal) updates flux-consistent.
        nsub0 = self.choose_substeps(c, k, dt) if npts else np.zeros(0, int)
        h = np.minimum(dt / np.maximum(nsub0, 1), self.h_max)
        h_min = dt / self.max_substeps
        remaining = np.full(npts, float(dt))
        attempts = np.zeros(npts, dtype=int)
        accepted = np.zeros(npts, dtype=int)
        # Hard iteration bound: enough for max_substeps acceptances plus
        # halving cascades; beyond it, steps are force-accepted anyway.
        max_iters = 4 * self.max_substeps

        for _ in range(max_iters):
            active = remaining > 1e-9 * dt
            if not active.any():
                break
            idx = np.where(active)[0]
            ha = np.minimum(h[idx], remaining[idx])
            ca = c[:, idx]
            Ea = E[:, idx] if E is not None else None
            c1, cp = self._substep(ca, k, ha, Ea)
            attempts[idx] += 1
            # Convergence metric over species (CHEMEQ-style).
            denom = np.maximum(np.maximum(c1, cp), 1e-7)
            err = np.max(np.abs(c1 - cp) / denom, axis=0)
            ok = (err <= 3.0 * self.eps) | (ha <= h_min * 1.0001)
            acc = idx[ok]
            rej = idx[~ok]
            c[:, acc] = c1[:, ok]
            remaining[acc] -= ha[ok]
            accepted[acc] += 1
            # Mild growth after success, halving after failure.
            h[acc] = np.minimum(h[acc] * 1.26, self.h_max)
            h[rej] = np.maximum(h[rej] * 0.5, h_min)
        else:
            # Iteration budget exhausted: finish the stragglers in one
            # forced step each so the integration always completes dt.
            idx = np.where(remaining > 1e-9 * dt)[0]
            if idx.size:
                ca = c[:, idx]
                Ea = E[:, idx] if E is not None else None
                c1, _ = self._substep(ca, k, remaining[idx], Ea)
                c[:, idx] = c1
                attempts[idx] += 1
                accepted[idx] += 1
                remaining[idx] = 0.0

        if stats is not None:
            local = ChemistryStats(
                substeps_total=int(attempts.sum()),
                max_substeps=int(attempts.max()) if npts else 0,
                points=npts,
                ops=float(attempts.sum())
                * self.mechanism.n_species
                * OPS_PER_SUBSTEP_PER_SPECIES,
                per_point_substeps=attempts.copy(),
            )
            stats.merge(local)
        return c if np.ndim(conc) == 2 else c[:, 0]

    # ------------------------------------------------------------------
    def _substep(
        self,
        c0: np.ndarray,
        k: np.ndarray,
        h: np.ndarray,
        emissions: Optional[np.ndarray],
    ):
        """One hybrid predictor/corrector substep (vector over points).

        Returns ``(corrected, predicted)`` so the caller can apply the
        convergence test.
        """
        P0, L0 = self.mechanism.production_loss(c0, k)
        if emissions is not None:
            P0 = P0 + emissions
        cp = self._predict(c0, P0, L0, h)

        P1, L1 = self.mechanism.production_loss(cp, k)
        if emissions is not None:
            P1 = P1 + emissions

        # Corrector.  Stiff species: asymptotic update with averaged
        # coefficients (Young & Boris eq. 7).  Non-stiff species: true
        # trapezoidal rule, which preserves the production/loss symmetry
        # (and hence elemental mass) exactly.
        Pm = 0.5 * (P0 + P1)
        Lm = 0.5 * (L0 + L1)
        stiff = Lm * h > self.stiff_threshold
        asym = self._asymptotic(c0, Pm, Lm, h)
        trap = c0 + 0.5 * h * ((P0 - L0 * c0) + (P1 - L1 * cp))
        corrected = np.maximum(np.where(stiff, asym, trap), self.floor)
        return corrected, cp

    def _predict(
        self, c0: np.ndarray, P: np.ndarray, L: np.ndarray, h: np.ndarray
    ) -> np.ndarray:
        Lh = L * h  # (ns, np)
        stiff = Lh > self.stiff_threshold
        asym = self._asymptotic(c0, P, L, h)
        expl = c0 + h * (P - L * c0)
        return np.maximum(np.where(stiff, asym, expl), self.floor)

    def _asymptotic(
        self, c0: np.ndarray, P: np.ndarray, L: np.ndarray, h: np.ndarray
    ) -> np.ndarray:
        """Exact solution for frozen P, L: c -> P/L + (c - P/L) e^{-Lh}."""
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            ceq = np.where(L > 0, P / np.maximum(L, 1e-300), 0.0)
            decay = np.exp(-np.minimum(L * h, 50.0))
        return ceq + (c0 - ceq) * decay
