"""Young–Boris hybrid integrator for stiff chemical kinetics.

Airshed solves the chemistry (and vertical transport) operator ``Lcz``
with "the hybrid scheme of Young and Boris for stiff systems of ordinary
differential equations" (Young & Boris, J. Phys. Chem. 81, 1977).

The scheme writes each species' equation in production/loss form
``dc/dt = P - L*c`` and classifies species per point and per substep:

* **stiff** (``L*h`` large): use the asymptotic exponential update
  ``c(t+h) = P/L + (c - P/L) * exp(-L*h)``, exact for frozen P, L;
* **non-stiff**: explicit predictor.

A corrector pass re-evaluates ``P, L`` at the predicted state and
averages, giving second-order accuracy for the non-stiff species and a
stable treatment of the stiff ones.  Substep sizes adapt per grid point
to the fastest *non-stiff* timescale; everything is vectorised across
points with an active mask, so points in clean air take a handful of
substeps while the urban core takes many — the source of the chemistry
load variation the data distribution has to spread.

The integrator reports a deterministic operation count (substeps summed
over points, scaled by per-substep work), which drives the simulated
machine time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.chemistry.mechanism import Mechanism

__all__ = ["ChemistryStats", "YoungBorisSolver"]

#: Abstract ops per (species, point) per substep: two mechanism
#: evaluations (predictor + corrector) plus the update arithmetic.
OPS_PER_SUBSTEP_PER_SPECIES = 60.0


@dataclass
class ChemistryStats:
    """Deterministic work accounting for one integration call."""

    substeps_total: int = 0
    max_substeps: int = 0
    points: int = 0
    ops: float = 0.0
    #: Substep attempts per point — the per-point work profile the
    #: workload trace records.  Merging accumulates elementwise when
    #: both sides profile the *same* point set (equal lengths); merging
    #: profiles of different lengths is a usage error and raises.
    per_point_substeps: Optional[np.ndarray] = None

    def merge(self, other: "ChemistryStats") -> None:
        self.substeps_total += other.substeps_total
        self.max_substeps = max(self.max_substeps, other.max_substeps)
        self.points += other.points
        self.ops += other.ops
        if other.per_point_substeps is not None:
            if self.per_point_substeps is None:
                self.per_point_substeps = other.per_point_substeps.copy()
            elif self.per_point_substeps.shape == other.per_point_substeps.shape:
                self.per_point_substeps = (
                    self.per_point_substeps + other.per_point_substeps
                )
            else:
                raise ValueError(
                    "cannot merge per_point_substeps profiles of different "
                    f"shapes {self.per_point_substeps.shape} vs "
                    f"{other.per_point_substeps.shape}"
                )


def _active_slices(
    idx: np.ndarray, edges: Optional[np.ndarray]
) -> Optional[List[Tuple[int, int]]]:
    """Member column ranges within the gathered active subset.

    ``idx`` is ascending, so the active columns of member ``j`` (global
    columns in ``[edges[j], edges[j+1])``) land contiguously in the
    gathered block; ``searchsorted`` finds where each member's run
    starts and stops.
    """
    if edges is None:
        return None
    cuts = np.searchsorted(idx, edges)
    return list(zip(cuts[:-1].tolist(), cuts[1:].tolist()))


class YoungBorisSolver:
    """Hybrid stiff/non-stiff kinetics integrator.

    Parameters
    ----------
    mechanism:
        The compiled :class:`~repro.chemistry.mechanism.Mechanism`.
    eps:
        Relative accuracy target steering the adaptive substep size.
    stiff_threshold:
        Species with ``L*h > stiff_threshold`` take the asymptotic
        update (Young & Boris use ~1).
    min_substeps / max_substeps:
        Bounds on substeps per call, keeping work finite on
        pathological states.
    h_max:
        Hard cap on the substep length (seconds).  The asymptotic
        update freezes each stiff species' equilibrium over a substep;
        coupled stiff cycles (the NOx photostationary state) need that
        equilibrium refreshed on a tens-of-seconds cadence to converge.
    floor:
        Concentration floor (ppm); negative excursions are clipped.
    fast:
        Use the workspace-backed fast kernel
        (:mod:`repro.chemistry.kernel`).  Results are bitwise identical
        to the reference path; ``fast=False`` keeps the original
        allocation-per-substep implementation for cross-checking.
    workers / tile_cols / tile_min_cols:
        Multi-core tiling of the fast kernel's elementwise stages
        (:mod:`repro.chemistry.tiling`).  ``workers > 1`` (or an
        explicit ``tile_cols``) fans columns out over a persistent
        thread pool; results stay bitwise identical for every worker
        count and tile size, so this is purely a wall-clock knob.
        Ignored by the ``fast=False`` reference path.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        eps: float = 0.01,
        stiff_threshold: float = 1.0,
        min_substeps: int = 2,
        max_substeps: int = 300,
        h_max: float = 20.0,
        floor: float = 0.0,
        fast: bool = True,
        workers: int = 1,
        tile_cols: Optional[int] = None,
        tile_min_cols: int = 128,
    ) -> None:
        if eps <= 0:
            raise ValueError("eps must be positive")
        if min_substeps < 1 or max_substeps < min_substeps:
            raise ValueError("bad substep bounds")
        if h_max <= 0:
            raise ValueError("h_max must be positive")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.mechanism = mechanism
        self.eps = float(eps)
        self.stiff_threshold = float(stiff_threshold)
        self.min_substeps = int(min_substeps)
        self.max_substeps = int(max_substeps)
        self.h_max = float(h_max)
        self.floor = float(floor)
        self.fast = bool(fast)
        self.workers = int(workers)
        self.tile_cols = None if tile_cols is None else int(tile_cols)
        self.tile_min_cols = int(tile_min_cols)
        self._kern: Optional["FastKernel"] = None
        self._pool = None

    def _kernel(self) -> "FastKernel":
        if self._kern is None:
            from repro.chemistry.kernel import FastKernel

            self._kern = FastKernel(self.mechanism)
            if self.workers > 1 or self.tile_cols is not None:
                from repro.chemistry.tiling import TilePool

                self._pool = TilePool(self.workers)
                self._kern.configure_tiling(
                    self._pool, self.tile_cols, self.tile_min_cols
                )
        return self._kern

    def close(self) -> None:
        """Release the tile worker pool (idempotent; pool is lazy)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            if self._kern is not None:
                self._kern.configure_tiling(None)

    def tile_stats(self) -> list:
        """Per-worker ``{worker, busy_s, tasks, cols}`` accounting."""
        return [] if self._pool is None else self._pool.snapshot()

    # ------------------------------------------------------------------
    def choose_substeps(
        self, conc: np.ndarray, k: np.ndarray, dt: float,
        col_slices: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> np.ndarray:
        """Per-point substep counts from the non-stiff timescales.

        The step is limited by ``eps * c / |dc/dt|`` over the species
        that the hybrid scheme treats explicitly; stiff species are
        handled stably by the asymptotic update and do not constrain h.
        """
        P, L = self._mech_pl(np.atleast_2d(conc), k, col_slices)
        return self._substeps_from(P, L, np.atleast_2d(conc), dt)

    def _mech_pl(
        self, conc: np.ndarray, k: np.ndarray,
        col_slices: Optional[Sequence[Tuple[int, int]]],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Reference mechanism evaluation, optionally per column slice.

        ``col_slices`` (batched ensembles) evaluates each member's
        column range separately so the ``(35, n_r) @ (n_r, m)`` matmul
        inside ``Mechanism.production_loss`` sees exactly the operand
        the member's independent run would; stitching the results back
        together is pure data movement.  Everything else in the
        evaluation is elementwise per column, hence slice-invariant.
        """
        if col_slices is None:
            return self.mechanism.production_loss(conc, k)
        P = np.empty_like(conc)
        L = np.empty_like(conc)
        for start, stop in col_slices:
            if stop > start:
                Ps, Ls = self.mechanism.production_loss(
                    conc[:, start:stop], k
                )
                P[:, start:stop] = Ps
                L[:, start:stop] = Ls
        return P, L

    def _substeps_from(
        self, P: np.ndarray, L: np.ndarray, c: np.ndarray, dt: float
    ) -> np.ndarray:
        """Substep counts from an already-evaluated ``(P, L)`` state.

        Split out so the fast path can reuse the evaluation for the
        first substep (the state is unchanged between them).
        """
        rate = np.abs(P - L * c)
        # Dynamic absolute scale: 1% of the point's largest mixing ratio
        # (so trace species near zero do not force the minimum step).
        atol = np.maximum(1e-4, 0.01 * c.max(axis=0, initial=0.0))
        tau = (c + atol[None, :]) / np.maximum(rate, 1e-30)
        # Only non-stiff species constrain the explicit step; stiff ones
        # are unconditionally stable under the asymptotic update.
        trial_h = dt / self.min_substeps
        nonstiff = (L * trial_h) <= self.stiff_threshold
        tau = np.where(nonstiff, tau, np.inf)
        # Allow ~20*eps relative change per substep (eps=0.01 -> 20%),
        # and never exceed the stiff-equilibrium refresh cadence h_max.
        h_point = np.maximum(np.min(tau, axis=0) * (20.0 * self.eps), 1e-12)
        h_point = np.minimum(h_point, self.h_max)
        n = np.ceil(dt / h_point).astype(int)
        return np.clip(n, self.min_substeps, self.max_substeps)

    # ------------------------------------------------------------------
    def integrate(
        self,
        conc: np.ndarray,
        dt: float,
        temperature: float,
        sun: float,
        emissions: Optional[np.ndarray] = None,
        stats: Optional[ChemistryStats] = None,
        member_edges: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance ``conc`` (n_species, n_points) by ``dt`` seconds.

        ``emissions`` (ppm/s, same shape) enter as an extra production
        term.  Returns a new array; the input is not modified.

        ``member_edges`` marks ensemble-member boundaries along the
        point axis: an ascending int64 array ``[0, m1, m1+m2, ...,
        n_points]`` splitting the columns into per-member blocks.  Every
        solver stage is per-point except the two BLAS matmuls, which
        are then performed per member block so each member's dgemm sees
        the operand its independent run would — making the batched
        sweep bitwise identical to integrating each block separately.
        Per-point adaptivity (h, remaining, error) never couples
        columns, so members cannot perturb each other's trajectories.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        conc = np.asarray(conc, dtype=float)
        # A 1-D state is one point's (n_species,) column.
        c = np.array(conc[:, None] if conc.ndim == 1 else conc, dtype=float)
        if c.shape[0] != self.mechanism.n_species:
            raise ValueError(
                f"conc has {c.shape[0]} species, mechanism expects "
                f"{self.mechanism.n_species}"
            )
        npts = c.shape[1]
        k = self.mechanism.rate_constants(temperature, sun)
        E = None
        if emissions is not None:
            # C order so the fused kernels can consume it directly; the
            # values (all that matters bitwise) are unchanged.
            E = np.ascontiguousarray(np.atleast_2d(emissions), dtype=float)
            if E.shape != c.shape:
                raise ValueError(
                    f"emissions shape {E.shape} != concentration shape {c.shape}"
                )

        # Per-point adaptive substepping with the Young-Boris corrector
        # convergence test: a substep is accepted when predictor and
        # corrector agree to within ``eps`` relative (the convergence
        # criterion of the original paper); otherwise the point retries
        # with half the step.  This is what keeps the stiff (asymptotic)
        # and non-stiff (trapezoidal) updates flux-consistent.
        fast = self.fast
        kern = None
        if fast:
            kern = self._kernel()
            kern.ensure(npts)
        edges = None
        full_slices = None
        if member_edges is not None:
            edges = np.ascontiguousarray(member_edges, dtype=np.int64)
            if edges.ndim != 1 or edges.size < 2 or edges[0] != 0 \
                    or edges[-1] != npts or np.any(np.diff(edges) < 0):
                raise ValueError(
                    f"member_edges must ascend from 0 to {npts}, got "
                    f"{member_edges!r}"
                )
            full_slices = list(zip(edges[:-1].tolist(), edges[1:].tolist()))
        if npts:
            if fast:
                # The fast path reuses this evaluation as the first
                # substep's (P0, L0): the state has not changed.
                P_init, L_init = kern.production_loss(
                    c, k, 0, col_slices=full_slices
                )
                nsub0 = self._substeps_from(P_init, L_init, c, dt)
            else:
                nsub0 = self.choose_substeps(c, k, dt, full_slices)
        else:
            nsub0 = np.zeros(0, int)
        h = np.minimum(dt / np.maximum(nsub0, 1), self.h_max)
        h_min = dt / self.max_substeps
        remaining = np.full(npts, float(dt))
        attempts = np.zeros(npts, dtype=int)
        accepted = np.zeros(npts, dtype=int)
        all_idx = np.arange(npts)
        # Hard iteration bound: enough for max_substeps acceptances plus
        # halving cascades; beyond it, steps are force-accepted anyway.
        max_iters = 4 * self.max_substeps

        for it in range(max_iters):
            active = remaining > 1e-9 * dt
            if not active.any():
                break
            full = bool(active.all())
            if full:
                # All points active: operate on `c` directly — same
                # values as the gathered copy, no 35 x npts move.
                idx = all_idx
                ha = np.minimum(h, remaining)
                ca = c
                slices = full_slices
            else:
                idx = np.where(active)[0]
                ha = np.minimum(h[idx], remaining[idx])
                if fast:
                    # Fancy column indexing returns an F-ordered array;
                    # gather into a C-contiguous workspace buffer
                    # instead (same values, layout the fused kernels
                    # want — every consumer is elementwise, the BLAS
                    # operands are always the separate `rates` buffer).
                    ca = kern.gather_cols(c, idx)
                else:
                    ca = c[:, idx]
                slices = _active_slices(idx, edges)
            if fast:
                c1, cp = self._substep_fast(
                    kern, ca, k, ha, E, idx, full, reuse_pl=(it == 0),
                    col_slices=slices,
                )
                err = kern.errmax(c1, cp)
            else:
                Ea = E[:, idx] if E is not None else None
                c1, cp = self._substep(ca, k, ha, Ea, slices)
                # Convergence metric over species (CHEMEQ-style).
                denom = np.maximum(np.maximum(c1, cp), 1e-7)
                err = np.max(np.abs(c1 - cp) / denom, axis=0)
            attempts[idx] += 1
            ok = (err <= 3.0 * self.eps) | (ha <= h_min * 1.0001)
            acc = idx[ok]
            rej = idx[~ok]
            if fast:
                kern.scatter_cols(c, c1, idx, ok)
            else:
                c[:, acc] = c1[:, ok]
            remaining[acc] -= ha[ok]
            accepted[acc] += 1
            # Mild growth after success, halving after failure.
            h[acc] = np.minimum(h[acc] * 1.26, self.h_max)
            h[rej] = np.maximum(h[rej] * 0.5, h_min)
        else:
            # Iteration budget exhausted: finish the stragglers in one
            # forced step each so the integration always completes dt.
            active = remaining > 1e-9 * dt
            idx = np.where(active)[0]
            if idx.size:
                full = bool(active.all())
                if full:
                    ca = c
                    slices = full_slices
                else:
                    slices = _active_slices(idx, edges)
                    if fast:
                        ca = kern.gather_cols(c, idx)
                    else:
                        ca = c[:, idx]
                if fast:
                    c1, _ = self._substep_fast(
                        kern, ca, k, remaining[idx], E, idx, full,
                        reuse_pl=False, col_slices=slices,
                    )
                else:
                    Ea = E[:, idx] if E is not None else None
                    c1, _ = self._substep(ca, k, remaining[idx], Ea, slices)
                c[:, idx] = c1
                attempts[idx] += 1
                accepted[idx] += 1
                remaining[idx] = 0.0

        if stats is not None:
            local = ChemistryStats(
                substeps_total=int(attempts.sum()),
                max_substeps=int(attempts.max()) if npts else 0,
                points=npts,
                ops=float(attempts.sum())
                * self.mechanism.n_species
                * OPS_PER_SUBSTEP_PER_SPECIES,
                per_point_substeps=attempts.copy(),
            )
            stats.merge(local)
        return c if np.ndim(conc) == 2 else c[:, 0]

    # ------------------------------------------------------------------
    def _substep_fast(
        self,
        kern,
        c0: np.ndarray,
        k: np.ndarray,
        h: np.ndarray,
        E: Optional[np.ndarray],
        idx: np.ndarray,
        full: bool,
        reuse_pl: bool,
        col_slices: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        """Workspace-backed hybrid substep, bitwise equal to ``_substep``.

        The optimizations are exactness-preserving: ``out=`` buffers
        (or the C fused loops — see :mod:`repro.chemistry.kernel`), the
        shared ``R0 = P0 - L0*c0`` subexpression (used by both the
        explicit predictor and the trapezoidal corrector), a single
        ``L*h`` product per stage feeding both the stiffness mask and
        the asymptotic decay, and the asymptotic update evaluated only
        on the stiff subset (gather/compute/scatter; elementwise ops
        are subset-stable).  ``reuse_pl`` skips the first mechanism
        evaluation when slot 0 already holds ``(P0, L0)`` at ``c0``.
        """
        from repro.chemistry.kernel import asymptotic_subset

        m = c0.shape[1]
        if not reuse_pl:
            kern.production_loss(c0, k, 0, defer_finish=True,
                                 col_slices=col_slices)
        P0, L0 = kern.mat("P0", m), kern.mat("L0", m)
        Ea = None
        if E is not None:
            # gather_cols tiles the column gather when a pool is
            # configured; pure data movement either way.
            Ea = E if full else kern.gather_cols(E, idx, name="Ea")

        # --- predictor -------------------------------------------------
        cp, Lh, _R0, flat = kern.predictor(
            c0, h, Ea, self.stiff_threshold, self.floor
        )
        if flat.size:
            vals = asymptotic_subset(
                c0.ravel()[flat],
                P0.ravel()[flat],
                L0.ravel()[flat],
                Lh.ravel()[flat],
            )
            cp.ravel()[flat] = np.maximum(vals, self.floor)

        # --- corrector -------------------------------------------------
        P1, _L1 = kern.production_loss(cp, k, 1, defer_finish=True,
                                       col_slices=col_slices)
        c1, Lm, Lmh, flatm = kern.corrector(
            cp, c0, h, Ea, self.stiff_threshold, self.floor
        )
        if flatm.size:
            Pmf = 0.5 * (P0.ravel()[flatm] + P1.ravel()[flatm])
            vals = asymptotic_subset(
                c0.ravel()[flatm],
                Pmf,
                Lm.ravel()[flatm],
                Lmh.ravel()[flatm],
            )
            c1.ravel()[flatm] = np.maximum(vals, self.floor)
        return c1, cp

    # ------------------------------------------------------------------
    def _substep(
        self,
        c0: np.ndarray,
        k: np.ndarray,
        h: np.ndarray,
        emissions: Optional[np.ndarray],
        col_slices: Optional[Sequence[Tuple[int, int]]] = None,
    ):
        """One hybrid predictor/corrector substep (vector over points).

        Returns ``(corrected, predicted)`` so the caller can apply the
        convergence test.
        """
        P0, L0 = self._mech_pl(c0, k, col_slices)
        if emissions is not None:
            P0 = P0 + emissions
        cp = self._predict(c0, P0, L0, h)

        P1, L1 = self._mech_pl(cp, k, col_slices)
        if emissions is not None:
            P1 = P1 + emissions

        # Corrector.  Stiff species: asymptotic update with averaged
        # coefficients (Young & Boris eq. 7).  Non-stiff species: true
        # trapezoidal rule, which preserves the production/loss symmetry
        # (and hence elemental mass) exactly.
        Pm = 0.5 * (P0 + P1)
        Lm = 0.5 * (L0 + L1)
        stiff = Lm * h > self.stiff_threshold
        asym = self._asymptotic(c0, Pm, Lm, h)
        trap = c0 + 0.5 * h * ((P0 - L0 * c0) + (P1 - L1 * cp))
        corrected = np.maximum(np.where(stiff, asym, trap), self.floor)
        return corrected, cp

    def _predict(
        self, c0: np.ndarray, P: np.ndarray, L: np.ndarray, h: np.ndarray
    ) -> np.ndarray:
        Lh = L * h  # (ns, np)
        stiff = Lh > self.stiff_threshold
        asym = self._asymptotic(c0, P, L, h)
        expl = c0 + h * (P - L * c0)
        return np.maximum(np.where(stiff, asym, expl), self.floor)

    def _asymptotic(
        self, c0: np.ndarray, P: np.ndarray, L: np.ndarray, h: np.ndarray
    ) -> np.ndarray:
        """Exact solution for frozen P, L: c -> P/L + (c - P/L) e^{-Lh}."""
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            ceq = np.where(L > 0, P / np.maximum(L, 1e-300), 0.0)
            decay = np.exp(-np.minimum(L * h, 50.0))
        return ceq + (c0 - ceq) * decay
