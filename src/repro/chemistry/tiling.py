"""Persistent worker pool for the tiled multi-core chemistry engine.

The Airshed chemistry operator is data-parallel over grid columns — the
premise of the paper's HPF column distribution — so the shared-memory
engine partitions the column axis of each solver stage into contiguous
tiles and runs the tiles on a persistent pool of worker threads.

Bitwise identity is structural, not approximate (the ground rules are
verified in ``docs/PERFORMANCE.md`` §3 and pinned by
``tests/chemistry/test_tiled.py``):

* every tiled stage is **elementwise per column** — each output element
  is computed from the same inputs by the same IEEE-754 instruction
  sequence regardless of which tile (or thread) computes it;
* tiles write **disjoint column ranges** of shared workspace buffers,
  so there are no write races and no accumulation-order dependence;
* the two BLAS matmuls and the ``np.exp`` asymptotic update — the only
  width/operand-sensitive stages — stay on the main thread with
  exactly the operands the sequential path feeds them.

Hence results are SHA-identical to the sequential run for every worker
count and tile size; the pool only changes wall-clock time.

The pool's threads hold no Python-visible shared state beyond the
locked accounting counters below; the numeric work happens inside
GIL-releasing ctypes calls (C backend) or numpy ufuncs on disjoint
column slices (fallback), so tiles genuinely overlap on multi-core
hosts.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["TilePool", "tile_spans"]

#: A tile task: ``fn(span_index, col0, col1)`` computes columns
#: ``[col0, col1)`` of the current stage.
TileFn = Callable[[int, int, int], None]


def tile_spans(
    m: int, workers: int, tile_cols: Optional[int] = None
) -> List[Tuple[int, int]]:
    """Contiguous column spans covering ``[0, m)``.

    With ``tile_cols=None`` the axis splits into one balanced tile per
    worker (ceil division, last tile ragged); an explicit ``tile_cols``
    fixes the tile width instead (the last tile is ragged, and
    ``tile_cols=1`` degenerates to one column per tile).  The choice
    never affects results — only load balance.
    """
    if m <= 0:
        return []
    if tile_cols is not None and tile_cols > 0:
        size = int(tile_cols)
    else:
        size = -(-m // max(int(workers), 1))
    return [(s, min(s + size, m)) for s in range(0, m, size)]


class TilePool:
    """A persistent pool of ``workers`` daemon threads running tiles.

    Tile-to-worker assignment is static and deterministic (span ``i``
    goes to worker ``i % workers``), which keeps the per-worker
    accounting reproducible; the *results* are assignment-invariant by
    the disjoint-write ground rule above.

    ``busy_s`` / ``tasks`` / ``cols`` accumulate per-worker wall time,
    dispatch counts and column counts under ``_lock`` — observability
    only (they feed the per-worker tile spans in ``repro.observe``),
    never any science state.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = int(workers)
        self._queues: List["queue.SimpleQueue"] = [
            queue.SimpleQueue() for _ in range(self.workers)
        ]
        self._done: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self.busy_s = [0.0] * self.workers
        self.tasks = [0] * self.workers
        self.cols = [0] * self.workers
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop, args=(w,),
                name=f"chem-tile-{w}", daemon=True,
            )
            for w in range(self.workers)
        ]
        for t in self._threads:
            t.start()

    # ------------------------------------------------------------------
    def _worker_loop(self, widx: int) -> None:
        q = self._queues[widx]
        while True:
            item = q.get()
            if item is None:
                return
            fn, share = item
            err: Optional[BaseException] = None
            ncols = 0
            t0 = time.perf_counter()
            try:
                for si, c0, c1 in share:
                    fn(si, c0, c1)
                    ncols += c1 - c0
            except BaseException as exc:  # noqa: BLE001 - re-raised by run()
                err = exc
            dt = time.perf_counter() - t0
            with self._lock:
                self.busy_s[widx] += dt
                self.tasks[widx] += 1
                self.cols[widx] += ncols
            self._done.put(err)

    # ------------------------------------------------------------------
    def run(self, fn: TileFn, spans: Sequence[Tuple[int, int]]) -> None:
        """Execute ``fn`` over every span; blocks until all complete.

        Raises the first worker exception encountered (after draining
        the remaining completions, so the pool stays consistent).
        """
        if self._closed:
            raise RuntimeError("TilePool is closed")
        outstanding = 0
        for w in range(self.workers):
            share = [
                (i, spans[i][0], spans[i][1])
                for i in range(w, len(spans), self.workers)
            ]
            if share:
                self._queues[w].put((fn, share))
                outstanding += 1
        first_err: Optional[BaseException] = None
        for _ in range(outstanding):
            err = self._done.get()
            if err is not None and first_err is None:
                first_err = err
        if first_err is not None:
            raise first_err

    # ------------------------------------------------------------------
    def snapshot(self) -> List[dict]:
        """Per-worker accounting: ``[{worker, busy_s, tasks, cols}]``."""
        with self._lock:
            return [
                {
                    "worker": w,
                    "busy_s": self.busy_s[w],
                    "tasks": self.tasks[w],
                    "cols": self.cols[w],
                }
                for w in range(self.workers)
            ]

    def close(self) -> None:
        """Stop the worker threads (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for q in self._queues:
            q.put(None)
        for t in self._threads:
            t.join(timeout=5.0)
