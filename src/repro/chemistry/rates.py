"""Rate laws for the condensed gas-phase mechanism.

Two families, following the CIT model conventions:

* :class:`Arrhenius` thermal reactions, ``k(T) = A * exp(-Ea/T) *
  (T/300)^n`` in ppm^-1 s^-1 (bimolecular) or s^-1 (unimolecular);
* :class:`Photolysis` reactions, ``J = J_max * sun`` where ``sun`` in
  [0, 1] is the hourly actinic-flux scale factor from the dataset.

The mechanism is a reduced surrogate of the CIT photochemistry: it keeps
the characteristic stiffness split (fast radicals OH/HO2/NO3/C2O3 versus
slow stable species) that the Young–Boris hybrid solver exploits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Arrhenius", "Photolysis", "RateLaw"]


@dataclass(frozen=True)
class Arrhenius:
    """Thermal rate law ``k = A * exp(-ea_over_R / T) * (T/300)**n``."""

    A: float
    ea_over_R: float = 0.0
    n: float = 0.0

    def __post_init__(self) -> None:
        if self.A < 0:
            raise ValueError("pre-exponential factor must be non-negative")

    def __call__(self, temperature: float, sun: float) -> float:
        T = float(temperature)
        if T <= 0:
            raise ValueError("temperature must be positive kelvin")
        k = self.A * np.exp(-self.ea_over_R / T)
        if self.n:
            k *= (T / 300.0) ** self.n
        return float(k)


@dataclass(frozen=True)
class Photolysis:
    """Photolytic rate ``J = J_max * clip(sun, 0, 1)``."""

    J_max: float

    def __post_init__(self) -> None:
        if self.J_max < 0:
            raise ValueError("J_max must be non-negative")

    def __call__(self, temperature: float, sun: float) -> float:
        return float(self.J_max * min(max(sun, 0.0), 1.0))


#: Anything callable as ``law(temperature, sun) -> float``.
RateLaw = Arrhenius | Photolysis
