"""A condensed 35-species CIT-like photochemical mechanism.

The paper's datasets carry 35 chemical species.  This module defines a
reduced urban photochemistry with exactly that many species — the
classic O3/NOx/VOC cycle plus carbonyl, aromatic, biogenic and sulfur
chemistry and a bulk aerosol species — and the machinery to evaluate it
in production/loss form, which is what the Young–Boris solver consumes:

``dc_i/dt = P_i(c) - L_i(c) * c_i``

All evaluation is vectorised over grid points: concentrations are
``(n_species, n_points)`` arrays in ppm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.chemistry.rates import Arrhenius, Photolysis, RateLaw

__all__ = ["Reaction", "Mechanism", "cit_mechanism", "SPECIES_35"]

#: The 35 species of the condensed mechanism, in storage order.
SPECIES_35: Tuple[str, ...] = (
    "NO", "NO2", "O3", "HONO", "HNO3", "HNO4", "NO3", "N2O5",
    "OH", "HO2", "H2O2", "CO", "SO2", "SULF", "HCHO", "ALD2",
    "C2O3", "PAN", "MEK", "RO2", "ONIT", "ETH", "OLE", "PAR",
    "TOL", "XYL", "CRES", "MGLY", "OPEN", "ISOP", "ROOH", "MEOH",
    "ETOH", "NH3", "AERO",
)


@dataclass(frozen=True)
class Reaction:
    """One reaction: reactants (1 or 2), products with stoichiometry."""

    label: str
    reactants: Tuple[str, ...]
    products: Tuple[Tuple[str, float], ...]
    rate: RateLaw

    def __post_init__(self) -> None:
        if not (1 <= len(self.reactants) <= 2):
            raise ValueError(
                f"{self.label}: reactions must have 1 or 2 reactants"
            )
        for _, stoich in self.products:
            if stoich <= 0:
                raise ValueError(f"{self.label}: stoichiometry must be positive")


class Mechanism:
    """A species list + reaction set compiled for vector evaluation."""

    def __init__(self, species: Sequence[str], reactions: Sequence[Reaction]):
        self.species: Tuple[str, ...] = tuple(species)
        if len(set(self.species)) != len(self.species):
            raise ValueError("duplicate species names")
        self.index: Dict[str, int] = {s: i for i, s in enumerate(self.species)}
        self.reactions: Tuple[Reaction, ...] = tuple(reactions)
        for r in self.reactions:
            for s in r.reactants:
                if s not in self.index:
                    raise ValueError(f"{r.label}: unknown reactant {s!r}")
            for s, _ in r.products:
                if s not in self.index:
                    raise ValueError(f"{r.label}: unknown product {s!r}")
        self._compile()

    # ------------------------------------------------------------------
    def _compile(self) -> None:
        nr, ns = len(self.reactions), len(self.species)
        # Reactant index arrays; second reactant -1 for unimolecular.
        self._r1 = np.array([self.index[r.reactants[0]] for r in self.reactions])
        self._r2 = np.array(
            [self.index[r.reactants[1]] if len(r.reactants) == 2 else -1
             for r in self.reactions]
        )
        # Derived index arrays for the fast kernel: bimolecular rows,
        # a gather-safe second-reactant array (unimolecular -> 0, the
        # gathered factor is overwritten with 1), and the unimolecular
        # row list doing that overwrite.
        self._bimol = self._r2 >= 0
        self._r2_safe = np.where(self._bimol, self._r2, 0)
        self._unimol_rows = np.flatnonzero(~self._bimol)
        # Production matrix: (ns, nr) stoichiometry of products.
        prod = np.zeros((ns, nr))
        loss = np.zeros((ns, nr))
        for j, r in enumerate(self.reactions):
            for s, st in r.products:
                prod[self.index[s], j] += st
            for s in r.reactants:
                loss[self.index[s], j] += 1.0
        self._prod = prod
        self._loss = loss
        # (temperature, sun) -> rate-constant vector; conditions are
        # constant across an hour's grid points, so the 49 Python-level
        # rate-law calls happen once per hour instead of per substep.
        self._k_cache: Dict[Tuple[float, float], np.ndarray] = {}

    @property
    def n_species(self) -> int:
        return len(self.species)

    @property
    def n_reactions(self) -> int:
        return len(self.reactions)

    # ------------------------------------------------------------------
    def rate_constants(self, temperature: float, sun: float) -> np.ndarray:
        """``(n_reactions,)`` rate constants for the given conditions.

        Memoized per ``(temperature, sun)``; the returned array is
        shared between callers and marked read-only — copy it before
        modifying.
        """
        key = (float(temperature), float(sun))
        k = self._k_cache.get(key)
        if k is None:
            if len(self._k_cache) >= 1024:
                self._k_cache.clear()
            k = np.array([r.rate(temperature, sun) for r in self.reactions])
            k.setflags(write=False)
            self._k_cache[key] = k
        return k

    def reaction_rates(self, conc: np.ndarray, k: np.ndarray) -> np.ndarray:
        """``(n_reactions, n_points)`` instantaneous reaction rates."""
        conc = np.atleast_2d(conc)
        r = k[:, None] * conc[self._r1]
        bimol = self._r2 >= 0
        r[bimol] *= conc[self._r2[bimol]]
        return r

    def production_loss(
        self, conc: np.ndarray, k: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Production ``P`` (ppm/s) and loss coefficient ``L`` (1/s).

        ``L`` is defined so that the loss *rate* of species ``i`` equals
        ``L_i * c_i`` (the form the Young–Boris asymptotic update needs);
        it is computed as (total loss rate)/(concentration) with a floor
        that keeps zero-concentration species well-defined.
        """
        conc = np.atleast_2d(conc)
        rates = self.reaction_rates(conc, k)
        P = self._prod @ rates
        loss_rate = self._loss @ rates
        L = loss_rate / np.maximum(conc, 1e-30)
        return P, L

    def tendency(self, conc: np.ndarray, k: np.ndarray) -> np.ndarray:
        """``dc/dt`` (ppm/s) at the given state."""
        P, L = self.production_loss(conc, k)
        return P - L * np.atleast_2d(conc)

    def nitrogen_indices(self) -> np.ndarray:
        """Indices of N-containing species with their N atom counts.

        Used by conservation diagnostics: the mechanism is constructed
        to conserve total nitrogen exactly.
        """
        counts = {
            "NO": 1, "NO2": 1, "HONO": 1, "HNO3": 1, "HNO4": 1,
            "NO3": 1, "N2O5": 2, "PAN": 1, "ONIT": 1, "NH3": 1,
        }
        return np.array(
            [(self.index[s], n) for s, n in counts.items() if s in self.index]
        )

    def nitrogen_total(self, conc: np.ndarray) -> np.ndarray:
        """Total nitrogen (ppm N) per point."""
        conc = np.atleast_2d(conc)
        idx = self.nitrogen_indices()
        return (conc[idx[:, 0]] * idx[:, 1][:, None]).sum(axis=0)

    def loss_coefficients(self, conc: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Exact first-order loss coefficients ``L_i`` (1/s) per point.

        Unlike the ratio in :meth:`production_loss` (loss rate divided
        by concentration, which vanishes for absent species), this sums
        ``k * [partner]`` directly, so it is well-defined at zero
        concentration — the right quantity for lifetime analysis.
        """
        conc = np.atleast_2d(conc)
        L = np.zeros_like(conc)
        for j in range(self.n_reactions):
            i1 = self._r1[j]
            i2 = self._r2[j]
            if i2 < 0:
                L[i1] += k[j]
            else:
                # Both partners see the other's concentration; for a
                # self-reaction this correctly yields 2*k*c.
                L[i1] += k[j] * conc[i2]
                L[i2] += k[j] * conc[i1]
        return L

    def species_lifetimes(self, conc: np.ndarray, k: np.ndarray) -> np.ndarray:
        """First-order lifetimes ``tau_i = 1 / L_i`` (seconds) per point.

        The quantity behind the Young-Boris stiff/non-stiff split:
        radicals live fractions of a second, reservoir species hours —
        six-plus orders of magnitude apart at a polluted midday point.
        Species with zero loss report ``inf``.
        """
        L = self.loss_coefficients(conc, k)
        with np.errstate(divide="ignore"):
            return np.where(L > 0, 1.0 / np.maximum(L, 1e-300), np.inf)

    def reactions_of(self, species: str) -> Dict[str, List[str]]:
        """Reaction labels consuming and producing a species."""
        if species not in self.index:
            raise ValueError(f"unknown species {species!r}")
        consuming = [r.label for r in self.reactions if species in r.reactants]
        producing = [
            r.label for r in self.reactions
            if any(s == species for s, _ in r.products)
        ]
        return {"consuming": consuming, "producing": producing}


def cit_mechanism() -> Mechanism:
    """Build the condensed 35-species mechanism.

    Rate constants are in ppm/s units with magnitudes representative of
    urban photochemistry at ~298 K; photolysis maxima correspond to
    clear-sky noon.  Nitrogen is conserved exactly by construction.
    """
    A, J = Arrhenius, Photolysis
    rxns: List[Reaction] = [
        # --- inorganic NOx / Ox cycle -----------------------------------
        Reaction("R1", ("NO2",), (("NO", 1.0), ("O3", 1.0)), J(8.0e-3)),
        Reaction("R2", ("O3", "NO"), (("NO2", 1.0),), A(6.0e1, ea_over_R=1430.0)),
        Reaction("R3", ("O3",), (("OH", 2.0),), J(4.0e-6)),
        Reaction("R4", ("NO2", "O3"), (("NO3", 1.0),), A(9.0e-2, ea_over_R=1450.0)),
        Reaction("R5", ("NO3", "NO"), (("NO2", 2.0),), A(6.5e2)),
        Reaction("R6", ("NO3", "NO2"), (("N2O5", 1.0),), A(3.0e1)),
        Reaction("R7", ("N2O5",), (("NO3", 1.0), ("NO2", 1.0)),
                 A(1.0e14, ea_over_R=11000.0)),
        Reaction("R8", ("N2O5",), (("HNO3", 2.0),), A(5.0e-5)),  # + H2O
        Reaction("R9", ("NO", "OH"), (("HONO", 1.0),), A(1.2e2)),
        Reaction("R10", ("HONO",), (("NO", 1.0), ("OH", 1.0)), J(2.0e-3)),
        Reaction("R11", ("NO2", "OH"), (("HNO3", 1.0),), A(2.7e2)),
        Reaction("R12", ("NO3",), (("NO2", 1.0), ("O3", 1.0)), J(2.0e-1)),
        # --- HOx cycle ---------------------------------------------------
        Reaction("R13", ("CO", "OH"), (("HO2", 1.0),), A(5.9e0)),
        Reaction("R14", ("O3", "HO2"), (("OH", 1.0),), A(4.9e-2, ea_over_R=500.0)),
        Reaction("R15", ("O3", "OH"), (("HO2", 1.0),), A(1.7e0, ea_over_R=1000.0)),
        Reaction("R16", ("HO2", "NO"), (("NO2", 1.0), ("OH", 1.0)), A(2.0e2)),
        Reaction("R17", ("HO2", "HO2"), (("H2O2", 1.0),), A(6.0e1)),
        Reaction("R18", ("H2O2",), (("OH", 2.0),), J(7.0e-6)),
        Reaction("R19", ("HO2", "NO2"), (("HNO4", 1.0),), A(3.4e1)),
        Reaction("R20", ("HNO4",), (("HO2", 1.0), ("NO2", 1.0)),
                 A(4.0e13, ea_over_R=10000.0)),
        # --- carbonyls ---------------------------------------------------
        Reaction("R21", ("HCHO",), (("HO2", 2.0), ("CO", 1.0)), J(3.0e-5)),
        Reaction("R22", ("HCHO",), (("CO", 1.0),), J(4.5e-5)),
        Reaction("R23", ("HCHO", "OH"), (("HO2", 1.0), ("CO", 1.0)), A(2.5e2)),
        Reaction("R24", ("ALD2", "OH"), (("C2O3", 1.0),), A(3.9e2)),
        Reaction("R25", ("ALD2",), (("CO", 1.0), ("HO2", 1.0), ("RO2", 1.0)),
                 J(6.0e-6)),
        Reaction("R26", ("C2O3", "NO"),
                 (("NO2", 1.0), ("HCHO", 1.0), ("HO2", 1.0)), A(2.0e2)),
        Reaction("R27", ("C2O3", "NO2"), (("PAN", 1.0),), A(1.2e2)),
        Reaction("R28", ("PAN",), (("C2O3", 1.0), ("NO2", 1.0)),
                 A(2.0e16, ea_over_R=13500.0)),
        Reaction("R29", ("MEK",), (("C2O3", 1.0), ("RO2", 1.0)), J(2.0e-6)),
        # --- generic organic peroxy -------------------------------------
        Reaction("R30", ("RO2", "NO"),
                 (("NO2", 1.0), ("HCHO", 1.0), ("HO2", 1.0)), A(2.0e2)),
        Reaction("R31", ("RO2", "HO2"), (("ROOH", 1.0),), A(1.2e2)),
        Reaction("R32", ("ROOH",), (("OH", 1.0), ("HO2", 1.0), ("HCHO", 1.0)),
                 J(5.0e-6)),
        # --- hydrocarbons ------------------------------------------------
        Reaction("R33", ("ETH", "OH"), (("RO2", 1.0), ("HCHO", 1.0)), A(2.0e2)),
        Reaction("R34", ("OLE", "OH"), (("RO2", 1.0), ("ALD2", 1.0)), A(7.0e2)),
        Reaction("R35", ("OLE", "O3"),
                 (("ALD2", 1.0), ("HO2", 0.5), ("CO", 0.5)), A(2.5e-4)),
        Reaction("R36", ("OLE", "NO3"), (("ONIT", 1.0),), A(3.0e-1)),
        Reaction("R37", ("PAR", "OH"), (("RO2", 1.0), ("MEK", 0.3)), A(2.0e1)),
        Reaction("R38", ("TOL", "OH"), (("CRES", 0.4), ("RO2", 1.0)), A(1.5e2)),
        Reaction("R39", ("XYL", "OH"), (("MGLY", 0.8), ("RO2", 1.0)), A(6.0e2)),
        Reaction("R40", ("CRES", "OH"), (("RO2", 1.0), ("OPEN", 0.3)), A(1.0e3)),
        Reaction("R41", ("MGLY",), (("C2O3", 1.0), ("HO2", 1.0), ("CO", 1.0)),
                 J(4.0e-5)),
        Reaction("R42", ("MGLY", "OH"), (("C2O3", 1.0),), A(4.0e2)),
        Reaction("R43", ("OPEN",), (("C2O3", 1.0), ("HO2", 1.0), ("CO", 1.0)),
                 J(1.5e-5)),
        Reaction("R44", ("ISOP", "OH"),
                 (("RO2", 1.0), ("HCHO", 0.6), ("MGLY", 0.2)), A(2.5e3)),
        Reaction("R45", ("ISOP", "O3"),
                 (("ALD2", 0.7), ("HO2", 0.3), ("CO", 0.3)), A(3.0e-4)),
        # --- alcohols / sulfur / aerosol ---------------------------------
        Reaction("R46", ("MEOH", "OH"), (("HCHO", 1.0), ("HO2", 1.0)), A(2.3e1)),
        Reaction("R47", ("ETOH", "OH"), (("ALD2", 1.0), ("HO2", 1.0)), A(8.0e1)),
        Reaction("R48", ("SO2", "OH"), (("SULF", 1.0), ("HO2", 1.0)), A(2.2e1)),
        # Gas->particle conversion of sulfate is handled by the aerosol
        # module (it needs global state and cannot be parallelised); the
        # zero-rate entry documents the pathway within the mechanism.
        Reaction("R49", ("SULF", "NH3"), (("AERO", 1.0),), A(0.0)),
    ]
    return Mechanism(SPECIES_35, rxns)
