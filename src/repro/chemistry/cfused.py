"""On-demand compilation and ctypes binding of the C fused kernels.

``load()`` compiles :mod:`_cfused.c <repro.chemistry>` with the system
C compiler the first time it is called (cached as a shared object under
``_cfused_build/``, keyed by a hash of the source and flags) and
returns a :class:`CFused` wrapper, or ``None`` when no compiler is
available, compilation fails, or the ``REPRO_CHEM_NO_C`` environment
variable is set.  Callers must treat ``None`` as "use the numpy
fallback" — the pure-numpy fast path in :mod:`repro.chemistry.kernel`
produces identical results.

The build deliberately avoids ``-march=native`` and disables FMA
contraction and fast-math: the point of the C kernels is to fuse numpy
ufunc chains *without changing a single result bit*, which requires the
compiler to round every intermediate exactly like the numpy expression
tree does (see ``_cfused.c`` and ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
from pathlib import Path
from typing import Optional

__all__ = ["CFused", "load"]

_SRC = Path(__file__).with_name("_cfused.c")
_BUILD_DIR = Path(__file__).with_name("_cfused_build")

#: No -march=native (FMA contraction would change rounding), no
#: fast-math (re-association would too).  -ffp-contract=off makes the
#: no-FMA guarantee explicit even on FMA-default toolchains.
_CFLAGS = ("-O3", "-fPIC", "-shared", "-fno-fast-math", "-ffp-contract=off")

_c_i64 = ctypes.c_int64
_c_vp = ctypes.c_void_p


class CFused:
    """ctypes bindings over the compiled kernel library.

    Pointer arguments are declared ``c_void_p`` so callers pass raw
    addresses (``ndarray.ctypes.data`` integers, which the hot path
    caches per workspace buffer) — per-call ``data_as`` marshalling
    costs more than some of the kernels themselves.  All arrays must be
    C-contiguous with the dtypes the kernels expect (float64 data,
    int64 indices); the callers in :mod:`repro.chemistry.kernel`
    guarantee this by construction.
    """

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        self.build_rates = lib.yb_build_rates
        self.build_rates.argtypes = [
            _c_i64, _c_i64, _c_vp, _c_vp, _c_vp, _c_vp, _c_vp,
        ]
        self.build_rates.restype = None
        self.pl_finish = lib.yb_pl_finish
        self.pl_finish.argtypes = [_c_i64, _c_vp, _c_vp]
        self.pl_finish.restype = None
        self.predictor = lib.yb_predictor
        self.predictor.argtypes = [
            _c_i64, _c_i64, _c_vp, _c_vp, _c_vp, _c_vp, _c_vp,
            ctypes.c_double, ctypes.c_double, _c_i64,
            _c_vp, _c_vp, _c_vp, _c_vp,
        ]
        self.predictor.restype = _c_i64
        self.corrector = lib.yb_corrector
        self.corrector.argtypes = [
            _c_i64, _c_i64, _c_vp, _c_vp, _c_vp, _c_vp, _c_vp, _c_vp,
            _c_vp, _c_vp, ctypes.c_double, ctypes.c_double, _c_i64,
            _c_vp, _c_vp, _c_vp, _c_vp,
        ]
        self.corrector.restype = _c_i64
        self.errmax = lib.yb_errmax
        self.errmax.argtypes = [_c_i64, _c_i64, _c_vp, _c_vp, _c_vp]
        self.errmax.restype = None
        self.gather_cols = lib.yb_gather_cols
        self.gather_cols.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_vp, _c_vp, _c_vp,
        ]
        self.gather_cols.restype = None
        self.scatter_cols = lib.yb_scatter_cols
        self.scatter_cols.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_vp, _c_vp, _c_vp, _c_vp,
        ]
        self.scatter_cols.restype = None
        # Column-span variants for the tiled multi-core engine.  Same
        # per-element operation sequences restricted to [col0, col1);
        # ctypes releases the GIL around each call, so tiles on pool
        # threads genuinely overlap.
        self.build_rates_span = lib.yb_build_rates_span
        self.build_rates_span.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_i64, _c_vp, _c_vp, _c_vp, _c_vp,
            _c_vp,
        ]
        self.build_rates_span.restype = None
        self.pl_finish_span = lib.yb_pl_finish_span
        self.pl_finish_span.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_i64, _c_vp, _c_vp,
        ]
        self.pl_finish_span.restype = None
        self.predictor_span = lib.yb_predictor_span
        self.predictor_span.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_i64, _c_vp, _c_vp, _c_vp, _c_vp,
            _c_vp, ctypes.c_double, ctypes.c_double, _c_i64,
            _c_vp, _c_vp, _c_vp, _c_vp,
        ]
        self.predictor_span.restype = _c_i64
        self.corrector_span = lib.yb_corrector_span
        self.corrector_span.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_i64, _c_vp, _c_vp, _c_vp, _c_vp,
            _c_vp, _c_vp, _c_vp, _c_vp, ctypes.c_double, ctypes.c_double,
            _c_i64, _c_vp, _c_vp, _c_vp, _c_vp,
        ]
        self.corrector_span.restype = _c_i64
        self.gather_cols_span = lib.yb_gather_cols_span
        self.gather_cols_span.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_i64, _c_i64, _c_vp, _c_vp, _c_vp,
        ]
        self.gather_cols_span.restype = None
        self.scatter_cols_span = lib.yb_scatter_cols_span
        self.scatter_cols_span.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_i64, _c_i64, _c_vp, _c_vp, _c_vp,
            _c_vp,
        ]
        self.scatter_cols_span.restype = None
        self.errmax_span = lib.yb_errmax_span
        self.errmax_span.argtypes = [
            _c_i64, _c_i64, _c_i64, _c_i64, _c_vp, _c_vp, _c_vp,
        ]
        self.errmax_span.restype = None


def _compile() -> Optional[Path]:
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None or not _SRC.exists():
        return None
    source = _SRC.read_bytes()
    digest = hashlib.sha256(source + " ".join(_CFLAGS).encode()).hexdigest()
    so_path = _BUILD_DIR / f"cfused_{digest[:16]}.so"
    if so_path.exists():
        return so_path
    try:
        _BUILD_DIR.mkdir(exist_ok=True)
        tmp = so_path.with_suffix(f".tmp{os.getpid()}.so")
        subprocess.run(
            [cc, *_CFLAGS, "-o", str(tmp), str(_SRC)],
            check=True, capture_output=True, timeout=120,
        )
        os.replace(tmp, so_path)  # atomic: concurrent builders agree
    except (OSError, subprocess.SubprocessError):
        return None
    return so_path


_cached: Optional[CFused] = None
_attempted = False


def load() -> Optional[CFused]:
    """The compiled kernels, or ``None`` when unavailable (memoized)."""
    global _cached, _attempted
    if _attempted:
        return _cached
    _attempted = True
    if os.environ.get("REPRO_CHEM_NO_C"):
        return None
    so_path = _compile()
    if so_path is None:
        return None
    try:
        _cached = CFused(ctypes.CDLL(str(so_path)))
    except OSError:
        _cached = None
    return _cached
