"""Gas-phase chemistry substrate: mechanism, stiff solver, vertical ops."""

from repro.chemistry.aerosol import AerosolModel
from repro.chemistry.mechanism import SPECIES_35, Mechanism, Reaction, cit_mechanism
from repro.chemistry.rates import Arrhenius, Photolysis
from repro.chemistry.vertical import (
    VerticalDiffusion,
    default_kz_profile,
    default_layer_heights,
)
from repro.chemistry.youngboris import ChemistryStats, YoungBorisSolver

__all__ = [
    "AerosolModel",
    "Arrhenius",
    "ChemistryStats",
    "Mechanism",
    "Photolysis",
    "Reaction",
    "SPECIES_35",
    "VerticalDiffusion",
    "YoungBorisSolver",
    "cit_mechanism",
    "default_kz_profile",
    "default_layer_heights",
]
