"""Vertical transport (diffusion, deposition, emission injection).

In Airshed the ``Lcz`` operator combines chemistry with vertical
transport because both act column-by-column on similar timescales, and
both are independent per grid point — the property that gives the
chemistry phase its high degree of parallelism.

We solve vertical eddy diffusion implicitly (backward Euler) on the
layer stack with a surface deposition sink and a closed top, using a
vectorised Thomas algorithm: the tridiagonal factorisation is shared by
every (species, point) column with the same K-profile, so one factor
serves the whole domain per hour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["VerticalDiffusion", "default_layer_heights", "default_kz_profile"]

#: Abstract ops per (species, point, layer) for one implicit solve.
OPS_PER_CELL_SOLVE = 12.0


def default_layer_heights(nlayers: int, surface: float = 50.0,
                          growth: float = 2.0) -> np.ndarray:
    """Geometrically growing layer thicknesses (m), surface layer first."""
    if nlayers < 1:
        raise ValueError("need at least one layer")
    return surface * growth ** np.arange(nlayers)


def default_kz_profile(nlayers: int, k_surface: float = 10.0,
                       k_top: float = 40.0) -> np.ndarray:
    """Eddy diffusivity (m^2/s) at the ``nlayers - 1`` interior interfaces."""
    if nlayers < 1:
        raise ValueError("need at least one layer")
    if nlayers == 1:
        return np.zeros(0)
    return np.linspace(k_surface, k_top, nlayers - 1)


@dataclass
class VerticalDiffusion:
    """Implicit vertical diffusion over a fixed layer stack.

    Parameters
    ----------
    heights:
        ``(nlayers,)`` layer thicknesses in metres.
    kz:
        ``(nlayers-1,)`` interface diffusivities in m^2/s.
    deposition:
        ``(n_species,)`` dry-deposition velocities (m/s) applied at the
        surface layer, or ``None`` for no deposition.
    """

    heights: np.ndarray
    kz: np.ndarray
    deposition: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.heights = np.asarray(self.heights, dtype=float)
        self.kz = np.asarray(self.kz, dtype=float)
        if self.heights.ndim != 1 or len(self.heights) < 1:
            raise ValueError("heights must be a 1-D array")
        if np.any(self.heights <= 0):
            raise ValueError("layer heights must be positive")
        if len(self.kz) != len(self.heights) - 1:
            raise ValueError(
                f"need {len(self.heights) - 1} interface diffusivities, "
                f"got {len(self.kz)}"
            )
        if np.any(self.kz < 0):
            raise ValueError("diffusivities must be non-negative")
        if self.deposition is not None:
            self.deposition = np.asarray(self.deposition, dtype=float)
            if np.any(self.deposition < 0):
                raise ValueError("deposition velocities must be non-negative")
        self._factor_cache: dict = {}

    @property
    def nlayers(self) -> int:
        return len(self.heights)

    # ------------------------------------------------------------------
    def _coefficients(self, dt: float, vd: float) -> Tuple[np.ndarray, ...]:
        """Tridiagonal (sub, diag, super) of the backward-Euler system."""
        nl = self.nlayers
        h = self.heights
        # Interface distances between layer centres.
        dz = 0.5 * (h[:-1] + h[1:])
        flux = self.kz / dz  # exchange velocity per interface (m/s)
        lower = np.zeros(nl)
        upper = np.zeros(nl)
        diag = np.ones(nl)
        for i in range(nl - 1):
            # Flux between layer i and i+1, mass-conservative form.
            diag[i] += dt * flux[i] / h[i]
            upper[i] = -dt * flux[i] / h[i]
            diag[i + 1] += dt * flux[i] / h[i + 1]
            lower[i + 1] = -dt * flux[i] / h[i + 1]
        # Deposition: first-order sink in the surface layer.
        diag[0] += dt * vd / h[0]
        return lower, diag, upper

    def _thomas_factor(self, dt: float, vd: float):
        """Precompute the forward-elimination factors of the Thomas solve."""
        key = (float(dt), float(vd))
        hit = self._factor_cache.get(key)
        if hit is not None:
            return hit
        lower, diag, upper = self._coefficients(dt, vd)
        nl = self.nlayers
        cp = np.zeros(nl)  # modified super-diagonal
        denom = np.zeros(nl)
        denom[0] = diag[0]
        cp[0] = upper[0] / denom[0] if nl > 1 else 0.0
        for i in range(1, nl):
            denom[i] = diag[i] - lower[i] * cp[i - 1]
            if i < nl - 1:
                cp[i] = upper[i] / denom[i]
        factors = (lower, denom, cp)
        self._factor_cache[key] = factors
        return factors

    # ------------------------------------------------------------------
    def step(self, conc: np.ndarray, dt: float) -> Tuple[np.ndarray, float]:
        """Advance ``conc`` (n_species, nlayers, n_points) by ``dt``.

        Returns ``(new_conc, ops)`` where ``ops`` is the deterministic
        work count.  The solve vectorises over species and points; the
        per-species deposition only changes the surface-layer diagonal,
        handled by solving per deposition-velocity group.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        conc = np.asarray(conc, dtype=float)
        if conc.ndim != 3 or conc.shape[1] != self.nlayers:
            raise ValueError(
                f"conc must be (species, {self.nlayers}, points); got {conc.shape}"
            )
        ns, nl, npts = conc.shape
        out = np.empty_like(conc)

        if self.deposition is None:
            vds = np.zeros(ns)
        else:
            if len(self.deposition) != ns:
                raise ValueError("deposition length != n_species")
            vds = self.deposition

        # Group species sharing a deposition velocity: one factorisation
        # per group, applied to all its species/points at once.
        for vd in np.unique(vds):
            sel = vds == vd
            lower, denom, cp = self._thomas_factor(dt, float(vd))
            rhs = conc[sel]  # (nsel, nl, npts)
            # Thomas forward sweep (vectorised over species and points).
            y = np.empty_like(rhs)
            y[:, 0] = rhs[:, 0] / denom[0]
            for i in range(1, nl):
                y[:, i] = (rhs[:, i] - lower[i] * y[:, i - 1]) / denom[i]
            # Back-substitution.
            out_sel = np.empty_like(rhs)
            out_sel[:, nl - 1] = y[:, nl - 1]
            for i in range(nl - 2, -1, -1):
                out_sel[:, i] = y[:, i] - cp[i] * out_sel[:, i + 1]
            out[sel] = out_sel

        ops = float(ns * nl * npts) * OPS_PER_CELL_SOLVE
        return out, ops

    def column_mass(self, conc: np.ndarray) -> np.ndarray:
        """Height-weighted column burden per (species, point)."""
        conc = np.asarray(conc)
        return np.einsum("slp,l->sp", conc, self.heights)
