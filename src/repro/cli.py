"""Command-line interface.

::

    python -m repro simulate --dataset la --hours 4 --trace trace.pkl
    python -m repro replay   --trace trace.pkl --machine t3e --nodes 64
    python -m repro replay   --trace trace.pkl --machine paragon --nodes 64 --mode best
    python -m repro predict  --trace trace.pkl --machine t3e --nodes 16 32 64 128
    python -m repro figures  --trace trace.pkl --out results/
    python -m repro trace    --dataset la --machine t3e --nodes 8 --out trace.json
    python -m repro lint     --driver taskparallel --dataset la --machine t3e -n 64
    python -m repro lint     --campaign ladder:demo --workers 4
    python -m repro lint     --campaign plan.json --timeout 30 --retries 2
    python -m repro lint     --determinism --allowlist .repro-determinism-allow
    python -m repro lint     --tune .repro-tune --drift-band 0.25
    python -m repro campaign plan --sweep machines --dataset la --workers 4
    python -m repro campaign run  --sweep ladder --dataset demo --hours 1
    python -m repro campaign run  --sweep ladder --dataset demo --autotune
    python -m repro campaign run  --sweep ladder --server http://127.0.0.1:8642 --tenant alice
    python -m repro serve    --root .repro-service --port 8642
    python -m repro tune     status --store .repro-tune
    python -m repro tune     ingest --dataset demo --machine t3e --nodes 16
    python -m repro bench    --quick

``simulate`` runs the real numerics and saves a workload trace;
everything downstream replays/predicts from the trace.  ``trace`` runs
a simulated parallel execution with the span tracer attached and
exports a Chrome-trace JSON (open in ``chrome://tracing`` or Perfetto);
see ``docs/OBSERVABILITY.md``.  ``lint`` statically analyzes a driver's
Fx program description — directive consistency, task-graph races,
redistribution costs — without running it; ``lint --campaign`` instead
verifies a campaign plan (cache-key coverage, fusion legality, chain
ordering, runner policy — FX04x) and ``lint --determinism`` runs the
AST nondeterminism sanitizer over the source tree (FX05x); see
``docs/ANALYZE.md``.
``campaign`` plans and runs whole sweeps of simulations as managed,
cached, fault-tolerant jobs; see ``docs/SCHEDULER.md``.  ``serve``
keeps that scheduler resident as a multi-tenant HTTP service with a
crash-safe journal and fair-share queueing (``campaign run --server``
submits to it); see ``docs/SERVICE.md``.  ``tune`` manages the
observed-span calibration store: ``status`` reports the refit model
against the paper constants plus drift, ``ingest`` harvests a traced
replay into the store; ``campaign --autotune`` / ``serve --autotune``
let the calibrated model *choose* each job's configuration, and
``lint --tune`` audits a store (FX06x); see ``docs/TUNING.md``.
``bench`` runs the hot-path perf suite (``benchmarks/perf``) without
PYTHONPATH gymnastics; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import pickle
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.analysis import all_figures, format_table, timing_report, trace_summary
from repro.analyze import (
    ALLOWLIST_FILENAME,
    CostBudget,
    analyze_program,
    available_programs,
    build_program,
    load_allowlist,
    scan_tree,
    verify_campaign,
)
from repro.datasets import DATASET_BUILDERS, get_dataset
from repro.model import (
    AirshedConfig,
    SequentialAirshed,
    WorkloadTrace,
    replay_data_parallel,
    replay_task_parallel,
)
from repro.model.taskparallel import replay_best_configuration
from repro.observe import (
    Tracer,
    predicted_vs_observed,
    write_chrome_trace,
    write_csv,
)
from repro.perfmodel import PerformancePredictor
from repro.sched import (
    CampaignCostModel,
    CampaignRunner,
    FaultPolicy,
    JobSpec,
    ResultCache,
    ensemble_sweep,
    machine_grid,
    plan_campaign,
    scaling_ladder,
    status_rows,
)
from repro.vm import get_machine, usage_from_spans

__all__ = ["main"]

#: The registered datasets (``repro.datasets.registry``).
DATASETS = DATASET_BUILDERS


def _load_trace(path: str) -> WorkloadTrace:
    with Path(path).open("rb") as fh:
        trace = pickle.load(fh)
    if not isinstance(trace, WorkloadTrace):
        raise SystemExit(f"{path} does not contain a WorkloadTrace")
    return trace


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.dataset not in DATASETS:
        raise SystemExit(f"unknown dataset {args.dataset!r}; choose from {sorted(DATASETS)}")
    print(f"building dataset {args.dataset!r}...")
    dataset = get_dataset(args.dataset)
    config = AirshedConfig(
        dataset=dataset, hours=args.hours, start_hour=args.start_hour,
        chem_workers=args.chem_workers, chem_tile_cols=args.chem_tile_cols,
    )
    print(f"simulating {args.hours} hours (real numerics)...")
    result = SequentialAirshed(config).run()
    print()
    print(trace_summary(result.trace))
    print("\nhourly mean O3 (ppm):",
          " ".join(f"{v:.4f}" for v in result.hourly_mean["O3"]))
    if args.trace:
        with Path(args.trace).open("wb") as fh:
            pickle.dump(result.trace, fh)
        print(f"\ntrace written to {args.trace}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    machine = get_machine(args.machine)
    if args.mode == "data":
        timing = replay_data_parallel(trace, machine, args.nodes)
        mode = "data-parallel"
    elif args.mode == "task":
        timing = replay_task_parallel(trace, machine, args.nodes,
                                      io_nodes=args.io_nodes)
        mode = f"task-parallel (io_nodes={args.io_nodes})"
    else:  # best
        mode, timing = replay_best_configuration(trace, machine, args.nodes)
    print(f"configuration: {mode}")
    print(timing_report(timing))
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    machine = get_machine(args.machine)
    predictor = PerformancePredictor(trace, machine)
    rows = []
    for P in args.nodes:
        p = predictor.predict(P)
        measured = replay_data_parallel(trace, machine, P).total_time
        rows.append([P, p.total, measured,
                     100.0 * (p.total - measured) / measured])
    print(format_table(["nodes", "predicted s", "measured s", "error %"], rows))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    trace = _load_trace(args.trace)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    for name, (header, rows) in all_figures(trace).items():
        text = format_table(header, rows)
        (out / f"{name}.txt").write_text(text + "\n")
        print(f"=== {name} ===")
        print(text)
        print()
    print(f"figure tables written to {out}/")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    machine = get_machine(args.machine)
    if args.workload:
        trace = _load_trace(args.workload)
    else:
        if args.dataset not in DATASETS:
            raise SystemExit(
                f"unknown dataset {args.dataset!r}; choose from {sorted(DATASETS)}"
            )
        print(f"building dataset {args.dataset!r}...")
        dataset = get_dataset(args.dataset)
        config = AirshedConfig(
            dataset=dataset, hours=args.hours, start_hour=args.start_hour
        )
        print(f"recording workload: {args.hours} hours of real numerics...")
        trace = SequentialAirshed(config).run().trace

    tracer = Tracer()
    if args.mode == "task":
        timing = replay_task_parallel(
            trace, machine, args.nodes, io_nodes=args.io_nodes, tracer=tracer
        )
        mode = f"task-parallel (io_nodes={args.io_nodes})"
    else:
        timing = replay_data_parallel(trace, machine, args.nodes, tracer=tracer)
        mode = "data-parallel"

    out = write_chrome_trace(tracer, args.out)
    print(f"{mode} on {timing.machine}, {args.nodes} nodes: "
          f"{timing.total_time:.2f} s simulated")
    report = usage_from_spans(tracer.spans, args.nodes)
    print(f"{len(tracer.spans)} spans "
          f"({int(tracer.counters.value('phases:compute'))} compute, "
          f"{int(tracer.counters.value('phases:comm'))} comm, "
          f"{int(tracer.counters.value('phases:io'))} io phases); "
          f"utilisation {100 * report.utilization:.1f}%, "
          f"comm {100 * report.comm_fraction:.1f}%, "
          f"idle {100 * report.idle_fraction:.1f}%")
    print(f"chrome trace written to {out} "
          "(open in chrome://tracing or https://ui.perfetto.dev)")
    if args.csv:
        print(f"span CSV written to {write_csv(tracer, args.csv)}")
    if args.compare:
        if args.mode == "task":
            print("\nnote: §4 predictions assume the data-parallel structure")
        predictor = PerformancePredictor(trace, machine)
        header, rows = predicted_vs_observed(
            predictor.predict(args.nodes), tracer
        )
        print()
        print(format_table(header, rows))
    return 0


def _lint_campaign_specs(plan_arg: str,
                         args: argparse.Namespace) -> List[JobSpec]:
    """Resolve ``lint --campaign``'s PLAN argument into job specs.

    ``PLAN`` is either a JSON file of spec dicts (as produced by
    ``JobSpec.to_dict`` / ``campaign plan --json``) or a sweep form
    ``ladder[:dataset]`` | ``machines[:dataset]`` |
    ``ensemble[:dataset[:members]]``.
    """
    path = Path(plan_arg)
    if path.suffix == ".json" or path.is_file():
        if not path.is_file():
            raise SystemExit(f"campaign plan file not found: {plan_arg}")
        data = json.loads(path.read_text())
        if isinstance(data, dict):
            data = data.get("specs", data.get("jobs", []))
        try:
            return [JobSpec.from_dict(d) for d in data]
        except (TypeError, ValueError) as exc:
            raise SystemExit(f"bad spec in {plan_arg}: {exc}")

    parts = plan_arg.split(":")
    sweep, rest = parts[0], parts[1:]
    dataset = rest[0] if rest and rest[0] else args.dataset
    if sweep == "ladder":
        return scaling_ladder(dataset=dataset, machine=args.machine,
                              hours=args.hours, io_nodes=args.io_nodes)
    if sweep == "machines":
        return machine_grid(dataset=dataset, hours=args.hours,
                            io_nodes=args.io_nodes)
    if sweep == "ensemble":
        members = int(rest[1]) if len(rest) > 1 else 4
        return ensemble_sweep(dataset=dataset, members=members,
                              hours=args.hours, machine=args.machine,
                              io_nodes=args.io_nodes)
    raise SystemExit(
        f"unknown campaign plan {plan_arg!r}: expected a JSON file or "
        "ladder[:dataset] | machines[:dataset] | ensemble[:dataset[:members]]"
    )


def _lint_campaign(args: argparse.Namespace) -> int:
    specs = _lint_campaign_specs(args.campaign, args)
    report = verify_campaign(
        specs,
        workers=args.workers,
        timeout=args.timeout,
        retries=args.retries,
        executor=args.executor,
    )
    print(report.to_json() if args.json else report.render())
    return report.exit_code


def _lint_determinism(args: argparse.Namespace) -> int:
    root = Path(args.root) if args.root else Path(__file__).resolve().parent
    allow_path = Path(args.allowlist) if args.allowlist \
        else Path(ALLOWLIST_FILENAME)
    allowlist = load_allowlist(allow_path) if allow_path.is_file() else ()
    if args.allowlist and not allow_path.is_file():
        raise SystemExit(f"allowlist not found: {args.allowlist}")
    report = scan_tree(root, allowlist=allowlist)
    print(report.to_json() if args.json else report.render())
    return report.exit_code


def _lint_tune(args: argparse.Namespace) -> int:
    from repro.analyze.tune import lint_tune_store

    report = lint_tune_store(args.tune, band=args.drift_band)
    print(report.to_json() if args.json else report.render())
    return report.exit_code


def cmd_lint(args: argparse.Namespace) -> int:
    modes = [bool(args.campaign), bool(args.determinism), bool(args.tune)]
    if sum(modes) > 1:
        raise SystemExit(
            "--campaign, --determinism and --tune are exclusive modes"
        )
    if args.campaign:
        return _lint_campaign(args)
    if args.determinism:
        return _lint_determinism(args)
    if args.tune:
        return _lint_tune(args)
    budget = None
    if (args.max_step_messages is not None
            or args.max_step_bytes is not None
            or args.max_step_seconds is not None):
        budget = CostBudget(
            max_step_messages=args.max_step_messages,
            max_step_bytes=args.max_step_bytes,
            max_step_seconds=args.max_step_seconds,
        )
    try:
        program = build_program(
            args.driver,
            dataset=args.dataset,
            machine=args.machine,
            nprocs=args.nodes,
            hours=args.hours,
            steps_per_hour=args.steps_per_hour,
            io_nodes=args.io_nodes,
        )
    except KeyError as exc:
        raise SystemExit(str(exc.args[0]) if exc.args else str(exc))
    report = analyze_program(program, budget=budget,
                             crosscheck=args.crosscheck)
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return report.exit_code


def _campaign_specs(args: argparse.Namespace) -> List[JobSpec]:
    specs = _sweep_specs(args)
    if getattr(args, "chem_workers", 1) > 1:
        # cores_per_job is presentation-only (bitwise-invariant), so
        # stamping it here never changes job keys or cache hits.
        specs = [replace(s, cores_per_job=args.chem_workers) for s in specs]
    return specs


def _sweep_specs(args: argparse.Namespace) -> List[JobSpec]:
    if args.sweep == "machines":
        return machine_grid(
            dataset=args.dataset,
            machines=tuple(args.machines),
            node_counts=tuple(args.nodes or (16, 64)),
            hours=args.hours,
            start_hour=args.start_hour,
            variant=args.variant,
            io_nodes=args.io_nodes,
        )
    if args.sweep == "ladder":
        return scaling_ladder(
            dataset=args.dataset,
            machine=args.machine,
            node_counts=tuple(args.nodes or (1, 2, 4, 8, 16, 32, 64)),
            hours=args.hours,
            start_hour=args.start_hour,
            variant=args.variant,
            io_nodes=args.io_nodes,
        )
    return ensemble_sweep(
        dataset=args.dataset,
        members=args.members,
        sigma=args.sigma,
        seed=args.seed,
        hours=args.hours,
        start_hour=args.start_hour,
        variant=args.variant,
        machine=args.machine,
        nprocs=(args.nodes or [64])[0],
        io_nodes=args.io_nodes,
    )


def _render_cache_stats(stats: dict) -> str:
    """Shard occupancy and counter totals for ``campaign status``."""
    c = stats["counters"]
    lines = [
        f"cache: {stats['total_entries']} entries, "
        f"{stats['total_bytes']} bytes under {stats['root']}",
        f"cache counters: {int(c.get('hits', 0))} hits, "
        f"{int(c.get('misses', 0))} misses, "
        f"{int(c.get('evictions', 0))} evictions, "
        f"{int(c.get('corrupt_entries', 0))} corrupt",
    ]
    for kind in ("science", "jobs"):
        shards = stats["kinds"][kind]["shards"]
        if shards:
            occupancy = ", ".join(
                f"{name}: {s['entries']}" for name, s in shards.items()
            )
            lines.append(f"{kind} shards: {occupancy}")
    return "\n".join(lines)


def cmd_campaign(args: argparse.Namespace) -> int:
    cache = ResultCache(Path(args.cache_dir))

    if args.action == "status":
        rows = status_rows(cache)
        if args.json:
            print(json.dumps({"jobs": rows, "cache": cache.stats()},
                             indent=2, sort_keys=True))
            return 0
        if not rows:
            print(f"(no cached jobs under {args.cache_dir})")
        else:
            header = ["key", "dataset", "hours", "variant", "machine",
                      "nprocs", "status", "sha256"]
            print(format_table(header, [[r[h] for h in header] for r in rows]))
            print(f"\n{len(rows)} cached job(s) under {args.cache_dir}")
        print()
        print(_render_cache_stats(cache.stats()))
        return 0

    specs = _campaign_specs(args)
    cost_model = CampaignCostModel(cache=cache)

    tuner = None
    tune_store = None
    if args.autotune:
        from repro.tune import Autotuner, CalibrationStore

        tune_store = CalibrationStore(args.tune_store or ".repro-tune")
        tuner = Autotuner(store=tune_store, cache=cache)
        cost_model = tuner.cost_model()

    if args.action == "plan":
        if tuner is not None:
            from repro.tune import AutotunePlanner

            plan = AutotunePlanner(tuner).plan(
                specs, workers=args.workers,
                fuse_ensembles=not args.no_fuse,
                host_cores=args.host_cores,
            )
        else:
            plan = plan_campaign(specs, workers=args.workers,
                                 cost_model=cost_model, cache=cache,
                                 fuse_ensembles=not args.no_fuse,
                                 host_cores=args.host_cores)
        if args.json:
            print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
        else:
            rows = [j.row() for j in plan.jobs]
            header = ["key", "job", "predicted_s", "sim_s", "fused",
                      "worker", "start_s", "end_s"]
            if rows:
                print(format_table(header,
                                   [[r[h] for h in header] for r in rows]))
            else:
                print("(empty campaign)")
            print(f"\n{plan.n_jobs} job(s) "
                  f"({plan.n_duplicates} duplicates deduped) on "
                  f"{plan.workers} workers; predicted makespan "
                  f"{plan.predicted_makespan:.3f}s")
            if plan.tuning is not None:
                print(f"autotuned with calibration generation "
                      f"{plan.tuning['generation']} "
                      f"(fingerprint {plan.tuning['fingerprint'] or '-'})")
        return 0

    # run --server: submit to a resident campaign service instead
    if args.server:
        if args.autotune:
            raise SystemExit(
                "--autotune is a planner-side flag: start the service "
                "with `repro serve --autotune` instead"
            )
        from repro.service import ServiceClient

        client = ServiceClient(args.server)
        cid = client.submit(specs, tenant=args.tenant,
                            workers=args.workers)
        print(f"submitted campaign {cid} as tenant {args.tenant!r} "
              f"to {args.server}")
        status = client.wait(cid, timeout=args.wait_timeout)
        rows = client.results(cid)
        if args.json:
            print(json.dumps({"status": status, "jobs": rows},
                             indent=2, sort_keys=True))
        else:
            header = ["key", "job", "status", "attempts", "cached",
                      "sha256"]
            print(format_table(header, [
                [r["key"][:12], r["job"], r["status"], r["attempts"],
                 "yes" if r["from_cache"] else "no",
                 (r["sha256"] or "")[:12]]
                for r in rows
            ]))
            print(f"\ncampaign {cid}: {status['status']} "
                  f"({status['n_ok']}/{status['n_jobs']} ok)")
        return 0 if status["status"] == "done" else 1

    # run locally
    workers = args.workers
    if args.host_cores is not None:
        # Same pool-width clamp the planner applies: one slot per job,
        # each job occupying cores_per_job cores (docs/SCHEDULER.md).
        widest = max((s.cores_per_job for s in specs), default=1)
        workers = max(1, min(workers, args.host_cores // widest))
    fault_policy = None
    if args.inject_faults:
        fault_policy = FaultPolicy.pick(
            [s.key for s in specs], args.inject_faults,
            seed=args.fault_seed, mode=args.fault_mode,
        )
    planner = None
    if tuner is not None:
        from repro.tune import AutotunePlanner

        planner = AutotunePlanner(tuner)
    runner = CampaignRunner(
        cache,
        workers=workers,
        retries=args.retries,
        backoff=args.backoff,
        timeout=args.timeout,
        executor=args.executor,
        fault_policy=fault_policy,
        cost_model=cost_model,
        planner=planner,
        fuse_ensembles=not args.no_fuse,
    )
    report = runner.run(specs)
    if tune_store is not None:
        from repro.tune import harvest_report

        if report.plan.tuning is not None:
            for record in report.plan.tuning["decisions"]:
                tune_store.record_decision(record)
        added = tune_store.add_many(harvest_report(report, source="cli"))
        if not args.json:
            print(f"\ncalibration store {tune_store.root}: "
                  f"+{added} observation(s), "
                  f"generation {tune_store.generation}")
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.complete else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import CampaignService, build_http_server

    weights = {}
    for entry in args.tenant_weight or []:
        name, _, value = entry.partition("=")
        if not name or not value:
            raise SystemExit(
                f"bad --tenant-weight {entry!r}: expected NAME=WEIGHT"
            )
        try:
            weights[name] = float(value)
        except ValueError:
            raise SystemExit(f"bad --tenant-weight {entry!r}: "
                             f"{value!r} is not a number")
    service = CampaignService(
        args.root,
        workers=args.workers,
        executor=args.executor,
        retries=args.retries,
        backoff=args.backoff,
        timeout=args.timeout,
        tenant_weights=weights,
        cache_shards=args.cache_shards,
        cache_max_bytes=args.cache_max_bytes,
        chem_workers=args.chem_workers,
        autotune=args.autotune,
        tune_store=args.tune_store,
    )
    server = build_http_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    service.start()
    n_resumed = sum(
        1 for c in service.campaigns.values()
        if c.status in ("queued", "running")
    )
    print(f"campaign service on http://{host}:{port} "
          f"(state: {args.root}, {len(service.campaigns)} campaign(s), "
          f"{n_resumed} resumed)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (journal compacts on stop)...")
    finally:
        server.shutdown()
        service.stop()
    return 0


def _tune_status(args: argparse.Namespace) -> int:
    from repro.perfmodel.calibrate import drift_report, refit_observations
    from repro.tune import CalibrationStore
    from repro.vm.machine import HOST_OPS_PER_SECOND

    store = CalibrationStore(args.store)
    scan = store.scan()
    refit = refit_observations(scan.observations)
    model = refit.model
    drift = drift_report(scan.observations, band=args.drift_band)
    if args.json:
        print(json.dumps({
            "store": store.stats(),
            "model": model.to_dict(),
            "notes": refit.notes,
            "drift": drift,
        }, indent=2, sort_keys=True))
        return 0

    stats = store.stats()
    print(f"calibration store {stats['root']}: "
          f"{stats['n_observations']} observation(s), "
          f"{stats['n_decisions']} decision(s), "
          f"generation {stats['generation']} "
          f"(fingerprint {stats['fingerprint'] or '-'})")
    for error in scan.errors:
        print(f"  integrity error: {error}")
    print()

    rows = [["host ops/s", f"{HOST_OPS_PER_SECOND:.4g}",
             f"{model.host_ops_per_second:.4g}",
             "yes" if model.host_ops_per_second != HOST_OPS_PER_SECOND
             else "no"]]
    for name in sorted(model.comm):
        paper = get_machine(name)
        fitted = model.comm[name]
        for label, p, f in (("L", paper.latency, fitted.latency),
                            ("G", paper.gap, fitted.gap),
                            ("H", paper.copy_cost, fitted.copy_cost)):
            rows.append([f"{name} {label}", f"{p:.4g}", f"{f:.4g}",
                         "yes" if f != p else "no"])
    for name in sorted(model.machine_rates):
        paper = get_machine(name)
        f = model.machine_rates[name]
        rows.append([f"{name} s/op", f"{paper.seconds_per_op:.4g}",
                     f"{f:.4g}",
                     "yes" if f != paper.seconds_per_op else "no"])
    if model.tile_fraction is not None:
        rows.append(["tiled fraction f*e", "(per-trace)",
                     f"{model.tile_fraction:.4g}", "yes"])
    print(format_table(["quantity", "paper", "refit", "diverged"], rows))

    if refit.notes:
        print()
        for note in refit.notes:
            if note["kind"] == "fallback":
                print(f"fallback: {note['quantity']} "
                      f"({note['samples']} < {note['min_samples']} "
                      "samples; paper constant kept)")
            else:
                print(f"outliers: {note['quantity']} "
                      f"rejected {note['rejected']}/{note['samples']}")
    print()
    if not drift:
        print("drift: no phase key has enough predicted observations")
    else:
        drifted = [d for d in drift if d["drifted"]]
        print(f"drift: {len(drifted)}/{len(drift)} phase key(s) outside "
              f"the {args.drift_band:.0%} band")
        for d in drifted:
            print(f"  {d['phase_key']}: median error "
                  f"{d['median_error']:.1%} over {d['samples']} sample(s)")
    return 0


def _tune_ingest(args: argparse.Namespace) -> int:
    from repro.tune import (
        CalibrationStore,
        observations_from_timelines,
        observations_from_tracer,
        traced_replay,
        utc_timestamp,
    )

    if args.workload:
        trace = _load_trace(args.workload)
    else:
        if args.dataset not in DATASETS:
            raise SystemExit(
                f"unknown dataset {args.dataset!r}; "
                f"choose from {sorted(DATASETS)}"
            )
        print(f"building dataset {args.dataset!r}...")
        dataset = get_dataset(args.dataset)
        config = AirshedConfig(
            dataset=dataset, hours=args.hours, start_hour=args.start_hour
        )
        print(f"recording workload: {args.hours} hours of real numerics...")
        trace = SequentialAirshed(config).run().trace

    machine = get_machine(args.machine)
    print(f"replaying on {args.machine}/{args.nodes} with tracing...")
    tracer, timeline = traced_replay(trace, machine, args.nodes)
    stamp = utc_timestamp()
    observations = observations_from_tracer(
        tracer, dataset=args.dataset, machine=args.machine,
        nprocs=args.nodes, trace=trace, source="ingest", timestamp=stamp,
    ) + observations_from_timelines(
        [timeline], dataset=args.dataset, machine=args.machine,
        nprocs=args.nodes, source="ingest", timestamp=stamp,
    )
    store = CalibrationStore(args.store)
    added = store.add_many(observations)
    print(f"ingested {added} new observation(s) "
          f"({len(observations) - added} duplicate(s)) into {store.root}; "
          f"generation {store.generation}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    if args.action == "status":
        return _tune_status(args)
    return _tune_ingest(args)


def cmd_bench(args: argparse.Namespace) -> int:
    repo_root = Path(__file__).resolve().parents[2]
    if str(repo_root) not in sys.path:
        sys.path.insert(0, str(repo_root))
    try:
        from benchmarks.perf.suite import main as bench_main
    except ImportError as exc:  # pragma: no cover - source-tree layout only
        raise SystemExit(
            f"benchmarks/perf not importable from {repo_root}: {exc}"
        )
    bench_argv: List[str] = []
    if args.quick:
        bench_argv.append("--quick")
    if args.out:
        bench_argv += ["--out", args.out]
    if args.check_regression is not None:
        bench_argv += ["--check-regression", str(args.check_regression)]
    if args.tune_store:
        bench_argv += ["--tune-store", args.tune_store]
    return bench_main(bench_argv)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Airshed (IPPS'98 HPF case study) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run the real model, record a trace")
    p.add_argument("--dataset", default="demo", help="la | ne | demo")
    p.add_argument("--hours", type=int, default=4)
    p.add_argument("--start-hour", type=int, default=6)
    p.add_argument("--chem-workers", type=int, default=1,
                   help="tiled-chemistry worker threads (results are "
                        "bitwise identical at every count)")
    p.add_argument("--chem-tile-cols", type=int, default=None,
                   help="fixed columns per chemistry tile (default: "
                        "one balanced tile per worker)")
    p.add_argument("--trace", help="output path for the pickled trace")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("replay", help="simulate parallel execution of a trace")
    p.add_argument("--trace", required=True)
    p.add_argument("--machine", default="t3e", help="t3e | t3d | paragon")
    p.add_argument("--nodes", type=int, default=16)
    p.add_argument("--mode", choices=["data", "task", "best"], default="data")
    p.add_argument("--io-nodes", type=int, default=1)
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("predict", help="Section 4 performance prediction")
    p.add_argument("--trace", required=True)
    p.add_argument("--machine", default="t3e")
    p.add_argument("--nodes", type=int, nargs="+", default=[4, 16, 64])
    p.set_defaults(func=cmd_predict)

    p = sub.add_parser("figures", help="regenerate the paper's figure tables")
    p.add_argument("--trace", required=True)
    p.add_argument("--out", default="figures")
    p.set_defaults(func=cmd_figures)

    p = sub.add_parser(
        "trace",
        help="run a simulated parallel execution, export a Chrome trace",
    )
    p.add_argument("--dataset", default="demo", help="la | ne | demo")
    p.add_argument("--hours", type=int, default=4)
    p.add_argument("--start-hour", type=int, default=6)
    p.add_argument("--workload",
                   help="replay a pickled WorkloadTrace instead of simulating")
    p.add_argument("--machine", default="t3e", help="t3e | t3d | paragon")
    p.add_argument("--nodes", type=int, default=8)
    p.add_argument("--mode", choices=["data", "task"], default="data")
    p.add_argument("--io-nodes", type=int, default=1)
    p.add_argument("--out", default="trace.json",
                   help="Chrome-trace JSON output path")
    p.add_argument("--csv", help="also write a flat per-span CSV here")
    p.add_argument("--compare", action="store_true",
                   help="print the §4 predicted-vs-observed table")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "lint",
        help="statically analyze a driver program, a campaign plan "
             "(--campaign) or the source tree (--determinism)",
    )
    p.add_argument("--campaign", metavar="PLAN",
                   help="verify a campaign plan instead (FX04x): a JSON "
                        "file of spec dicts, or ladder[:dataset] | "
                        "machines[:dataset] | ensemble[:dataset[:members]]")
    p.add_argument("--determinism", action="store_true",
                   help="run the determinism sanitizer over the source "
                        "tree instead (FX05x)")
    p.add_argument("--tune", metavar="STORE",
                   help="audit a calibration store instead (FX06x): "
                        "drift, refit fallbacks, integrity, stale "
                        "decisions")
    p.add_argument("--drift-band", type=float, default=0.25,
                   help="FX060 relative-error band for --tune "
                        "(strictly-exceeds flags)")
    p.add_argument("--root",
                   help="package root to scan with --determinism "
                        "(default: the installed repro package)")
    p.add_argument("--allowlist",
                   help="determinism allowlist path (default: "
                        f"./{ALLOWLIST_FILENAME} when present)")
    p.add_argument("--workers", type=int, default=4,
                   help="planner worker slots for --campaign")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout verified by FX044 (--campaign)")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget verified by FX045 (--campaign)")
    p.add_argument("--executor", choices=["thread", "process", "inline"],
                   default="thread",
                   help="executor kind verified by FX045 (--campaign)")
    p.add_argument("--driver", default="dataparallel",
                   help=" | ".join(available_programs()))
    p.add_argument("--dataset", default="la", help="la | ne | demo")
    p.add_argument("--machine", default="t3e", help="t3e | t3d | paragon")
    p.add_argument("-n", "--nodes", type=int, default=64)
    p.add_argument("--hours", type=int, default=4)
    p.add_argument("--steps-per-hour", type=int, default=6)
    p.add_argument("--io-nodes", type=int, default=1)
    p.add_argument("--max-step-messages", type=int,
                   help="FX020 budget: messages per communication step")
    p.add_argument("--max-step-bytes", type=int,
                   help="FX020 budget: network bytes per communication step")
    p.add_argument("--max-step-seconds", type=float,
                   help="FX020 budget: seconds per communication step")
    p.add_argument("--crosscheck", action="store_true",
                   help="replay the driver on a synthetic workload and "
                        "verify the executed communication steps match "
                        "the static plan (FX030)")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON report instead of text")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "campaign",
        help="plan / run / inspect a sweep of managed simulation jobs",
    )
    p.add_argument("action", choices=["plan", "run", "status"])
    p.add_argument("--sweep", choices=["machines", "ladder", "ensemble"],
                   default="machines",
                   help="sweep shape (see repro.sched.sweeps)")
    p.add_argument("--dataset", default="la", help="la | ne | demo")
    p.add_argument("--hours", type=int, default=2)
    p.add_argument("--start-hour", type=int, default=6)
    p.add_argument("--variant", choices=["sequential", "data", "task"],
                   default="data")
    p.add_argument("--machines", nargs="+",
                   default=["t3e", "t3d", "paragon"],
                   help="machines for --sweep machines")
    p.add_argument("--machine", default="t3e",
                   help="machine for --sweep ladder/ensemble")
    p.add_argument("--nodes", type=int, nargs="+",
                   help="node counts (default depends on sweep)")
    p.add_argument("--io-nodes", type=int, default=1)
    p.add_argument("--members", type=int, default=4,
                   help="ensemble members for --sweep ensemble")
    p.add_argument("--sigma", type=float, default=0.3,
                   help="emission perturbation sigma (ensemble)")
    p.add_argument("--seed", type=int, default=0,
                   help="ensemble base seed")
    p.add_argument("--workers", type=int, default=4,
                   help="bounded worker-pool size")
    p.add_argument("--chem-workers", type=int, default=1,
                   help="cores_per_job for every generated spec: each "
                        "job's tiled chemistry runs on this many "
                        "threads (bitwise-invariant; never hashed)")
    p.add_argument("--host-cores", type=int, default=None,
                   help="total cores the plan may occupy at once; "
                        "clamps workers to host_cores // chem_workers")
    p.add_argument("--no-fuse", action="store_true",
                   help="schedule ensemble members as independent "
                        "chains instead of fusing their science into "
                        "one batched sweep")
    p.add_argument("--autotune", action="store_true",
                   help="let the calibrated model choose each job's "
                        "machine/P/cores (science keys and results are "
                        "untouched; see docs/TUNING.md)")
    p.add_argument("--tune-store", default=None,
                   help="calibration store root for --autotune "
                        "(default .repro-tune)")
    p.add_argument("--cache-dir", default=".repro-cache",
                   help="content-addressed result cache root")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per job")
    p.add_argument("--backoff", type=float, default=0.25,
                   help="base retry backoff in seconds (doubles per retry)")
    p.add_argument("--executor", choices=["thread", "process", "inline"],
                   default="thread")
    p.add_argument("--inject-faults", type=int, default=0, metavar="N",
                   help="deterministically fault N jobs once (fault drill)")
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--fault-mode", choices=["raise", "hang"],
                   default="raise")
    p.add_argument("--server", metavar="URL",
                   help="submit the run to a resident campaign service "
                        "(repro serve) instead of executing locally")
    p.add_argument("--tenant", default="default",
                   help="tenant name for --server submissions")
    p.add_argument("--wait-timeout", type=float, default=600.0,
                   help="seconds to wait for a --server campaign")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON output instead of text")
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "serve",
        help="run the always-on multi-tenant campaign service",
    )
    p.add_argument("--root", default=".repro-service",
                   help="service state directory (journal, snapshot, "
                        "shared result cache)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8642)
    p.add_argument("--workers", type=int, default=4,
                   help="wave width and bounded worker-pool size")
    p.add_argument("--executor", choices=["thread", "process", "inline"],
                   default="thread")
    p.add_argument("--retries", type=int, default=2)
    p.add_argument("--backoff", type=float, default=0.25)
    p.add_argument("--timeout", type=float, default=None,
                   help="per-job wall-clock timeout in seconds")
    p.add_argument("--tenant-weight", action="append", metavar="NAME=W",
                   help="fair-share weight for a tenant (repeatable; "
                        "default 1.0)")
    p.add_argument("--cache-shards", type=int, default=16)
    p.add_argument("--cache-max-bytes", type=int, default=None,
                   help="LRU-evict the shared cache above this size")
    p.add_argument("--chem-workers", type=int, default=1,
                   help="default cores_per_job for submitted jobs "
                        "(tiled chemistry threads; bitwise-invariant)")
    p.add_argument("--autotune", action="store_true",
                   help="replan every wave with the freshest "
                        "calibration and harvest wave reports back "
                        "into the store")
    p.add_argument("--tune-store", default=None,
                   help="calibration store root (default <root>/tune "
                        "with --autotune; harvest-only without)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "tune",
        help="inspect or feed the observed-span calibration store",
    )
    p.add_argument("action", choices=["status", "ingest"])
    p.add_argument("--store", default=".repro-tune",
                   help="calibration store root")
    p.add_argument("--dataset", default="demo", help="la | ne | demo")
    p.add_argument("--machine", default="t3e", help="t3e | t3d | paragon")
    p.add_argument("--nodes", type=int, default=16,
                   help="node count for the ingest replay")
    p.add_argument("--hours", type=int, default=2)
    p.add_argument("--start-hour", type=int, default=6)
    p.add_argument("--workload",
                   help="ingest from a pickled WorkloadTrace instead of "
                        "simulating one")
    p.add_argument("--drift-band", type=float, default=0.25,
                   help="relative-error band for the drift section of "
                        "status")
    p.add_argument("--json", action="store_true",
                   help="machine-readable JSON output instead of text")
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser(
        "bench",
        help="run the hot-path perf suite (benchmarks/perf)",
    )
    p.add_argument("--quick", action="store_true",
                   help="only the sub-second benchmarks (CI smoke mode)")
    p.add_argument("--out", help="output JSON path (default BENCH_perf.json)")
    p.add_argument("--check-regression", type=float, default=None,
                   metavar="FACTOR",
                   help="exit 1 if any median exceeds FACTOR x baseline")
    p.add_argument("--tune-store", default=None,
                   help="record this calibration store's generation and "
                        "latest decision into the run metadata")
    p.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
