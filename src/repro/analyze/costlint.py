"""Pass 3 — redistribution-cost lint (FX02x).

Compiles the program's communication plan (exact transfer sets from the
redistribution planner, priced with the paper's ``L·m + G·b + H·c``
model) and annotates each step with the Section 4.2 closed-form
equations where one exists, so the lint output doubles as the paper's
cost table.  Two diagnostics:

* **FX020** — a step exceeds a configured per-occurrence budget
  (messages, network bytes, or seconds); the paper's all-gather
  ``D_Chem->D_Repl`` is the classic offender.
* **FX021** (info) — a cheaper layout order exists: a back-to-back
  redistribution pair ``X -> Y -> Z`` whose intermediate layout is
  never read costs more than the direct ``X -> Z`` hop.

The ``D_Repl -> D_Trans -> D_Chem -> D_Repl`` cycle of the Airshed
main loop is the canonical fixture: every shipped step stays within
reasonable budgets, and no cheaper order exists because each layout in
the cycle is consumed by a compute phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.directives import phase_reads_array
from repro.analyze.program import CommStep, FxProgram, price_transfers
from repro.fx.redistribute import plan_redistribution
from repro.fx.runtime import dist_label
from repro.perfmodel.communication import ArrayGeometry, CommunicationModel

__all__ = ["CostBudget", "lint_costs", "cost_table"]


@dataclass(frozen=True)
class CostBudget:
    """Per-occurrence limits for one communication step (None = no limit)."""

    max_step_messages: Optional[int] = None
    max_step_bytes: Optional[int] = None
    max_step_seconds: Optional[float] = None

    def violations(self, step: CommStep) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if (self.max_step_messages is not None
                and step.messages > self.max_step_messages):
            out["messages"] = {"actual": step.messages,
                               "budget": self.max_step_messages}
        if (self.max_step_bytes is not None
                and step.network_bytes > self.max_step_bytes):
            out["network_bytes"] = {"actual": step.network_bytes,
                                    "budget": self.max_step_bytes}
        if (self.max_step_seconds is not None
                and step.seconds > self.max_step_seconds):
            out["seconds"] = {"actual": step.seconds,
                              "budget": self.max_step_seconds}
        return out


def _closed_form(program: FxProgram, step: CommStep) -> Optional[float]:
    """Section 4.2 closed-form seconds for a named step, if modelled."""
    if step.array is None or step.name not in CommunicationModel.STEP_NAMES:
        return None
    array = program.array(step.array)
    if len(array.shape) != 3:
        return None
    species, layers, npoints = array.shape
    geometry = ArrayGeometry(species, layers, npoints, wordsize=array.itemsize)
    model = CommunicationModel(program.machine, geometry)
    return model.cost(step.name, program.group_size(array))


def cost_table(
    program: FxProgram, plan: Optional[List[CommStep]] = None
) -> Dict[str, Dict[str, Any]]:
    """Aggregate the plan per step name, with closed-form annotation."""
    if plan is None:
        plan = program.comm_plan()
    table: Dict[str, Dict[str, Any]] = {}
    for step in plan:
        row = table.get(step.name)
        if row is None:
            row = table[step.name] = {
                "kind": step.kind,
                "occurrences": 0,
                "messages": step.messages,
                "network_bytes": step.network_bytes,
                "copied_bytes": step.copied_bytes,
                "seconds": step.seconds,
            }
            closed = _closed_form(program, step)
            if closed is not None:
                row["closed_form_seconds"] = closed
        row["occurrences"] += 1
        # Occurrences of a named step are normally identical; keep the
        # worst case if a program varies them.
        for key, value in (("messages", step.messages),
                           ("network_bytes", step.network_bytes),
                           ("copied_bytes", step.copied_bytes),
                           ("seconds", step.seconds)):
            row[key] = max(row[key], value)
    return table


def _cheaper_orders(program: FxProgram) -> List[Diagnostic]:
    """FX021: direct hop beats an unread-intermediate two-hop chain."""
    diags: List[Diagnostic] = []
    #: array -> (phase index, source dist, target dist) of the pending
    #: redistribution whose target layout has not been read yet.
    pending: Dict[str, Tuple[int, Any, Any]] = {}
    for index, phase, layouts in program.walk():
        for name in list(pending):
            if phase_reads_array(phase, name):
                del pending[name]
        if phase.op != "redistribute":
            continue
        name = phase.array
        try:
            array = program.array(name)
        except KeyError:
            continue
        source, target = layouts[name], phase.target
        if target.ndim != len(array.shape) or source.ndim != target.ndim:
            pending.pop(name, None)
            continue
        if source == target:
            continue  # identity, elided
        chain = pending.get(name)
        if chain is not None:
            first_index, first_source, mid = chain
            if first_source.ndim == target.ndim:
                cost_via = _hop_cost(program, array, first_source, mid) \
                    + _hop_cost(program, array, mid, target)
                cost_direct = _hop_cost(program, array, first_source, target)
                if cost_direct < cost_via:
                    diags.append(Diagnostic(
                        "FX021",
                        f"redistributing {name!r} "
                        f"{dist_label(first_source)} -> {dist_label(mid)} "
                        f"-> {dist_label(target)} costs {cost_via:.6f} s; "
                        f"the direct {dist_label(first_source)} -> "
                        f"{dist_label(target)} hop costs "
                        f"{cost_direct:.6f} s",
                        phase=phase.name, phase_index=index,
                        details={"array": name,
                                 "via": [first_source.spec(), mid.spec(),
                                         target.spec()],
                                 "via_seconds": cost_via,
                                 "direct_seconds": cost_direct},
                    ))
        pending[name] = (index, source, target)
    return diags


def _hop_cost(program: FxProgram, array, source, target) -> float:
    if source == target:
        return 0.0
    plan = plan_redistribution(
        program.layout_of(array, source),
        program.layout_of(array, target),
        array.itemsize,
    )
    return price_transfers(program.machine, list(plan.transfers))


def lint_costs(
    program: FxProgram,
    budget: Optional[CostBudget] = None,
    plan: Optional[List[CommStep]] = None,
) -> Tuple[List[Diagnostic], Dict[str, Dict[str, Any]]]:
    """Run the cost-lint pass; returns (diagnostics, cost table)."""
    if plan is None:
        plan = program.comm_plan()
    table = cost_table(program, plan)
    diags: List[Diagnostic] = []
    if budget is not None:
        flagged = set()
        for step in plan:
            if step.name in flagged:
                continue
            over = budget.violations(step)
            if over:
                flagged.add(step.name)
                limits = ", ".join(
                    f"{key} {v['actual']} > {v['budget']}"
                    for key, v in over.items()
                )
                diags.append(Diagnostic(
                    "FX020",
                    f"communication step {step.name!r} exceeds the cost "
                    f"budget: {limits} "
                    f"(x{table[step.name]['occurrences']} occurrences)",
                    phase=step.name, phase_index=step.phase_index,
                    details={"step": step.name, "violations": over,
                             "occurrences": table[step.name]["occurrences"]},
                ))
    diags.extend(_cheaper_orders(program))
    return diags, table
