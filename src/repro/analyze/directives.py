"""Pass 1 — directive consistency (FX00x).

Walks the program's phase sequence tracking each array's current
distribution directive, exactly as the Fx compiler's front end tracks
the effect of ``DISTRIBUTE``/``REDISTRIBUTE`` statements, and reports:

* **FX001** — layout mismatch: a redistribution target or a compute
  phase's required layout whose rank does not match the array, or a
  directive whose distributed dimension is out of range for the shape.
* **FX002** — redundant back-to-back redistribution: a layout is
  established and the very next phase touching the array redistributes
  it again without anything reading the intermediate layout.
* **FX003** — dead layout: a trailing redistribution whose target
  layout is never read before the program ends.
* **FX004** — subgroup/cluster size violation: task-region sizes that
  exceed the machine, empty task regions, or arrays homed on an
  undeclared task.
* **FX005** (info) — a compute phase whose layout's distributed extent
  is smaller than the processor group, leaving nodes idle (Airshed's
  5-layer transport on 64 nodes is the canonical case).

Identity redistributions (target equals the current directive) compile
to empty plans and are elided by the runtime, so — matching the
compiler — they are skipped rather than diagnosed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.program import FxProgram, PhaseDecl
from repro.fx.runtime import dist_label

__all__ = ["check_directives", "phase_reads_array"]


def phase_reads_array(phase: PhaseDecl, array: str) -> bool:
    """Whether ``phase`` consumes the array's current layout.

    Compute and gather phases over the array read it by construction;
    any phase may also name it in its declared ``reads`` set.
    """
    if array in phase.reads:
        return True
    return phase.op in ("compute", "gather") and phase.array == array


def _check_tasks(program: FxProgram) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    if program.nprocs < 1:
        diags.append(Diagnostic(
            "FX004",
            f"program {program.name!r} targets a machine with "
            f"{program.nprocs} nodes; at least one is required",
            details={"nprocs": program.nprocs},
        ))
    total = 0
    for task in program.tasks:
        total += task.size
        if task.size < 1:
            diags.append(Diagnostic(
                "FX004",
                f"task region {task.name!r} has size {task.size}; "
                "every task region needs at least one node",
                phase=task.name,
            ))
    if program.tasks and total > program.nprocs:
        diags.append(Diagnostic(
            "FX004",
            f"task regions need {total} nodes but the machine has "
            f"{program.nprocs}",
            details={"required": total, "nprocs": program.nprocs},
        ))
    task_names = {t.name for t in program.tasks}
    for array in program.arrays:
        if array.group is not None and array.group not in task_names:
            diags.append(Diagnostic(
                "FX004",
                f"array {array.name!r} is homed on undeclared task "
                f"{array.group!r}",
                details={"array": array.name, "task": array.group},
            ))
    return diags


def check_directives(program: FxProgram) -> List[Diagnostic]:
    """Run the directive-consistency pass over one program."""
    diags = _check_tasks(program)
    known_tasks = {t.name for t in program.tasks}
    known_arrays = {a.name for a in program.arrays}
    #: (array, dist spec, group size) combos already reported as FX005.
    idle_seen = set()
    #: phase index of the redistribution that established each array's
    #: current layout, while that layout is still unread.
    unread_since: dict = {}

    for index, phase, layouts in program.walk():
        if phase.task is not None and phase.task not in known_tasks:
            diags.append(Diagnostic(
                "FX004",
                f"phase {phase.name!r} runs on undeclared task {phase.task!r}",
                phase=phase.name, phase_index=index,
            ))
        if phase.array is not None and phase.array not in known_arrays:
            diags.append(Diagnostic(
                "FX001",
                f"phase {phase.name!r} references undeclared array "
                f"{phase.array!r}",
                phase=phase.name, phase_index=index,
            ))
            continue

        # Resolve reads: any array whose current layout this phase uses.
        for name in list(unread_since):
            if phase_reads_array(phase, name):
                del unread_since[name]

        if phase.op == "redistribute":
            array = program.array(phase.array)
            source = layouts[phase.array]
            target = phase.target
            if target.ndim != len(array.shape):
                diags.append(Diagnostic(
                    "FX001",
                    f"redistribution {phase.name!r} targets a {target.ndim}-d "
                    f"directive but array {array.name!r} is "
                    f"{len(array.shape)}-d ({array.shape})",
                    phase=phase.name, phase_index=index,
                    details={"array": array.name,
                             "target": target.spec(),
                             "shape": list(array.shape)},
                ))
                continue
            if source.ndim == target.ndim and source == target:
                continue  # identity: the compiler emits no code
            pending = unread_since.get(phase.array)
            if pending is not None:
                prev_index, prev_target = pending
                diags.append(Diagnostic(
                    "FX002",
                    f"array {array.name!r} is redistributed to "
                    f"{dist_label(target)} while the previous layout "
                    f"{dist_label(prev_target)} (phase {prev_index}) was "
                    "never read",
                    phase=phase.name, phase_index=index,
                    details={"array": array.name,
                             "previous_phase_index": prev_index,
                             "unread_layout": prev_target.spec()},
                ))
            unread_since[phase.array] = (index, target)
        elif phase.op == "compute":
            layout: Optional = phase.layout
            if phase.array is not None and layout is not None:
                array = program.array(phase.array)
                if layout.ndim != len(array.shape):
                    diags.append(Diagnostic(
                        "FX001",
                        f"compute phase {phase.name!r} requires a "
                        f"{layout.ndim}-d layout but array {array.name!r} "
                        f"is {len(array.shape)}-d",
                        phase=phase.name, phase_index=index,
                    ))
                elif not layout.is_replicated:
                    group = program.group_size(array)
                    extent = array.shape[layout.dim]
                    key = (array.name, layout.spec(), group)
                    if extent < group and key not in idle_seen:
                        idle_seen.add(key)
                        diags.append(Diagnostic(
                            "FX005",
                            f"phase {phase.name!r} distributes "
                            f"{array.name!r} as {dist_label(layout)} with "
                            f"extent {extent} over {group} nodes; "
                            f"{group - extent} nodes stay idle",
                            phase=phase.name, phase_index=index,
                            details={"array": array.name, "extent": extent,
                                     "group": group},
                        ))

    # Anything still unread at program end is a dead trailing layout.
    for name, (index, target) in unread_since.items():
        diags.append(Diagnostic(
            "FX003",
            f"array {name!r} is left in layout {dist_label(target)} "
            f"(phase {index}) that nothing reads before the program ends",
            phase_index=index,
            details={"array": name, "layout": target.spec()},
        ))
    return diags
