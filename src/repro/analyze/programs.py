"""The shipped model drivers as analyzable programs.

Each registered builder produces the :class:`~repro.analyze.program.FxProgram`
description of one model driver — the same phase structure the driver
executes, written down statically so the analyzer can check it without
running anything:

* ``sequential`` — one node, I/O and compute only (no directives);
* ``dataparallel`` — the Section 2.2 main loop: per step
  ``D_Repl -> D_Trans -> D_Chem -> D_Repl -> D_Trans`` around
  transport/chemistry/aerosol, one output gather per hour;
* ``taskparallel`` — the Section 5 pipeline: input / main / output task
  regions with the declared I/O sets of
  :data:`repro.model.taskparallel.STAGE_IO` and explicit inter-stage
  handoffs.

The phase read/write declarations mirror
:func:`repro.model.dataparallel.declare_airshed_phases` — the drivers
register the same sets on their :class:`~repro.fx.runtime.FxRuntime`,
and a test asserts the two stay in sync.

Test fixtures (and future drivers) can add themselves with
:func:`register_program`; ``repro lint --driver <name>`` resolves
against this registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.analyze.program import ArrayDecl, FxProgram, PhaseDecl, TaskDecl
from repro.fx.runtime import dist_label
from repro.model.dataparallel import D_CHEM, D_REPL, D_TRANS
from repro.model.taskparallel import STAGE_IO
from repro.vm.machine import MachineSpec, get_machine

__all__ = [
    "DATASET_SHAPES",
    "available_programs",
    "register_program",
    "build_program",
    "build_sequential",
    "build_dataparallel",
    "build_taskparallel",
]

#: ``A(species, layers, points)`` shapes of the shipped datasets
#: (``repro.datasets``); kept static so building a program never pays
#: for dataset materialisation.  A test pins these to the real shapes.
DATASET_SHAPES: Dict[str, Tuple[int, int, int]] = {
    "la": (35, 5, 700),
    "ne": (35, 5, 3328),
    "demo": (35, 4, 150),
}

#: The phase-level read/write declarations of the Airshed main loop,
#: mirroring ``declare_airshed_phases``.
PHASE_IO: Dict[str, Dict[str, frozenset]] = {
    "io:inputhour": dict(reads=frozenset({"hourly_inputs"}),
                         writes=frozenset({"conditions", "operators"})),
    "io:pretrans": dict(reads=frozenset({"conditions"}),
                        writes=frozenset({"operators"})),
    "transport": dict(reads=frozenset({"conc", "operators", "conditions"}),
                      writes=frozenset({"conc"})),
    "chemistry": dict(reads=frozenset({"conc", "conditions"}),
                      writes=frozenset({"conc"})),
    "aerosol": dict(reads=frozenset({"conc"}), writes=frozenset({"conc"})),
    "io:outputhour": dict(reads=frozenset({"conc"}),
                          writes=frozenset({"output_files"})),
}


def _resolve(
    dataset: str,
    machine,
    shape: Optional[Tuple[int, int, int]],
) -> Tuple[Tuple[int, int, int], MachineSpec]:
    if shape is None:
        if dataset not in DATASET_SHAPES:
            raise KeyError(
                f"unknown dataset {dataset!r}; choose from "
                f"{sorted(DATASET_SHAPES)} or pass an explicit shape"
            )
        shape = DATASET_SHAPES[dataset]
    if isinstance(machine, str):
        machine = get_machine(machine)
    return tuple(shape), machine


def _redistribute(array: str, target, task: Optional[str] = None) -> PhaseDecl:
    return PhaseDecl(
        op="redistribute",
        name=f"->{dist_label(target)}",
        array=array,
        target=target,
        task=task,
    )


def _compute(name: str, array: Optional[str], layout,
             task: Optional[str] = None) -> PhaseDecl:
    io = PHASE_IO.get(name, {})
    return PhaseDecl(op="compute", name=name, array=array, layout=layout,
                     task=task, **io)


def _io(name: str, task: Optional[str] = None) -> PhaseDecl:
    io = PHASE_IO.get(name, {})
    return PhaseDecl(op="io", name=name, task=task, **io)


def _main_step(task: Optional[str] = None) -> List[PhaseDecl]:
    """One main-loop step: the paper's redistribution cycle."""
    return [
        _redistribute("conc", D_TRANS, task),
        _compute("transport", "conc", D_TRANS, task),
        _redistribute("conc", D_CHEM, task),
        _compute("chemistry", "conc", D_CHEM, task),
        _redistribute("conc", D_REPL, task),
        _compute("aerosol", "conc", D_REPL, task),
        _redistribute("conc", D_TRANS, task),
        _compute("transport", "conc", D_TRANS, task),
    ]


def build_sequential(
    dataset: str = "la",
    machine="t3e",
    nprocs: int = 1,
    hours: int = 4,
    steps_per_hour: int = 6,
    shape: Optional[Tuple[int, int, int]] = None,
    **_ignored,
) -> FxProgram:
    """The sequential reference: one node, no directives, no comm."""
    shape, machine = _resolve(dataset, machine, shape)
    phases: List[PhaseDecl] = []
    for _ in range(hours):
        phases.append(_io("io:inputhour"))
        phases.append(_io("io:pretrans"))
        for _ in range(steps_per_hour):
            phases.append(_compute("transport", "conc", None))
            phases.append(_compute("chemistry", "conc", None))
            phases.append(_compute("aerosol", "conc", None))
            phases.append(_compute("transport", "conc", None))
        phases.append(_io("io:outputhour"))
    return FxProgram(
        name=f"sequential[{dataset}]",
        machine=machine,
        nprocs=1,
        arrays=[ArrayDecl("conc", shape, itemsize=machine.wordsize)],
        phases=phases,
        meta={"driver": "sequential", "dataset": dataset, "hours": hours,
              "steps_per_hour": steps_per_hour, "shape": list(shape)},
    )


def build_dataparallel(
    dataset: str = "la",
    machine="t3e",
    nprocs: int = 64,
    hours: int = 4,
    steps_per_hour: int = 6,
    shape: Optional[Tuple[int, int, int]] = None,
    **_ignored,
) -> FxProgram:
    """The Section 2.2 data-parallel main loop."""
    shape, machine = _resolve(dataset, machine, shape)
    phases: List[PhaseDecl] = []
    for _ in range(hours):
        phases.append(_io("io:inputhour"))
        phases.append(_io("io:pretrans"))
        for _ in range(steps_per_hour):
            phases.extend(_main_step())
        phases.append(PhaseDecl(
            op="gather", name="gather:outputhour", array="conc",
            reads=frozenset({"conc"}),
        ))
        phases.append(_io("io:outputhour"))
    return FxProgram(
        name=f"dataparallel[{dataset}]",
        machine=machine,
        nprocs=nprocs,
        arrays=[ArrayDecl("conc", shape, itemsize=machine.wordsize,
                          initial=D_REPL)],
        phases=phases,
        meta={"driver": "dataparallel", "dataset": dataset, "hours": hours,
              "steps_per_hour": steps_per_hour, "shape": list(shape)},
    )


def build_taskparallel(
    dataset: str = "la",
    machine="t3e",
    nprocs: int = 64,
    hours: int = 4,
    steps_per_hour: int = 6,
    io_nodes: int = 1,
    input_bytes: int = 1 << 20,
    shape: Optional[Tuple[int, int, int]] = None,
    **_ignored,
) -> FxProgram:
    """The Section 5 pipelined driver: input / main / output regions.

    ``input_bytes`` sizes the per-hour input-stage handoff (the real
    driver forwards the parsed hourly record; any positive size yields
    the same step sequence).  The main -> output handoff carries the
    whole concentration array.
    """
    shape, machine = _resolve(dataset, machine, shape)
    main_nodes = nprocs - 2 * io_nodes
    array_bytes = shape[0] * shape[1] * shape[2] * machine.wordsize
    tasks = [
        TaskDecl("input", io_nodes, **STAGE_IO["input"]),
        TaskDecl("main", main_nodes, **STAGE_IO["main"]),
        TaskDecl("output", io_nodes, **STAGE_IO["output"]),
    ]
    phases: List[PhaseDecl] = []
    for _ in range(hours):
        phases.append(_io("io:inputhour", task="input"))
        phases.append(_io("io:pretrans", task="input"))
        phases.append(PhaseDecl(
            op="handoff", name="pipe:input->main", task="input",
            nbytes=int(input_bytes),
        ))
        for _ in range(steps_per_hour):
            phases.extend(_main_step(task="main"))
        phases.append(PhaseDecl(
            op="handoff", name="pipe:main->output", task="main",
            nbytes=array_bytes, reads=frozenset({"conc"}),
        ))
        phases.append(_io("io:outputhour", task="output"))
    return FxProgram(
        name=f"taskparallel[{dataset}]",
        machine=machine,
        nprocs=nprocs,
        arrays=[ArrayDecl("conc", shape, itemsize=machine.wordsize,
                          initial=D_REPL, group="main")],
        tasks=tasks,
        phases=phases,
        meta={"driver": "taskparallel", "dataset": dataset, "hours": hours,
              "steps_per_hour": steps_per_hour, "io_nodes": io_nodes,
              "input_bytes": int(input_bytes), "shape": list(shape)},
    )


#: Registered program builders, keyed by driver name.
_REGISTRY: Dict[str, Callable[..., FxProgram]] = {
    "sequential": build_sequential,
    "dataparallel": build_dataparallel,
    "taskparallel": build_taskparallel,
}


def available_programs() -> List[str]:
    return sorted(_REGISTRY)


def register_program(name: str, builder: Callable[..., FxProgram]) -> None:
    """Add a named program builder (test fixtures, future drivers)."""
    _REGISTRY[name] = builder


def build_program(driver: str, **kwargs) -> FxProgram:
    """Build the registered program ``driver`` with the given options."""
    if driver not in _REGISTRY:
        raise KeyError(
            f"unknown driver {driver!r}; registered: {available_programs()}"
        )
    return _REGISTRY[driver](**kwargs)
