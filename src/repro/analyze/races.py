"""Pass 2 — task-graph race detection (FX01x).

The pipelined task-parallel Airshed overlaps its stages: while the main
computation runs hour ``i``, the input stage prepares hour ``i+1`` and
the output stage writes hour ``i-1``.  Two stages that can be active at
the same simulated time race on any variable both touch — unless the
variable's per-item ownership is explicitly passed down the pipeline
with the inter-stage handoff (the declared ``handoff`` sets), which is
the sanctioned producer/consumer flow of an Fx task region.

The pass builds the stage × item dependency DAG implied by the
pipeline's execution rule (stage ``s`` waits for its own item ``i-1``
and for stage ``s-1``'s item ``i``) and reports:

* **FX010** — write-write: two overlappable stages both write a
  variable whose ownership is not handed between them.
* **FX011** — read-write: one overlappable stage reads what another
  writes, without a handoff carrying it.
* **FX012** — stale read: a compute phase requires a layout that is not
  the array's current directive at that point of the sequence (the
  owning layout changed without a redistribution).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.program import FxProgram
from repro.fx.runtime import dist_label

__all__ = ["check_races", "task_graph", "overlappable_pairs", "sanctioned_vars"]


def task_graph(
    program: FxProgram, nitems: int = 3
) -> Dict[Tuple[str, int], Set[Tuple[str, int]]]:
    """The stage × item dependency DAG of the pipeline.

    Node ``(stage, item)`` depends on ``(stage, item-1)`` (a stage is
    internally sequential) and on ``(prev_stage, item)`` (the upstream
    item must be finished and handed off).  Any two nodes *not* ordered
    by the transitive closure can overlap in pipelined execution.
    """
    deps: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
    names = [t.name for t in program.tasks]
    for i in range(nitems):
        for s, name in enumerate(names):
            node = (name, i)
            deps[node] = set()
            if i > 0:
                deps[node].add((name, i - 1))
            if s > 0:
                deps[node].add((names[s - 1], i))
    return deps


def sanctioned_vars(program: FxProgram, i: int, j: int) -> FrozenSet[str]:
    """Variables whose ownership flows from stage ``i`` to stage ``j``.

    A variable is sanctioned between the two stages iff every stage from
    ``i`` up to (excluding) ``j`` forwards it in its declared
    ``handoff`` set — an unbroken chain of inter-stage transfers.
    """
    assert i < j
    out: FrozenSet[str] = program.tasks[i].handoff
    for k in range(i + 1, j):
        out = out & program.tasks[k].handoff
    return out


def overlappable_pairs(program: FxProgram) -> Set[Tuple[str, str]]:
    """Stage pairs with at least one unordered ``(stage, item)`` pair.

    Computed from the transitive closure of :func:`task_graph` over
    ``len(stages) + 1`` items (enough for every steady-state phase
    shift of the pipeline to appear).  Two nodes neither of which
    reaches the other can execute at the same simulated time.
    """
    deps = task_graph(program, nitems=len(program.tasks) + 1)
    order = {t.name: s for s, t in enumerate(program.tasks)}
    reach: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
    for node in sorted(deps, key=lambda n: (n[1], order[n[0]])):
        closed: Set[Tuple[str, int]] = set(deps[node])
        for dep in deps[node]:
            closed |= reach.get(dep, set())
        reach[node] = closed
    pairs: Set[Tuple[str, str]] = set()
    nodes = list(deps)
    for x in nodes:
        for y in nodes:
            if x[0] >= y[0]:
                continue
            if y not in reach[x] and x not in reach[y]:
                pairs.add((x[0], y[0]))
    return pairs


def _stage_conflicts(program: FxProgram) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    tasks = program.tasks
    overlaps = overlappable_pairs(program)
    for i in range(len(tasks)):
        for j in range(i + 1, len(tasks)):
            a, b = tasks[i], tasks[j]
            if (a.name, b.name) not in overlaps and \
                    (b.name, a.name) not in overlaps:
                continue
            ok = sanctioned_vars(program, i, j)
            ww = (a.writes & b.writes) - ok
            rw = ((a.reads & b.writes) | (a.writes & b.reads)) - ok - ww
            pair = f"{a.name}/{b.name}"
            if ww:
                diags.append(Diagnostic(
                    "FX010",
                    f"stages {a.name!r} and {b.name!r} can overlap in "
                    f"pipelined execution and both write "
                    f"{sorted(ww)} with no handoff between them",
                    phase=pair,
                    details={"stages": [a.name, b.name],
                             "variables": sorted(ww)},
                ))
            if rw:
                diags.append(Diagnostic(
                    "FX011",
                    f"stages {a.name!r} and {b.name!r} can overlap in "
                    f"pipelined execution and share {sorted(rw)} "
                    "read/write with no handoff carrying it",
                    phase=pair,
                    details={"stages": [a.name, b.name],
                             "variables": sorted(rw)},
                ))
    return diags


def _stale_reads(program: FxProgram) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for index, phase, layouts in program.walk():
        if phase.op != "compute" or phase.array is None or phase.layout is None:
            continue
        if phase.array not in layouts:
            continue  # undeclared array: FX001 territory
        current = layouts[phase.array]
        required = phase.layout
        if required.ndim != current.ndim:
            continue  # rank mismatch is already an FX001
        if current != required:
            diags.append(Diagnostic(
                "FX012",
                f"compute phase {phase.name!r} reads {phase.array!r} "
                f"expecting layout {dist_label(required)} but the array "
                f"is currently {dist_label(current)}; the owning layout "
                "changed without a redistribution",
                phase=phase.name, phase_index=index,
                details={"array": phase.array,
                         "required": required.spec(),
                         "current": current.spec()},
            ))
    return diags


def check_races(program: FxProgram) -> List[Diagnostic]:
    """Run the race-detection pass over one program."""
    return _stage_conflicts(program) + _stale_reads(program)
