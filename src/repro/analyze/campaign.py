"""Campaign-plan verification: the FX04x pass family.

PR 4's campaign scheduler rests on three static invariants the runtime
never re-checks: content hashes must cover every physics-affecting
:class:`~repro.sched.job.JobSpec` field, fused ensemble groups must
satisfy the batched bitwise-equivalence preconditions of
``docs/ENSEMBLES.md``, and the planner's chains must keep each science
key's payer ahead of its replay-only followers on one worker.  This
pass re-derives all of them from first principles **before** a campaign
runs — the same ahead-of-execution discipline the Fx compiler applied
to the drivers (FX00x–FX03x), pointed at the scheduler:

* ``FX040`` — cache-key drift: a dataclass field of the spec class is
  covered by neither the science nor the execution hash (adding a
  field without hashing it silently aliases distinct jobs);
* ``FX041`` — illegal fusion: members of one fused group disagree on a
  physics field other than the member seed;
* ``FX042`` — batched-equivalence precondition violated: a fused group
  with duplicate member seeds (error) or a zero-sigma perturbation
  (warning: members are bitwise equal, fusion is a degenerate no-op);
* ``FX043`` — science-chain ordering: a science key split across
  workers, a replay job scheduled ahead of its science payer, or
  overlapping placements on one worker;
* ``FX044`` — a per-job timeout below the predicted attempt time: the
  job can never finish an attempt and will exhaust its retries;
* ``FX045`` — retry/fault-policy misconfiguration: an injected fault
  with no retry budget (terminal by construction), a ``hang`` drill
  the process executor cannot interrupt, or a fault point past the end
  of every selected job.

Entry point: :func:`verify_campaign`; ``repro lint --campaign`` is the
CLI wrapper.  See ``docs/ANALYZE.md``.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from typing import Collection, Dict, List, Optional, Sequence, Type

from repro.analyze.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.sched.costmodel import CampaignCostModel
from repro.sched.faults import FaultPolicy
from repro.sched.job import JobSpec
from repro.sched.planner import CampaignPlan, plan_campaign

__all__ = [
    "verify_jobspec_schema",
    "verify_fused_groups",
    "verify_chain_ordering",
    "verify_runner_policy",
    "verify_campaign",
]

#: Fields that are presentation-only by design and exempt from FX040.
#: Spec classes may widen this with their own ``PRESENTATION_FIELDS``.
_DEFAULT_PRESENTATION = ("tag",)


def _presentation_fields(spec_cls: Type[JobSpec]) -> frozenset:
    return frozenset(
        getattr(spec_cls, "PRESENTATION_FIELDS", _DEFAULT_PRESENTATION)
    )


# ---------------------------------------------------------------------------
# FX040 — cache-key drift
# ---------------------------------------------------------------------------
def verify_jobspec_schema(
    spec_cls: Type[JobSpec] = JobSpec,
    sample: Optional[JobSpec] = None,
) -> List[Diagnostic]:
    """Check that every physics-affecting field is content-hashed.

    The hash payload is introspected from a live instance: the union of
    :meth:`~repro.sched.job.JobSpec.science_fields` and
    :meth:`~repro.sched.job.JobSpec.exec_fields` keys must cover every
    dataclass field except the declared presentation fields
    (``spec_cls.PRESENTATION_FIELDS``).  A field in neither set means
    two jobs differing only in that field share a content hash — the
    cache would silently serve one job's result for the other.  The
    inverse drift (a hashed name that is no longer a dataclass field)
    is reported too.
    """
    spec = sample if sample is not None else spec_cls()
    declared = {f.name for f in dataclass_fields(spec_cls)}
    hashed = set(spec.science_fields()) | set(spec.exec_fields())
    presentation = _presentation_fields(spec_cls)

    diags: List[Diagnostic] = []
    for name in sorted(declared - hashed - presentation):
        diags.append(Diagnostic(
            code="FX040",
            message=(
                f"{spec_cls.__name__}.{name} is a dataclass field but is "
                "hashed by neither science_key nor key; jobs differing "
                "only in it would collide in the result cache"
            ),
            details={"field": name, "spec_class": spec_cls.__name__},
        ))
    for name in sorted(hashed - declared):
        diags.append(Diagnostic(
            code="FX040",
            message=(
                f"hash payload names {name!r} which is not a dataclass "
                f"field of {spec_cls.__name__}; the content hash covers "
                "a phantom field"
            ),
            details={"field": name, "spec_class": spec_cls.__name__,
                     "phantom": True},
        ))
    return diags


# ---------------------------------------------------------------------------
# FX041 / FX042 — ensemble-fusion legality
# ---------------------------------------------------------------------------
def _fused_groups(plan: CampaignPlan) -> Dict[int, List[JobSpec]]:
    """chain index -> member specs, for chains containing fused jobs."""
    groups: Dict[int, List[JobSpec]] = {}
    for ci, chain in enumerate(plan.chains):
        jobs = [plan.jobs[i] for i in chain]
        if not any(j.fused for j in jobs):
            continue
        # one representative spec per science key, chain order
        seen = {}
        for j in jobs:
            seen.setdefault(j.spec.science_key, j.spec)
        groups[ci] = list(seen.values())
    return groups


def verify_fused_groups(plan: CampaignPlan) -> List[Diagnostic]:
    """Re-derive the batched bitwise-equivalence preconditions.

    ``run_batched`` is exact only when the fused members share every
    physics input except the emission perturbation seed
    (``docs/ENSEMBLES.md`` §2).  The planner guarantees this via
    ``ensemble_key`` grouping, but the verifier does not trust the
    digest: it compares the science fields directly, so a broken
    ``ensemble_key`` override (or a hand-built plan) is caught.
    """
    diags: List[Diagnostic] = []
    for ci, members in _fused_groups(plan).items():
        base = {k: v for k, v in members[0].science_fields().items()
                if k != "perturb_seed"}
        for spec in members[1:]:
            other = {k: v for k, v in spec.science_fields().items()
                     if k != "perturb_seed"}
            mismatched = sorted(
                k for k in {**base, **other}
                if base.get(k) != other.get(k)
            )
            if mismatched:
                diags.append(Diagnostic(
                    code="FX041",
                    message=(
                        f"fused chain {ci} mixes physics: member "
                        f"{spec.label!r} differs from {members[0].label!r} "
                        f"in {', '.join(mismatched)}; batching them would "
                        "not be bitwise-equivalent to independent runs"
                    ),
                    details={"chain": ci, "fields": mismatched},
                ))
        seeds = [s.perturb_seed for s in members]
        if None in seeds:
            unseeded = [s.label for s in members if s.perturb_seed is None]
            diags.append(Diagnostic(
                code="FX042",
                severity=Severity.ERROR,
                message=(
                    f"fused chain {ci} contains unperturbed member(s) "
                    f"{unseeded}: only perturbed ensemble members may be "
                    "batched"
                ),
                details={"chain": ci, "members": unseeded},
            ))
        elif len(set(seeds)) != len(seeds):
            dupes = sorted({s for s in seeds if seeds.count(s) > 1})
            diags.append(Diagnostic(
                code="FX042",
                severity=Severity.ERROR,
                message=(
                    f"fused chain {ci} repeats member seed(s) {dupes}: "
                    "duplicate members should have collapsed to one "
                    "science key before fusion"
                ),
                details={"chain": ci, "seeds": dupes},
            ))
        if members[0].perturb_sigma == 0.0 and len(members) > 1:
            diags.append(Diagnostic(
                code="FX042",
                message=(
                    f"fused chain {ci} has perturb_sigma=0: all members "
                    "are bitwise equal, the ensemble spread is degenerate "
                    "and fusion buys nothing"
                ),
                details={"chain": ci, "sigma": 0.0},
            ))
    return diags


# ---------------------------------------------------------------------------
# FX043 — science-chain dependency ordering
# ---------------------------------------------------------------------------
def verify_chain_ordering(
    plan: CampaignPlan,
    warm_science_keys: Optional[Collection[str]] = None,
) -> List[Diagnostic]:
    """Check the plan's dependency and placement invariants.

    * a science key's jobs all live in one chain (splitting them across
      workers races the numerics against their own cache fill);
    * within a chain, the job that pays the science precedes every
      replay-only job of the same science key;
    * a chain occupies one worker, and placements on a worker do not
      overlap in predicted time.

    ``warm_science_keys`` declares which science results already exist
    in the cache when this plan starts.  Incrementally-produced plans —
    the campaign service plans wave by wave against a shared cache —
    legally contain chains no job of which is charged for its science,
    *provided* that science is warm.  With the warm set supplied, an
    uncharged-and-cold chain is an FX043 finding (its replay jobs would
    run against science nobody produces); without it (one-shot CLI
    plans) the historical lenient behavior is kept, since the cost
    model only waives charging when its cache probe hit.
    """
    diags: List[Diagnostic] = []
    warm = None if warm_science_keys is None else set(warm_science_keys)

    chain_of_science: Dict[str, int] = {}
    for ci, chain in enumerate(plan.chains):
        jobs = [plan.jobs[i] for i in chain]
        workers = {j.worker for j in jobs}
        if len(workers) > 1:
            diags.append(Diagnostic(
                code="FX043",
                message=(
                    f"chain {ci} spans workers {sorted(workers)}; a chain "
                    "must execute sequentially on one worker"
                ),
                details={"chain": ci, "workers": sorted(workers)},
            ))
        paid: Dict[str, bool] = {}
        for j in jobs:
            sk = j.spec.science_key
            owner = chain_of_science.setdefault(sk, ci)
            if owner != ci:
                diags.append(Diagnostic(
                    code="FX043",
                    message=(
                        f"science key {sk[:12]} appears in chains {owner} "
                        f"and {ci}; its numerics would race their own "
                        "cache fill across workers"
                    ),
                    details={"science_key": sk[:12],
                             "chains": [owner, ci]},
                ))
            if j.science_charged and paid.get(sk):
                diags.append(Diagnostic(
                    code="FX043",
                    message=(
                        f"job {j.spec.label!r} is charged for science "
                        f"{sk[:12]} after an earlier job in the chain "
                        "already paid it"
                    ),
                    details={"science_key": sk[:12], "chain": ci},
                ))
            if (sk not in paid and not j.science_charged
                    and warm is not None and sk not in warm):
                diags.append(Diagnostic(
                    code="FX043",
                    message=(
                        f"job {j.spec.label!r} replays science {sk[:12]} "
                        "which no job in the plan is charged for and "
                        "which is not warm in the cache; nothing "
                        "produces the result it depends on"
                    ),
                    details={"science_key": sk[:12], "chain": ci},
                ))
            # When the warm set is unknown (one-shot CLI plans) an
            # uncharged chain head is legal: the cost model only waives
            # charging when its cache probe hit, and a waived science is
            # waived for the whole chain, so a later charged job for the
            # same key is the real smell (caught above).
            paid[sk] = paid.get(sk, False) or j.science_charged

    by_worker: Dict[int, List] = {}
    for j in plan.jobs:
        by_worker.setdefault(j.worker, []).append(j)
    for worker, jobs in sorted(by_worker.items()):
        jobs = sorted(jobs, key=lambda j: (j.start_s, j.end_s, j.key))
        for a, b in zip(jobs, jobs[1:]):
            if b.start_s < a.end_s - 1e-9:
                diags.append(Diagnostic(
                    code="FX043",
                    message=(
                        f"worker {worker} placements overlap: "
                        f"{a.spec.label!r} [{a.start_s:.3f}, {a.end_s:.3f}] "
                        f"and {b.spec.label!r} [{b.start_s:.3f}, "
                        f"{b.end_s:.3f}]"
                    ),
                    details={"worker": worker,
                             "jobs": [a.spec.label, b.spec.label]},
                ))
    return diags


# ---------------------------------------------------------------------------
# FX044 / FX045 — timeout, retry and fault-policy sanity
# ---------------------------------------------------------------------------
def verify_runner_policy(
    plan: CampaignPlan,
    timeout: Optional[float] = None,
    retries: int = 2,
    executor: str = "thread",
    fault_policy: Optional[FaultPolicy] = None,
) -> List[Diagnostic]:
    """Check the execution policy against the plan's predictions."""
    diags: List[Diagnostic] = []

    if timeout is not None:
        if timeout <= 0:
            diags.append(Diagnostic(
                code="FX044",
                message=f"timeout {timeout!r} is not positive",
                details={"timeout": timeout},
            ))
        else:
            doomed = [j for j in plan.jobs if j.predicted_s > timeout]
            for j in doomed:
                diags.append(Diagnostic(
                    code="FX044",
                    message=(
                        f"job {j.spec.label!r} is predicted to take "
                        f"{j.predicted_s:.3f}s but the per-attempt timeout "
                        f"is {timeout:g}s; every attempt would time out "
                        "and the retry budget would be spent for nothing"
                    ),
                    details={"job": j.spec.label, "timeout": timeout,
                             "predicted_s": round(j.predicted_s, 4)},
                ))

    if fault_policy is not None:
        selected = [j.spec for j in plan.jobs
                    if fault_policy.selects(j.spec.key)]
        if selected and retries < 1:
            diags.append(Diagnostic(
                code="FX045",
                severity=Severity.ERROR,
                message=(
                    f"fault policy selects {len(selected)} job(s) but "
                    "retries=0: each injected fault is terminal by "
                    "construction and the campaign cannot complete"
                ),
                details={"selected": [s.label for s in selected],
                         "retries": retries},
            ))
        if (selected and fault_policy.mode == "hang"
                and executor == "process" and timeout is None):
            diags.append(Diagnostic(
                code="FX045",
                severity=Severity.ERROR,
                message=(
                    "hang-mode faults under the process executor with no "
                    "timeout: the wedged worker is never joined and the "
                    "campaign deadlocks"
                ),
                details={"mode": "hang", "executor": executor},
            ))
        missed = [s.label for s in selected
                  if fault_policy.after_hours > s.hours]
        if missed:
            diags.append(Diagnostic(
                code="FX045",
                message=(
                    f"fault after_hours={fault_policy.after_hours} exceeds "
                    f"the episode length of {missed}; the drill never "
                    "fires for them"
                ),
                details={"after_hours": fault_policy.after_hours,
                         "jobs": missed},
            ))
    return diags


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------
def verify_campaign(
    specs: Sequence[JobSpec],
    workers: int = 4,
    plan: Optional[CampaignPlan] = None,
    cost_model: Optional[CampaignCostModel] = None,
    fuse_ensembles: bool = True,
    timeout: Optional[float] = None,
    retries: int = 2,
    executor: str = "thread",
    fault_policy: Optional[FaultPolicy] = None,
    spec_cls: Optional[Type[JobSpec]] = None,
    warm_science_keys: Optional[Collection[str]] = None,
) -> AnalysisReport:
    """Statically verify a campaign before anything runs.

    Plans ``specs`` (or takes a pre-built ``plan``) and runs every
    FX04x check; the spec *class* is verified for key drift (FX040)
    using the first spec's type unless ``spec_cls`` overrides it.
    ``warm_science_keys`` lets incremental callers (the campaign
    service verifying one wave of a larger run) declare which science
    results already exist — see :func:`verify_chain_ordering`.
    Returns an :class:`~repro.analyze.diagnostics.AnalysisReport` whose
    exit code follows the usual severity mapping.
    """
    specs = list(specs)
    if spec_cls is None:
        spec_cls = type(specs[0]) if specs else JobSpec
    if plan is None:
        plan = plan_campaign(specs, workers=workers, cost_model=cost_model,
                             fuse_ensembles=fuse_ensembles)

    report = AnalysisReport(program=f"campaign[{len(specs)} specs]")
    report.summary = {
        "specs": len(specs),
        "jobs": plan.n_jobs,
        "duplicates": plan.n_duplicates,
        "workers": plan.workers,
        "fused_chains": len(_fused_groups(plan)),
        "predicted_makespan_s": round(plan.predicted_makespan, 4),
        "spec_class": spec_cls.__name__,
    }
    sample = specs[0] if specs and type(specs[0]) is spec_cls else None
    report.extend(verify_jobspec_schema(spec_cls, sample=sample))
    report.extend(verify_fused_groups(plan))
    report.extend(verify_chain_ordering(
        plan, warm_science_keys=warm_science_keys,
    ))
    report.extend(verify_runner_policy(
        plan, timeout=timeout, retries=retries, executor=executor,
        fault_policy=fault_policy,
    ))
    return report
