"""Determinism sanitizer: the FX05x pass family.

The reproduction's load-bearing guarantees — content-addressed caches,
bitwise-identical batched ensembles, deterministic plans — all assume
the science paths are pure functions of their declared inputs.  This
pass walks the AST of every module under ``src/repro`` and flags the
constructs that break that assumption:

* ``FX050`` — unseeded random-number generation: the ``random`` module
  (global state), numpy's legacy global RNG (``np.random.normal`` and
  friends), or ``default_rng()`` / ``RandomState()`` with no seed;
* ``FX051`` — wall-clock reads (``time.time``, ``perf_counter``,
  ``monotonic``, ``datetime.now``) that can feed hashed or simulated
  state; ``time.sleep`` is exempt (it consumes time, it does not
  observe it);
* ``FX052`` — environment reads (``os.environ``, ``os.getenv``) that
  can alter science behaviour between runs;
* ``FX053`` — iteration-order hazards: a ``json.dumps`` without
  ``sort_keys=True`` in a function that also hashes (the payload's
  byte stream would depend on insertion order), or direct iteration
  over a set expression outside ``sorted(...)``;
* ``FX054`` — unguarded shared-mutable access in code reachable from a
  thread-pool submission: mutation of ``self`` attributes, of free
  variables, or of caller-owned containers outside a ``with <lock>``
  block;
* ``FX055`` — a stale allowlist entry that matched no finding (keeps
  the audited-exception file honest).

Audited exceptions live in a committed allowlist file (default
``.repro-determinism-allow``): one line per exception —
``CODE path pattern -- rationale`` — suppresses matching findings and
records the rationale in the report summary.  See ``docs/ANALYZE.md``
for the format and the runtime sanitizer mode (``REPRO_SANITIZE=1``,
:mod:`repro.analyze.sanitize`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.analyze.diagnostics import AnalysisReport, Diagnostic

__all__ = [
    "AllowlistEntry",
    "load_allowlist",
    "scan_source",
    "scan_tree",
    "ALLOWLIST_FILENAME",
]

ALLOWLIST_FILENAME = ".repro-determinism-allow"

#: Wall-clock reads (FX051).  ``time.sleep`` is deliberately absent.
_CLOCK_READS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today",
})

#: numpy.random constructors that are fine *when seeded*.
_NP_SEEDABLE = frozenset({
    "default_rng", "RandomState", "Generator", "SeedSequence", "Philox",
    "PCG64", "MT19937", "SFC64",
})

#: Mutating container methods (FX054).
_MUTATORS = frozenset({
    "append", "appendleft", "extend", "insert", "pop", "popleft",
    "popitem", "remove", "discard", "add", "clear", "update",
    "setdefault", "sort", "reverse",
})


@dataclass
class AllowlistEntry:
    """One audited exception: ``CODE path pattern -- rationale``."""

    code: str
    path: str
    pattern: str
    rationale: str
    lineno: int
    matched: int = 0

    def matches(self, diag: Diagnostic) -> bool:
        if diag.code != self.code:
            return False
        loc = diag.location or ""
        if not loc.split(":", 1)[0].endswith(self.path):
            return False
        snippet = str(diag.details.get("snippet", ""))
        return self.pattern == "*" or self.pattern in snippet


def load_allowlist(path: Union[str, Path]) -> List[AllowlistEntry]:
    """Parse the allowlist file; blank lines and ``#`` comments skipped.

    Each entry is ``CODE path pattern -- rationale``; ``pattern`` is a
    literal substring of the flagged source line (``*`` matches any)
    and the rationale is mandatory — an exception nobody can justify
    does not belong in the file.
    """
    entries: List[AllowlistEntry] = []
    for lineno, raw in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        head, sep, rationale = line.partition(" -- ")
        parts = head.split()
        if len(parts) != 3 or not sep or not rationale.strip():
            raise ValueError(
                f"{path}:{lineno}: malformed allowlist entry {raw!r}; "
                "expected 'CODE path pattern -- rationale'"
            )
        entries.append(AllowlistEntry(
            code=parts[0], path=parts[1], pattern=parts[2],
            rationale=rationale.strip(), lineno=lineno,
        ))
    return entries


# ---------------------------------------------------------------------------
# per-file scan
# ---------------------------------------------------------------------------
class _FileScanner(ast.NodeVisitor):
    """One module's FX050–FX053 walk (FX054 is a separate pass)."""

    def __init__(self, rel: str, source: str):
        self.rel = rel
        self.lines = source.splitlines()
        self.diags: List[Diagnostic] = []
        #: local alias -> canonical dotted module ("np" -> "numpy").
        self.modules: Dict[str, str] = {}
        #: name imported with ``from M import n`` -> "M.n".
        self.members: Dict[str, str] = {}
        self._consumed: Set[int] = set()   # nodes already reported
        self._sorted_args: Set[int] = set()  # iterables consumed by sorted()
        self._func_stack: List[dict] = []

    # -- helpers -------------------------------------------------------
    def _snippet(self, node: ast.AST) -> str:
        line = node.lineno
        return self.lines[line - 1].strip() if line <= len(self.lines) else ""

    def _flag(self, code: str, node: ast.AST, message: str, **details) -> None:
        self.diags.append(Diagnostic(
            code=code,
            message=message,
            location=f"{self.rel}:{node.lineno}",
            details={"snippet": self._snippet(node), **details},
        ))

    def _resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an attribute chain, de-aliased, or None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.modules.get(node.id)
        if root is None:
            base = self.members.get(node.id)
            if base is None:
                return None
            parts.append(base)
            return ".".join(reversed(parts)) if parts else base
        parts.append(root)
        return ".".join(reversed(parts))

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.modules[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self.members[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- function scopes (for the FX053 hash-payload rule) -------------
    def _enter_function(self, node) -> None:
        self._func_stack.append({"hashes": False, "dumps": []})
        self.generic_visit(node)
        scope = self._func_stack.pop()
        if scope["hashes"]:
            for call in scope["dumps"]:
                self._flag(
                    "FX053", call,
                    "json.dumps without sort_keys=True in a hashing "
                    "function: the digest depends on dict insertion order",
                )

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        dotted = self._resolve(node.func)
        if dotted:
            self._check_call(node, dotted)
        if isinstance(node.func, ast.Name) and node.func.id == "sorted":
            for arg in node.args:
                self._sorted_args.add(id(arg))
        self.generic_visit(node)

    def _check_call(self, node: ast.Call, dotted: str) -> None:
        inner = node.func
        while isinstance(inner, ast.Attribute):
            self._consumed.add(id(inner))
            inner = inner.value
        has_args = bool(node.args or node.keywords)
        tail = dotted.rsplit(".", 1)[-1]

        if dotted == "random.Random":
            if not has_args:
                self._flag("FX050", node,
                           "random.Random() without a seed",
                           call=dotted)
        elif dotted == "random.SystemRandom":
            self._flag("FX050", node,
                       "random.SystemRandom is nondeterministic by design",
                       call=dotted)
        elif dotted.startswith("random."):
            self._flag(
                "FX050", node,
                f"{dotted} draws from the process-global random state; "
                "derive a seeded Generator from declared inputs instead",
                call=dotted,
            )
        elif dotted.startswith("numpy.random."):
            if tail in _NP_SEEDABLE:
                if not has_args:
                    self._flag("FX050", node,
                               f"{dotted}() without a seed",
                               call=dotted)
            else:
                self._flag(
                    "FX050", node,
                    f"{dotted} uses numpy's legacy global RNG; use a "
                    "seeded default_rng(...) derived from declared inputs",
                    call=dotted,
                )
        elif dotted in _CLOCK_READS:
            self._flag(
                "FX051", node,
                f"{dotted}() reads the wall clock; science state must "
                "derive only from declared inputs",
                call=dotted,
            )
        elif dotted == "os.getenv" or dotted == "os.environ.get":
            self._flag(
                "FX052", node,
                f"{dotted} read: behaviour would vary with the caller's "
                "environment",
                call=dotted,
            )
        elif dotted.startswith("hashlib.") and self._func_stack:
            self._func_stack[-1]["hashes"] = True
        elif dotted == "json.dumps" and self._func_stack:
            kw = {k.arg: k.value for k in node.keywords}
            sk = kw.get("sort_keys")
            if not (isinstance(sk, ast.Constant) and sk.value is True):
                self._func_stack[-1]["dumps"].append(node)

    # -- bare references (clock functions passed as values) ------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if id(node) not in self._consumed:
            dotted = self._resolve(node)
            if dotted in _CLOCK_READS:
                self._flag(
                    "FX051", node,
                    f"{dotted} referenced as a value: the bound clock "
                    "feeds downstream state",
                    call=dotted,
                )
            elif dotted == "os.environ":
                self._flag(
                    "FX052", node,
                    "os.environ read: behaviour would vary with the "
                    "caller's environment",
                    call=dotted,
                )
        self.generic_visit(node)

    # -- set iteration (FX053) -----------------------------------------
    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        if isinstance(node, ast.BinOp):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _check_iter(self, node: ast.AST, it: ast.AST) -> None:
        if id(it) in self._sorted_args:
            return
        if self._is_set_expr(it):
            self._flag(
                "FX053", node,
                "iterating a set: order varies with hash seeding; wrap "
                "in sorted(...) when the order can reach hashed state or "
                "span emission",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node, node.iter)
        self.generic_visit(node)

    def _visit_comp(self, node) -> None:
        if id(node) in self._sorted_args:
            for gen in node.generators:
                self._sorted_args.add(id(gen.iter))
        for gen in node.generators:
            self._check_iter(node, gen.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comp
    visit_SetComp = _visit_comp
    visit_DictComp = _visit_comp
    visit_GeneratorExp = _visit_comp


# ---------------------------------------------------------------------------
# FX054 — shared-mutable access from thread-executor code
# ---------------------------------------------------------------------------
@dataclass
class _FuncInfo:
    node: ast.AST
    qualname: str
    cls: Optional[str] = None
    locals: Set[str] = field(default_factory=set)


def _collect_functions(tree: ast.Module) -> Dict[str, _FuncInfo]:
    """All function defs in a module, keyed by name (methods too).

    Name collisions keep the first definition — good enough for the
    single-module call graphs this pass reasons about.
    """
    table: Dict[str, _FuncInfo] = {}

    def visit(node, cls: Optional[str], prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                visit(child, child.name, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = _FuncInfo(child, f"{prefix}{child.name}", cls=cls)
                info.locals = _bound_names(child)
                table.setdefault(child.name, info)
                visit(child, cls, f"{prefix}{child.name}.")
            else:
                # Defs can hide under if/try/with/loop statements.
                visit(child, cls, prefix)

    visit(tree, None, "")
    return table


def _bound_names(func) -> Set[str]:
    """Names bound inside ``func`` (locals, loop vars, with-targets)."""
    bound: Set[str] = {a.arg for a in func.args.args}
    bound |= {a.arg for a in func.args.kwonlyargs}
    if func.args.vararg:
        bound.add(func.args.vararg.arg)
    if func.args.kwarg:
        bound.add(func.args.kwarg.arg)
    params = set(bound)

    def targets(node) -> None:
        if isinstance(node, ast.Name):
            bound.add(node.id)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for elt in node.elts:
                targets(elt)

    for sub in ast.walk(func):
        if sub is not func and isinstance(
                sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
            bound.add(sub.name)
            continue
        if isinstance(sub, ast.Assign):
            for t in sub.targets:
                targets(t)
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            targets(sub.target)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            targets(sub.target)
        elif isinstance(sub, (ast.With, ast.AsyncWith)):
            for item in sub.items:
                if item.optional_vars is not None:
                    targets(item.optional_vars)
        elif isinstance(sub, ast.comprehension):
            targets(sub.target)
    # Parameters are caller-owned: a dict passed in is shared state even
    # though the name is "local", so they do not count as private.
    return bound - params


def _is_lockish(expr: ast.AST) -> bool:
    name = ""
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    elif isinstance(expr, ast.Call):
        return _is_lockish(expr.func)
    return "lock" in name.lower() or "mutex" in name.lower()


class _ThreadBodyChecker:
    """Flags unguarded shared-state mutation inside one function."""

    def __init__(self, scanner_rel: str, lines: List[str],
                 info: _FuncInfo, diags: List[Diagnostic]):
        self.rel = scanner_rel
        self.lines = lines
        self.info = info
        self.diags = diags
        self.calls: Set[str] = set()   # names this function calls

    def _flag(self, node: ast.AST, what: str) -> None:
        snippet = (self.lines[node.lineno - 1].strip()
                   if node.lineno <= len(self.lines) else "")
        self.diags.append(Diagnostic(
            code="FX054",
            message=(
                f"{what} in {self.info.qualname!r} runs on a pool thread "
                "without a lock; guard it or make the state thread-local"
            ),
            location=f"{self.rel}:{node.lineno}",
            details={"snippet": snippet, "function": self.info.qualname},
        ))

    def _shared_name(self, node: ast.AST) -> bool:
        """A base object whose mutation is visible outside the thread."""
        if isinstance(node, ast.Attribute) and isinstance(
                node.value, ast.Name) and node.value.id == "self":
            return True
        return (isinstance(node, ast.Name)
                and node.id not in self.info.locals)

    def check(self) -> None:
        body = (self.info.node.body
                if hasattr(self.info.node, "body") else [])
        for stmt in body:
            self._walk(stmt, locked=False)

    def _walk(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return  # nested defs are separate call-graph nodes
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner = locked or any(
                _is_lockish(item.context_expr) for item in node.items
            )
            for item in node.items:
                self._walk(item.context_expr, locked)
            for child in node.body:
                self._walk(child, inner)
            return

        if isinstance(node, ast.Assign):
            for t in node.targets:
                self._check_store(t, locked)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            self._check_store(node.target, locked)
        elif isinstance(node, ast.Call):
            self._check_call(node, locked)

        for child in ast.iter_child_nodes(node):
            self._walk(child, locked)

    def _check_store(self, target: ast.AST, locked: bool) -> None:
        if isinstance(target, ast.Attribute) and self._shared_name(target):
            if not locked:
                self._flag(target, f"write to shared attribute "
                                   f"'{ast.unparse(target)}'")
        elif isinstance(target, ast.Subscript) and self._shared_name(
                target.value):
            if not locked:
                self._flag(target, f"item write to shared "
                                   f"'{ast.unparse(target.value)}'")

    def _check_call(self, node: ast.Call, locked: bool) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            self.calls.add(func.id)
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                self.calls.add(func.attr)
            elif (func.attr in _MUTATORS and self._shared_name(func.value)
                    and not locked):
                self._flag(node, f"mutating call "
                                 f"'{ast.unparse(func)}(...)' on shared "
                                 "state")


def _thread_roots(tree: ast.Module) -> Set[str]:
    """Function names handed to a thread pool or a Thread target."""
    roots: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "submit":
            if node.args and isinstance(node.args[0], ast.Name):
                roots.add(node.args[0].id)
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else "")
        if name == "Thread":
            for kw in node.keywords:
                if kw.arg == "target" and isinstance(kw.value, ast.Name):
                    roots.add(kw.value.id)
    return roots


def _scan_thread_safety(rel: str, source: str,
                        tree: ast.Module) -> List[Diagnostic]:
    roots = _thread_roots(tree)
    if not roots:
        return []
    table = _collect_functions(tree)
    lines = source.splitlines()
    diags: List[Diagnostic] = []
    seen: Set[str] = set()
    frontier = [r for r in sorted(roots) if r in table]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        checker = _ThreadBodyChecker(rel, lines, table[name], diags)
        checker.check()
        frontier.extend(c for c in sorted(checker.calls)
                        if c in table and c not in seen)
    return diags


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------
def scan_source(rel: str, source: str) -> List[Diagnostic]:
    """All FX05x findings for one module's source text."""
    tree = ast.parse(source, filename=rel)
    scanner = _FileScanner(rel, source)
    scanner.visit(tree)
    diags = scanner.diags + _scan_thread_safety(rel, source, tree)
    diags.sort(key=lambda d: (d.location or "", d.code))
    return diags


def scan_tree(
    root: Union[str, Path],
    allowlist: Optional[Sequence[AllowlistEntry]] = None,
) -> AnalysisReport:
    """Scan every ``*.py`` under ``root`` and apply the allowlist.

    Allowlisted findings are suppressed (their entries recorded with
    match counts in the summary); entries that matched nothing become
    FX055 warnings so the audited-exception file cannot rot.
    """
    root = Path(root)
    entries = list(allowlist or [])
    report = AnalysisReport(program=f"determinism[{root}]")

    files = sorted(p for p in root.rglob("*.py"))
    kept: List[Diagnostic] = []
    suppressed = 0
    for path in files:
        rel = path.relative_to(root.parent).as_posix()
        for diag in scan_source(rel, path.read_text()):
            hit = next((e for e in entries if e.matches(diag)), None)
            if hit is not None:
                hit.matched += 1
                suppressed += 1
            else:
                kept.append(diag)

    for entry in entries:
        if entry.matched == 0:
            kept.append(Diagnostic(
                code="FX055",
                message=(
                    f"allowlist entry '{entry.code} {entry.path} "
                    f"{entry.pattern}' matched no finding; remove it or "
                    "fix its path/pattern"
                ),
                location=f"allowlist:{entry.lineno}",
                details={"entry": f"{entry.code} {entry.path} "
                                  f"{entry.pattern}"},
            ))

    report.extend(kept)
    report.summary = {
        "files_scanned": len(files),
        "findings": len(report.diagnostics),
        "allowlisted": suppressed,
        "allowlist_entries": [
            {"code": e.code, "path": e.path, "pattern": e.pattern,
             "rationale": e.rationale, "matched": e.matched}
            for e in entries
        ],
    }
    return report
