"""The analyzable program description (the analyzer's IR).

An :class:`FxProgram` is a declarative model of one Fx program: its
arrays and their starting distributions, its task regions (pipeline
stages with declared input/output sets), and the flat sequence of
phases the program executes — redistributions, owner-computes loops,
sequential I/O, output gathers and inter-stage handoffs.  The model
drivers are registered as programs in :mod:`repro.analyze.programs`;
test fixtures build programs directly.

The IR is deliberately *static*: it references
:class:`~repro.fx.distribution.Distribution` directives (not live
arrays) and can therefore be checked without running anything.  The
:meth:`FxProgram.comm_plan` method compiles the phase sequence into the
ordered list of communication steps the Fx runtime would charge —
identity redistributions are elided exactly as the runtime elides empty
plans — which the cost linter prices and the trace cross-check compares
against real span streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.fx.distribution import ArrayLayout, Distribution
from repro.fx.redistribute import plan_redistribution
from repro.fx.runtime import dist_label
from repro.vm.cluster import Transfer
from repro.vm.machine import MachineSpec
from repro.vm.traffic import NodeTraffic

__all__ = [
    "ArrayDecl",
    "TaskDecl",
    "PhaseDecl",
    "CommStep",
    "FxProgram",
    "price_transfers",
]


@dataclass(frozen=True)
class ArrayDecl:
    """A distributed array: global shape, element size and home group."""

    name: str
    shape: Tuple[int, ...]
    itemsize: int = 8
    initial: Distribution = None  # type: ignore[assignment]
    #: Task (stage) whose subgroup owns the array; ``None`` = the whole
    #: machine.
    group: Optional[str] = None

    def __post_init__(self) -> None:
        if self.initial is None:
            object.__setattr__(
                self, "initial", Distribution.replicated(len(self.shape))
            )


@dataclass(frozen=True)
class TaskDecl:
    """One task region (pipeline stage) with its declared I/O sets."""

    name: str
    size: int
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    #: Variables whose per-item ownership passes to the *next* stage.
    handoff: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class PhaseDecl:
    """One phase of the program's execution sequence.

    ``op`` selects the phase flavour:

    * ``"redistribute"`` — change ``array`` to the ``target`` directive;
    * ``"compute"`` — a loop over ``array`` requiring directive
      ``layout`` (owner-computes) or replicated execution;
    * ``"io"`` — sequential I/O processing;
    * ``"gather"`` — copy ``array`` to one node without changing its
      live distribution (the end-of-hour output gather);
    * ``"handoff"`` — inter-stage pipeline transfer of ``nbytes``.
    """

    op: str
    name: str
    array: Optional[str] = None
    target: Optional[Distribution] = None
    layout: Optional[Distribution] = None
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    task: Optional[str] = None
    nbytes: int = 0

    OPS = ("redistribute", "compute", "io", "gather", "handoff")

    def __post_init__(self) -> None:
        if self.op not in self.OPS:
            raise ValueError(f"unknown phase op {self.op!r}")
        if self.op in ("redistribute", "gather") and self.array is None:
            raise ValueError(f"{self.op} phase {self.name!r} needs an array")
        if self.op == "redistribute" and self.target is None:
            raise ValueError(f"redistribute phase {self.name!r} needs a target")


@dataclass(frozen=True)
class CommStep:
    """One predicted communication step of the compiled plan."""

    name: str
    kind: str              # "redistribute" | "gather" | "handoff"
    phase_index: int
    messages: int
    network_bytes: int
    copied_bytes: int
    seconds: float
    array: Optional[str] = None


def price_transfers(machine: MachineSpec, transfers: List[Transfer]) -> float:
    """Phase duration the cluster would charge for a transfer set.

    Mirrors :meth:`repro.vm.cluster.Cluster.charge_communication`: each
    node pays ``Ct = L*m + G*max(sent, recv) + H*copied`` and the phase
    is paced by the most loaded node.
    """
    traffic: Dict[int, NodeTraffic] = {}

    def rec(i: int) -> NodeTraffic:
        return traffic.setdefault(i, NodeTraffic())

    for t in transfers:
        if t.src == t.dst:
            rec(t.src).bytes_copied += t.nbytes
            continue
        s, d = rec(t.src), rec(t.dst)
        s.messages_sent += t.messages
        s.bytes_sent += t.nbytes
        d.messages_received += t.messages
        d.bytes_received += t.nbytes
    if not traffic:
        return 0.0
    return max(
        machine.comm_cost(t.messages, t.bytes_moved, t.bytes_copied)
        for t in traffic.values()
    )


@dataclass
class FxProgram:
    """A complete static description of one Fx program."""

    name: str
    machine: MachineSpec
    nprocs: int
    arrays: List[ArrayDecl] = field(default_factory=list)
    tasks: List[TaskDecl] = field(default_factory=list)
    phases: List[PhaseDecl] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def array(self, name: str) -> ArrayDecl:
        for a in self.arrays:
            if a.name == name:
                return a
        raise KeyError(f"program {self.name!r} has no array {name!r}")

    def task(self, name: str) -> TaskDecl:
        for t in self.tasks:
            if t.name == name:
                return t
        raise KeyError(f"program {self.name!r} has no task {name!r}")

    def group_size(self, array: ArrayDecl) -> int:
        """Processor-group size the array is distributed over."""
        if array.group is None:
            return self.nprocs
        return self.task(array.group).size

    def layout_of(self, array: ArrayDecl, dist: Distribution) -> ArrayLayout:
        return dist.layout(array.shape, self.group_size(array))

    # ------------------------------------------------------------------
    # layout walk
    # ------------------------------------------------------------------
    def walk(self) -> Iterator[Tuple[int, PhaseDecl, Dict[str, Distribution]]]:
        """Yield ``(index, phase, layouts_before)`` over the sequence.

        ``layouts_before`` maps array name to its current directive
        *before* the phase executes.  Redistribution phases update the
        tracked directive even when inconsistent (the checker reports,
        the walk continues), mirroring a compiler that recovers after a
        diagnosed error.
        """
        current: Dict[str, Distribution] = {
            a.name: a.initial for a in self.arrays
        }
        for index, phase in enumerate(self.phases):
            yield index, phase, dict(current)
            if phase.op == "redistribute":
                current[phase.array] = phase.target

    # ------------------------------------------------------------------
    # the compiled communication plan
    # ------------------------------------------------------------------
    def comm_plan(self) -> List[CommStep]:
        """Ordered communication steps the runtime would charge.

        Identity redistributions and replicated gathers compile to
        empty transfer sets; the Fx runtime elides them, so they do not
        appear here either.  Phases with inconsistent layouts (a
        diagnosable FX001) are skipped — the plan models the program
        the checker would accept.
        """
        steps: List[CommStep] = []
        for index, phase, layouts in self.walk():
            if phase.op == "redistribute":
                array = self.array(phase.array)
                source, target = layouts[phase.array], phase.target
                if source.ndim != target.ndim or source == target:
                    continue
                plan = plan_redistribution(
                    self.layout_of(array, source),
                    self.layout_of(array, target),
                    array.itemsize,
                )
                if plan.is_empty():
                    continue
                transfers = list(plan.transfers)
                steps.append(CommStep(
                    name=f"{dist_label(source)}->{dist_label(target)}",
                    kind="redistribute",
                    phase_index=index,
                    messages=plan.message_count(),
                    network_bytes=plan.network_bytes(),
                    copied_bytes=plan.copied_bytes(),
                    seconds=price_transfers(self.machine, transfers),
                    array=phase.array,
                ))
            elif phase.op == "gather":
                array = self.array(phase.array)
                source = layouts[phase.array]
                if source.is_replicated:
                    continue  # the I/O node already holds everything
                layout = self.layout_of(array, source)
                transfers = [
                    Transfer(rank, 0, layout.local_nbytes(rank, array.itemsize))
                    for rank in range(layout.nprocs)
                    if layout.local_nbytes(rank, array.itemsize)
                ]
                if not transfers:
                    continue
                net = sum(t.nbytes for t in transfers if t.src != t.dst)
                copied = sum(t.nbytes for t in transfers if t.src == t.dst)
                steps.append(CommStep(
                    name=phase.name,
                    kind="gather",
                    phase_index=index,
                    messages=sum(
                        t.messages for t in transfers if t.src != t.dst
                    ),
                    network_bytes=net,
                    copied_bytes=copied,
                    seconds=price_transfers(self.machine, transfers),
                    array=phase.array,
                ))
            elif phase.op == "handoff":
                if phase.nbytes <= 0:
                    continue
                transfers = [Transfer(0, 1, phase.nbytes)]
                steps.append(CommStep(
                    name=phase.name,
                    kind="handoff",
                    phase_index=index,
                    messages=1,
                    network_bytes=phase.nbytes,
                    copied_bytes=0,
                    seconds=price_transfers(self.machine, transfers),
                ))
        return steps
