"""Static analysis of Fx program descriptions — the missing compiler
front end of the reproduction.

The paper's Fx environment *compiled* the Airshed source: distribution
directives drove communication generation and task-region input/output
declarations drove the pipeline task graph.  This package recreates
that analysis over a declarative :class:`~repro.analyze.program.FxProgram`
description of each driver, without executing anything:

1. :mod:`~repro.analyze.directives` — directive consistency (FX00x),
2. :mod:`~repro.analyze.races` — task-graph race detection (FX01x),
3. :mod:`~repro.analyze.costlint` — redistribution cost lint (FX02x),
4. :mod:`~repro.analyze.crosscheck` — static plan vs executed span
   trace (FX030).

Entry points: :func:`analyze_program` runs the passes over one program
and returns an :class:`~repro.analyze.diagnostics.AnalysisReport`;
``repro lint`` is the CLI wrapper.  See ``docs/ANALYZE.md``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analyze.costlint import CostBudget, cost_table, lint_costs
from repro.analyze.crosscheck import (
    crosscheck_spans,
    executed_comm_steps,
    paper_configuration,
    run_crosscheck,
    synthetic_trace,
)
from repro.analyze.diagnostics import (
    DIAGNOSTIC_CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analyze.directives import check_directives
from repro.analyze.program import (
    ArrayDecl,
    CommStep,
    FxProgram,
    PhaseDecl,
    TaskDecl,
)
from repro.analyze.programs import (
    available_programs,
    build_program,
    register_program,
)
from repro.analyze.races import check_races

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "DIAGNOSTIC_CODES",
    "ArrayDecl",
    "TaskDecl",
    "PhaseDecl",
    "CommStep",
    "FxProgram",
    "CostBudget",
    "check_directives",
    "check_races",
    "lint_costs",
    "cost_table",
    "crosscheck_spans",
    "run_crosscheck",
    "executed_comm_steps",
    "synthetic_trace",
    "paper_configuration",
    "available_programs",
    "build_program",
    "register_program",
    "analyze_program",
]


def analyze_program(
    program: FxProgram,
    budget: Optional[CostBudget] = None,
    spans: Optional[Sequence] = None,
    crosscheck: bool = False,
) -> AnalysisReport:
    """Run every analysis pass over one program.

    ``spans`` cross-checks the plan against an already-recorded span
    stream; ``crosscheck=True`` instead replays the program's driver on
    a synthetic workload (see :func:`run_crosscheck`).  The cost pass is
    skipped when the program's structure is too broken to plan
    (e.g. task sizes that make a processor group empty) — the directive
    diagnostics then explain why.
    """
    report = AnalysisReport(program=program.name)
    report.summary = {
        "machine": program.machine.name,
        "nprocs": program.nprocs,
        "arrays": len(program.arrays),
        "tasks": len(program.tasks),
        "phases": len(program.phases),
    }
    report.extend(check_directives(program))
    report.extend(check_races(program))
    try:
        diags, table = lint_costs(program, budget)
    except (ValueError, KeyError):
        if not any(d.severity is Severity.ERROR for d in report.diagnostics):
            raise
        diags, table = [], {}
    report.extend(diags)
    report.cost_table = table
    if table or not report.diagnostics:
        report.summary["predicted_comm_steps"] = sum(
            row["occurrences"] for row in table.values()
        )
    if spans is not None:
        diags, info = crosscheck_spans(program, spans)
        report.extend(diags)
        report.summary.update(info)
    elif crosscheck:
        diags, info = run_crosscheck(program)
        report.extend(diags)
        report.summary.update(info)
    return report
