"""Static analysis of Fx program descriptions — the missing compiler
front end of the reproduction.

The paper's Fx environment *compiled* the Airshed source: distribution
directives drove communication generation and task-region input/output
declarations drove the pipeline task graph.  This package recreates
that analysis over a declarative :class:`~repro.analyze.program.FxProgram`
description of each driver, without executing anything:

1. :mod:`~repro.analyze.directives` — directive consistency (FX00x),
2. :mod:`~repro.analyze.races` — task-graph race detection (FX01x),
3. :mod:`~repro.analyze.costlint` — redistribution cost lint (FX02x),
4. :mod:`~repro.analyze.crosscheck` — static plan vs executed span
   trace (FX030),
5. :mod:`~repro.analyze.campaign` — campaign-plan verification (FX04x):
   cache-key coverage, ensemble-fusion legality, science-chain
   ordering, timeout/retry/fault-policy sanity,
6. :mod:`~repro.analyze.determinism` — determinism sanitizer (FX05x):
   AST lint over the source tree for nondeterminism hazards, with a
   committed allowlist for audited exceptions and a runtime hash-input
   shim (:mod:`~repro.analyze.sanitize`, ``REPRO_SANITIZE=1``),
7. :mod:`~repro.analyze.tune` — calibration-store lint (FX06x):
   prediction drift, refit fallbacks, store integrity, stale tuning
   decisions.

Entry points: :func:`analyze_program` runs the program passes,
:func:`~repro.analyze.campaign.verify_campaign` verifies a planned
campaign, :func:`~repro.analyze.determinism.scan_tree` sanitizes a
source tree; ``repro lint`` (``--campaign`` / ``--determinism``) is
the CLI wrapper.  See ``docs/ANALYZE.md``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analyze.costlint import CostBudget, cost_table, lint_costs
from repro.analyze.crosscheck import (
    crosscheck_spans,
    executed_comm_steps,
    paper_configuration,
    run_crosscheck,
    synthetic_trace,
)
from repro.analyze.determinism import (
    ALLOWLIST_FILENAME,
    AllowlistEntry,
    load_allowlist,
    scan_source,
    scan_tree,
)
from repro.analyze.diagnostics import (
    DIAGNOSTIC_CODES,
    REGISTRY,
    SEVERITY_EXIT_CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analyze.directives import check_directives
from repro.analyze.sanitize import (
    DeterminismError,
    check_digest,
    sanitize_enabled,
)
from repro.analyze.program import (
    ArrayDecl,
    CommStep,
    FxProgram,
    PhaseDecl,
    TaskDecl,
)
from repro.analyze.programs import (
    available_programs,
    build_program,
    register_program,
)
from repro.analyze.races import check_races

# The campaign verifier imports repro.sched, the tune lint imports
# repro.tune, and both of those packages import repro.analyze.programs
# via repro.sched.costmodel — importing either eagerly here would make
# `import repro.sched` fail mid-initialization.  PEP 562 lazy exports
# break the cycle: the first attribute access imports the owning
# module, by which point every package is fully initialized.
_LAZY_EXPORTS = {
    "verify_campaign": "repro.analyze.campaign",
    "verify_chain_ordering": "repro.analyze.campaign",
    "verify_fused_groups": "repro.analyze.campaign",
    "verify_jobspec_schema": "repro.analyze.campaign",
    "verify_runner_policy": "repro.analyze.campaign",
    "lint_tune_store": "repro.analyze.tune",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is not None:
        import importlib

        return getattr(importlib.import_module(module_name), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "DIAGNOSTIC_CODES",
    "REGISTRY",
    "SEVERITY_EXIT_CODES",
    "verify_campaign",
    "verify_chain_ordering",
    "verify_fused_groups",
    "verify_jobspec_schema",
    "verify_runner_policy",
    "lint_tune_store",
    "ALLOWLIST_FILENAME",
    "AllowlistEntry",
    "load_allowlist",
    "scan_source",
    "scan_tree",
    "DeterminismError",
    "check_digest",
    "sanitize_enabled",
    "ArrayDecl",
    "TaskDecl",
    "PhaseDecl",
    "CommStep",
    "FxProgram",
    "CostBudget",
    "check_directives",
    "check_races",
    "lint_costs",
    "cost_table",
    "crosscheck_spans",
    "run_crosscheck",
    "executed_comm_steps",
    "synthetic_trace",
    "paper_configuration",
    "available_programs",
    "build_program",
    "register_program",
    "analyze_program",
]


def analyze_program(
    program: FxProgram,
    budget: Optional[CostBudget] = None,
    spans: Optional[Sequence] = None,
    crosscheck: bool = False,
) -> AnalysisReport:
    """Run every analysis pass over one program.

    ``spans`` cross-checks the plan against an already-recorded span
    stream; ``crosscheck=True`` instead replays the program's driver on
    a synthetic workload (see :func:`run_crosscheck`).  The cost pass is
    skipped when the program's structure is too broken to plan
    (e.g. task sizes that make a processor group empty) — the directive
    diagnostics then explain why.
    """
    report = AnalysisReport(program=program.name)
    report.summary = {
        "machine": program.machine.name,
        "nprocs": program.nprocs,
        "arrays": len(program.arrays),
        "tasks": len(program.tasks),
        "phases": len(program.phases),
    }
    report.extend(check_directives(program))
    report.extend(check_races(program))
    try:
        diags, table = lint_costs(program, budget)
    except (ValueError, KeyError):
        if not any(d.severity is Severity.ERROR for d in report.diagnostics):
            raise
        diags, table = [], {}
    report.extend(diags)
    report.cost_table = table
    if table or not report.diagnostics:
        report.summary["predicted_comm_steps"] = sum(
            row["occurrences"] for row in table.values()
        )
    if spans is not None:
        diags, info = crosscheck_spans(program, spans)
        report.extend(diags)
        report.summary.update(info)
    elif crosscheck:
        diags, info = run_crosscheck(program)
        report.extend(diags)
        report.summary.update(info)
    return report
