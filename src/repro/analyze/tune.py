"""Calibration-store lint (FX06x).

``lint_tune_store`` audits a :class:`~repro.tune.store.CalibrationStore`
the way the other passes audit programs and plans:

* **FX063** (error) — store integrity: a corrupt journal line, corrupt
  snapshot, malformed record, or a stored digest that no longer matches
  its payload;
* **FX060** (warning) — calibration drift: a phase key whose median
  predicted-vs-observed relative error strictly exceeds the band
  (:data:`~repro.perfmodel.calibrate.DEFAULT_DRIFT_BAND`; an error
  exactly on the band is in band);
* **FX061** (info) — a refit quantity with too few usable observations
  fell back to its paper constant;
* **FX062** (warning) — outlier rejection dropped at least as many
  observations of a quantity as it kept;
* **FX064** (info) — the newest journaled autotuner decision cites an
  older calibration generation than the store now holds (replanning
  would use fresher data).

Exposed as ``repro lint --tune <store>``.
"""

from __future__ import annotations

from typing import Union

from repro.analyze.diagnostics import AnalysisReport, Diagnostic
from repro.perfmodel.calibrate import (
    DEFAULT_DRIFT_BAND,
    MIN_SAMPLES,
    drift_report,
    refit_observations,
)
from repro.tune.store import CalibrationStore, fingerprint_digests

__all__ = ["lint_tune_store"]


def lint_tune_store(
    store: Union[CalibrationStore, str],
    *,
    band: float = DEFAULT_DRIFT_BAND,
    min_samples: int = MIN_SAMPLES,
) -> AnalysisReport:
    """Run every FX06x check over one calibration store."""
    if not isinstance(store, CalibrationStore):
        store = CalibrationStore(store)
    scan = store.scan()
    report = AnalysisReport(program=f"tune-store:{store.root}")
    report.summary = {
        "observations": len(scan.observations),
        "decisions": len(scan.decisions),
        "errors": len(scan.errors),
        "fingerprint": fingerprint_digests(
            o.digest for o in scan.observations
        ),
        "drift_band": band,
    }

    for error in scan.errors:
        report.extend([Diagnostic(
            code="FX063",
            message=error,
            location=str(store.journal_path),
        )])

    refit = refit_observations(scan.observations, min_samples=min_samples)
    for note in refit.notes:
        if note["kind"] == "fallback":
            report.extend([Diagnostic(
                code="FX061",
                message=(
                    f"{note['quantity']}: {note['samples']} usable "
                    f"observation(s) < {note['min_samples']}; "
                    "paper constant kept"
                ),
                details=note,
            )])
        elif note["kind"] == "outliers":
            kept = note["samples"] - note["rejected"]
            if note["rejected"] >= kept:
                report.extend([Diagnostic(
                    code="FX062",
                    message=(
                        f"{note['quantity']}: rejected {note['rejected']} "
                        f"of {note['samples']} observations as outliers"
                    ),
                    details=note,
                )])

    for entry in drift_report(
        scan.observations, band=band, min_samples=min_samples
    ):
        if entry["drifted"]:
            report.extend([Diagnostic(
                code="FX060",
                message=(
                    f"{entry['phase_key']}: median error "
                    f"{entry['median_error']:.1%} over "
                    f"{entry['samples']} sample(s) exceeds the "
                    f"{entry['band']:.0%} band"
                ),
                phase=entry["phase_key"],
                details=entry,
            )])

    if scan.decisions:
        last = scan.decisions[-1]
        cited = int(last.get("generation", 0))
        current = len(scan.observations)
        if cited < current:
            report.extend([Diagnostic(
                code="FX064",
                message=(
                    f"latest decision cites generation {cited}, "
                    f"store is at {current}"
                ),
                details={"cited": cited, "current": current},
            )])
    return report
