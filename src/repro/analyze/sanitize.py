"""Runtime sanitizer mode: verify content-hash inputs as they are used.

The static FX05x pass reasons about nondeterminism it can see in the
source; this module catches what it cannot — a hash *payload* whose
serialized bytes vary between processes (insertion-order-dependent
dicts, non-canonical floats, objects with identity-based reprs).  With
``REPRO_SANITIZE=1`` in the environment, every content digest computed
by :mod:`repro.sched.job` is shimmed through :func:`check_digest`,
which

1. re-serializes the payload from reversed insertion order and fails
   if the canonical JSON differs (the digest would depend on the order
   fields were added);
2. round-trips the payload through ``json.loads``/``dumps`` and fails
   if the bytes change (a value that does not survive JSON is not a
   stable hash input);
3. records ``digest -> payload`` in an on-disk ledger
   (``REPRO_SANITIZE_DIR``, default ``.repro-sanitize``) and fails if
   a later process — today's run, yesterday's run, another machine's
   run with a shared ledger — produced different bytes for the same
   digest or a different digest for the same payload.

The mode adds I/O per digest and is meant for CI drills and debugging,
never for production campaigns.  A violation raises
:class:`DeterminismError` — loudly, at the exact digest call — rather
than letting an unstable key quietly fragment or alias the cache.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict

__all__ = ["DeterminismError", "sanitize_enabled", "check_digest"]

_ENV_FLAG = "REPRO_SANITIZE"
_ENV_DIR = "REPRO_SANITIZE_DIR"
_DEFAULT_DIR = ".repro-sanitize"


class DeterminismError(RuntimeError):
    """A content-hash input failed a stability check."""


def sanitize_enabled() -> bool:
    """Whether the runtime sanitizer is switched on for this process."""
    return bool(os.environ.get(_ENV_FLAG))


def _canon(fields: Dict[str, Any]) -> str:
    return json.dumps(fields, sort_keys=True, separators=(",", ":"))


def check_digest(fields: Dict[str, Any], payload: str, digest: str) -> None:
    """Verify one digest computation; raise :class:`DeterminismError`.

    ``fields`` is the logical payload, ``payload`` the serialized bytes
    that were hashed and ``digest`` the resulting hex digest.  Checks
    are ordered cheapest first; the ledger write is atomic so parallel
    workers cannot corrupt it.
    """
    # 1. insertion-order independence: rebuilding the mapping backwards
    #    must serialize to the same canonical bytes.
    reordered = _canon(dict(reversed(list(fields.items()))))
    if reordered != payload:
        raise DeterminismError(
            "hash payload depends on field insertion order: "
            f"{payload!r} != {reordered!r}"
        )

    # 2. JSON round-trip stability: a value that changes across a
    #    loads/dumps cycle (NaN, non-string keys, float repr drift)
    #    cannot be a stable hash input.
    try:
        round_tripped = _canon(json.loads(payload))
    except ValueError as exc:
        raise DeterminismError(
            f"hash payload is not valid canonical JSON: {exc}"
        ) from exc
    if round_tripped != payload:
        raise DeterminismError(
            "hash payload does not survive a JSON round-trip: "
            f"{payload!r} -> {round_tripped!r}"
        )

    # 3. cross-process ledger: the same digest must always come from
    #    the same bytes, in this process and every earlier one.
    ledger_root = Path(os.environ.get(_ENV_DIR, _DEFAULT_DIR))
    entry = ledger_root / digest[:2] / f"{digest}.json"
    if entry.is_file():
        stored = entry.read_text()
        if stored != payload:
            raise DeterminismError(
                f"digest {digest[:12]} was previously computed from "
                f"different bytes: {stored!r} != {payload!r}"
            )
        return
    entry.parent.mkdir(parents=True, exist_ok=True)
    tmp = entry.with_suffix(f".tmp-{os.getpid()}")
    tmp.write_text(payload)
    tmp.replace(entry)
