"""Pass 4 — static plan vs executed trace (FX030).

The analyzer claims to know, without running anything, exactly which
communication steps the runtime will charge.  This module keeps it
honest: it replays a synthetic workload through the *real* simulated
driver with a span tracer attached, extracts the ordered communication
steps that actually executed, and compares them against
:meth:`FxProgram.comm_plan`.  Any divergence — a missing step, an extra
step, a different order — is an **FX030** error: either the program
description or the analyzer is wrong.

For the paper's configuration (LA dataset on the Cray T3E, 64 nodes,
4 hours of 6 main-loop steps each — the 10-minute operational step) the
data-parallel plan has exactly **77** communication steps::

    1                 initial D_Repl->D_Trans of the run
    + 4 x (3 x 6)     three redistributions per step
    + 4               one output gather per hour

:func:`paper_configuration` builds that program; the shipped tests pin
the 77.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.analyze.diagnostics import Diagnostic
from repro.analyze.program import FxProgram
from repro.analyze.programs import build_dataparallel
from repro.model.dataparallel import replay_data_parallel
from repro.model.results import HourTrace, StepTrace, WorkloadTrace
from repro.model.taskparallel import replay_task_parallel
from repro.observe.tracer import Span, Tracer

__all__ = [
    "synthetic_trace",
    "executed_comm_steps",
    "crosscheck_spans",
    "run_crosscheck",
    "paper_configuration",
]


def paper_configuration() -> FxProgram:
    """The paper's LA / Cray T3E / 64-node data-parallel program.

    4 hours of 6 steps each: ``1 + 4*(3*6) + 4 = 77`` communication
    steps (see the module docstring for the accounting).
    """
    return build_dataparallel(
        dataset="la", machine="t3e", nprocs=64, hours=4, steps_per_hour=6
    )


def synthetic_trace(
    shape: Sequence[int],
    hours: int,
    steps_per_hour: int,
    start_hour: int = 6,
    input_bytes: int = 1 << 20,
    output_bytes: int = 1 << 20,
) -> WorkloadTrace:
    """A zero-work :class:`WorkloadTrace` with the given step structure.

    All op counts are zero, so replaying it charges only communication
    and (zero-cost) compute/I/O phases — the phase *sequence* is
    identical to a real workload's, which is all the cross-check needs,
    and the replay runs in milliseconds.
    """
    species, layers, npoints = (int(s) for s in shape)
    trace = WorkloadTrace(dataset_name="synthetic",
                          shape=(species, layers, npoints))
    for i in range(hours):
        steps = [
            StepTrace(
                transport1_ops=np.zeros(layers),
                chemistry_ops=np.zeros(npoints),
                aerosol_ops=0.0,
                transport2_ops=np.zeros(layers),
            )
            for _ in range(steps_per_hour)
        ]
        trace.hours.append(HourTrace(
            hour=(start_hour + i) % 24,
            input_bytes=int(input_bytes),
            input_ops=0.0,
            pretrans_ops=0.0,
            nsteps=steps_per_hour,
            steps=steps,
            output_bytes=int(output_bytes),
            output_ops=0.0,
        ))
    return trace


def executed_comm_steps(spans: Sequence[Span]) -> List[str]:
    """Ordered communication-step names extracted from a span stream.

    The cluster emits one node span per participant per communication
    phase, all sharing the phase's ``(name, start, end)``; consecutive
    identical keys collapse to one step.
    """
    steps: List[str] = []
    previous = None
    for span in spans:
        if span.kind != "comm":
            continue
        key = (span.name, span.start, span.end)
        if key != previous:
            steps.append(span.name)
            previous = key
    return steps


def crosscheck_spans(
    program: FxProgram, spans: Sequence[Span]
) -> Tuple[List[Diagnostic], Dict[str, Any]]:
    """Compare the static plan with an executed span stream."""
    predicted = [step.name for step in program.comm_plan()]
    executed = executed_comm_steps(spans)
    info: Dict[str, Any] = {
        "predicted_comm_steps": len(predicted),
        "executed_comm_steps": len(executed),
    }
    divergence = None
    for index, (want, got) in enumerate(zip(predicted, executed)):
        if want != got:
            divergence = {"index": index, "predicted": want, "executed": got}
            break
    if divergence is None and len(predicted) != len(executed):
        index = min(len(predicted), len(executed))
        divergence = {
            "index": index,
            "predicted": predicted[index] if index < len(predicted) else None,
            "executed": executed[index] if index < len(executed) else None,
        }
    if divergence is None:
        return [], info
    diag = Diagnostic(
        "FX030",
        f"executed trace diverges from the static plan at step "
        f"{divergence['index']}: predicted {divergence['predicted']!r}, "
        f"executed {divergence['executed']!r} "
        f"({len(predicted)} predicted vs {len(executed)} executed steps)",
        details={**info, "first_divergence": divergence},
    )
    return [diag], info


def run_crosscheck(program: FxProgram) -> Tuple[List[Diagnostic], Dict[str, Any]]:
    """Replay the program's driver on a synthetic workload and compare.

    Only meaningful for the drivers with a replay path; the sequential
    program has an empty plan and trivially passes.
    """
    meta = program.meta
    driver = meta.get("driver")
    shape = meta.get("shape") or [a.shape for a in program.arrays][0]
    hours = int(meta.get("hours", 1))
    steps = int(meta.get("steps_per_hour", 1))
    trace = synthetic_trace(
        shape, hours, steps,
        input_bytes=int(meta.get("input_bytes", 1 << 20)),
    )
    tracer = Tracer()
    if driver == "dataparallel":
        replay_data_parallel(trace, program.machine, program.nprocs,
                             tracer=tracer)
    elif driver == "taskparallel":
        replay_task_parallel(trace, program.machine, program.nprocs,
                             io_nodes=int(meta.get("io_nodes", 1)),
                             tracer=tracer)
    elif driver == "sequential":
        pass  # nothing executes in parallel; the empty plan must match
    else:
        raise KeyError(
            f"program {program.name!r} has no replayable driver "
            f"(meta.driver = {driver!r})"
        )
    return crosscheck_spans(program, tracer.spans)
