"""Diagnostics: stable codes, severities and the analysis report.

Every finding of the three analysis passes is a :class:`Diagnostic`
with a stable ``FXnnn`` code, so tooling (CI, editors, the trace
cross-check) can filter and assert on specific classes of problems.
The code space is partitioned by pass:

* ``FX00x`` — directive consistency (layouts and subgroups),
* ``FX01x`` — task-graph races,
* ``FX02x`` — redistribution cost lint,
* ``FX03x`` — static-plan vs executed-trace cross-check,
* ``FX04x`` — campaign-plan verification (cache keys, fusion, chains),
* ``FX05x`` — determinism sanitizer (nondeterminism hazards in
  science paths),
* ``FX06x`` — calibration-store lint (prediction drift, refit
  fallbacks, store integrity, stale tuning decisions).

See ``docs/ANALYZE.md`` for the full table.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, List, Optional

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisReport",
    "DIAGNOSTIC_CODES",
    "REGISTRY",
    "SEVERITY_EXIT_CODES",
]


class Severity(IntEnum):
    """Diagnostic severity; orderable (ERROR > WARNING > INFO)."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    @property
    def label(self) -> str:
        return self.name.lower()


#: code -> (default severity, one-line title).
DIAGNOSTIC_CODES: Dict[str, tuple] = {
    "FX001": (Severity.ERROR, "layout mismatch between producer and consumer"),
    "FX002": (Severity.WARNING, "redundant back-to-back redistribution"),
    "FX003": (Severity.WARNING, "dead layout: produced but never read"),
    "FX004": (Severity.ERROR, "subgroup/cluster size violation"),
    "FX005": (Severity.INFO, "layout leaves nodes idle (extent < group size)"),
    "FX010": (Severity.ERROR, "write-write race between overlapping stages"),
    "FX011": (Severity.ERROR, "read-write race between overlapping stages"),
    "FX012": (Severity.ERROR, "stale read: owning layout changed without redistribution"),
    "FX020": (Severity.WARNING, "redistribution exceeds cost budget"),
    "FX021": (Severity.INFO, "cheaper layout order exists"),
    "FX030": (Severity.ERROR, "executed trace diverges from static communication plan"),
    "FX040": (Severity.ERROR, "cache-key drift: JobSpec field not covered by the content hash"),
    "FX041": (Severity.ERROR, "illegal ensemble fusion: fused members do not share physics"),
    "FX042": (Severity.WARNING, "batched-equivalence precondition violated in a fused group"),
    "FX043": (Severity.ERROR, "science-chain ordering violation in the campaign plan"),
    "FX044": (Severity.ERROR, "per-job timeout below the predicted attempt time"),
    "FX045": (Severity.WARNING, "retry/fault-policy misconfiguration"),
    "FX050": (Severity.ERROR, "unseeded random-number generation in a science path"),
    "FX051": (Severity.WARNING, "wall-clock read can feed hashed or simulated state"),
    "FX052": (Severity.WARNING, "environment read can alter science behaviour"),
    "FX053": (Severity.ERROR, "iteration-order-dependent hash payload or span emission"),
    "FX054": (Severity.ERROR, "unguarded shared-mutable access from thread-executor code"),
    "FX055": (Severity.WARNING, "stale determinism-allowlist entry matched nothing"),
    "FX060": (Severity.WARNING, "calibration drift: predicted-vs-observed error exceeds the band"),
    "FX061": (Severity.INFO, "insufficient observations: refit fell back to paper constants"),
    "FX062": (Severity.WARNING, "outlier-dominated phase: refit rejected most observations"),
    "FX063": (Severity.ERROR, "calibration store integrity: corrupt or digest-mismatched record"),
    "FX064": (Severity.INFO, "stale tuning decision: older calibration generation than the store"),
}

#: Canonical name for the code registry (the completeness guard in
#: ``tests/analyze/test_registry_complete.py`` iterates this).
REGISTRY = DIAGNOSTIC_CODES

#: severity label -> process exit code, as reported in JSON headers.
SEVERITY_EXIT_CODES: Dict[str, int] = {
    Severity.INFO.label: 0,
    Severity.WARNING.label: 1,
    Severity.ERROR.label: 2,
}


@dataclass
class Diagnostic:
    """One finding of a static-analysis pass."""

    code: str
    message: str
    severity: Optional[Severity] = None
    phase: Optional[str] = None        # phase or stage name, if localised
    phase_index: Optional[int] = None  # position in the program's phase list
    location: Optional[str] = None     # "path:line" for file-based passes
    details: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")
        if self.severity is None:
            self.severity = DIAGNOSTIC_CODES[self.code][0]

    @property
    def title(self) -> str:
        return DIAGNOSTIC_CODES[self.code][1]

    def identity(self) -> tuple:
        """Dedup key: two diagnostics with equal identity are one finding.

        Multiple passes can flag the same subject (e.g. a race detector
        and a directive walker both tripping over one array); the report
        keeps the first.  Severity is derived from the code, so it is
        not part of the identity.
        """
        return (
            self.code,
            self.message,
            self.phase,
            self.phase_index,
            self.location,
            json.dumps(self.details, sort_keys=True, default=str),
        )

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.phase is not None:
            out["phase"] = self.phase
        if self.phase_index is not None:
            out["phase_index"] = self.phase_index
        if self.location is not None:
            out["location"] = self.location
        if self.details:
            out["details"] = self.details
        return out

    def render(self) -> str:
        where = f" [{self.phase}]" if self.phase else ""
        if self.location:
            where = f" [{self.location}]"
        return f"{self.code} {self.severity.label}{where}: {self.message}"


@dataclass
class AnalysisReport:
    """Combined result of the analysis passes over one program."""

    program: str
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: Cost annotations per unique communication step (the cost linter's
    #: table): name -> {occurrences, messages, network_bytes, ...}.
    cost_table: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Summary facts about the analyzed program (nprocs, hours, ...).
    summary: Dict[str, Any] = field(default_factory=dict)

    def extend(self, diags: List[Diagnostic]) -> None:
        """Append findings, dropping exact duplicates.

        Identical diagnostics (same code + subject + detail) emitted by
        more than one pass collapse to the first occurrence.
        """
        seen = {d.identity() for d in self.diagnostics}
        for d in diags:
            key = d.identity()
            if key in seen:
                continue
            seen.add(key)
            self.diagnostics.append(d)

    def by_severity(self, severity: Severity) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def exit_code(self) -> int:
        """Severity-based process exit code: 0 clean/info, 1 warning, 2 error."""
        worst = self.max_severity
        if worst is None or worst is Severity.INFO:
            return 0
        return 1 if worst is Severity.WARNING else 2

    def to_dict(self) -> Dict[str, Any]:
        return {
            "program": self.program,
            "severity_exit_codes": dict(SEVERITY_EXIT_CODES),
            "summary": self.summary,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "cost_table": self.cost_table,
            "exit_code": self.exit_code,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        """Human-readable multi-line report."""
        lines = [f"analysis of {self.program}"]
        for key, value in self.summary.items():
            lines.append(f"  {key}: {value}")
        if self.cost_table:
            lines.append("communication plan:")
            for name, row in self.cost_table.items():
                lines.append(
                    f"  {name}: x{row['occurrences']}, "
                    f"{row['messages']} msgs, "
                    f"{row['network_bytes']} net B, "
                    f"{row['copied_bytes']} copied B, "
                    f"{row['seconds']:.6f} s/occurrence"
                )
        if not self.diagnostics:
            lines.append("no diagnostics: program is clean")
        else:
            counts = {s.label: len(self.by_severity(s)) for s in Severity}
            lines.append(
                "diagnostics: "
                + ", ".join(f"{n} {label}" for label, n in counts.items() if n)
            )
            for d in sorted(self.diagnostics,
                            key=lambda d: (-int(d.severity), d.code)):
                lines.append("  " + d.render())
        return "\n".join(lines)
