"""Closed-form communication cost equations (paper Section 4.2).

For the concentration array ``A(species, layers, nodes)`` on ``P``
processors with wordsize ``W``, the paper derives the per-occurrence
cost of each redistribution step:

* ``D_Repl -> D_Trans`` (local copy only)::

      Ct = H * ceil(layers / min(layers, P)) * species * nodes * W

* ``D_Trans -> D_Chem`` (sender-dominated)::

      Ct = L * P + G * ceil(layers / min(layers, P)) * species * nodes * W

* ``D_Chem -> D_Repl`` (receiver-dominated all-gather)::

      Ct = 2 * L * P + G * layers * species * nodes * W

These are deliberate approximations (e.g. the all-gather counts the full
array on the receive side although each node already holds its own
block); the simulator executes the *exact* transfer set, so predicted
and measured values differ slightly — visibly so in Figure 6, exactly as
in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.vm.machine import MachineSpec

__all__ = ["ArrayGeometry", "CommunicationModel"]


@dataclass(frozen=True)
class ArrayGeometry:
    """Dimensions of the concentration array."""

    species: int
    layers: int
    npoints: int
    wordsize: int = 8

    def __post_init__(self) -> None:
        if min(self.species, self.layers, self.npoints, self.wordsize) < 1:
            raise ValueError("all dimensions must be positive")

    @property
    def total_bytes(self) -> int:
        return self.species * self.layers * self.npoints * self.wordsize

    def max_layer_block_bytes(self, P: int) -> int:
        """Bytes of the largest per-node block under ``D_Trans``."""
        if P < 1:
            raise ValueError("P must be >= 1")
        layers_per_node = math.ceil(self.layers / min(self.layers, P))
        return layers_per_node * self.species * self.npoints * self.wordsize


class CommunicationModel:
    """Evaluates the paper's closed forms for one machine and geometry."""

    def __init__(self, machine: MachineSpec, geometry: ArrayGeometry):
        self.machine = machine
        self.geometry = geometry

    # -- the three named steps ------------------------------------------
    def repl_to_trans(self, P: int) -> float:
        """Pure local copy: the ``H`` term only."""
        return self.machine.copy_cost * self.geometry.max_layer_block_bytes(P)

    def trans_to_chem(self, P: int) -> float:
        """Sender-dominated: P messages plus the sender's whole block."""
        m = self.machine
        return m.latency * P + m.gap * self.geometry.max_layer_block_bytes(P)

    def chem_to_repl(self, P: int) -> float:
        """All-gather: 2P message endpoints, full array received."""
        m = self.machine
        return 2.0 * m.latency * P + m.gap * self.geometry.total_bytes

    def output_gather(self, P: int) -> float:
        """End-of-hour gather of the (layer-distributed) array onto the
        I/O node: receiver-bound, one message per layer owner."""
        m = self.machine
        senders = min(self.geometry.layers, P)
        return m.latency * senders + m.gap * self.geometry.total_bytes

    # -- dispatch --------------------------------------------------------
    STEP_NAMES: Tuple[str, ...] = (
        "D_Repl->D_Trans",
        "D_Trans->D_Chem",
        "D_Chem->D_Repl",
        "gather:outputhour",
    )

    def cost(self, step: str, P: int) -> float:
        if step == "D_Repl->D_Trans":
            return self.repl_to_trans(P)
        if step == "D_Trans->D_Chem":
            return self.trans_to_chem(P)
        if step == "D_Chem->D_Repl":
            return self.chem_to_repl(P)
        if step == "gather:outputhour":
            return self.output_gather(P)
        raise KeyError(f"unknown redistribution step {step!r}")

    def all_costs(self, P: int) -> Dict[str, float]:
        return {name: self.cost(name, P) for name in self.STEP_NAMES}
