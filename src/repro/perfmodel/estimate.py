"""Estimated workload traces: predicting before the first run.

The Section 4 predictor consumes a recorded
:class:`~repro.model.results.WorkloadTrace`; a scheduler has to price a
job *before* anything has run.  This module builds an estimated trace
from the dataset dimensions alone, using nominal per-point work rates
measured on the Los Angeles dataset (whose structure all the synthetic
inventories share).  The estimate feeds the exact same
:class:`~repro.perfmodel.predict.PerformancePredictor` machinery, so
one model answers both "how long will this trace replay take" and "how
long will this not-yet-run job take".

Estimates are planning inputs, not science: they are deterministic and
roughly proportional to the true work (chemistry dominates and scales
with grid points), which is all longest-processing-time packing needs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.model.results import HourTrace, StepTrace, WorkloadTrace

__all__ = ["NOMINAL_RATES", "estimated_trace"]

#: Nominal per-point work rates, measured on the LA dataset (35 species,
#: 5 layers, 700 points, 5 steps/hour).  Keys:
#:
#: ``transport``   ops per (layer, point) per transport half-step;
#: ``chemistry``   ops per point per step (the dominant term);
#: ``aerosol``     ops per point per step (replicated work);
#: ``pretrans``    ops per point per hour;
#: ``input_bytes`` / ``output_bytes``  hourly I/O bytes per point;
#: ``input_ops`` / ``output_ops``     hourly I/O ops per point.
NOMINAL_RATES = {
    "transport": 7.6e3,
    "chemistry": 5.0e5,
    "aerosol": 40.0,
    "pretrans": 7.8e3,
    "input_bytes": 282.0,
    "input_ops": 282.0,
    "output_bytes": 1.4e3,
    "output_ops": 700.0,
}


def estimated_trace(
    shape: Tuple[int, int, int],
    hours: int,
    start_hour: int = 6,
    steps_per_hour: int = 5,
    dataset_name: str = "estimated",
) -> WorkloadTrace:
    """Build a nominal-work trace for an ``(species, layers, points)`` grid.

    The per-step op vectors are uniform (the estimator does not know
    the refinement structure), sized by :data:`NOMINAL_RATES`.
    """
    if hours < 1:
        raise ValueError("hours must be >= 1")
    if steps_per_hour < 1:
        raise ValueError("steps_per_hour must be >= 1")
    _, layers, npoints = shape
    r = NOMINAL_RATES
    transport_ops = np.full(layers, r["transport"] * npoints)
    chemistry_ops = np.full(npoints, r["chemistry"])
    step = StepTrace(
        transport1_ops=transport_ops,
        chemistry_ops=chemistry_ops,
        aerosol_ops=r["aerosol"] * npoints,
        transport2_ops=transport_ops.copy(),
    )
    trace = WorkloadTrace(dataset_name=dataset_name, shape=tuple(shape))
    for i in range(hours):
        trace.hours.append(
            HourTrace(
                hour=(start_hour + i) % 24,
                input_bytes=int(r["input_bytes"] * npoints),
                input_ops=r["input_ops"] * npoints,
                pretrans_ops=r["pretrans"] * npoints,
                nsteps=steps_per_hour,
                steps=[step] * steps_per_hour,
                output_bytes=int(r["output_bytes"] * npoints),
                output_ops=r["output_ops"] * npoints,
            )
        )
    return trace
