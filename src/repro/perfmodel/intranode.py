"""Intra-job multi-core pricing for the tiled chemistry engine.

The Section 4 model prices a job's *science* seconds from its workload
trace and a host rate; the tiled chemistry engine
(:mod:`repro.model.tiled`) adds a second resource axis — cores handed
to one job's worker pool.  Only the chemistry operator tiles (the
transport, aerosol and I/O phases stay single-threaded), and within
chemistry a serial residue remains on the dispatching thread: the two
BLAS matmuls per mechanism evaluation, the ``np.exp`` asymptotic
updates, the stiff-index merge and the pool dispatch itself.  That is
textbook Amdahl structure:

    speedup(c) = 1 / ((1 - f·e) + f·e / c)

with ``f`` the chemistry fraction of the job's total ops (measured per
trace via ``WorkloadTrace.total_ops_by_phase``; ~0.97 on LA-sized
grids) and ``e`` the tiled fraction *within* chemistry after the serial
residue (:data:`TILE_EFFICIENCY`).

The model is deliberately conservative and deterministic — it feeds
planner packing decisions (worker-pool width vs. per-job cores), not
science.  Results are bitwise identical at every core count, so
``cores_per_job`` never enters a job's content hash.
"""

from __future__ import annotations

__all__ = ["TILE_EFFICIENCY", "chemistry_fraction", "intra_job_speedup"]

#: Fraction of the chemistry operator that actually tiles.  The serial
#: residue — BLAS matmuls, asymptotic ``exp`` updates, stiff-index
#: merge, pool dispatch — stays on the dispatching thread (measured on
#: the LA chemistry hour; conservative on larger grids where the
#: elementwise stages grow linearly and the residue does not).
TILE_EFFICIENCY = 0.80


def chemistry_fraction(trace) -> float:
    """Chemistry's share of a trace's total ops (0 when trace is empty)."""
    by_phase = trace.total_ops_by_phase()
    total = sum(by_phase.values())
    if total <= 0:
        return 0.0
    return float(by_phase.get("chemistry", 0.0)) / float(total)


def intra_job_speedup(
    cores: int,
    chem_fraction: float,
    efficiency: float = TILE_EFFICIENCY,
) -> float:
    """Amdahl wall-clock speedup of one job given ``cores`` tile workers.

    ``chem_fraction`` is the job's chemistry share of total ops;
    ``efficiency`` the tiled fraction within chemistry.  ``cores <= 1``
    (or a degenerate fraction) returns exactly 1.0 so single-core
    pricing is untouched.
    """
    if cores <= 1:
        return 1.0
    f = min(max(chem_fraction, 0.0), 1.0) * min(max(efficiency, 0.0), 1.0)
    if f <= 0.0:
        return 1.0
    return 1.0 / ((1.0 - f) + f / float(cores))
