"""What-if machine studies: when would communication stop being small?

The paper attributes Airshed's low communication overhead partly to
"the balanced computation and communication architectures of the
machines used".  This module quantifies that: sweep a hypothetical
machine's network (or compute) speed and find where the communication
share of the execution time crosses a threshold — the balance margin of
the design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from repro.model.results import WorkloadTrace
from repro.perfmodel.predict import PerformancePredictor
from repro.vm.machine import MachineSpec

__all__ = ["BalancePoint", "comm_fraction_sweep", "network_balance_margin"]


@dataclass(frozen=True)
class BalancePoint:
    """Result of a balance-margin search."""

    machine: str
    nprocs: int
    slowdown_factor: float      # network slowdown where the threshold trips
    comm_fraction_at_base: float
    threshold: float


def comm_fraction_sweep(
    trace: WorkloadTrace,
    machine: MachineSpec,
    nprocs: int,
    comm_factors: Sequence[float],
) -> Dict[float, float]:
    """Communication share of total time as the network slows down.

    ``comm_factors`` multiply L, G and H together (1.0 = the real
    machine).  Uses the Section 4 predictor, so the sweep is analytic
    and instant.
    """
    out: Dict[float, float] = {}
    for factor in comm_factors:
        if factor <= 0:
            raise ValueError("comm factors must be positive")
        hypothetical = machine.scaled(comm_factor=factor)
        p = PerformancePredictor(trace, hypothetical).predict(nprocs)
        out[factor] = p.communication / p.total
    return out


def network_balance_margin(
    trace: WorkloadTrace,
    machine: MachineSpec,
    nprocs: int,
    threshold: float = 0.25,
    max_factor: float = 1024.0,
) -> BalancePoint:
    """How much slower could the network be before communication eats
    ``threshold`` of the execution time?  Bisection over the comm
    factor; returns the crossing factor (clamped to ``max_factor``).
    """
    if not (0.0 < threshold < 1.0):
        raise ValueError("threshold must lie in (0, 1)")
    base = comm_fraction_sweep(trace, machine, nprocs, [1.0])[1.0]
    if base >= threshold:
        factor = 1.0
    else:
        lo, hi = 1.0, max_factor
        if comm_fraction_sweep(trace, machine, nprocs, [hi])[hi] < threshold:
            factor = max_factor
        else:
            for _ in range(60):
                mid = (lo + hi) / 2.0
                frac = comm_fraction_sweep(trace, machine, nprocs, [mid])[mid]
                if frac < threshold:
                    lo = mid
                else:
                    hi = mid
            factor = (lo + hi) / 2.0
    return BalancePoint(
        machine=machine.name,
        nprocs=nprocs,
        slowdown_factor=factor,
        comm_fraction_at_base=base,
        threshold=threshold,
    )
