"""Estimating machine parameters from measurements (paper Section 4.3).

The paper estimates ``L``, ``G`` and ``H`` for the Cray T3E "using
measurements for a small number of nodes".  This module does the same
against the simulator: run the application (or micro-benchmarks) at a
few small node counts, collect the communication phase records, and
least-squares fit the three parameters from the observed
``(messages, bytes, copied) -> duration`` samples.  A compute-rate fit
(seconds per op) comes from the compute phase records.

Recovering the true machine constants from end-to-end measurements
validates the whole accounting chain, and mirrors how a real user would
parameterise the predictor for a new machine.

The second half of this module closes the same loop from *stored*
observations (:mod:`repro.tune`): :func:`refit_observations` robustly
refits the host compute rate, per-phase rates, the per-machine L/G/H
constants and the intranode Amdahl tiled fraction from a calibration
store's samples — median-based, with min-sample thresholds (below
which every quantity falls back to the paper constants, never NaN) and
MAD outlier rejection — and :func:`drift_report` flags phase keys
whose predicted-vs-observed error exceeds a configurable band.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.vm.machine import (
    HOST_OPS_PER_SECOND,
    MACHINES,
    MachineSpec,
    get_machine,
    workstation_spec,
)
from repro.vm.traffic import PhaseRecord, Timeline

__all__ = [
    "FittedParameters",
    "fit_comm_parameters",
    "fit_compute_rate",
    "CalibratedModel",
    "RefitResult",
    "refit_observations",
    "drift_report",
    "observation_phase_key",
    "DEFAULT_DRIFT_BAND",
    "MIN_SAMPLES",
    "OUTLIER_Z",
]

#: Default relative-error band for drift detection: a phase key drifts
#: when its median |predicted - observed| / observed exceeds this.
#: The comparison is strict (an error exactly on the band is in band).
DEFAULT_DRIFT_BAND = 0.25

#: Minimum samples before any refit replaces a paper constant.
MIN_SAMPLES = 3

#: Modified-z-score cutoff for MAD outlier rejection.
OUTLIER_Z = 3.5


@dataclass(frozen=True)
class FittedParameters:
    """Least-squares estimates of the communication constants."""

    latency: float
    gap: float
    copy_cost: float
    residual: float
    samples: int

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.latency, self.gap, self.copy_cost)


def _comm_rows(records: Iterable[PhaseRecord]) -> Tuple[np.ndarray, np.ndarray]:
    rows: List[Tuple[float, float, float]] = []
    durations: List[float] = []
    for rec in records:
        if rec.kind != "comm" or not rec.traffic:
            continue
        t = rec.max_node_traffic()
        rows.append((float(t.messages), float(t.bytes_moved), float(t.bytes_copied)))
        durations.append(rec.duration)
    return np.asarray(rows, dtype=float), np.asarray(durations, dtype=float)


def fit_comm_parameters(
    timelines: Iterable[Timeline],
    nonnegative: bool = True,
) -> FittedParameters:
    """Fit ``L, G, H`` from the comm records of one or more timelines.

    The phase duration is modelled as ``L*m + G*b + H*c`` of the most
    loaded node (which is how the simulator prices phases, so with
    enough sample diversity the fit recovers the machine constants to
    numerical precision).
    """
    all_rows = []
    all_durs = []
    for tl in timelines:
        rows, durs = _comm_rows(tl)
        if rows.size:
            all_rows.append(rows)
            all_durs.append(durs)
    if not all_rows:
        raise ValueError("no communication records to fit from")
    X = np.vstack(all_rows)
    y = np.concatenate(all_durs)
    if len(y) < 3:
        raise ValueError(f"need at least 3 communication samples, got {len(y)}")

    if nonnegative:
        from scipy.optimize import nnls

        # Scale columns for conditioning (bytes >> messages).
        scale = np.maximum(X.max(axis=0), 1e-300)
        coef, rnorm = nnls(X / scale, y)
        coef = coef / scale
        residual = float(rnorm)
    else:
        coef, res, *_ = np.linalg.lstsq(X, y, rcond=None)
        residual = float(np.sqrt(res[0])) if len(res) else 0.0
    return FittedParameters(
        latency=float(coef[0]),
        gap=float(coef[1]),
        copy_cost=float(coef[2]),
        residual=residual,
        samples=len(y),
    )


def fit_compute_rate(timelines: Iterable[Timeline]) -> float:
    """Estimate seconds-per-op from compute phase records.

    Each compute phase lasts as long as its most loaded node, so the
    ratio duration / max-ops is the per-op cost.
    """
    ratios: List[float] = []
    for tl in timelines:
        for rec in tl:
            if rec.kind != "compute" or not rec.ops:
                continue
            max_ops = max(rec.ops.values())
            if max_ops > 0:
                ratios.append(rec.duration / max_ops)
    if not ratios:
        raise ValueError("no compute records to fit from")
    return float(np.median(ratios))


# ---------------------------------------------------------------------------
# Observation-based refit (repro.tune calibration store)
# ---------------------------------------------------------------------------
def observation_phase_key(obs: Any) -> str:
    """The calibration phase key of an observation-like object.

    Format: ``dataset|machine|pP|variant|cC|phase`` — shared with
    :attr:`repro.tune.store.Observation.phase_key`.
    """
    return "|".join((
        obs.dataset, obs.machine, f"p{obs.nprocs}", obs.variant,
        f"c{obs.cores_per_job}", obs.phase,
    ))


def _mad_keep(values: List[float], z: float) -> Tuple[List[float], int]:
    """MAD outlier rejection: keep values within ``z`` modified z-scores.

    A zero MAD (all samples near-identical) rejects nothing.  Returns
    the kept values and the rejection count.
    """
    arr = np.asarray(values, dtype=float)
    med = float(np.median(arr))
    mad = float(np.median(np.abs(arr - med)))
    if mad <= 0.0:
        return list(arr), 0
    scores = np.abs(arr - med) / (1.4826 * mad)
    kept = arr[scores <= z]
    return list(kept), int(len(arr) - len(kept))


@dataclass(frozen=True)
class CalibratedModel:
    """Every quantity the observation refit can replace.

    Fields left at their defaults mean "use the paper constants": the
    model is always fully usable, even refit from an empty store — a
    min-sample threshold below which nothing changes is what keeps a
    cold calibration from producing NaN or garbage rates.
    """

    host_ops_per_second: float = HOST_OPS_PER_SECOND
    #: Host-side rate per phase bucket (abstract ops / wall second).
    phase_rates: Dict[str, float] = field(default_factory=dict)
    #: Refit effective tiled fraction ``f*e`` of the Amdahl intranode
    #: model (:mod:`repro.perfmodel.intranode`); ``None`` keeps the
    #: paper's per-trace ``chemistry_fraction * TILE_EFFICIENCY`` path.
    tile_fraction: Optional[float] = None
    #: Refit communication constants per machine short name.
    comm: Dict[str, FittedParameters] = field(default_factory=dict)
    #: Refit ``seconds_per_op`` per machine short name.
    machine_rates: Dict[str, float] = field(default_factory=dict)
    #: Calibration-store identity at refit time (0 / "" when detached).
    generation: int = 0
    fingerprint: str = ""
    #: Total observations the refit consumed.
    samples: int = 0

    def host_spec(self) -> MachineSpec:
        return workstation_spec(self.host_ops_per_second)

    def machine_spec(self, name: str) -> MachineSpec:
        """The machine profile with refit constants substituted in."""
        base = get_machine(name)
        fitted = self.comm.get(name)
        if fitted is not None:
            base = replace(
                base,
                latency=fitted.latency,
                gap=fitted.gap,
                copy_cost=fitted.copy_cost,
            )
        rate = self.machine_rates.get(name)
        if rate is not None and rate > 0:
            base = replace(base, seconds_per_op=rate)
        return base

    def to_dict(self) -> Dict[str, Any]:
        return {
            "host_ops_per_second": self.host_ops_per_second,
            "phase_rates": dict(sorted(self.phase_rates.items())),
            "tile_fraction": self.tile_fraction,
            "comm": {
                name: {
                    "latency": fp.latency,
                    "gap": fp.gap,
                    "copy_cost": fp.copy_cost,
                    "samples": fp.samples,
                }
                for name, fp in sorted(self.comm.items())
            },
            "machine_rates": dict(sorted(self.machine_rates.items())),
            "generation": self.generation,
            "fingerprint": self.fingerprint,
            "samples": self.samples,
        }


@dataclass
class RefitResult:
    """A refit model plus the notes the FX06x lint consumes.

    Each note is a dict with ``kind`` either ``"fallback"`` (too few
    usable samples — the paper constant stayed in force) or
    ``"outliers"`` (MAD rejection dropped samples), a ``quantity``
    label, and sample counts.
    """

    model: CalibratedModel
    notes: List[Dict[str, Any]] = field(default_factory=list)


def _rate_fit(
    samples: List[float],
    quantity: str,
    notes: List[Dict[str, Any]],
    min_samples: int,
    z: float,
) -> Optional[float]:
    """Robust median of ``samples``; ``None`` (+ note) below threshold."""
    if not samples:
        return None
    kept, rejected = _mad_keep(samples, z)
    if rejected:
        notes.append({
            "kind": "outliers", "quantity": quantity,
            "samples": len(samples), "rejected": rejected,
        })
    if len(kept) < min_samples:
        notes.append({
            "kind": "fallback", "quantity": quantity,
            "samples": len(kept), "min_samples": min_samples,
        })
        return None
    return float(np.median(kept))


def _fit_comm_rows(
    X: np.ndarray, y: np.ndarray
) -> Tuple[np.ndarray, float]:
    """Column-scaled NNLS for ``L*m + G*b + H*c = t`` (shared fit core)."""
    from scipy.optimize import nnls

    scale = np.maximum(X.max(axis=0), 1e-300)
    coef, rnorm = nnls(X / scale, y)
    return coef / scale, float(rnorm)


def refit_observations(
    observations: Iterable[Any],
    *,
    min_samples: int = MIN_SAMPLES,
    outlier_z: float = OUTLIER_Z,
) -> RefitResult:
    """Refit the §4 model from stored observations, robustly.

    ``observations`` are :class:`repro.tune.store.Observation`-shaped
    objects (duck-typed; this module must not import :mod:`repro.tune`).
    Quantities refit, each independently guarded by ``min_samples``
    after MAD outlier rejection and falling back to the paper constants
    otherwise:

    * **host rate** — median ``ops / observed_s`` of host ``job``
      observations;
    * **per-phase rates** — same, per named host phase bucket;
    * **L/G/H per machine** — robust NNLS over comm observations
      carrying (messages, bytes_moved, bytes_copied), with one
      residual-based rejection pass;
    * **machine compute rates** — median ``observed_s / ops`` of
      simulated compute observations per machine;
    * **tiled fraction** — per multi-core host job, the Amdahl
      ``f*e`` solved from its speedup over the matching single-core
      median baseline.
    """
    obs = list(observations)
    notes: List[Dict[str, Any]] = []

    host_job: List[Any] = []
    host_phase: Dict[str, List[Any]] = {}
    comm_rows: Dict[str, List[Tuple[Tuple[float, float, float], float]]] = {}
    machine_compute: Dict[str, List[float]] = {}
    for o in obs:
        if o.observed_s <= 0:
            continue
        if o.machine == "host":
            if o.phase == "job":
                host_job.append(o)
            elif o.ops is not None and o.ops > 0:
                host_phase.setdefault(o.phase, []).append(o)
            continue
        if o.messages is not None and o.bytes_moved is not None:
            comm_rows.setdefault(o.machine, []).append((
                (float(o.messages), float(o.bytes_moved),
                 float(o.bytes_copied or 0.0)),
                float(o.observed_s),
            ))
        elif o.ops is not None and o.ops > 0:
            machine_compute.setdefault(o.machine, []).append(
                float(o.observed_s) / float(o.ops)
            )

    # Host rate: single-core job observations only (multi-core jobs
    # measure the tiled fraction instead).
    host_rate = _rate_fit(
        [float(o.ops) / float(o.observed_s)
         for o in host_job
         if o.cores_per_job <= 1 and o.ops is not None and o.ops > 0],
        "host_ops_per_second", notes, min_samples, outlier_z,
    )

    phase_rates: Dict[str, float] = {}
    for phase in sorted(host_phase):
        rate = _rate_fit(
            [float(o.ops) / float(o.observed_s)
             for o in host_phase[phase]],
            f"phase_rate:{phase}", notes, min_samples, outlier_z,
        )
        if rate is not None:
            phase_rates[phase] = rate

    comm: Dict[str, FittedParameters] = {}
    for machine in sorted(comm_rows):
        rows = comm_rows[machine]
        if len(rows) < max(min_samples, 3):
            notes.append({
                "kind": "fallback", "quantity": f"comm:{machine}",
                "samples": len(rows), "min_samples": max(min_samples, 3),
            })
            continue
        X = np.asarray([r[0] for r in rows], dtype=float)
        y = np.asarray([r[1] for r in rows], dtype=float)
        coef, _ = _fit_comm_rows(X, y)
        # One residual-based rejection pass, then refit on the keepers.
        resid = list(np.abs(y - X @ coef))
        kept_resid, rejected = _mad_keep(resid, outlier_z)
        if rejected and len(rows) - rejected >= max(min_samples, 3):
            notes.append({
                "kind": "outliers", "quantity": f"comm:{machine}",
                "samples": len(rows), "rejected": rejected,
            })
            cutoff = max(kept_resid) if kept_resid else 0.0
            keep = np.abs(y - X @ coef) <= cutoff
            coef, _ = _fit_comm_rows(X[keep], y[keep])
            n = int(keep.sum())
        else:
            n = len(rows)
        resid_norm = float(np.linalg.norm(y - X @ coef))
        comm[machine] = FittedParameters(
            latency=float(coef[0]), gap=float(coef[1]),
            copy_cost=float(coef[2]), residual=resid_norm, samples=n,
        )

    machine_rates: Dict[str, float] = {}
    for machine in sorted(machine_compute):
        rate = _rate_fit(
            machine_compute[machine],
            f"machine_rate:{machine}", notes, min_samples, outlier_z,
        )
        if rate is not None:
            machine_rates[machine] = rate

    # Tiled fraction: solve Amdahl per multi-core job against the
    # matching single-core median baseline.
    base: Dict[Tuple[str, str, int], List[float]] = {}
    for o in host_job:
        if o.cores_per_job <= 1:
            base.setdefault(
                (o.dataset, o.variant, o.hours), []
            ).append(float(o.observed_s))
    fractions: List[float] = []
    for o in host_job:
        c = o.cores_per_job
        if c <= 1:
            continue
        t1 = base.get((o.dataset, o.variant, o.hours))
        if not t1:
            continue
        speedup = float(np.median(t1)) / float(o.observed_s)
        if speedup <= 1.0:
            fractions.append(0.0)
            continue
        # speedup = 1 / ((1 - fe) + fe / c)  =>  fe = (1 - 1/s) / (1 - 1/c)
        fe = (1.0 - 1.0 / speedup) / (1.0 - 1.0 / float(c))
        fractions.append(min(max(fe, 0.0), 1.0))
    tile_fraction = _rate_fit(
        fractions, "tile_fraction", notes, min_samples, outlier_z,
    )

    model = CalibratedModel(
        host_ops_per_second=(
            host_rate if host_rate is not None else HOST_OPS_PER_SECOND
        ),
        phase_rates=phase_rates,
        tile_fraction=tile_fraction,
        comm=comm,
        machine_rates=machine_rates,
        samples=len(obs),
    )
    return RefitResult(model=model, notes=notes)


def drift_report(
    observations: Iterable[Any],
    *,
    band: float = DEFAULT_DRIFT_BAND,
    min_samples: int = MIN_SAMPLES,
) -> List[Dict[str, Any]]:
    """Predicted-vs-observed drift per phase key.

    Groups observations carrying a prediction by phase key; a group
    with at least ``min_samples`` samples gets one entry with its
    median relative error, and ``drifted`` is ``True`` only when that
    error *strictly* exceeds ``band`` (an error exactly on the band is
    in band).  Entries are sorted by phase key.
    """
    if band < 0:
        raise ValueError("band must be non-negative")
    groups: Dict[str, List[float]] = {}
    for o in observations:
        if o.predicted_s is None or o.observed_s <= 0:
            continue
        err = abs(float(o.predicted_s) - float(o.observed_s)) \
            / float(o.observed_s)
        groups.setdefault(observation_phase_key(o), []).append(err)
    entries: List[Dict[str, Any]] = []
    for key in sorted(groups):
        errs = groups[key]
        if len(errs) < min_samples:
            continue
        median_error = float(np.median(errs))
        entries.append({
            "phase_key": key,
            "samples": len(errs),
            "median_error": median_error,
            "band": band,
            "drifted": median_error > band,
        })
    return entries
