"""Estimating machine parameters from measurements (paper Section 4.3).

The paper estimates ``L``, ``G`` and ``H`` for the Cray T3E "using
measurements for a small number of nodes".  This module does the same
against the simulator: run the application (or micro-benchmarks) at a
few small node counts, collect the communication phase records, and
least-squares fit the three parameters from the observed
``(messages, bytes, copied) -> duration`` samples.  A compute-rate fit
(seconds per op) comes from the compute phase records.

Recovering the true machine constants from end-to-end measurements
validates the whole accounting chain, and mirrors how a real user would
parameterise the predictor for a new machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

import numpy as np

from repro.vm.traffic import PhaseRecord, Timeline

__all__ = ["FittedParameters", "fit_comm_parameters", "fit_compute_rate"]


@dataclass(frozen=True)
class FittedParameters:
    """Least-squares estimates of the communication constants."""

    latency: float
    gap: float
    copy_cost: float
    residual: float
    samples: int

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.latency, self.gap, self.copy_cost)


def _comm_rows(records: Iterable[PhaseRecord]) -> Tuple[np.ndarray, np.ndarray]:
    rows: List[Tuple[float, float, float]] = []
    durations: List[float] = []
    for rec in records:
        if rec.kind != "comm" or not rec.traffic:
            continue
        t = rec.max_node_traffic()
        rows.append((float(t.messages), float(t.bytes_moved), float(t.bytes_copied)))
        durations.append(rec.duration)
    return np.asarray(rows, dtype=float), np.asarray(durations, dtype=float)


def fit_comm_parameters(
    timelines: Iterable[Timeline],
    nonnegative: bool = True,
) -> FittedParameters:
    """Fit ``L, G, H`` from the comm records of one or more timelines.

    The phase duration is modelled as ``L*m + G*b + H*c`` of the most
    loaded node (which is how the simulator prices phases, so with
    enough sample diversity the fit recovers the machine constants to
    numerical precision).
    """
    all_rows = []
    all_durs = []
    for tl in timelines:
        rows, durs = _comm_rows(tl)
        if rows.size:
            all_rows.append(rows)
            all_durs.append(durs)
    if not all_rows:
        raise ValueError("no communication records to fit from")
    X = np.vstack(all_rows)
    y = np.concatenate(all_durs)
    if len(y) < 3:
        raise ValueError(f"need at least 3 communication samples, got {len(y)}")

    if nonnegative:
        from scipy.optimize import nnls

        # Scale columns for conditioning (bytes >> messages).
        scale = np.maximum(X.max(axis=0), 1e-300)
        coef, rnorm = nnls(X / scale, y)
        coef = coef / scale
        residual = float(rnorm)
    else:
        coef, res, *_ = np.linalg.lstsq(X, y, rcond=None)
        residual = float(np.sqrt(res[0])) if len(res) else 0.0
    return FittedParameters(
        latency=float(coef[0]),
        gap=float(coef[1]),
        copy_cost=float(coef[2]),
        residual=residual,
        samples=len(y),
    )


def fit_compute_rate(timelines: Iterable[Timeline]) -> float:
    """Estimate seconds-per-op from compute phase records.

    Each compute phase lasts as long as its most loaded node, so the
    ratio duration / max-ops is the per-op cost.
    """
    ratios: List[float] = []
    for tl in timelines:
        for rec in tl:
            if rec.kind != "compute" or not rec.ops:
                continue
            max_ops = max(rec.ops.values())
            if max_ops > 0:
                ratios.append(rec.duration / max_ops)
    if not ratios:
        raise ValueError("no compute records to fit from")
    return float(np.median(ratios))
