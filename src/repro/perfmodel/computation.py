"""Computation performance model (paper Section 4.1).

"The execution time of a communication-free data parallel code segment
is determined by the total amount of computation, the rate of performing
computations on a node, and the degree of useful parallelism.  The
degree of useful parallelism is the minimum of the available parallelism
and the number of nodes."

Two granularities are provided:

* the paper's *simple* model — ``T(P) = T_seq / min(parallelism, P)`` —
  used for back-of-envelope scalability statements, and
* the *ceil-exact* model, which accounts for uneven block sizes (5
  layers on 4 nodes means one node carries 2 layers, so transport halves
  from 4 to 8 nodes and then flattens — the behaviour in Figure 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.vm.machine import MachineSpec

__all__ = ["simple_phase_time", "block_phase_time", "PhaseModel"]


def simple_phase_time(
    machine: MachineSpec, seq_ops: float, parallelism: int, P: int
) -> float:
    """The paper's model: sequential time over useful parallelism."""
    if parallelism < 1 or P < 1:
        raise ValueError("parallelism and P must be >= 1")
    return machine.compute_cost(seq_ops) / min(parallelism, P)


def block_phase_time(machine: MachineSpec, ops_per_unit: np.ndarray, P: int) -> float:
    """Ceil-exact model: time of the most loaded node under BLOCK.

    ``ops_per_unit`` is the per-layer (or per-point) work vector; the
    most loaded node owns a contiguous block of ``ceil(n/P)`` units.
    """
    ops = np.asarray(ops_per_unit, dtype=float)
    n = len(ops)
    if n == 0:
        return 0.0
    if P < 1:
        raise ValueError("P must be >= 1")
    bs = math.ceil(n / P)
    loads = [ops[i * bs : (i + 1) * bs].sum() for i in range(math.ceil(n / bs))]
    return machine.compute_cost(max(loads))


@dataclass(frozen=True)
class PhaseModel:
    """Declarative description of one compute phase for the predictor."""

    name: str
    seq_ops: float
    parallelism: int  # available parallelism (1 for sequential/replicated)

    def time(self, machine: MachineSpec, P: int) -> float:
        return simple_phase_time(machine, self.seq_ops, self.parallelism, P)
