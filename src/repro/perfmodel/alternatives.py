"""Model-level comparison with the uniform-grid 1-D-operator Airshed.

Section 3 of the paper discusses the trade-off against the original
uniform-grid CIT model (Dabdub & Seinfeld's parallel version): 1-D
transport operators on a uniform grid parallelise over
``layers x one grid dimension`` — far more than the multiscale 2-D
operator's ``layers`` — but the uniform grid needs many times more
points for the same accuracy, so the sequential work is much larger.
"Related research appears to indicate that the improved parallelization
does not make up for the reduced sequential performance."

This module derives, from a recorded multiscale workload trace and its
grid, the performance model of the accuracy-equivalent uniform-grid
variant, and provides the comparison that claim rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence


from repro.grid.multiscale import MultiscaleGrid
from repro.model.results import WorkloadTrace
from repro.perfmodel.predict import PerformancePredictor
from repro.transport.operator1d import OPS_PER_CELL_SWEEP
from repro.vm.machine import MachineSpec

__all__ = ["UniformAirshedModel", "compare_grid_strategies"]


@dataclass
class UniformAirshedModel:
    """Analytic model of the uniform-grid, 1-D-operator Airshed.

    Derived quantities (relative to the recorded multiscale trace):

    * the uniform grid has ``point_ratio`` times the points (set by the
      multiscale grid's finest cell);
    * chemistry work per point is grid-independent, so chemistry scales
      by ``point_ratio`` — but parallelism also grows to the new point
      count (chemistry stays embarrassingly parallel);
    * transport becomes two 1-D implicit sweeps per step
      (:data:`~repro.transport.operator1d.OPS_PER_CELL_SWEEP` per cell),
      with parallelism ``layers * min(nx, ny)``;
    * I/O volume scales with the point count (bigger files).
    """

    trace: WorkloadTrace
    grid: MultiscaleGrid
    machine: MachineSpec

    def __post_init__(self) -> None:
        if self.grid.npoints != self.trace.npoints:
            raise ValueError(
                "grid does not match the trace "
                f"({self.grid.npoints} vs {self.trace.npoints} points)"
            )
        w, h = self.grid.domain
        cell = self.grid.finest_cell_size
        self.nx = max(2, math.ceil(w / cell))
        self.ny = max(2, math.ceil(h / cell))
        self.npoints_uniform = self.nx * self.ny
        self.point_ratio = self.npoints_uniform / self.trace.npoints

    # ------------------------------------------------------------------
    def sequential_ops(self) -> Dict[str, float]:
        """Per-phase sequential op counts of the uniform variant."""
        ms = self.trace.total_ops_by_phase()
        nspec = self.trace.n_species
        layers = self.trace.layers
        nsteps = self.trace.total_steps()
        # Two transports per step, each an Lx+Ly pair of sweeps over
        # every (cell, layer, species).
        transport = (
            2.0 * nsteps * 2.0 * nspec * layers
            * self.npoints_uniform * OPS_PER_CELL_SWEEP
        )
        return {
            "chemistry": ms["chemistry"] * self.point_ratio,
            "transport": transport,
            "aerosol": ms["aerosol"] * self.point_ratio,
            "io": ms["io"] * self.point_ratio,
        }

    def transport_parallelism(self) -> int:
        return self.trace.layers * min(self.nx, self.ny)

    def predict_total(self, P: int) -> float:
        """Predicted execution time of the uniform variant at P nodes.

        Uses the paper's simple model per phase (communication is
        neglected for both variants in this comparison — the paper
        showed it is a small fraction).
        """
        if P < 1:
            raise ValueError("P must be >= 1")
        ops = self.sequential_ops()
        m = self.machine
        chem = m.compute_cost(ops["chemistry"]) / min(self.npoints_uniform, P)
        trans = m.compute_cost(ops["transport"]) / min(
            self.transport_parallelism(), P
        )
        aero = m.compute_cost(ops["aerosol"])  # replicated, sequential-ish
        io = m.compute_cost(ops["io"])  # sequential
        return chem + trans + aero + io

    def speedup(self, P: int) -> float:
        return self.predict_total(1) / self.predict_total(P)


def compare_grid_strategies(
    trace: WorkloadTrace,
    grid: MultiscaleGrid,
    machine: MachineSpec,
    node_counts: Sequence[int] = (1, 4, 16, 64, 256),
) -> Dict[int, Dict[str, float]]:
    """Multiscale vs uniform: absolute time and speedup per node count.

    Returns ``{P: {"multiscale": t, "uniform": t_u,
    "multiscale_speedup": s, "uniform_speedup": s_u}}``.
    """
    uniform = UniformAirshedModel(trace, grid, machine)
    multiscale = PerformancePredictor(trace, machine)
    t1_ms = multiscale.predict_total(1)
    t1_un = uniform.predict_total(1)
    out: Dict[int, Dict[str, float]] = {}
    for P in node_counts:
        t_ms = multiscale.predict_total(P)
        t_un = uniform.predict_total(P)
        out[P] = {
            "multiscale": t_ms,
            "uniform": t_un,
            "multiscale_speedup": t1_ms / t_ms,
            "uniform_speedup": t1_un / t_un,
        }
    return out
