"""Whole-application performance prediction (paper Section 4.3).

Combines the computation model and the communication closed forms with
the counts a :class:`~repro.model.results.WorkloadTrace` records, to
predict per-phase and total execution times for any machine and node
count — including extrapolation from small-P measurements, the use case
the paper highlights (development on small machines, production on
supercomputing-centre machines).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


from repro.model.results import WorkloadTrace
from repro.perfmodel.communication import ArrayGeometry, CommunicationModel
from repro.perfmodel.computation import block_phase_time, simple_phase_time
from repro.vm.machine import MachineSpec

__all__ = ["PredictedTimes", "PerformancePredictor"]


@dataclass
class PredictedTimes:
    """Per-phase predictions for one (machine, P) point."""

    machine: str
    nprocs: int
    chemistry: float
    transport: float
    aerosol: float
    io: float
    communication: float
    comm_by_step: Dict[str, float]

    @property
    def total(self) -> float:
        return self.chemistry + self.transport + self.aerosol + self.io + self.communication

    def compute_breakdown(self) -> Dict[str, float]:
        """Figure-4-style buckets (aerosol folded into chemistry)."""
        return {
            "chemistry": self.chemistry + self.aerosol,
            "transport": self.transport,
            "io": self.io,
            "communication": self.communication,
        }


class PerformancePredictor:
    """Predict Airshed execution times from a workload trace."""

    def __init__(self, trace: WorkloadTrace, machine: MachineSpec):
        self.trace = trace
        self.machine = machine
        self.geometry = ArrayGeometry(
            species=trace.n_species,
            layers=trace.layers,
            npoints=trace.npoints,
            wordsize=machine.wordsize,
        )
        self.comm_model = CommunicationModel(machine, self.geometry)

    # ------------------------------------------------------------------
    def redistribution_counts(self) -> Dict[str, int]:
        """Occurrences of each communication phase in the main loop.

        ``D_Repl->D_Trans`` happens once per step (entering the second
        transport after the aerosol) plus once at the very start of the
        run; the chemistry steps once per step each; the output gather
        once per hour.
        """
        n_steps = self.trace.total_steps()
        n_hours = self.trace.nhours
        return {
            "D_Repl->D_Trans": n_steps + 1,
            "D_Trans->D_Chem": n_steps,
            "D_Chem->D_Repl": n_steps,
            "gather:outputhour": n_hours,
        }

    # ------------------------------------------------------------------
    def predict(self, P: int, exact: bool = True) -> PredictedTimes:
        """Predict all phase times at ``P`` nodes.

        ``exact=True`` uses the ceil-exact computation model over the
        trace's per-layer / per-point work vectors; ``exact=False`` uses
        the paper's simple ``T_seq / min(par, P)`` form.
        """
        if P < 1:
            raise ValueError("P must be >= 1")
        m = self.machine
        tr = self.trace

        chemistry = transport = aerosol = io = 0.0
        for hour in tr.hours:
            io += m.io_cost(hour.input_bytes, hour.input_ops)
            io += m.io_cost(0.0, hour.pretrans_ops)
            io += m.io_cost(hour.output_bytes, hour.output_ops)
            for step in hour.steps:
                if exact:
                    transport += block_phase_time(m, step.transport1_ops, P)
                    transport += block_phase_time(m, step.transport2_ops, P)
                    chemistry += block_phase_time(m, step.chemistry_ops, P)
                else:
                    t_ops = float(step.transport1_ops.sum() + step.transport2_ops.sum())
                    transport += simple_phase_time(m, t_ops, tr.layers, P)
                    chemistry += simple_phase_time(
                        m, float(step.chemistry_ops.sum()), tr.npoints, P
                    )
                aerosol += m.compute_cost(step.aerosol_ops)  # replicated

        counts = self.redistribution_counts()
        comm_by_step = {
            name: counts[name] * self.comm_model.cost(name, P) for name in counts
        }
        return PredictedTimes(
            machine=m.name,
            nprocs=P,
            chemistry=chemistry,
            transport=transport,
            aerosol=aerosol,
            io=io,
            communication=sum(comm_by_step.values()),
            comm_by_step=comm_by_step,
        )

    def predict_total(self, P: int, exact: bool = True) -> float:
        return self.predict(P, exact=exact).total

    def speedup_curve(self, node_counts, exact: bool = True) -> Dict[int, float]:
        """Predicted speedup relative to the P=1 prediction."""
        t1 = self.predict_total(1, exact=exact)
        return {P: t1 / self.predict_total(P, exact=exact) for P in node_counts}
