"""The Section 4 'predictable performance' model."""

from repro.perfmodel.alternatives import UniformAirshedModel, compare_grid_strategies
from repro.perfmodel.calibrate import (
    DEFAULT_DRIFT_BAND,
    CalibratedModel,
    FittedParameters,
    RefitResult,
    drift_report,
    fit_comm_parameters,
    fit_compute_rate,
    refit_observations,
)
from repro.perfmodel.communication import ArrayGeometry, CommunicationModel
from repro.perfmodel.estimate import NOMINAL_RATES, estimated_trace
from repro.perfmodel.intranode import (
    TILE_EFFICIENCY,
    chemistry_fraction,
    intra_job_speedup,
)
from repro.perfmodel.computation import (
    PhaseModel,
    block_phase_time,
    simple_phase_time,
)
from repro.perfmodel.predict import PerformancePredictor, PredictedTimes
from repro.perfmodel.whatif import (
    BalancePoint,
    comm_fraction_sweep,
    network_balance_margin,
)

__all__ = [
    "ArrayGeometry",
    "BalancePoint",
    "CalibratedModel",
    "CommunicationModel",
    "DEFAULT_DRIFT_BAND",
    "FittedParameters",
    "RefitResult",
    "drift_report",
    "refit_observations",
    "NOMINAL_RATES",
    "PerformancePredictor",
    "PhaseModel",
    "PredictedTimes",
    "TILE_EFFICIENCY",
    "UniformAirshedModel",
    "block_phase_time",
    "chemistry_fraction",
    "comm_fraction_sweep",
    "compare_grid_strategies",
    "estimated_trace",
    "fit_comm_parameters",
    "fit_compute_rate",
    "intra_job_speedup",
    "network_balance_margin",
    "simple_phase_time",
]
