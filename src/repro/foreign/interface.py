"""The foreign-module coupling interface (Section 6, Figures 10-11).

A foreign module is an independent parallel executable (here: a PVM
program) that the native Fx program sees as a *task* assigned to a node
subgroup.  Data moves between the native program and the foreign module
through a shared communication layer; the paper sketches three data
paths of increasing sophistication (Figure 11):

* **Scenario A** (implemented in their prototype, and our default):
  native nodes gather the data to the representative task's node, which
  forwards it to the foreign module's interface node, which distributes
  it internally.  Simplest, but with extra copies on two relay nodes.
* **Scenario B**: the native side sends directly to *all* foreign
  nodes, skipping the relays — requires the foreign module's internal
  distribution to be exposed to the native compiler.
* **Scenario C**: fully direct variable-to-variable transfers between
  the distributed storage on both sides (minimum possible traffic).

``transfer_to_foreign`` charges the exact message set of the chosen
scenario and physically hands the payload to the foreign side, so both
the performance ablation (Figure 11) and the numerics are real.
"""

from __future__ import annotations

from enum import Enum
from typing import List

import numpy as np

from repro.vm.cluster import Cluster, Subgroup, Transfer

__all__ = ["Scenario", "ForeignModuleBinding"]


class Scenario(Enum):
    """Figure 11 communication-path options."""

    A = "relay"     # gather -> representative -> interface -> internal bcast
    B = "direct"    # native nodes -> each foreign node directly
    C = "variable"  # distributed variable to distributed variable


class ForeignModuleBinding:
    """Couples a native Fx subgroup with a foreign-module subgroup."""

    #: Scenario A relays repack the payload between the native (Fx) and
    #: foreign (PVM) data formats on the representative and interface
    #: nodes; this is the "fixed, relatively small, extra overhead" of
    #: the paper's prototype (Figure 13).
    CONVERSION_OPS_PER_BYTE = 10.0

    def __init__(
        self,
        native: Subgroup,
        foreign: Subgroup,
        scenario: Scenario = Scenario.A,
        representative_rank: int = 0,
        interface_rank: int = 0,
    ) -> None:
        if native.cluster is not foreign.cluster:
            raise ValueError("native and foreign groups must share a cluster")
        if set(native.node_ids) & set(foreign.node_ids):
            raise ValueError("native and foreign groups must be disjoint")
        self.native = native
        self.foreign = foreign
        self.scenario = scenario
        self.representative = native.node_ids[representative_rank]
        self.interface = foreign.node_ids[interface_rank]
        self.cluster: Cluster = native.cluster

    # ------------------------------------------------------------------
    def _all_ids(self) -> List[int]:
        return list(self.native.node_ids) + list(self.foreign.node_ids)

    def transfer_to_foreign(self, payload: np.ndarray) -> np.ndarray:
        """Move ``payload`` from the native side to the foreign module.

        The native data is assumed distributed over the native subgroup
        (block over its trailing axis); the foreign side wants it block
        distributed over the foreign subgroup.  Returns the payload (the
        foreign side's assembled copy) after charging the scenario's
        message set.
        """
        payload = np.asarray(payload)
        nbytes = int(payload.nbytes)
        P_nat = self.native.size
        P_for = self.foreign.size
        name = f"foreign:{self.scenario.name}"
        transfers: List[Transfer] = []

        if self.scenario is Scenario.A:
            # Native nodes -> representative (gather of blocks).
            per_native = nbytes // P_nat
            for nid in self.native.node_ids:
                if nid != self.representative:
                    transfers.append(Transfer(nid, self.representative, per_native))
                else:
                    transfers.append(Transfer(nid, nid, per_native))
            # Representative -> interface node (whole payload).
            transfers.append(Transfer(self.representative, self.interface, nbytes))
            # Interface -> internal distribution (block per foreign node).
            per_foreign = nbytes // P_for
            for fid in self.foreign.node_ids:
                if fid != self.interface:
                    transfers.append(Transfer(self.interface, fid, per_foreign))
                else:
                    transfers.append(Transfer(fid, fid, per_foreign))
        elif self.scenario is Scenario.B:
            # Representative-free: every native node sends its share of
            # each foreign node's block (P_nat x P_for messages).
            tile = max(nbytes // (P_nat * P_for), 1)
            for nid in self.native.node_ids:
                for fid in self.foreign.node_ids:
                    transfers.append(Transfer(nid, fid, tile))
        else:  # Scenario C
            # Direct variable-to-variable: each element moves once along
            # the minimal path; overlapping blocks need no relays and
            # contiguous ranges collapse to one message per pair.
            tile = max(nbytes // max(P_nat, P_for), 1)
            pairs = max(P_nat, P_for)
            for k in range(pairs):
                src = self.native.node_ids[k % P_nat]
                dst = self.foreign.node_ids[k % P_for]
                transfers.append(Transfer(src, dst, tile))

        self.cluster.charge_communication(name, transfers, node_ids=self._all_ids())
        if self.scenario is Scenario.A:
            # Fx <-> PVM buffer repacking on the two relay nodes.
            ops = nbytes * self.CONVERSION_OPS_PER_BYTE
            self.cluster.charge_compute(
                "foreign:convert",
                {self.representative: ops, self.interface: ops},
            )
        return payload.copy()

    def transfer_scattered(self, payload: np.ndarray, axis: int = -1):
        """Scenario-B data path: deliver per-foreign-node blocks.

        Splits ``payload`` along ``axis`` into one block per foreign
        node and charges the direct native->foreign message set; returns
        the block list (what each foreign node's memory would hold).
        The foreign program can then skip its internal scatter — the
        optimisation Figure 11's scenario B describes.
        """
        if self.scenario is not Scenario.B:
            raise ValueError("transfer_scattered is the scenario-B data path")
        payload = np.asarray(payload)
        blocks = np.array_split(payload, self.foreign.size, axis=axis)
        transfers: List[Transfer] = []
        for f_rank, block in enumerate(blocks):
            fid = self.foreign.node_ids[f_rank]
            per_native = max(int(block.nbytes) // self.native.size, 1)
            for nid in self.native.node_ids:
                transfers.append(Transfer(nid, fid, per_native))
        self.cluster.charge_communication(
            "foreign:B", transfers, node_ids=self._all_ids()
        )
        return [b.copy() for b in blocks]

    # ------------------------------------------------------------------
    def relative_cost(self, nbytes: int) -> float:
        """Cost of moving ``nbytes`` under this binding's scenario
        (analysis helper for the Figure 11 ablation)."""
        probe = np.zeros(max(nbytes // 8, 1), dtype=np.float64)
        before = self.cluster.time(self._all_ids())
        self.transfer_to_foreign(probe)
        return self.cluster.time(self._all_ids()) - before
