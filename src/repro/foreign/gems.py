"""GEMS-style integrated Airshed + PopExp runs (Figures 12-13).

Environmental scientists drive the combined application through the
GEMS problem-solving environment; the structure is a four-stage
pipeline (Figure 12)::

    PreProc h+1 | Transport/Chemistry h | PostProc h-1 | PopExp h-1

This module replays a recorded Airshed workload trace with a PopExp
stage attached in one of two configurations:

* ``native``  — PopExp written in Fx, placed as an ordinary task on a
  node subgroup (the "all Fx version" of the paper);
* ``foreign`` — PopExp as the PVM foreign module coupled through the
  :class:`~repro.foreign.interface.ForeignModuleBinding` (scenario A by
  default), which adds the small fixed relay overhead Figure 13 shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.datasets.generators import Dataset
from repro.foreign.interface import ForeignModuleBinding, Scenario
from repro.foreign.popexp import PopExpFx, PopExpPvm, PopulationRaster
from repro.fx.runtime import FxRuntime
from repro.fx.tasks import PipelineStage
from repro.model.dataparallel import HourReplayer, ParallelTiming, _timing_from_runtime
from repro.model.results import WorkloadTrace
from repro.vm.machine import MachineSpec

__all__ = ["IntegratedTiming", "run_integrated"]


@dataclass
class IntegratedTiming:
    """Timing of a combined Airshed+PopExp run."""

    mode: str
    timing: ParallelTiming
    exposure: np.ndarray

    @property
    def total_time(self) -> float:
        return self.timing.total_time


def run_integrated(
    trace: WorkloadTrace,
    dataset: Dataset,
    machine: MachineSpec,
    nprocs: int,
    mode: Literal["native", "foreign"] = "native",
    scenario: Scenario = Scenario.A,
    popexp_nodes: int = 1,
    io_nodes: int = 1,
) -> IntegratedTiming:
    """Replay the integrated application on the simulated machine.

    The surface fields PopExp consumes are synthesised deterministically
    from the dataset (replay mode carries work counts, not full fields);
    both modes see identical inputs, so their exposure outputs agree
    exactly while their timings differ by the integration overhead.
    """
    main_nodes = nprocs - 2 * io_nodes - popexp_nodes
    if main_nodes < 1:
        raise ValueError(
            f"need at least {2 * io_nodes + popexp_nodes + 1} nodes; got {nprocs}"
        )

    rt = FxRuntime(machine, nprocs)
    in_grp, main_grp, out_grp, pop_grp = rt.split(
        [io_nodes, main_nodes, io_nodes, popexp_nodes]
    )
    replayer = HourReplayer(main_grp, trace)
    population = PopulationRaster.from_grid(dataset.grid)
    mech = dataset.mechanism

    if mode == "native":
        popexp = PopExpFx(pop_grp, population, mech)
        binding = None
    elif mode == "foreign":
        popexp = PopExpPvm(pop_grp, population, mech)
        binding = ForeignModuleBinding(out_grp, pop_grp, scenario=scenario)
    else:
        raise ValueError(f"unknown mode {mode!r}")

    hours = trace.hours
    array_bytes = int(np.prod(trace.shape)) * machine.wordsize
    surface_bytes = trace.n_species * trace.npoints * machine.wordsize

    def surface_field(i: int) -> np.ndarray:
        """Deterministic stand-in for the hour's surface concentrations."""
        # Determinism audit (FX050): fixed seed per hour index — the
        # synthetic GEMS feed is identical on every run.
        rng = np.random.default_rng(1000 + i)
        base = dataset.initial_conditions()[:, 0, :]
        return base * rng.uniform(0.8, 1.6, size=(1, trace.npoints))

    def run_input(i: int) -> None:
        h = hours[i]
        in_grp.charge_io("io:inputhour", h.input_bytes, ops=h.input_ops)
        in_grp.charge_io("io:pretrans", 0.0, ops=h.pretrans_ops)

    def run_main(i: int) -> None:
        # The pipeline handoff to the output stage is the gather.
        replayer.run_hour(hours[i], gather=False)

    def run_output(i: int) -> None:
        h = hours[i]
        out_grp.charge_io("io:outputhour", h.output_bytes, ops=h.output_ops)

    def run_popexp(i: int) -> None:
        field = surface_field(i)
        if binding is not None:
            field = binding.transfer_to_foreign(field)
        popexp.process_hour(field)

    stages = [
        PipelineStage("input", in_grp, run_input,
                      output_bytes=lambda i: hours[i].input_bytes),
        PipelineStage("main", main_grp, run_main,
                      output_bytes=lambda i: array_bytes),
        PipelineStage("output", out_grp, run_output,
                      output_bytes=(lambda i: 0) if mode == "foreign"
                      else (lambda i: surface_bytes)),
        PipelineStage("popexp", pop_grp, run_popexp),
    ]
    rt.pipeline(stages).execute(len(hours))
    return IntegratedTiming(
        mode=mode,
        timing=_timing_from_runtime(rt),
        exposure=popexp.exposure.copy(),
    )
