"""A small PVM-like message-passing library.

The population exposure model the paper couples to Airshed was written
in PVM — a different parallelism model from Fx.  To reproduce the
foreign-module experiment honestly, the foreign side needs its *own*
message-passing substrate: explicit task ids, tagged sends and receives,
and master/worker collectives, none of which know anything about Fx
distributions.

The library runs cooperatively on a :class:`~repro.vm.cluster.Subgroup`:
payloads are real numpy arrays moved through per-task mailboxes (so the
numerics are genuinely computed from communicated data), and every
operation charges the owning cluster with the paper's communication
model.  Sends are buffered and asynchronous (PVM semantics); a receive
blocks until the message is available, which in the cooperative setting
means it must have been sent earlier in program order.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional

import numpy as np

from repro.vm.cluster import Subgroup, Transfer

__all__ = ["PvmError", "PvmTask", "PvmSystem"]


class PvmError(RuntimeError):
    """Raised for protocol errors (missing message, bad tid, ...)."""


@dataclass
class _Message:
    src: int
    tag: int
    payload: Any


class PvmTask:
    """Handle for one PVM task (one task per subgroup node)."""

    def __init__(self, system: "PvmSystem", tid: int, rank: int):
        self.system = system
        self.tid = tid
        self.rank = rank  # subgroup-local rank

    def send(self, dst_tid: int, payload: Any, tag: int = 0) -> None:
        self.system.send(self.tid, dst_tid, payload, tag)

    def recv(self, src_tid: Optional[int] = None, tag: Optional[int] = None) -> Any:
        return self.system.recv(self.tid, src_tid, tag)

    def work(self, ops: float, name: str = "pvm_work") -> None:
        self.system.work(self.tid, ops, name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PvmTask(tid={self.tid})"


class PvmSystem:
    """A PVM 'virtual machine' over a cluster subgroup."""

    #: PVM tids historically start at a magic base; keep the flavour.
    TID_BASE = 0x40000

    def __init__(self, group: Subgroup):
        self.group = group
        self.tasks: List[PvmTask] = [
            PvmTask(self, self.TID_BASE + r, r) for r in range(group.size)
        ]
        self._mailbox: Dict[int, Deque[_Message]] = {
            t.tid: deque() for t in self.tasks
        }

    # ------------------------------------------------------------------
    def task(self, rank: int) -> PvmTask:
        if not (0 <= rank < len(self.tasks)):
            raise PvmError(f"no task at rank {rank}")
        return self.tasks[rank]

    def _rank_of(self, tid: int) -> int:
        rank = tid - self.TID_BASE
        if not (0 <= rank < len(self.tasks)):
            raise PvmError(f"unknown tid {tid:#x}")
        return rank

    @staticmethod
    def _payload_bytes(payload: Any) -> int:
        if isinstance(payload, np.ndarray):
            return int(payload.nbytes)
        if isinstance(payload, (bytes, bytearray)):
            return len(payload)
        if isinstance(payload, (int, float)):
            return 8
        if isinstance(payload, (tuple, list)):
            return sum(PvmSystem._payload_bytes(p) for p in payload)
        raise PvmError(f"unsupported payload type {type(payload).__name__}")

    # ------------------------------------------------------------------
    def send(self, src_tid: int, dst_tid: int, payload: Any, tag: int = 0) -> None:
        """Buffered send: deliver to the mailbox and charge the network."""
        src = self._rank_of(src_tid)
        dst = self._rank_of(dst_tid)
        nbytes = self._payload_bytes(payload)
        if isinstance(payload, np.ndarray):
            payload = payload.copy()  # PVM packs a buffer: no aliasing
        self._mailbox[dst_tid].append(_Message(src=src_tid, tag=tag, payload=payload))
        self.group.charge_communication(
            "pvm:send", [Transfer(src, dst, nbytes)]
        )

    def recv(self, dst_tid: int, src_tid: Optional[int] = None,
             tag: Optional[int] = None) -> Any:
        """Blocking receive; cooperative scheduling requires the message
        to already be in the mailbox."""
        self._rank_of(dst_tid)
        box = self._mailbox[dst_tid]
        for i, msg in enumerate(box):
            if (src_tid is None or msg.src == src_tid) and (
                tag is None or msg.tag == tag
            ):
                del box[i]
                return msg.payload
        raise PvmError(
            f"recv would deadlock: no message for tid {dst_tid:#x} "
            f"(src={src_tid}, tag={tag})"
        )

    def work(self, tid: int, ops: float, name: str = "pvm_work") -> None:
        rank = self._rank_of(tid)
        self.group.charge_compute(name, {rank: float(ops)})

    # ------------------------------------------------------------------
    # master/worker collectives (how PopExp uses PVM)
    # ------------------------------------------------------------------
    def scatter_rows(self, master_rank: int, array: np.ndarray,
                     tag: int = 1) -> List[np.ndarray]:
        """Master splits ``array`` by rows across all tasks (self incl.).

        Returns the chunk list, and charges the sends to the workers.
        """
        chunks = np.array_split(np.asarray(array), len(self.tasks))
        master = self.task(master_rank)
        for rank, chunk in enumerate(chunks):
            if rank != master_rank:
                master.send(self.tasks[rank].tid, chunk, tag=tag)
        return chunks

    def gather_sum(self, master_rank: int, partial: Dict[int, np.ndarray],
                   tag: int = 2) -> np.ndarray:
        """Workers send partial results; master sums them.

        ``partial`` maps rank -> array.  Returns the total.
        """
        master = self.task(master_rank)
        for rank, value in partial.items():
            if rank != master_rank:
                self.tasks[rank].send(master.tid, value, tag=tag)
        total = np.array(partial[master_rank], dtype=float, copy=True)
        for rank in partial:
            if rank != master_rank:
                total += master.recv(src_tid=self.tasks[rank].tid, tag=tag)
        return total
