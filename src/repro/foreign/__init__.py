"""Foreign-module interface: PVM substrate, PopExp, coupling, GEMS."""

from repro.foreign.gems import IntegratedTiming, run_integrated
from repro.foreign.interface import ForeignModuleBinding, Scenario
from repro.foreign.popexp import (
    HEALTH_SPECIES,
    PopExpFx,
    PopExpPvm,
    PopulationRaster,
    exposure_kernel,
    exposure_ops,
    exposure_sequential,
)
from repro.foreign.pvm import PvmError, PvmSystem, PvmTask

__all__ = [
    "ForeignModuleBinding",
    "HEALTH_SPECIES",
    "IntegratedTiming",
    "PopExpFx",
    "PopExpPvm",
    "PopulationRaster",
    "PvmError",
    "PvmSystem",
    "PvmTask",
    "Scenario",
    "exposure_kernel",
    "exposure_ops",
    "exposure_sequential",
    "run_integrated",
]
