"""A single simulated processing node.

A :class:`VirtualNode` carries a simulated clock (in seconds) and a local
key/value store that the materialised execution mode of
:class:`~repro.fx.darray.DistributedArray` uses to hold physical array
blocks.  All timing decisions live in :class:`~repro.vm.cluster.Cluster`;
the node only records the result.
"""

from __future__ import annotations

from typing import Any, Dict

__all__ = ["VirtualNode"]


class VirtualNode:
    """One node of the simulated parallel machine."""

    __slots__ = ("node_id", "clock", "store")

    def __init__(self, node_id: int) -> None:
        self.node_id = int(node_id)
        #: Simulated time (seconds) at which this node becomes idle.
        self.clock: float = 0.0
        #: Local memory: name -> arbitrary payload (array blocks, buffers).
        self.store: Dict[str, Any] = {}

    def advance(self, seconds: float) -> None:
        """Advance the node's clock by a non-negative amount."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds!r} s")
        self.clock += seconds

    def sync_to(self, when: float) -> None:
        """Move the clock forward to ``when`` (no-op if already later)."""
        if when > self.clock:
            self.clock = when

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualNode(id={self.node_id}, clock={self.clock:.6f})"
