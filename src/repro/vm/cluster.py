"""The simulated parallel machine.

A :class:`Cluster` is ``P`` :class:`~repro.vm.node.VirtualNode` objects
plus a :class:`~repro.vm.machine.MachineSpec` that prices work.  The
application (via the Fx runtime) *executes real numpy computation* and
reports deterministic work/traffic counts; the cluster converts those
counts into simulated seconds using the paper's cost model and maintains
per-node clocks.

Timing semantics
----------------
* **Compute phases** advance each participating node independently by its
  own cost — nodes in different task subgroups overlap freely, which is
  what makes the Section 5 pipelined task parallelism effective.
* **Communication phases** are collective over their participant group:
  they start when the last participant arrives (``max`` of clocks), every
  participant leaves at ``start + max_i Ct_i`` where
  ``Ct_i = L*(m_sent_i + m_recv_i) + G*max(b_sent_i, b_recv_i) + H*c_i``
  is the per-node cost of the paper's model (Section 4.2) and the phase
  is paced by the most loaded node.
* **I/O phases** run sequentially on one node; callers may pass a
  blocking group whose members wait for the I/O node (the pure
  data-parallel Airshed) or let other subgroups keep running (the
  task-parallel variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.observe.tracer import Tracer
from repro.vm.machine import MachineSpec
from repro.vm.node import VirtualNode
from repro.vm.traffic import NodeTraffic, PhaseRecord, Timeline
from repro.vm.transferbatch import TransferBatch

__all__ = ["Transfer", "Cluster", "Subgroup"]

#: Communication phases accept either form; both price identically.
Transfers = Union[Sequence["Transfer"], TransferBatch]


@dataclass(frozen=True)
class Transfer:
    """One point-to-point transfer inside a communication phase.

    ``src == dst`` denotes a purely local copy: it contributes ``nbytes``
    to the node's ``H`` term and no messages.
    """

    src: int
    dst: int
    nbytes: int
    messages: int = 1

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if self.messages < 0:
            raise ValueError("messages must be non-negative")


class Cluster:
    """A simulated distributed-memory machine with ``nprocs`` nodes."""

    def __init__(
        self, machine: MachineSpec, nprocs: int, tracer: Optional[Tracer] = None
    ) -> None:
        if nprocs < 1:
            raise ValueError("need at least one node")
        self.machine = machine
        self.nprocs = int(nprocs)
        self.nodes: List[VirtualNode] = [VirtualNode(i) for i in range(nprocs)]
        self.timeline = Timeline()
        #: Span/counter stream mirroring the timeline at per-node
        #: resolution; pass a Tracer to collect region spans too.
        self.tracer = tracer if tracer is not None else Tracer()
        self.tracer.set_clock(self.time)
        #: Validated node-id tuples (subgroups charge with the same
        #: tuple object thousands of times; re-sorting it each phase
        #: shows up in replay profiles).
        self._checked_groups: set = set()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def clock(self, node_id: int) -> float:
        return self.nodes[node_id].clock

    def time(self, node_ids: Optional[Iterable[int]] = None) -> float:
        """Simulated time: max clock over the given nodes (default: all)."""
        ids = range(self.nprocs) if node_ids is None else node_ids
        return max((self.nodes[i].clock for i in ids), default=0.0)

    def all_node_ids(self) -> Tuple[int, ...]:
        return tuple(range(self.nprocs))

    def subgroup(self, node_ids: Sequence[int]) -> "Subgroup":
        return Subgroup(self, node_ids)

    def _check_ids(self, node_ids: Iterable[int]) -> Tuple[int, ...]:
        if isinstance(node_ids, tuple) and node_ids in self._checked_groups:
            return node_ids
        ids = tuple(sorted(set(int(i) for i in node_ids)))
        if not ids:
            raise ValueError("empty node group")
        if ids[0] < 0 or ids[-1] >= self.nprocs:
            raise ValueError(f"node ids {ids} out of range for P={self.nprocs}")
        self._checked_groups.add(ids)
        return ids

    # ------------------------------------------------------------------
    # phases
    # ------------------------------------------------------------------
    def charge_compute(self, name: str, ops_by_node: Mapping[int, float]) -> PhaseRecord:
        """Advance each node independently by the cost of its own ops.

        The per-node costs are priced in one vectorised pass
        (``ops * seconds_per_op`` elementwise is the exact scalar
        arithmetic of :meth:`MachineSpec.compute_cost` per node, so the
        clocks advance by bit-identical amounts).
        """
        ids = self._check_ids(ops_by_node.keys())
        n = len(ids)
        ops = np.fromiter((ops_by_node[i] for i in ids), np.float64, count=n)
        if n and ops.min() < 0:
            raise ValueError("ops must be non-negative")
        costs = ops * self.machine.seconds_per_op
        nodes = self.nodes
        before = np.fromiter((nodes[i].clock for i in ids), np.float64, count=n)
        after = before + costs
        after_list = after.tolist()
        for i, clk in zip(ids, after_list):
            nodes[i].clock = clk
        ops_list = ops.tolist()
        self.tracer.emit_many(
            name, "compute", before.tolist(), after_list, ids,
            busys=costs.tolist(), ops=ops_list,
        )
        record = PhaseRecord(
            name=name,
            kind="compute",
            start=float(before.max()) if n else 0.0,
            end=float(after.max()) if n else 0.0,
            node_ids=ids,
            ops=dict(zip(ids, ops_list)),
        )
        self.timeline.append(record)
        self.tracer.observe_phase(name, "compute", record.duration)
        return record

    def charge_replicated_compute(self, name: str, ops: float,
                                  node_ids: Optional[Sequence[int]] = None) -> PhaseRecord:
        """Every node in the group performs the same (replicated) work.

        Used for the aerosol step, which the paper replicates because it
        cannot be parallelised.
        """
        ids = self.all_node_ids() if node_ids is None else self._check_ids(node_ids)
        return self.charge_compute(name, {i: ops for i in ids})

    def charge_communication(
        self,
        name: str,
        transfers: Transfers,
        node_ids: Optional[Sequence[int]] = None,
    ) -> PhaseRecord:
        """Collective communication phase priced by the paper's model.

        ``transfers`` is either a sequence of :class:`Transfer` records
        or a :class:`~repro.vm.transferbatch.TransferBatch`; the batched
        form aggregates per-node totals with ``np.bincount`` instead of
        walking Python records (the all-gather steps have O(P^2)
        transfers) and prices identically.

        ``node_ids`` defaults to every node mentioned in ``transfers``;
        pass an explicit group to synchronise bystanders that exchange
        nothing (e.g. nodes holding no data in a skinny distribution).
        """
        traffic_total: Optional[NodeTraffic] = None
        if isinstance(transfers, TransferBatch):
            _, shared_traffic, traffic_total = transfers._aggregate()
            traffic = dict(shared_traffic)
            part_costs = transfers.node_costs(self.machine)
        else:
            traffic = {}
            part_costs = None

            def rec(i: int) -> NodeTraffic:
                return traffic.setdefault(i, NodeTraffic())

            for t in transfers:
                if t.src == t.dst:
                    rec(t.src).bytes_copied += t.nbytes
                    continue
                s, d = rec(t.src), rec(t.dst)
                s.messages_sent += t.messages
                s.bytes_sent += t.nbytes
                d.messages_received += t.messages
                d.bytes_received += t.nbytes

        if node_ids is None:
            ids = self._check_ids(traffic.keys()) if traffic else self.all_node_ids()
        else:
            ids = self._check_ids(node_ids)
            for i in traffic:
                if i not in ids:
                    raise ValueError(f"transfer endpoint {i} outside group {ids}")

        start = self.time(ids)
        if part_costs is not None:
            # Batched path: costs were priced vectorised (and cached on
            # the batch); bystanders outside the traffic map price to
            # exactly comm_cost(0, 0, 0) == 0.0.
            costs = {i: part_costs.get(i, 0.0) for i in ids}
        else:
            costs: Dict[int, float] = {}
            for i in ids:
                t = traffic.get(i, NodeTraffic())
                costs[i] = self.machine.comm_cost(
                    t.messages, t.bytes_moved, t.bytes_copied
                )
        cost = max(costs.values())
        end = start + cost
        nodes = self.nodes
        for i in ids:
            node = nodes[i]
            if end > node.clock:
                node.clock = end
        self.tracer.emit_many(
            name, "comm", start, end, ids, busys=list(costs.values()),
        )
        record = PhaseRecord(
            name=name, kind="comm", start=start, end=end, node_ids=ids,
            traffic=traffic,
            # For communication records, ops holds each node's busy
            # seconds (its own Ct_i); the phase is paced by the max.
            ops=costs,
        )
        self.timeline.append(record)
        self.tracer.observe_phase(
            name, "comm", record.duration, traffic=traffic,
            traffic_total=traffic_total,
        )
        return record

    def charge_io(
        self,
        name: str,
        nbytes: float,
        ops: float = 0.0,
        node_id: int = 0,
        blocking_group: Optional[Sequence[int]] = None,
    ) -> PhaseRecord:
        """Sequential I/O processing on ``node_id``.

        If ``blocking_group`` is given, those nodes wait until the I/O
        completes (the behaviour of the pure data-parallel Airshed, where
        every node sits idle during ``inputhour``/``outputhour``).
        """
        (nid,) = self._check_ids([node_id])
        start = self.nodes[nid].clock
        cost = self.machine.io_cost(nbytes, ops)
        self.nodes[nid].advance(cost)
        self.tracer.emit(
            name, "io", start, start + cost, node=nid, busy=cost,
            nbytes=float(nbytes),
        )
        ids: Tuple[int, ...] = (nid,)
        if blocking_group is not None:
            ids = self._check_ids(set(blocking_group) | {nid})
            end = max(self.time(ids), self.nodes[nid].clock)
            for i in ids:
                self.nodes[i].sync_to(end)
        record = PhaseRecord(
            name=name,
            kind="io",
            start=start,
            end=self.time(ids),
            node_ids=ids,
            # For I/O records, ops holds the I/O node's busy seconds
            # (the phase duration can exceed it when the group waits).
            ops={nid: cost},
        )
        self.timeline.append(record)
        self.tracer.observe_phase(name, "io", record.duration)
        return record

    def barrier(self, node_ids: Optional[Sequence[int]] = None) -> float:
        """Synchronise a group: everyone's clock moves to the group max."""
        ids = self.all_node_ids() if node_ids is None else self._check_ids(node_ids)
        when = self.time(ids)
        for i in ids:
            self.nodes[i].sync_to(when)
        return when


class Subgroup:
    """A view of a subset of cluster nodes (an Fx processor subgroup).

    Subgroups are how Fx expresses task parallelism: independent tasks
    are placed on disjoint subgroups whose clocks advance independently.
    """

    def __init__(self, cluster: Cluster, node_ids: Sequence[int]) -> None:
        self.cluster = cluster
        self.node_ids = cluster._check_ids(node_ids)
        self._node_id_map = np.asarray(self.node_ids, dtype=np.int64)

    @property
    def size(self) -> int:
        return len(self.node_ids)

    @property
    def machine(self) -> MachineSpec:
        return self.cluster.machine

    def time(self) -> float:
        return self.cluster.time(self.node_ids)

    def barrier(self) -> float:
        return self.cluster.barrier(self.node_ids)

    def wait_until(self, when: float) -> None:
        """Stall every node of the subgroup until simulated time ``when``.

        Models a blocking dependency on work done elsewhere (e.g. a
        pipeline stage waiting for its upstream item).
        """
        for i in self.node_ids:
            self.cluster.nodes[i].sync_to(when)

    def charge_compute(self, name: str, ops_by_rank: Mapping[int, float]) -> PhaseRecord:
        """Charge compute with *ranks local to the subgroup* (0..size-1)."""
        mapped = {self.node_ids[r]: ops for r, ops in ops_by_rank.items()}
        return self.cluster.charge_compute(name, mapped)

    def charge_replicated_compute(self, name: str, ops: float) -> PhaseRecord:
        return self.cluster.charge_replicated_compute(name, ops, self.node_ids)

    def charge_communication(self, name: str, transfers: Transfers) -> PhaseRecord:
        """Charge communication with subgroup-local ranks in transfers."""
        if isinstance(transfers, TransferBatch):
            mapped: Transfers = transfers.remap(self._node_id_map)
        else:
            mapped = [
                Transfer(self.node_ids[t.src], self.node_ids[t.dst],
                         t.nbytes, t.messages)
                for t in transfers
            ]
        return self.cluster.charge_communication(
            name, mapped, node_ids=self.node_ids
        )

    def charge_io(self, name: str, nbytes: float, ops: float = 0.0,
                  rank: int = 0, blocking: bool = True) -> PhaseRecord:
        return self.cluster.charge_io(
            name,
            nbytes,
            ops=ops,
            node_id=self.node_ids[rank],
            blocking_group=self.node_ids if blocking else None,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Subgroup(nodes={self.node_ids})"
