"""Derived metrics over a simulated run's timeline.

Utilisation, load imbalance and per-node busy-time accounting — the
quantities a performance engineer reads off a real machine's profiler,
computed here from the simulated phase records.  Used by the analysis
layer and the CLI's ``report``/``trace`` commands.

Busy time is bucketed three ways, and the buckets are exact: ``compute``
and ``io`` are useful work, ``comm`` is each node's own share of
collective communication (its ``Ct_i``), and anything left before
``total_time`` is genuine idle (waiting on stragglers or on sequential
I/O) — it is never misattributed to a bucket.  The same totals are
available from the observability span stream
(:func:`usage_from_spans`); the two agree to floating point.

Determinism audit (FX05x): pure accounting over recorded timelines —
no RNG, wall-clock or environment reads anywhere in this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.vm.traffic import Timeline

__all__ = ["NodeUsage", "UtilizationReport", "utilization", "usage_from_spans"]


@dataclass
class NodeUsage:
    """Busy-time breakdown for one node."""

    node_id: int
    compute: float = 0.0
    io: float = 0.0
    comm: float = 0.0

    @property
    def busy(self) -> float:
        """Seconds the node was doing *anything* (not idle)."""
        return self.compute + self.io + self.comm

    @property
    def useful(self) -> float:
        """Seconds of useful work (compute + I/O; excludes communication)."""
        return self.compute + self.io


@dataclass
class UtilizationReport:
    """Machine-wide utilisation summary of one run."""

    total_time: float
    nodes: Dict[int, NodeUsage]

    @property
    def nprocs(self) -> int:
        return len(self.nodes)

    @property
    def total_busy(self) -> float:
        return sum(n.busy for n in self.nodes.values())

    @property
    def total_useful(self) -> float:
        return sum(n.useful for n in self.nodes.values())

    @property
    def utilization(self) -> float:
        """Fraction of node-seconds spent on useful work (0..1).

        Communication is excluded: this is the number that exposes
        Amdahl losses, matching the paper's efficiency discussion.
        """
        capacity = self.total_time * self.nprocs
        return self.total_useful / capacity if capacity > 0 else 0.0

    @property
    def comm_fraction(self) -> float:
        """Fraction of node-seconds spent communicating (0..1)."""
        capacity = self.total_time * self.nprocs
        comm = sum(n.comm for n in self.nodes.values())
        return comm / capacity if capacity > 0 else 0.0

    @property
    def idle_fraction(self) -> float:
        """Fraction of node-seconds spent idle (waiting)."""
        capacity = self.total_time * self.nprocs
        return 1.0 - self.total_busy / capacity if capacity > 0 else 0.0

    @property
    def load_imbalance(self) -> float:
        """max(busy) / mean(busy); 1.0 = perfectly balanced."""
        busys = [n.busy for n in self.nodes.values()]
        mean = sum(busys) / len(busys) if busys else 0.0
        return max(busys) / mean if mean > 0 else 1.0

    def busiest_node(self) -> int:
        return max(self.nodes.values(), key=lambda n: n.busy).node_id


def utilization(timeline: Timeline, nprocs: int) -> UtilizationReport:
    """Compute per-node busy time from the phase records.

    Per-node compute time is reconstructed from each phase's op counts
    and the phase duration (ops scale linearly within a phase); I/O and
    communication phases record each node's busy seconds directly (see
    :class:`~repro.vm.traffic.PhaseRecord`).  Time a node spent waiting
    inside a phase lands in no bucket — it is idle.
    """
    nodes: Dict[int, NodeUsage] = {i: NodeUsage(i) for i in range(nprocs)}
    for rec in timeline:
        if rec.kind == "compute" and rec.ops:
            max_ops = max(rec.ops.values())
            if max_ops <= 0:
                continue
            for node_id, ops in rec.ops.items():
                nodes[node_id].compute += rec.duration * ops / max_ops
        elif rec.kind == "io":
            # Sequential I/O busies exactly one node; its busy seconds
            # are recorded in the phase's ops field (the duration can be
            # longer when a blocking group waited for stragglers).
            for node_id, seconds in rec.ops.items():
                nodes[node_id].io += seconds
        elif rec.kind == "comm":
            # Each node is busy for its own Ct_i, then waits for the
            # phase-pacing node; the wait is idle, not communication.
            for node_id, seconds in rec.ops.items():
                nodes[node_id].comm += seconds
    return UtilizationReport(total_time=timeline.total_time(), nodes=nodes)


def usage_from_spans(
    spans: Iterable, nprocs: int, total_time: Optional[float] = None
) -> UtilizationReport:
    """Build the same report from an observability span stream.

    ``spans`` is an iterable of :class:`~repro.observe.tracer.Span`
    (e.g. ``tracer.spans``); only node spans contribute.  This is the
    single-event-stream path the ``repro trace`` command uses, and it
    agrees with :func:`utilization` over the originating timeline to
    floating-point tolerance.
    """
    nodes: Dict[int, NodeUsage] = {i: NodeUsage(i) for i in range(nprocs)}
    latest = 0.0
    for s in spans:
        latest = max(latest, s.end)
        if s.node is None:
            continue
        busy = s.busy_seconds
        usage = nodes[s.node]
        if s.kind == "compute":
            usage.compute += busy
        elif s.kind == "io":
            usage.io += busy
        elif s.kind == "comm":
            usage.comm += busy
    return UtilizationReport(
        total_time=latest if total_time is None else total_time, nodes=nodes
    )
