"""Derived metrics over a simulated run's timeline.

Utilisation, load imbalance and per-node busy-time accounting — the
quantities a performance engineer reads off a real machine's profiler,
computed here from the simulated phase records.  Used by the analysis
layer and the CLI's ``report`` command.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.vm.traffic import Timeline

__all__ = ["NodeUsage", "UtilizationReport", "utilization"]


@dataclass
class NodeUsage:
    """Busy-time breakdown for one node."""

    node_id: int
    compute: float = 0.0
    io: float = 0.0

    @property
    def busy(self) -> float:
        return self.compute + self.io


@dataclass
class UtilizationReport:
    """Machine-wide utilisation summary of one run."""

    total_time: float
    nodes: Dict[int, NodeUsage]

    @property
    def nprocs(self) -> int:
        return len(self.nodes)

    @property
    def total_busy(self) -> float:
        return sum(n.busy for n in self.nodes.values())

    @property
    def utilization(self) -> float:
        """Fraction of node-seconds spent busy (0..1)."""
        capacity = self.total_time * self.nprocs
        return self.total_busy / capacity if capacity > 0 else 0.0

    @property
    def load_imbalance(self) -> float:
        """max(busy) / mean(busy); 1.0 = perfectly balanced."""
        busys = [n.busy for n in self.nodes.values()]
        mean = sum(busys) / len(busys) if busys else 0.0
        return max(busys) / mean if mean > 0 else 1.0

    def busiest_node(self) -> int:
        return max(self.nodes.values(), key=lambda n: n.busy).node_id


def utilization(timeline: Timeline, nprocs: int) -> UtilizationReport:
    """Compute per-node busy time from compute and I/O phase records.

    Communication phases are treated as coordination (not busy time):
    the report answers "how much useful work did each node do", which
    is the number that exposes Amdahl losses.  Per-node compute time is
    reconstructed from each phase's op counts and the phase duration
    (ops scale linearly within a phase).
    """
    nodes: Dict[int, NodeUsage] = {i: NodeUsage(i) for i in range(nprocs)}
    for rec in timeline:
        if rec.kind == "compute" and rec.ops:
            max_ops = max(rec.ops.values())
            if max_ops <= 0:
                continue
            for node_id, ops in rec.ops.items():
                nodes[node_id].compute += rec.duration * ops / max_ops
        elif rec.kind == "io":
            # Sequential I/O busies exactly one node; its busy seconds
            # are recorded in the phase's ops field (the duration can be
            # longer when a blocking group waited for stragglers).
            for node_id, seconds in rec.ops.items():
                nodes[node_id].io += seconds
    return UtilizationReport(total_time=timeline.total_time(), nodes=nodes)
