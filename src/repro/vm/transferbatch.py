"""Batched transfer representation for communication phases.

A :class:`TransferBatch` carries the same information as a sequence of
:class:`~repro.vm.cluster.Transfer` records — ``(src, dst, nbytes)`` per
point-to-point transfer, plus an optional per-transfer message count —
as parallel numpy arrays.  The paper's ``D_Chem -> D_Repl`` step is an
all-gather with O(P^2) transfers; at P=64 that is 4096 records charged
four times per main-loop step, and building/walking Python objects for
them dominates replay time.  The batch form reduces the per-node traffic
aggregation to a handful of ``np.bincount`` calls.

Semantics match the record form exactly:

* ``src == dst`` entries are local copies — they contribute ``nbytes``
  to the node's copied-bytes (``H``) term and no messages;
* every endpoint mentioned in the batch participates in the phase, even
  when its totals are zero (e.g. ``messages=0`` entries).

Aggregated totals are integers (the byte sums are accumulated as
float64 by ``bincount`` and cast back; exact below 2**53, far above any
phase this model prices).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.vm.traffic import NodeTraffic

__all__ = ["TransferBatch"]


def _as_locked_int_array(values, name: str) -> np.ndarray:
    arr = np.ascontiguousarray(values, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional")
    arr.setflags(write=False)
    return arr


class TransferBatch:
    """A communication phase's transfer set as parallel arrays.

    Parameters
    ----------
    src, dst:
        Node ids of sender and receiver per transfer.
    nbytes:
        Payload bytes per transfer.
    messages:
        Network messages per transfer; ``None`` means one message each
        (the :class:`~repro.vm.cluster.Transfer` default).
    """

    __slots__ = ("src", "dst", "nbytes", "messages",
                 "_agg", "_remaps", "_costs")

    def __init__(self, src, dst, nbytes, messages=None) -> None:
        self.src = _as_locked_int_array(src, "src")
        self.dst = _as_locked_int_array(dst, "dst")
        self.nbytes = _as_locked_int_array(nbytes, "nbytes")
        self.messages: Optional[np.ndarray] = (
            None if messages is None else _as_locked_int_array(messages, "messages")
        )
        # Lazy caches (the arrays are immutable, so aggregations are
        # pure): per-node traffic, remapped views, per-machine costs.
        self._agg = None
        self._remaps: Dict[bytes, "TransferBatch"] = {}
        self._costs = None
        n = len(self.src)
        for name in ("dst", "nbytes", "messages"):
            arr = getattr(self, name)
            if arr is not None and len(arr) != n:
                raise ValueError(
                    f"{name} has {len(arr)} entries, src has {n}"
                )
        if n:
            if int(self.src.min()) < 0 or int(self.dst.min()) < 0:
                raise ValueError("node ids must be non-negative")
            if int(self.nbytes.min()) < 0:
                raise ValueError("nbytes must be non-negative")
            if self.messages is not None and int(self.messages.min()) < 0:
                raise ValueError("messages must be non-negative")

    def __len__(self) -> int:
        return len(self.src)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TransferBatch(n={len(self)}, "
            f"net_bytes={int(self.nbytes[self.src != self.dst].sum())})"
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_transfers(cls, transfers: Sequence) -> "TransferBatch":
        """Build a batch from ``Transfer`` records (same order)."""
        n = len(transfers)
        src = np.fromiter((t.src for t in transfers), np.int64, count=n)
        dst = np.fromiter((t.dst for t in transfers), np.int64, count=n)
        nbytes = np.fromiter((t.nbytes for t in transfers), np.int64, count=n)
        messages = None
        if any(t.messages != 1 for t in transfers):
            messages = np.fromiter(
                (t.messages for t in transfers), np.int64, count=n
            )
        return cls(src, dst, nbytes, messages)

    def to_transfers(self) -> List:
        """The equivalent ``Transfer`` record list (same order)."""
        from repro.vm.cluster import Transfer

        msgs = self.messages
        return [
            Transfer(
                int(self.src[i]),
                int(self.dst[i]),
                int(self.nbytes[i]),
                1 if msgs is None else int(msgs[i]),
            )
            for i in range(len(self))
        ]

    def remap(self, node_ids: np.ndarray) -> "TransferBatch":
        """Batch with ``src``/``dst`` mapped through ``node_ids``.

        Used by subgroups to translate group-local ranks into global
        cluster node ids in one vectorised gather.  Remaps are memoized
        per mapping (and the identity mapping returns ``self``) so that
        the replay loop, which charges the same cached plan batch every
        step, hits the batch's aggregation caches instead of rebuilding
        per-node totals each call.
        """
        mapping = np.asarray(node_ids, dtype=np.int64)
        if np.array_equal(mapping, np.arange(mapping.size)):
            return self
        key = mapping.tobytes()
        cached = self._remaps.get(key)
        if cached is not None:
            return cached
        out = TransferBatch.__new__(TransferBatch)
        src = mapping[self.src]
        dst = mapping[self.dst]
        src.setflags(write=False)
        dst.setflags(write=False)
        out.src = src
        out.dst = dst
        out.nbytes = self.nbytes
        out.messages = self.messages
        out._agg = None
        out._remaps = {}
        out._costs = None
        self._remaps[key] = out
        return out

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def participants(self) -> np.ndarray:
        """Sorted unique node ids mentioned by the batch."""
        return np.union1d(self.src, self.dst)

    def _aggregate(self):
        """Cached per-node aggregation (the arrays are immutable).

        Returns ``(parts, traffic, total)`` where ``parts`` is the
        sorted participant id tuple, ``traffic`` maps node id to its
        :class:`NodeTraffic`, and ``total`` is the whole-phase traffic
        sum.  The returned objects are shared across calls and must be
        treated as read-only; :meth:`traffic_by_node` hands out a fresh
        dict view per call.
        """
        if self._agg is not None:
            return self._agg
        parts_arr = self.participants()
        if parts_arr.size == 0:
            self._agg = ((), {}, NodeTraffic())
            return self._agg
        size = int(parts_arr[-1]) + 1
        net = self.src != self.dst
        src_n, dst_n, nb_n = self.src[net], self.dst[net], self.nbytes[net]
        if self.messages is None:
            msent = np.bincount(src_n, minlength=size)
            mrecv = np.bincount(dst_n, minlength=size)
        else:
            msg_n = self.messages[net].astype(np.float64)
            msent = np.bincount(src_n, weights=msg_n, minlength=size).astype(np.int64)
            mrecv = np.bincount(dst_n, weights=msg_n, minlength=size).astype(np.int64)
        w = nb_n.astype(np.float64)
        bsent = np.bincount(src_n, weights=w, minlength=size).astype(np.int64)
        brecv = np.bincount(dst_n, weights=w, minlength=size).astype(np.int64)
        local = ~net
        bcopy = np.bincount(
            self.src[local],
            weights=self.nbytes[local].astype(np.float64),
            minlength=size,
        ).astype(np.int64)
        parts = tuple(int(i) for i in parts_arr)
        traffic = {
            i: NodeTraffic(
                messages_sent=int(msent[i]),
                messages_received=int(mrecv[i]),
                bytes_sent=int(bsent[i]),
                bytes_received=int(brecv[i]),
                bytes_copied=int(bcopy[i]),
            )
            for i in parts
        }
        total = NodeTraffic(
            messages_sent=int(msent.sum()),
            messages_received=int(mrecv.sum()),
            bytes_sent=int(bsent.sum()),
            bytes_received=int(brecv.sum()),
            bytes_copied=int(bcopy.sum()),
        )
        self._agg = (parts, traffic, total)
        return self._agg

    def traffic_by_node(self) -> Dict[int, NodeTraffic]:
        """Per-node traffic totals, identical to charging the records.

        Every mentioned endpoint gets an entry (possibly all-zero), as
        the record-walking path produces.  The :class:`NodeTraffic`
        values are cached on the batch and shared between calls — treat
        them as read-only.
        """
        _, traffic, _ = self._aggregate()
        return dict(traffic)

    def node_costs(self, machine) -> Dict[int, float]:
        """Per-participant communication cost on ``machine``.

        Evaluates the paper's ``Ct_i = L*m_i + G*b_i + H*c_i`` for every
        participant in one vectorised pass.  The per-node arithmetic is
        the exact scalar sequence of
        :meth:`~repro.vm.machine.MachineSpec.comm_cost` applied
        elementwise, so each cost is bitwise identical to pricing the
        node's :class:`NodeTraffic` individually.  Cached per machine
        (a replay charges the same batch with one machine throughout).
        """
        if self._costs is not None and self._costs[0] is machine:
            return self._costs[1]
        parts, traffic, _ = self._aggregate()
        if not parts:
            costs: Dict[int, float] = {}
        else:
            msgs = np.fromiter(
                (t.messages_sent + t.messages_received for t in traffic.values()),
                np.float64, count=len(parts),
            )
            moved = np.fromiter(
                (max(t.bytes_sent, t.bytes_received) for t in traffic.values()),
                np.float64, count=len(parts),
            )
            copied = np.fromiter(
                (t.bytes_copied for t in traffic.values()),
                np.float64, count=len(parts),
            )
            ct = (machine.latency * msgs + machine.gap * moved
                  + machine.copy_cost * copied)
            costs = dict(zip(parts, ct.tolist()))
        self._costs = (machine, costs)
        return costs
