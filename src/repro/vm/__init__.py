"""Virtual parallel machine substrate.

Simulates the three machines of the paper (Cray T3E, Cray T3D, Intel
Paragon) at the fidelity of the paper's own performance model: per-node
compute rates plus the ``Ct = L*m + G*b + H*c`` communication model.
"""

from repro.vm.cluster import Cluster, Subgroup, Transfer
from repro.vm.machine import (
    CRAY_T3D,
    CRAY_T3E,
    HOST_OPS_PER_SECOND,
    INTEL_PARAGON,
    MACHINES,
    MachineSpec,
    get_machine,
    workstation_spec,
)
from repro.vm.metrics import (
    NodeUsage,
    UtilizationReport,
    usage_from_spans,
    utilization,
)
from repro.vm.node import VirtualNode
from repro.vm.traffic import NodeTraffic, PhaseRecord, Timeline
from repro.vm.transferbatch import TransferBatch

__all__ = [
    "Cluster",
    "Subgroup",
    "Transfer",
    "TransferBatch",
    "MachineSpec",
    "CRAY_T3E",
    "CRAY_T3D",
    "INTEL_PARAGON",
    "MACHINES",
    "HOST_OPS_PER_SECOND",
    "get_machine",
    "workstation_spec",
    "VirtualNode",
    "NodeTraffic",
    "NodeUsage",
    "PhaseRecord",
    "Timeline",
    "UtilizationReport",
    "usage_from_spans",
    "utilization",
]
