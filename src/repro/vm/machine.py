"""Machine models for the simulated parallel computers.

The paper reports results on three machines — an Intel Paragon XP/S, a
Cray T3D, and a Cray T3E — and shows (Section 4) that both computation
and communication behaviour is captured by a handful of per-machine
constants:

* computation: a per-node execution rate (``seconds_per_op`` here),
* communication: ``Ct = L*m + G*b + H*c`` where ``m`` is the number of
  messages, ``b`` the bytes sent/received, and ``c`` the bytes copied
  locally during a redistribution.

We reproduce exactly that model.  The T3E communication parameters are
the values the paper estimated (Section 4.3):
``L = 5.2e-5 s/msg``, ``G = 2.47e-8 s/B``, ``H = 2.04e-8 s/B``.
The compute rates are calibrated so that the absolute execution times of
the Los Angeles dataset land in the ranges of Figure 2: the Cray T3D is
"just under a factor of 2" faster than the Paragon, and the T3E is
"approximately a factor of 10" faster than the Paragon.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import DEFAULT_WORDSIZE

__all__ = [
    "MachineSpec",
    "CRAY_T3E",
    "CRAY_T3D",
    "INTEL_PARAGON",
    "HOST_OPS_PER_SECOND",
    "MACHINES",
    "get_machine",
    "workstation_spec",
]


@dataclass(frozen=True)
class MachineSpec:
    """Parameters describing one target parallel machine.

    Attributes
    ----------
    name:
        Human readable machine name (``"Cray T3E"`` etc.).
    latency:
        ``L`` in the paper's cost model: seconds charged per message,
        covering startup and header processing on the end points.
    gap:
        ``G``: seconds per byte moved across the network, dominated by
        per-byte end-point costs (copying into/out of the interconnect).
    copy_cost:
        ``H``: seconds per byte for purely local copies performed during
        a logical redistribution (data that does not leave the node).
    seconds_per_op:
        Per-node compute rate: seconds charged for one abstract work
        unit ("op").  Application kernels report deterministic op counts
        and the cluster converts them to simulated seconds with this.
    io_seconds_per_byte:
        Sequential I/O processing rate used by ``inputhour`` /
        ``outputhour``.  The paper treats I/O processing as sequential
        computation; its cost is proportional to the hourly data volume.
    wordsize:
        Machine word size ``W`` in bytes (8 on all three machines).
    """

    name: str
    latency: float
    gap: float
    copy_cost: float
    seconds_per_op: float
    io_seconds_per_byte: float
    wordsize: int = DEFAULT_WORDSIZE

    def __post_init__(self) -> None:
        if self.latency < 0 or self.gap < 0 or self.copy_cost < 0:
            raise ValueError("communication parameters must be non-negative")
        if self.seconds_per_op <= 0:
            raise ValueError("seconds_per_op must be positive")
        if self.wordsize <= 0:
            raise ValueError("wordsize must be positive")

    def comm_cost(self, messages: int, bytes_moved: int, bytes_copied: int = 0) -> float:
        """Evaluate ``Ct = L*m + G*b + H*c`` (paper, Section 4.2, eq. 2)."""
        if messages < 0 or bytes_moved < 0 or bytes_copied < 0:
            raise ValueError("traffic quantities must be non-negative")
        return (
            self.latency * messages
            + self.gap * bytes_moved
            + self.copy_cost * bytes_copied
        )

    def compute_cost(self, ops: float) -> float:
        """Simulated seconds for ``ops`` abstract work units on one node."""
        if ops < 0:
            raise ValueError("ops must be non-negative")
        return ops * self.seconds_per_op

    def io_cost(self, nbytes: float, ops: float = 0.0) -> float:
        """Simulated seconds of sequential I/O processing.

        I/O processing in Airshed is a mix of byte shuffling (reading and
        unpacking the hourly inputs, packing outputs) and a little
        sequential computation; both contributions are charged.
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return nbytes * self.io_seconds_per_byte + self.compute_cost(ops)

    def scaled(self, compute_factor: float = 1.0, comm_factor: float = 1.0) -> "MachineSpec":
        """Derive a hypothetical machine with scaled compute/comm speed.

        ``compute_factor > 1`` means a *slower* machine (costs multiply).
        Useful for what-if studies and tests.
        """
        return replace(
            self,
            name=f"{self.name} (x{compute_factor:g} compute, x{comm_factor:g} comm)",
            latency=self.latency * comm_factor,
            gap=self.gap * comm_factor,
            copy_cost=self.copy_cost * comm_factor,
            seconds_per_op=self.seconds_per_op * compute_factor,
            io_seconds_per_byte=self.io_seconds_per_byte * compute_factor,
        )


#: Cray T3E — communication constants straight from the paper (§4.3);
#: compute/I/O rates calibrated so the LA run lands in Figure 2's range.
CRAY_T3E = MachineSpec(
    name="Cray T3E",
    latency=5.2e-5,
    gap=2.47e-8,
    copy_cost=2.04e-8,
    seconds_per_op=2.4e-8,
    io_seconds_per_byte=6.0e-7,
)

#: Cray T3D — roughly 5x slower per node than the T3E ("just under a
#: factor of 2 faster than the Paragon"), with a slower network.
CRAY_T3D = MachineSpec(
    name="Cray T3D",
    latency=9.0e-5,
    gap=6.0e-8,
    copy_cost=6.5e-8,
    seconds_per_op=1.25e-7,
    io_seconds_per_byte=3.1e-6,
)

#: Intel Paragon XP/S — about 10x slower per node than the T3E, with the
#: highest message latency of the three.
INTEL_PARAGON = MachineSpec(
    name="Intel Paragon",
    latency=1.4e-4,
    gap=1.1e-7,
    copy_cost=1.2e-7,
    seconds_per_op=2.4e-7,
    io_seconds_per_byte=6.0e-6,
)

MACHINES = {
    "t3e": CRAY_T3E,
    "t3d": CRAY_T3D,
    "paragon": INTEL_PARAGON,
}

#: Nominal abstract-op throughput of the machine actually executing the
#: Python numerics, measured on the LA dataset (~2e9 ops/simulated hour
#: at ~1.5 wall seconds/hour).  The campaign cost model refines this
#: from observed job runtimes.
HOST_OPS_PER_SECOND = 1.4e9


def workstation_spec(
    ops_per_second: float = HOST_OPS_PER_SECOND, name: str = "host"
) -> MachineSpec:
    """A :class:`MachineSpec` describing the executing workstation.

    Campaign jobs run the *real* numerics on the local host, so
    predicting their wall-clock time is a Section-4 prediction with the
    host's compute rate and no network (one node, zero-cost comm).
    Expressing the host this way lets the scheduler reuse
    :class:`~repro.perfmodel.predict.PerformancePredictor` unchanged.
    """
    if ops_per_second <= 0:
        raise ValueError("ops_per_second must be positive")
    per_op = 1.0 / ops_per_second
    return MachineSpec(
        name=name,
        latency=0.0,
        gap=0.0,
        copy_cost=0.0,
        seconds_per_op=per_op,
        # I/O processing runs at roughly the compute rate on the host.
        io_seconds_per_byte=per_op,
    )


def get_machine(name: str) -> MachineSpec:
    """Look up a machine profile by short name (``t3e``/``t3d``/``paragon``)."""
    key = name.strip().lower()
    if key not in MACHINES:
        raise KeyError(f"unknown machine {name!r}; choose from {sorted(MACHINES)}")
    return MACHINES[key]
