"""Traffic and time accounting for the simulated machine.

Every phase executed on the :class:`~repro.vm.cluster.Cluster` produces a
:class:`PhaseRecord`; the :class:`Timeline` collects them and offers the
aggregations the paper's figures need (time per phase kind, per phase
name, per redistribution type, ...).

Communication traffic is recorded per node as ``(messages sent, messages
received, bytes sent, bytes received, bytes locally copied)`` so that the
analytic model of Section 4 can be checked against the exact counts the
runtime generated.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["NodeTraffic", "PhaseRecord", "Timeline"]


@dataclass
class NodeTraffic:
    """Per-node communication counters for one phase."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    bytes_copied: int = 0

    def merge(self, other: "NodeTraffic") -> None:
        """Accumulate ``other`` into this record (in place)."""
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.bytes_copied += other.bytes_copied

    @property
    def messages(self) -> int:
        """Total message endpoints handled by the node (sent + received)."""
        return self.messages_sent + self.messages_received

    @property
    def bytes_moved(self) -> int:
        """Bytes the node pushed to or pulled from the network.

        Following the paper's model the per-byte cost is dominated by the
        heavier direction on the node; see
        :meth:`repro.vm.cluster.Cluster.charge_communication`.
        """
        return max(self.bytes_sent, self.bytes_received)


@dataclass
class PhaseRecord:
    """One timed phase on the cluster.

    Attributes
    ----------
    name:
        Phase label, e.g. ``"chemistry"`` or ``"D_Chem->D_Repl"``.
    kind:
        ``"compute"``, ``"comm"`` or ``"io"``.
    start / end:
        Simulated seconds.  ``start`` is the maximum clock over the
        participating nodes when the phase began (phases synchronise).
    duration:
        ``end - start``.
    node_ids:
        Participating nodes.
    traffic:
        Per-node traffic (communication phases only).
    ops:
        Per-node phase data, keyed by node id.  For **compute** phases:
        op counts.  For **comm** phases: each node's busy seconds (its
        own ``Ct_i``; the phase duration is the maximum).  For **io**
        phases: the I/O node's busy seconds (the duration can be longer
        when a blocking group waited for stragglers).
    """

    name: str
    kind: str
    start: float
    end: float
    node_ids: Tuple[int, ...]
    traffic: Dict[int, NodeTraffic] = field(default_factory=dict)
    ops: Dict[int, float] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def total_bytes_sent(self) -> int:
        return sum(t.bytes_sent for t in self.traffic.values())

    def total_messages_sent(self) -> int:
        return sum(t.messages_sent for t in self.traffic.values())

    def total_bytes_copied(self) -> int:
        return sum(t.bytes_copied for t in self.traffic.values())

    def max_node_traffic(self) -> NodeTraffic:
        """Traffic of the most heavily loaded node (paper's bottleneck node)."""
        if not self.traffic:
            return NodeTraffic()
        return max(
            self.traffic.values(),
            key=lambda t: (t.bytes_moved, t.messages),
        )


class Timeline:
    """Ordered collection of :class:`PhaseRecord` with aggregation helpers."""

    def __init__(self) -> None:
        self._records: List[PhaseRecord] = []

    def append(self, record: PhaseRecord) -> None:
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[PhaseRecord]:
        return iter(self._records)

    def records(self, name: Optional[str] = None, kind: Optional[str] = None) -> List[PhaseRecord]:
        """Records filtered by phase name and/or kind."""
        out = self._records
        if name is not None:
            out = [r for r in out if r.name == name]
        if kind is not None:
            out = [r for r in out if r.kind == kind]
        return list(out)

    def time_by_name(self) -> Dict[str, float]:
        """Total simulated duration per phase name."""
        agg: Dict[str, float] = defaultdict(float)
        for rec in self._records:
            agg[rec.name] += rec.duration
        return dict(agg)

    def time_by_kind(self) -> Dict[str, float]:
        """Total simulated duration per phase kind (compute/comm/io)."""
        agg: Dict[str, float] = defaultdict(float)
        for rec in self._records:
            agg[rec.kind] += rec.duration
        return dict(agg)

    def total_time(self) -> float:
        """End of the last phase (phases are appended in time order)."""
        return max((rec.end for rec in self._records), default=0.0)

    def count(self, name: Optional[str] = None, kind: Optional[str] = None) -> int:
        return len(self.records(name=name, kind=kind))

    def communication_steps(self) -> int:
        """Number of communication phases executed (paper: 77 for their run)."""
        return self.count(kind="comm")

    def summary(self) -> Dict[str, float]:
        """Compact dict used by benches: total plus per-kind breakdown."""
        out = {"total": self.total_time()}
        out.update({f"kind:{k}": v for k, v in sorted(self.time_by_kind().items())})
        return out
