"""Interconnect topology models — validating the endpoint assumption.

The paper's communication model (Section 4.2) rests on an explicit
assumption: "on today's high performance interconnection networks,
communication performance is typically limited by the communication
overhead on the end-points, and not by the aggregate bandwidth of the
actual interconnect."

All three machines were k-ary n-cube networks (Paragon: 2-D mesh; T3D/
T3E: 3-D torus).  This module models them at the link level — dimension-
ordered routing, per-link byte loads, the bisection-limited time of a
communication phase — so the assumption can be *checked* rather than
taken on faith: for every Airshed redistribution we can compute the
ratio of link-limited time to endpoint-limited time and show it stays
below one (see ``benchmarks/test_ablation_endpoint_assumption.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.vm.cluster import Transfer
from repro.vm.machine import MachineSpec

__all__ = ["TorusTopology", "LinkAnalysis", "analyze_contention",
           "torus_for", "T3E_LINK_COST", "PARAGON_LINK_COST"]

#: Per-byte link costs (s/B).  T3E links sustained ~500 MB/s per
#: direction; the Paragon mesh ~175 MB/s.
T3E_LINK_COST = 2.0e-9
PARAGON_LINK_COST = 5.7e-9


@dataclass(frozen=True)
class TorusTopology:
    """A k-ary n-cube with dimension-ordered (e-cube) routing.

    ``dims`` are the torus extents (their product is the node count);
    ``link_cost`` is seconds per byte per link traversal.
    """

    dims: Tuple[int, ...]
    link_cost: float

    def __post_init__(self) -> None:
        if not self.dims or any(d < 1 for d in self.dims):
            raise ValueError("torus dims must be positive")
        if self.link_cost < 0:
            raise ValueError("link cost must be non-negative")

    @property
    def nprocs(self) -> int:
        n = 1
        for d in self.dims:
            n *= d
        return n

    # ------------------------------------------------------------------
    def coords(self, node: int) -> Tuple[int, ...]:
        if not (0 <= node < self.nprocs):
            raise ValueError(f"node {node} out of range")
        out = []
        for d in self.dims:
            out.append(node % d)
            node //= d
        return tuple(out)

    def node_of(self, coords: Sequence[int]) -> int:
        node = 0
        mul = 1
        for c, d in zip(coords, self.dims):
            node += (c % d) * mul
            mul *= d
        return node

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Dimension-ordered shortest-path links (torus wraparound)."""
        if src == dst:
            return []
        cur = list(self.coords(src))
        target = self.coords(dst)
        links: List[Tuple[int, int]] = []
        for axis, d in enumerate(self.dims):
            while cur[axis] != target[axis]:
                fwd = (target[axis] - cur[axis]) % d
                step = 1 if fwd <= d - fwd else -1
                nxt = cur.copy()
                nxt[axis] = (cur[axis] + step) % d
                links.append((self.node_of(cur), self.node_of(nxt)))
                cur = nxt
        return links

    def hop_count(self, src: int, dst: int) -> int:
        return len(self.route(src, dst))

    # ------------------------------------------------------------------
    def link_loads(self, transfers: Sequence[Transfer]) -> Dict[Tuple[int, int], int]:
        """Bytes carried by each directed link for a transfer set."""
        loads: Dict[Tuple[int, int], int] = {}
        for t in transfers:
            if t.src == t.dst or t.nbytes == 0:
                continue
            for link in self.route(t.src, t.dst):
                loads[link] = loads.get(link, 0) + t.nbytes
        return loads

    def link_time(self, transfers: Sequence[Transfer]) -> float:
        """Phase time were the network the only constraint: the busiest
        link serialises its bytes."""
        loads = self.link_loads(transfers)
        return max(loads.values(), default=0) * self.link_cost


def torus_for(nprocs: int, link_cost: float, ndims: int = 2) -> TorusTopology:
    """A near-square torus with at least ``nprocs`` nodes."""
    if nprocs < 1:
        raise ValueError("nprocs must be >= 1")
    side = max(1, round(nprocs ** (1.0 / ndims)))
    dims = [side] * ndims
    i = 0
    while math.prod(dims) < nprocs:
        dims[i % ndims] += 1
        i += 1
    return TorusTopology(dims=tuple(dims), link_cost=link_cost)


@dataclass(frozen=True)
class LinkAnalysis:
    """Endpoint vs link-limited comparison for one phase."""

    endpoint_time: float
    link_time: float
    max_link_bytes: int

    @property
    def contention_ratio(self) -> float:
        """< 1 means the endpoint model (the paper's) is the binding
        constraint; > 1 means the network would actually dominate."""
        if self.endpoint_time <= 0:
            return 0.0 if self.link_time == 0 else float("inf")
        return self.link_time / self.endpoint_time


def analyze_contention(
    machine: MachineSpec,
    topology: TorusTopology,
    transfers: Sequence[Transfer],
) -> LinkAnalysis:
    """Compare the paper's endpoint cost with the link-limited cost."""
    from repro.vm.cluster import Cluster

    # Endpoint time: reuse the cluster's exact pricing on a scratch machine.
    cluster = Cluster(machine, topology.nprocs)
    rec = cluster.charge_communication(
        "probe", list(transfers), node_ids=range(topology.nprocs)
    )
    loads = topology.link_loads(transfers)
    return LinkAnalysis(
        endpoint_time=rec.duration,
        link_time=max(loads.values(), default=0) * topology.link_cost,
        max_link_bytes=max(loads.values(), default=0),
    )
