"""Checkpoint / restart for long simulations.

Production air-quality runs span multi-day episodes; operational use
needs the ability to stop after hour ``k`` and resume bit-for-bit.  The
Airshed state between hours is exactly the concentration array (the
operators are rebuilt from the hourly inputs), so a checkpoint is the
array plus the position in the hour sequence.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.model.config import AirshedConfig
from repro.model.results import AirshedResult

__all__ = ["Checkpoint", "save_checkpoint", "load_checkpoint", "resume_config"]

_MAGIC = "airshed-checkpoint-v1"


@dataclass(frozen=True)
class Checkpoint:
    """Resumable state after some number of completed hours."""

    dataset_name: str
    hours_completed: int
    start_hour: int
    conc: np.ndarray

    def next_start_hour(self) -> int:
        return (self.start_hour + self.hours_completed) % 24


def save_checkpoint(
    config: AirshedConfig,
    result: AirshedResult,
    path: Union[str, Path, io.IOBase],
) -> Checkpoint:
    """Write a checkpoint for the state after ``result``'s last hour."""
    ckpt = Checkpoint(
        dataset_name=config.dataset.name,
        hours_completed=config.hours,
        start_hour=config.start_hour,
        conc=np.asarray(result.final_conc),
    )
    payload = {
        "magic": _MAGIC,
        "dataset_name": ckpt.dataset_name,
        "hours_completed": np.int64(ckpt.hours_completed),
        "start_hour": np.int64(ckpt.start_hour),
        "conc": ckpt.conc,
    }
    if isinstance(path, (str, Path)):
        with Path(path).open("wb") as fh:
            np.savez(fh, **payload)
    else:
        np.savez(path, **payload)
    return ckpt


def load_checkpoint(path: Union[str, Path, io.IOBase]) -> Checkpoint:
    with np.load(path, allow_pickle=False) as z:
        if str(z["magic"]) != _MAGIC:
            raise ValueError(f"not an Airshed checkpoint: {path}")
        return Checkpoint(
            dataset_name=str(z["dataset_name"]),
            hours_completed=int(z["hours_completed"]),
            start_hour=int(z["start_hour"]),
            conc=z["conc"],
        )


def resume_config(
    config: AirshedConfig,
    checkpoint: Checkpoint,
    hours: Optional[int] = None,
) -> AirshedConfig:
    """Derive a config continuing a run from a checkpoint.

    ``config`` must use the same dataset the checkpoint was taken from;
    ``hours`` defaults to the original config's remaining hours (or
    raises if the checkpoint already covers them).
    """
    if checkpoint.dataset_name != config.dataset.name:
        raise ValueError(
            f"checkpoint is for dataset {checkpoint.dataset_name!r}, "
            f"config uses {config.dataset.name!r}"
        )
    if checkpoint.conc.shape != config.dataset.shape:
        raise ValueError(
            f"checkpoint shape {checkpoint.conc.shape} != dataset shape "
            f"{config.dataset.shape}"
        )
    if hours is None:
        hours = config.hours - checkpoint.hours_completed
        if hours < 1:
            raise ValueError(
                f"checkpoint already covers {checkpoint.hours_completed} of "
                f"{config.hours} hours"
            )
    return replace(
        config,
        hours=hours,
        start_hour=checkpoint.next_start_hour(),
        initial_conc=checkpoint.conc.copy(),
    )
