"""The sequential reference Airshed driver (Figure 1 of the paper).

::

    DO i = 1, nhrs
        CALL inputhour(A)
        CALL pretrans(A)
        DO j = 1, nsteps
            CALL transport(A)
            CALL chemistry(A)
            CALL transport(A)
        ENDDO
        CALL outputhour(A)
    ENDDO

Besides producing the science output, the sequential run records the
:class:`~repro.model.results.WorkloadTrace` that the parallel execution
simulator replays for any machine and node count.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.io.hourly import inputhour, outputhour, pretrans
from repro.model.config import AirshedConfig
from repro.model.physics import AirshedPhysics
from repro.model.results import AirshedResult, HourTrace, StepTrace, WorkloadTrace
from repro.observe.tracer import Tracer

__all__ = ["SequentialAirshed", "TRACKED_SPECIES"]

#: Species whose hourly domain means are recorded in results.
TRACKED_SPECIES = ("O3", "NO", "NO2", "PAN", "HCHO", "AERO")


class SequentialAirshed:
    """Run the Airshed model on one (real) processor.

    The run emits wall-clock spans (hours, steps, phases) into
    ``self.tracer`` — a real profile of the numerics, in the same format
    the simulated drivers produce, exportable with
    :func:`repro.observe.write_chrome_trace`.
    """

    def __init__(self, config: AirshedConfig, tracer: Optional[Tracer] = None):
        self.config = config
        self.physics = AirshedPhysics(config)
        self.tracer = tracer if tracer is not None else Tracer()

    def run(self) -> AirshedResult:
        cfg = self.config
        ds = cfg.dataset
        phys = self.physics
        mech = ds.mechanism

        conc = cfg.starting_concentrations()
        trace = WorkloadTrace(dataset_name=ds.name, shape=ds.shape)
        hourly_mean: Dict[str, List[float]] = {s: [] for s in TRACKED_SPECIES}
        surfaces: List[np.ndarray] = []

        span = self.tracer.span
        for h_idx in range(cfg.hours):
            hour = cfg.hour_of_day(h_idx)

            with span(f"hour:{hour:02d}", kind="hour", hour=hour):
                # --- inputhour + pretrans (the I/O processing phase) ---
                with span("io:inputhour", kind="io"):
                    inres = inputhour(ds, hour)
                conditions = inres.conditions
                nsteps, dt = phys.hour_steps(hour)
                with span("io:pretrans", kind="io"):
                    operators, pre_ops = pretrans(ds, phys.transport, hour, dt / 2.0)

                steps: List[StepTrace] = []
                for j in range(nsteps):
                    with span(f"step:{j}", kind="step", index=j):
                        with span("transport", kind="compute"):
                            t1 = self._transport_all(conc, operators, conditions)
                        with span("chemistry", kind="compute"):
                            t_chem = self.tracer.now()
                            conc, chem_ops = phys.chemistry_columns(
                                conc, conditions, dt
                            )
                            # Per-worker tile spans (no-op when the
                            # tiled pool is disabled).
                            phys.chemistry.emit_tile_spans(
                                self.tracer, t_chem
                            )
                        with span("aerosol", kind="compute"):
                            aero_ops = phys.aerosol_step(conc)
                        with span("transport", kind="compute"):
                            t2 = self._transport_all(conc, operators, conditions)
                    steps.append(
                        StepTrace(
                            transport1_ops=t1,
                            chemistry_ops=chem_ops,
                            aerosol_ops=aero_ops,
                            transport2_ops=t2,
                        )
                    )

                # --- outputhour ---------------------------------------
                with span("io:outputhour", kind="io"):
                    _, out_bytes, out_ops = outputhour(hour, conc)
            trace.hours.append(
                HourTrace(
                    hour=hour,
                    input_bytes=inres.nbytes,
                    input_ops=inres.ops,
                    pretrans_ops=pre_ops,
                    nsteps=nsteps,
                    steps=steps,
                    output_bytes=out_bytes,
                    output_ops=out_ops,
                )
            )

            for s in TRACKED_SPECIES:
                hourly_mean[s].append(float(conc[mech.index[s]].mean()))
            if cfg.track_surface_fields:
                surfaces.append(conc[:, 0, :].copy())

        return AirshedResult(
            trace=trace,
            final_conc=conc,
            hourly_mean=hourly_mean,
            hourly_surface=surfaces if cfg.track_surface_fields else None,
        )

    # ------------------------------------------------------------------
    def _transport_all(self, conc, operators, conditions) -> np.ndarray:
        """Transport every layer in place; per-layer op counts."""
        ops = np.zeros(self.config.dataset.layers)
        for layer, op in enumerate(operators):
            conc[:, layer, :], ops[layer] = self.physics.transport_layer(
                conc[:, layer, :], op, conditions.boundary
            )
        return ops
