"""Shared numerical kernels of the Airshed model.

Both the sequential reference driver and the live data-parallel driver
call these kernels, which is what makes the "distributed result equals
sequential result" verification meaningful: the physics is defined once,
and every kernel is independent per layer (transport) or per grid column
(chemistry), so partitioned execution is bitwise identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.chemistry import (
    AerosolModel,
    ChemistryStats,
    VerticalDiffusion,
)
from repro.chemistry.youngboris import OPS_PER_SUBSTEP_PER_SPECIES
from repro.datasets.generators import Dataset, HourlyConditions
from repro.model.config import AirshedConfig
from repro.model.tiled import TiledChemistry
from repro.transport import SUPGTransport
from repro.transport.supg import TransportOperator

__all__ = ["AirshedPhysics"]

#: Dry-deposition velocities (m/s) for the species that deposit.
DEPOSITION_VELOCITIES: Dict[str, float] = {
    "O3": 0.004, "NO2": 0.003, "HNO3": 0.02, "H2O2": 0.005,
    "SO2": 0.008, "NH3": 0.01, "HCHO": 0.005, "PAN": 0.002,
    "AERO": 0.002,
}


class AirshedPhysics:
    """The numerical engines of one configured Airshed run."""

    def __init__(self, config: AirshedConfig):
        self.config = config
        self.dataset: Dataset = config.dataset
        mech = self.dataset.mechanism
        self.mechanism = mech

        deposition = np.zeros(mech.n_species)
        for name, vd in DEPOSITION_VELOCITIES.items():
            deposition[mech.index[name]] = vd

        self.chemistry = TiledChemistry(
            mech,
            eps=config.chem_eps,
            max_substeps=config.chem_max_substeps,
            workers=config.chem_workers,
            tile_cols=config.chem_tile_cols,
        )
        #: The underlying solver — kept as an attribute so the batched
        #: ensemble engine (and tests) can drive it directly; it already
        #: carries the tile pool when chem_workers > 1.
        self.solver = self.chemistry.solver
        self.vertical = VerticalDiffusion(
            heights=self.dataset.layer_heights,
            kz=self.dataset.kz_profile,
            deposition=deposition,
        )
        self.aerosol = AerosolModel(mech)
        self.transport = SUPGTransport(
            self.dataset.mesh,
            diffusivity=self.dataset.wind.diffusivity,
            theta=config.theta,
        )

    # ------------------------------------------------------------------
    # per-hour setup
    # ------------------------------------------------------------------
    def hour_steps(self, hour: int) -> Tuple[int, float]:
        """Runtime step count and step length for the hour."""
        nsteps = self.dataset.steps_per_hour(
            hour, self.config.min_steps, self.config.max_steps
        )
        return nsteps, 3600.0 / nsteps

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def transport_layer(
        self,
        conc_layer: np.ndarray,
        operator: TransportOperator,
        boundary: np.ndarray,
    ) -> Tuple[np.ndarray, float]:
        """Horizontal transport of one layer (n_species, n_points).

        Applies the factorised SUPG step, then relaxes the open-boundary
        nodes toward the hourly background concentrations.
        """
        out, ops = operator.step(conc_layer)
        relax = self.config.boundary_relax
        if relax > 0.0:
            b = self.dataset.mesh.boundary
            out[:, b] = (1.0 - relax) * out[:, b] + relax * boundary[:, None]
        # Standard "negative fixer": SUPG can undershoot slightly near
        # sharp gradients; chemistry needs non-negative mixing ratios.
        np.maximum(out, 0.0, out=out)
        return out, ops

    def chemistry_columns(
        self,
        conc: np.ndarray,
        conditions: HourlyConditions,
        dt: float,
        point_indices: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The ``Lcz`` operator on a set of grid columns.

        ``conc``: (n_species, layers, n_subset).  ``point_indices``
        selects the emission columns when operating on a partition.
        Returns the new concentrations and per-point op counts.
        """
        ns, nl, npts = conc.shape
        E_cols = (
            conditions.emissions
            if point_indices is None
            else conditions.emissions[:, point_indices]
        )
        # Area emissions enter the bottom layer; elevated point sources
        # inject into the layer their plume reaches.
        E = np.zeros((ns, nl, npts))
        E[:, 0, :] = E_cols
        if conditions.elevated is not None:
            E += (
                conditions.elevated
                if point_indices is None
                else conditions.elevated[:, :, point_indices]
            )

        stats = ChemistryStats()
        flat = self.solver.integrate(
            conc.reshape(ns, nl * npts),
            dt,
            conditions.temperature,
            conditions.sun,
            emissions=E.reshape(ns, nl * npts),
            stats=stats,
        )
        out = flat.reshape(ns, nl, npts)

        out, vd_ops = self.vertical.step(out, dt)

        per_cell = stats.per_point_substeps.reshape(nl, npts)
        per_point_ops = (
            per_cell.sum(axis=0) * ns * OPS_PER_SUBSTEP_PER_SPECIES
            + vd_ops / npts
        )
        return out, per_point_ops

    def aerosol_step(self, conc: np.ndarray) -> float:
        """The replicated aerosol step on the full array (in place)."""
        return self.aerosol.step(conc)
