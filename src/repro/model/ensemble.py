"""Ensemble runs: emission-uncertainty quantification.

Policy conclusions from a single deterministic run inherit the emission
inventory's uncertainty.  An :class:`EmissionEnsemble` runs the model
under N perturbed inventories (log-normal scaling per seed, the standard
inventory-uncertainty treatment) and summarises the spread of any
tracked output — giving error bars to the numbers the policy examples
report.

The perturbed members reuse the dataset's deterministic machinery, so
an ensemble is exactly reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

import numpy as np

from repro.datasets.generators import Dataset, HourlyConditions
from repro.model.config import AirshedConfig
from repro.model.sequential import TRACKED_SPECIES, SequentialAirshed

__all__ = ["PerturbedDataset", "EnsembleSummary", "EmissionEnsemble"]


class PerturbedDataset(Dataset):
    """A dataset whose emissions are scaled by a log-normal factor.

    One multiplicative factor per species, drawn once per member (the
    inventory's bias is systematic within a day, not hour-to-hour
    noise).
    """

    def __init__(self, base: Dataset, member_seed: int, sigma: float):
        super().__init__(base.spec, mechanism=base.mechanism)
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        # Determinism audit (FX050): seeded solely by member_seed, a
        # hashed JobSpec field — same member, same factors, always.
        rng = np.random.default_rng(member_seed)
        self._factors = np.exp(
            rng.normal(0.0, sigma, size=self.mechanism.n_species)
        )

    @property
    def emission_factors(self) -> np.ndarray:
        return self._factors

    def hourly(self, hour: int) -> HourlyConditions:
        cond = super().hourly(hour)
        E = cond.emissions * self._factors[:, None]
        elevated = cond.elevated
        if elevated is not None:
            elevated = elevated * self._factors[:, None, None]
        return HourlyConditions(
            hour=cond.hour, temperature=cond.temperature, sun=cond.sun,
            emissions=E, boundary=cond.boundary, elevated=elevated,
        )


@dataclass
class EnsembleSummary:
    """Spread statistics of the tracked species' hourly means."""

    members: int
    sigma: float
    mean: Dict[str, np.ndarray]      # species -> (hours,)
    std: Dict[str, np.ndarray]
    peaks: Dict[str, np.ndarray]     # species -> (members,) run peaks

    def peak_interval(self, species: str, quantile: float = 0.9):
        """(low, high) quantile band of the run-peak for a species."""
        if species not in self.peaks:
            raise KeyError(f"no ensemble data for {species!r}")
        lo = (1.0 - quantile) / 2.0
        p = self.peaks[species]
        return (float(np.quantile(p, lo)), float(np.quantile(p, 1.0 - lo)))

    def relative_spread(self, species: str) -> float:
        """std/mean of the run peak — the headline uncertainty number.

        Returns ``NaN`` when the mean peak is non-positive: a
        degenerate ensemble (species absent or pathological inputs) has
        no meaningful relative spread, and ``0.0`` would silently read
        as "perfect agreement".  Callers should check ``math.isnan``
        (contract documented in ``docs/ENSEMBLES.md``).
        """
        p = self.peaks[species]
        m = p.mean()
        return float(p.std() / m) if m > 0 else float("nan")


class EmissionEnsemble:
    """Run N perturbed-inventory members of one configuration."""

    def __init__(self, config: AirshedConfig, members: int = 8,
                 sigma: float = 0.3, seed: int = 0):
        if members < 2:
            raise ValueError("an ensemble needs at least 2 members")
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        self.config = config
        self.members = int(members)
        self.sigma = float(sigma)
        self.seed = int(seed)

    def member_config(self, index: int) -> AirshedConfig:
        if not (0 <= index < self.members):
            raise ValueError(f"member index {index} out of range")
        dataset = PerturbedDataset(
            self.config.dataset,
            member_seed=self.seed * 7919 + index,
            sigma=self.sigma,
        )
        return replace(self.config, dataset=dataset)

    def run(self) -> EnsembleSummary:
        series: Dict[str, List[np.ndarray]] = {s: [] for s in TRACKED_SPECIES}
        for i in range(self.members):
            result = SequentialAirshed(self.member_config(i)).run()
            for s in TRACKED_SPECIES:
                series[s].append(result.species_series(s))
        stacked = {s: np.vstack(v) for s, v in series.items()}
        return EnsembleSummary(
            members=self.members,
            sigma=self.sigma,
            mean={s: v.mean(axis=0) for s, v in stacked.items()},
            std={s: v.std(axis=0) for s, v in stacked.items()},
            peaks={s: v.max(axis=1) for s, v in stacked.items()},
        )
