"""Multi-core tiled chemistry driver for the Airshed model.

The paper's premise is that Airshed chemistry is data-parallel over
grid columns — HPF distributes columns across processors and chemistry
dominates the hour (~97% of sequential time lands in the fused solver
kernel).  :class:`TiledChemistry` is the shared-memory realisation of
that decomposition: it owns a :class:`~repro.chemistry.youngboris.
YoungBorisSolver` whose elementwise stages fan out over a persistent
worker pool in contiguous column tiles
(:mod:`repro.chemistry.tiling`), and it reports per-worker utilisation
into :mod:`repro.observe` so tile load balance shows up next to the
phase spans the drivers already emit.

Results are **bitwise identical** to the sequential solver for every
worker count and tile size — the pool is a wall-clock knob, never a
science knob — so `chem_workers` lives outside the scheduler's job
content hash (see ``repro.sched.job.PRESENTATION_FIELDS``).
"""

from __future__ import annotations

from typing import List, Optional

from repro.chemistry import YoungBorisSolver
from repro.chemistry.mechanism import Mechanism

__all__ = ["TiledChemistry"]


class TiledChemistry:
    """A Young–Boris solver with a multi-core tile pool attached.

    Parameters mirror :class:`~repro.model.config.AirshedConfig`'s
    chemistry knobs; ``workers=1`` with ``tile_cols=None`` degrades to
    the plain sequential solver (no pool is created at all).

    The wrapped solver is exposed as ``.solver`` so existing callers
    (`AirshedPhysics.solver`, the batched ensemble engine) keep working
    unchanged — they automatically inherit the tiling.
    """

    def __init__(
        self,
        mechanism: Mechanism,
        eps: float = 0.01,
        max_substeps: int = 300,
        workers: int = 1,
        tile_cols: Optional[int] = None,
        tile_min_cols: int = 128,
    ) -> None:
        self.workers = int(workers)
        self.solver = YoungBorisSolver(
            mechanism,
            eps=eps,
            max_substeps=max_substeps,
            workers=workers,
            tile_cols=tile_cols,
            tile_min_cols=tile_min_cols,
        )
        self._last_stats: Optional[List[dict]] = None

    # ------------------------------------------------------------------
    def integrate(self, *args, **kwargs):
        """Delegate to :meth:`YoungBorisSolver.integrate`."""
        return self.solver.integrate(*args, **kwargs)

    # ------------------------------------------------------------------
    def emit_tile_spans(self, tracer, start: float) -> None:
        """Emit one per-worker tile span covering ``[start, now]``.

        Each span carries the worker's *busy* seconds (time inside tile
        kernels since the previous emission) plus dispatch/column
        counts, nesting under whatever region span the caller holds
        open (the drivers call this inside their ``chemistry`` span).
        No-op when tiling is disabled — the sequential trace shape is
        unchanged.
        """
        stats = self.solver.tile_stats()
        if not stats:
            return
        end = tracer.now()
        prev = self._last_stats
        for w, cur in enumerate(stats):
            old = prev[w] if prev is not None else None
            busy = cur["busy_s"] - (old["busy_s"] if old else 0.0)
            tasks = cur["tasks"] - (old["tasks"] if old else 0)
            cols = cur["cols"] - (old["cols"] if old else 0)
            if tasks == 0:
                continue
            tracer.emit(
                f"chem:tile:w{w}", "compute", start, end,
                node=w, busy=min(busy, max(end - start, 0.0)),
                tasks=tasks, cols=cols,
            )
        self._last_stats = stats

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pool (idempotent)."""
        self.solver.close()
