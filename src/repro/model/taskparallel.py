"""The task+data-parallel Airshed (Section 5, Figures 8 and 9).

The pure data-parallel version stalls every node during the sequential
I/O processing.  The task-parallel version splits the machine into three
pipelined task groups::

    Processing Inputs     Transport/Chemistry      Processing Outputs
       hour i+1        |       hour i          |       hour i-1
      (1 node)         |    (P - 2 nodes)      |      (1 node)

While the main computation runs hour ``i``, the input subgroup reads and
preprocesses hour ``i+1`` and the output subgroup processes and writes
hour ``i-1``.  The main loop itself is unchanged — it just runs on two
fewer nodes — so for small P the pipeline loses a little and for large P
it wins big (the paper reports ~25% on 64 Paragon nodes).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fx.runtime import FxRuntime
from repro.fx.tasks import PipelineStage
from repro.model.config import AirshedConfig
from repro.model.dataparallel import (
    D_CHEM,
    D_REPL,
    D_TRANS,
    HourReplayer,
    ParallelTiming,
    _timing_from_runtime,
)
from repro.model.physics import AirshedPhysics
from repro.model.results import AirshedResult, HourTrace, StepTrace, WorkloadTrace
from repro.model.sequential import TRACKED_SPECIES
from repro.observe.tracer import Tracer
from repro.vm.machine import MachineSpec

__all__ = [
    "STAGE_IO",
    "replay_task_parallel",
    "replay_best_configuration",
    "TaskParallelAirshed",
]

#: Declared per-item data-access sets of the three pipeline stages — the
#: Fx task-region input/output declarations of Section 5.  Both the
#: replay and the live driver attach these to their
#: :class:`~repro.fx.tasks.PipelineStage` objects, and
#: ``repro.analyze`` mirrors them when building the stage x item task
#: graph.  ``handoff`` names the variables whose per-item ownership
#: passes to the next stage with the inter-stage transfer.
STAGE_IO: Dict[str, Dict[str, frozenset]] = {
    "input": dict(
        reads=frozenset({"hourly_inputs"}),
        writes=frozenset({"prepared"}),
        handoff=frozenset({"prepared"}),
    ),
    "main": dict(
        reads=frozenset({"prepared", "conc"}),
        writes=frozenset({"conc", "snapshot"}),
        handoff=frozenset({"snapshot"}),
    ),
    "output": dict(
        reads=frozenset({"snapshot"}),
        writes=frozenset({"output_files"}),
        handoff=frozenset(),
    ),
}


def replay_task_parallel(
    trace: WorkloadTrace,
    machine: MachineSpec,
    nprocs: int,
    io_nodes: int = 1,
    tracer: Optional[Tracer] = None,
) -> ParallelTiming:
    """Simulate the pipelined task-parallel Airshed from a trace.

    ``io_nodes`` nodes are dedicated to each of the input and output
    stages (1 in the paper); the remaining ``nprocs - 2*io_nodes`` nodes
    run the main computation.  Pass a fresh
    :class:`~repro.observe.tracer.Tracer` to capture the span stream;
    stage regions use their subgroup's own simulated clock.
    """
    if io_nodes < 1:
        raise ValueError("io_nodes must be >= 1")
    main_nodes = nprocs - 2 * io_nodes
    if main_nodes < 1:
        raise ValueError(
            f"task parallelism needs at least {2 * io_nodes + 1} nodes; got {nprocs}"
        )

    rt = FxRuntime(machine, nprocs, tracer=tracer)
    in_grp, main_grp, out_grp = rt.split([io_nodes, main_nodes, io_nodes])
    replayer = HourReplayer(main_grp, trace)

    hours = trace.hours
    array_bytes = int(np.prod(trace.shape)) * machine.wordsize

    def run_input(i: int) -> None:
        h = hours[i]
        # The input task also performs the pre-transport setup for the
        # hour it is feeding to the main computation.
        with rt.tracer.span(f"input:{i}", kind="stage", clock=in_grp.time, item=i):
            in_grp.charge_io("io:inputhour", h.input_bytes, ops=h.input_ops)
            in_grp.charge_io("io:pretrans", 0.0, ops=h.pretrans_ops)

    def run_main(i: int) -> None:
        # The pipeline handoff to the output stage is the gather.
        with rt.tracer.span(f"main:{i}", kind="stage", clock=main_grp.time, item=i):
            replayer.run_hour(hours[i], gather=False)

    def run_output(i: int) -> None:
        h = hours[i]
        with rt.tracer.span(f"output:{i}", kind="stage", clock=out_grp.time, item=i):
            out_grp.charge_io("io:outputhour", h.output_bytes, ops=h.output_ops)

    stages = [
        PipelineStage(
            name="input",
            group=in_grp,
            run=run_input,
            output_bytes=lambda i: hours[i].input_bytes,
            **STAGE_IO["input"],
        ),
        PipelineStage(
            name="main",
            group=main_grp,
            run=run_main,
            output_bytes=lambda i: array_bytes,
            **STAGE_IO["main"],
        ),
        PipelineStage(name="output", group=out_grp, run=run_output,
                      **STAGE_IO["output"]),
    ]
    rt.pipeline(stages).execute(len(hours))
    return _timing_from_runtime(rt)


def replay_best_configuration(
    trace: WorkloadTrace,
    machine: MachineSpec,
    nprocs: int,
    io_candidates=(1, 2, 4),
):
    """Optimal-mapping variant (Subhlok & Vondran, cited in Section 5).

    Tries the pure data-parallel configuration and pipelined
    configurations with each candidate I/O-node count, and returns
    ``(mode, timing)`` for the fastest — so dedicating nodes to I/O
    only happens when it actually pays (on small machines it does not,
    which is why the paper's Figure 9 curves coincide at small P).
    """
    from repro.model.dataparallel import replay_data_parallel

    best_mode = "data-parallel"
    best = replay_data_parallel(trace, machine, nprocs)
    for io_nodes in io_candidates:
        if nprocs - 2 * io_nodes < 1:
            continue
        timing = replay_task_parallel(trace, machine, nprocs, io_nodes=io_nodes)
        if timing.total_time < best.total_time:
            best = timing
            best_mode = f"pipelined(io={io_nodes})"
    return best_mode, best


class TaskParallelAirshed:
    """Live pipelined execution: real numerics, three task groups.

    The numerics are identical to the sequential/data-parallel drivers
    (the main loop runs hour-by-hour on the compute subgroup); what the
    pipeline changes is *when* each stage's simulated time is charged:
    the input task reads hour ``i+1`` while the main computation runs
    hour ``i`` and the output task writes hour ``i-1``.  Real data flows
    between the stages through the pipeline closures — the input stage
    genuinely parses the hourly record the main stage consumes.
    """

    def __init__(self, config: AirshedConfig, machine: MachineSpec,
                 nprocs: int, io_nodes: int = 1,
                 tracer: Optional[Tracer] = None):
        if io_nodes < 1:
            raise ValueError("io_nodes must be >= 1")
        if nprocs - 2 * io_nodes < 1:
            raise ValueError(
                f"need at least {2 * io_nodes + 1} nodes; got {nprocs}"
            )
        self.config = config
        self.physics = AirshedPhysics(config)
        self.runtime = FxRuntime(machine, nprocs, tracer=tracer)
        self.in_grp, self.main_grp, self.out_grp = self.runtime.split(
            [io_nodes, nprocs - 2 * io_nodes, io_nodes]
        )

    def run(self) -> Tuple[AirshedResult, ParallelTiming]:
        from repro.io.hourly import inputhour, outputhour, pretrans

        cfg = self.config
        ds = cfg.dataset
        phys = self.physics
        rt = self.runtime
        mech = ds.mechanism

        conc = rt.darray("conc", cfg.starting_concentrations(), D_REPL,
                         group=self.main_grp)
        trace = WorkloadTrace(dataset_name=ds.name, shape=ds.shape)
        hourly_mean: Dict[str, List[float]] = {s: [] for s in TRACKED_SPECIES}

        # Cross-stage mailboxes (the "variables mapped onto tasks").
        prepared: Dict[int, tuple] = {}   # input -> main
        snapshots: Dict[int, tuple] = {}  # main -> output
        hour_traces: Dict[int, dict] = {}
        array_bytes = conc.nbytes

        def run_input(i: int) -> None:
            hour = cfg.hour_of_day(i)
            inres = inputhour(ds, hour)
            nsteps, dt = phys.hour_steps(hour)
            operators, pre_ops = pretrans(ds, phys.transport, hour, dt / 2.0)
            with rt.tracer.span(
                f"input:{i}", kind="stage", clock=self.in_grp.time, item=i
            ):
                self.in_grp.charge_io("io:inputhour", inres.nbytes, ops=inres.ops)
                self.in_grp.charge_io("io:pretrans", 0.0, ops=pre_ops)
            prepared[i] = (inres, operators, nsteps, dt)
            hour_traces[i] = {
                "input_bytes": inres.nbytes, "input_ops": inres.ops,
                "pretrans_ops": pre_ops,
            }

        def run_main(i: int) -> None:
            inres, operators, nsteps, dt = prepared.pop(i)
            conditions = inres.conditions
            steps: List[StepTrace] = []
            with rt.tracer.span(
                f"main:{i}", kind="stage", clock=self.main_grp.time, item=i
            ):
                for _ in range(nsteps):
                    t1 = self._transport_phase(conc, operators, conditions)
                    chem = self._chemistry_phase(conc, conditions, dt)
                    aero = self._aerosol_phase(conc)
                    t2 = self._transport_phase(conc, operators, conditions)
                    steps.append(StepTrace(
                        transport1_ops=t1, chemistry_ops=chem,
                        aerosol_ops=aero, transport2_ops=t2,
                    ))
            snapshots[i] = (conditions.hour, conc.data.copy())
            hour_traces[i]["nsteps"] = nsteps
            hour_traces[i]["steps"] = steps
            for s in TRACKED_SPECIES:
                hourly_mean[s].append(float(conc.data[mech.index[s]].mean()))

        def run_output(i: int) -> None:
            hour, snapshot = snapshots.pop(i)
            _, out_bytes, out_ops = outputhour(hour, snapshot)
            with rt.tracer.span(
                f"output:{i}", kind="stage", clock=self.out_grp.time, item=i
            ):
                self.out_grp.charge_io("io:outputhour", out_bytes, ops=out_ops)
            h = hour_traces.pop(i)
            trace.hours.append(HourTrace(
                hour=hour,
                input_bytes=h["input_bytes"], input_ops=h["input_ops"],
                pretrans_ops=h["pretrans_ops"], nsteps=h["nsteps"],
                steps=h["steps"], output_bytes=out_bytes, output_ops=out_ops,
            ))

        stages = [
            PipelineStage(
                "input", self.in_grp, run_input,
                output_bytes=lambda i: prepared[i][0].nbytes,
                **STAGE_IO["input"],
            ),
            PipelineStage(
                "main", self.main_grp, run_main,
                output_bytes=lambda i: array_bytes,
                **STAGE_IO["main"],
            ),
            PipelineStage("output", self.out_grp, run_output,
                          **STAGE_IO["output"]),
        ]
        rt.pipeline(stages).execute(cfg.hours)

        result = AirshedResult(
            trace=trace, final_conc=conc.data.copy(), hourly_mean=hourly_mean
        )
        return result, _timing_from_runtime(rt)

    # -- the main-loop phases, identical to DataParallelAirshed ---------
    def _transport_phase(self, conc, operators, conditions) -> np.ndarray:
        phys = self.physics
        layers = self.config.dataset.layers
        ops_by_layer = np.zeros(layers)
        self.runtime.redistribute(conc, D_TRANS)

        def kernel(local, layer_ids, rank):
            total = 0.0
            for k, layer in enumerate(layer_ids):
                local[:, k, :], ops = phys.transport_layer(
                    local[:, k, :], operators[layer], conditions.boundary
                )
                ops_by_layer[layer] = ops
                total += ops
            return total

        self.runtime.parallel_do(conc, "transport", kernel)
        return ops_by_layer

    def _chemistry_phase(self, conc, conditions, dt) -> np.ndarray:
        phys = self.physics
        npoints = self.config.dataset.npoints
        ops_by_point = np.zeros(npoints)
        self.runtime.redistribute(conc, D_CHEM)

        def kernel(local, point_ids, rank):
            out, per_point = phys.chemistry_columns(
                local, conditions, dt, point_indices=point_ids
            )
            local[...] = out
            ops_by_point[point_ids] = per_point
            return float(per_point.sum())

        self.runtime.parallel_do(conc, "chemistry", kernel)
        return ops_by_point

    def _aerosol_phase(self, conc) -> float:
        self.runtime.redistribute(conc, D_REPL)
        holder: Dict[str, float] = {}

        def kernel(data):
            holder["ops"] = self.physics.aerosol_step(data)
            return holder["ops"]

        self.runtime.replicated_do(conc, "aerosol", kernel)
        return holder["ops"]
