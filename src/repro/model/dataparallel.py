"""The Fx data-parallel Airshed.

Two execution modes over the same phase structure:

* :class:`DataParallelAirshed` — **live**: the real numerics execute on
  the simulated cluster through distributed arrays (owner-computes), so
  the result can be compared bitwise against the sequential reference
  while the per-node clocks record the parallel timing.
* :func:`replay_data_parallel` — **replay**: charges a recorded
  :class:`~repro.model.results.WorkloadTrace` onto the cluster without
  re-running numerics.  Exact same timing, ~1000x faster; this is what
  the figure-regeneration benchmarks sweep over machines and node
  counts.

Distribution sequence per main-loop step (paper Section 2.2)::

    D_Repl -> D_Trans   (copy only; before the first transport)
    D_Trans -> D_Chem   (before chemistry)
    D_Chem -> D_Repl    (the aerosol step needs assembled data)
    D_Repl -> D_Trans   (before the second transport)

with a final ``D_Trans -> D_Repl`` before ``outputhour``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.fx.darray import DistributedArray
from repro.fx.distribution import Distribution
from repro.fx.runtime import FxRuntime, dist_label
from repro.io.hourly import inputhour, outputhour, pretrans
from repro.model.config import AirshedConfig
from repro.model.physics import AirshedPhysics
from repro.model.results import AirshedResult, HourTrace, StepTrace, WorkloadTrace
from repro.model.sequential import TRACKED_SPECIES
from repro.observe.tracer import Tracer
from repro.vm.cluster import Subgroup
from repro.vm.machine import MachineSpec
from repro.vm.transferbatch import TransferBatch

__all__ = [
    "D_REPL",
    "D_TRANS",
    "D_CHEM",
    "declare_airshed_phases",
    "ParallelTiming",
    "DataParallelAirshed",
    "HourReplayer",
    "replay_data_parallel",
]

#: The three distributions of the concentration array A(species,layers,nodes).
D_REPL = Distribution.replicated(3)
D_TRANS = Distribution.block(3, 1)
D_CHEM = Distribution.block(3, 2)


def declare_airshed_phases(rt: FxRuntime) -> None:
    """Register the main-loop phases' declared read/write sets.

    These are the data-access declarations the Fx compiler would derive
    from the source; ``repro.analyze`` mirrors them when checking the
    phase sequence.  Declaration only — execution is unaffected.
    """
    rt.declare_phase("io:inputhour", reads={"hourly_inputs"},
                     writes={"conditions", "operators"})
    rt.declare_phase("io:pretrans", reads={"conditions"}, writes={"operators"})
    rt.declare_phase("transport", reads={"conc", "operators", "conditions"},
                     writes={"conc"})
    rt.declare_phase("chemistry", reads={"conc", "conditions"}, writes={"conc"})
    rt.declare_phase("aerosol", reads={"conc"}, writes={"conc"})
    rt.declare_phase("io:outputhour", reads={"conc"}, writes={"output_files"})


@dataclass
class ParallelTiming:
    """Timing summary of one parallel run (live or replay)."""

    machine: str
    nprocs: int
    total_time: float
    breakdown: Dict[str, float]
    comm_by_step: Dict[str, float]
    comm_steps: int

    def component(self, name: str) -> float:
        return self.breakdown.get(name, 0.0)


#: Gather batches keyed by (layout, itemsize, dst_rank); layouts are
#: themselves cached and immutable, so the batch is a pure function of
#: the key.  ``None`` marks an empty gather.
_GATHER_BATCH_CACHE: Dict[tuple, Optional["TransferBatch"]] = {}


def _gather_batch(
    layout, itemsize: int, size: int, dst_rank: int
) -> Optional["TransferBatch"]:
    key = (layout, int(itemsize), int(dst_rank))
    try:
        return _GATHER_BATCH_CACHE[key]
    except KeyError:
        pass
    sizes = np.array(
        [layout.local_nbytes(rank, itemsize) for rank in range(size)],
        dtype=np.int64,
    )
    src = np.flatnonzero(sizes)
    batch = (
        TransferBatch(src, np.full(src.size, dst_rank), sizes[src])
        if src.size
        else None
    )
    _GATHER_BATCH_CACHE[key] = batch
    return batch


def charge_output_gather(
    array: DistributedArray,
    dst_rank: int = 0,
    label: str = "gather:outputhour",
) -> None:
    """Charge the copy-out of a distributed array to one node.

    ``outputhour`` runs sequentially on the I/O node, which needs the
    whole concentration array; each owner ships its block there once.
    Unlike a redistribution the array's live distribution is unchanged
    (the I/O node reads a snapshot), so this is receiver-bound and far
    cheaper than the all-gather ``D_Chem->D_Repl`` step.  The batched
    transfer set is memoized per (layout, itemsize, destination).
    """
    layout = array.layout
    if layout.is_replicated:
        return  # the I/O node already holds everything
    batch = _gather_batch(layout, array.itemsize, array.group.size, dst_rank)
    if batch is not None:
        array.group.charge_communication(label, batch)


def _timing_from_runtime(rt: FxRuntime) -> ParallelTiming:
    # All aggregates come from the observability event stream; the
    # totals mirror the timeline's records exactly.
    comm = {
        name: secs
        for (kind, name), secs in rt.tracer.phase_totals.items()
        if kind == "comm"
    }
    return ParallelTiming(
        machine=rt.machine.name,
        nprocs=rt.nprocs,
        total_time=rt.time(),
        breakdown=rt.breakdown(),
        comm_by_step=comm,
        comm_steps=int(rt.tracer.counters.value("phases:comm")),
    )


# ---------------------------------------------------------------------------
# live execution
# ---------------------------------------------------------------------------
class DataParallelAirshed:
    """Execute the Airshed model on the simulated cluster, for real."""

    def __init__(
        self,
        config: AirshedConfig,
        machine: MachineSpec,
        nprocs: int,
        tracer: Optional[Tracer] = None,
    ):
        self.config = config
        self.physics = AirshedPhysics(config)
        self.runtime = FxRuntime(machine, nprocs, tracer=tracer)
        declare_airshed_phases(self.runtime)

    def run(self) -> Tuple[AirshedResult, ParallelTiming]:
        cfg = self.config
        ds = cfg.dataset
        phys = self.physics
        rt = self.runtime
        mech = ds.mechanism

        conc = rt.darray("conc", cfg.starting_concentrations(), D_REPL)
        trace = WorkloadTrace(dataset_name=ds.name, shape=ds.shape)
        hourly_mean: Dict[str, List[float]] = {s: [] for s in TRACKED_SPECIES}

        for h_idx in range(cfg.hours):
            hour = cfg.hour_of_day(h_idx)

            with rt.span(f"hour:{hour:02d}", kind="hour", hour=hour):
                # I/O processing is sequential: every node waits (this is
                # the bottleneck task parallelism later removes).
                inres = inputhour(ds, hour)
                conditions = inres.conditions
                nsteps, dt = phys.hour_steps(hour)
                operators, pre_ops = pretrans(ds, phys.transport, hour, dt / 2.0)
                rt.sequential_io("inputhour", inres.nbytes, ops=inres.ops)
                rt.sequential_io("pretrans", 0.0, ops=pre_ops)

                steps: List[StepTrace] = []
                for j in range(nsteps):
                    with rt.span(f"step:{j}", kind="step", index=j):
                        t1 = self._transport_phase(conc, operators, conditions)
                        chem_ops = self._chemistry_phase(conc, conditions, dt)
                        aero_ops = self._aerosol_phase(conc)
                        t2 = self._transport_phase(conc, operators, conditions)
                    steps.append(
                        StepTrace(
                            transport1_ops=t1,
                            chemistry_ops=chem_ops,
                            aerosol_ops=aero_ops,
                            transport2_ops=t2,
                        )
                    )

                charge_output_gather(conc)
                _, out_bytes, out_ops = outputhour(hour, conc.data)
                rt.sequential_io("outputhour", out_bytes, ops=out_ops)

            trace.hours.append(
                HourTrace(
                    hour=hour,
                    input_bytes=inres.nbytes,
                    input_ops=inres.ops,
                    pretrans_ops=pre_ops,
                    nsteps=nsteps,
                    steps=steps,
                    output_bytes=out_bytes,
                    output_ops=out_ops,
                )
            )
            for s in TRACKED_SPECIES:
                hourly_mean[s].append(float(conc.data[mech.index[s]].mean()))

        result = AirshedResult(
            trace=trace, final_conc=conc.data.copy(), hourly_mean=hourly_mean
        )
        return result, _timing_from_runtime(rt)

    # ------------------------------------------------------------------
    def _transport_phase(self, conc, operators, conditions) -> np.ndarray:
        rt = self.runtime
        phys = self.physics
        layers = self.config.dataset.layers
        ops_by_layer = np.zeros(layers)

        rt.redistribute(conc, D_TRANS)

        def kernel(local: np.ndarray, layer_ids: np.ndarray, rank: int) -> float:
            total = 0.0
            for i, layer in enumerate(layer_ids):
                local[:, i, :], ops = phys.transport_layer(
                    local[:, i, :], operators[layer], conditions.boundary
                )
                ops_by_layer[layer] = ops
                total += ops
            return total

        rt.parallel_do(conc, "transport", kernel)
        return ops_by_layer

    def _chemistry_phase(self, conc, conditions, dt) -> np.ndarray:
        rt = self.runtime
        phys = self.physics
        npoints = self.config.dataset.npoints
        ops_by_point = np.zeros(npoints)

        rt.redistribute(conc, D_CHEM)

        def kernel(local: np.ndarray, point_ids: np.ndarray, rank: int) -> float:
            out, per_point = phys.chemistry_columns(
                local, conditions, dt, point_indices=point_ids
            )
            local[...] = out
            ops_by_point[point_ids] = per_point
            return float(per_point.sum())

        rt.parallel_do(conc, "chemistry", kernel)
        return ops_by_point

    def _aerosol_phase(self, conc) -> float:
        rt = self.runtime
        rt.redistribute(conc, D_REPL)
        holder: Dict[str, float] = {}

        def kernel(data: np.ndarray) -> float:
            holder["ops"] = self.physics.aerosol_step(data)
            return holder["ops"]

        rt.replicated_do(conc, "aerosol", kernel)
        return holder["ops"]


# ---------------------------------------------------------------------------
# trace replay
# ---------------------------------------------------------------------------
class HourReplayer:
    """Charges one hour's main-loop work onto a processor subgroup.

    Shared by the data-parallel replay (subgroup = whole machine) and
    the task-parallel replay (subgroup = the compute stage).
    """

    def __init__(self, group: Subgroup, trace: WorkloadTrace, name: str = "conc"):
        self.group = group
        self.trace = trace
        self.array = DistributedArray(
            name, np.zeros(trace.shape), D_REPL, group
        )
        # The main loop cycles through exactly four (src, dst)
        # distribution pairs; label, plan and batch are pure functions
        # of the pair, so they are resolved once and replayed from here.
        self._to_cache: Dict[tuple, tuple] = {}
        # Per-layout ownership selectors for the compute charges.
        self._seg_cache: Dict[object, list] = {}

    def _to(self, dist: Distribution) -> None:
        key = (self.array.distribution, dist)
        cached = self._to_cache.get(key)
        if cached is None:
            label = f"{dist_label(key[0])}->{dist_label(dist)}"
            plan = self.array.set_distribution(dist)
            batch = None if plan.is_empty() else plan.batch
            self._to_cache[key] = (label, batch)
        else:
            label, batch = cached
            self.array.set_distribution(dist)
        if batch is not None:
            self.group.charge_communication(label, batch)

    def gather_output(self, dst_rank: int = 0) -> None:
        charge_output_gather(self.array, dst_rank=dst_rank)

    def _charge_distributed(self, name: str, ops_per_index: np.ndarray) -> None:
        layout = self.array.layout
        segs = self._seg_cache.get(layout)
        if segs is None:
            segs = [self.array.local_indices(r) for r in range(self.group.size)]
            self._seg_cache[layout] = segs
        ops_by_rank = {}
        for rank, idx in enumerate(segs):
            ops_by_rank[rank] = float(ops_per_index[idx].sum()) if idx.size else 0.0
        self.group.charge_compute(name, ops_by_rank)

    def run_hour(self, hour: HourTrace, gather: bool = True) -> None:
        """Replay the compute/communication phases of one hour.

        ``gather=True`` charges the end-of-hour gather of the
        concentration array onto the output-processing node (the array's
        *distribution* stays ``D_Trans``; ``outputhour`` reads a copy).
        The pipelined task-parallel driver passes ``gather=False`` — the
        inter-stage handoff is the gather there.
        """
        tracer = self.group.cluster.tracer
        for j, step in enumerate(hour.steps):
            with tracer.span(
                f"step:{j}", kind="step", clock=self.group.time, index=j
            ):
                self._to(D_TRANS)
                self._charge_distributed("transport", step.transport1_ops)
                self._to(D_CHEM)
                self._charge_distributed("chemistry", step.chemistry_ops)
                self._to(D_REPL)
                self.group.charge_replicated_compute("aerosol", step.aerosol_ops)
                self._to(D_TRANS)
                self._charge_distributed("transport", step.transport2_ops)
        if gather:
            self.gather_output()


def replay_data_parallel(
    trace: WorkloadTrace,
    machine: MachineSpec,
    nprocs: int,
    tracer: Optional[Tracer] = None,
) -> ParallelTiming:
    """Simulate the data-parallel Airshed from a recorded trace.

    Pass a fresh :class:`~repro.observe.tracer.Tracer` to capture the
    run's span stream (for ``repro trace`` export and the
    predicted-vs-observed overlay).
    """
    rt = FxRuntime(machine, nprocs, tracer=tracer)
    declare_airshed_phases(rt)
    replayer = HourReplayer(rt.world, trace)
    for hour in trace.hours:
        with rt.span(f"hour:{hour.hour:02d}", kind="hour", hour=hour.hour):
            rt.sequential_io("inputhour", hour.input_bytes, ops=hour.input_ops)
            rt.sequential_io("pretrans", 0.0, ops=hour.pretrans_ops)
            replayer.run_hour(hour)
            rt.sequential_io("outputhour", hour.output_bytes, ops=hour.output_ops)
    return _timing_from_runtime(rt)
