"""Batched ensemble execution: N members, one chemistry sweep.

An :class:`~repro.model.ensemble.EmissionEnsemble` of N perturbed
inventories is N full simulations, yet ~97% of each is per-grid-point
chemistry and the members differ *only* in their emission factors.
:class:`BatchedEnsemble` exploits that: the member states are stacked
along the point axis into one ``(n_species, members*layers*points)``
structure-of-arrays block and integrated in a single
:meth:`~repro.chemistry.youngboris.YoungBorisSolver.integrate` call per
operator-split step, with ``member_edges`` keeping each member's BLAS
matmuls on its own columns.  Hourly transport setup (``pretrans`` wind
interpolation + SUPG factorisation) depends only on the wind field, so
it is computed once and shared by every member.

The contract is **bitwise identity**: each member's
:class:`~repro.model.results.AirshedResult` — final concentrations,
hourly means, surface snapshots and the full
:class:`~repro.model.results.WorkloadTrace` — equals what its own
:class:`~repro.model.sequential.SequentialAirshed` run produces, on
every chemistry backend.  The ground rules making that possible are
documented in ``docs/ENSEMBLES.md`` and pinned by
``tests/model/test_batched.py``:

* every solver stage except the two matmuls is elementwise per point,
  and per-point adaptivity (substep size, remaining time, error) never
  couples columns, so batching cannot perturb a member's trajectory;
* the matmuls run per member slice (``member_edges``), feeding dgemm
  exactly the operands the independent run would;
* phases that are *not* per-point run per member: the aerosol step
  (its condensation sink is a domain-global mean), vertical diffusion,
  transport application, and all I/O packing.

Because batching is exact over *any* subset, the scheduler can fuse
only the uncached members of an ensemble group and still hit the
per-member science cache for the rest (see ``repro.sched.runner``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.chemistry import ChemistryStats
from repro.chemistry.youngboris import OPS_PER_SUBSTEP_PER_SPECIES
from repro.io.hourly import inputhour, outputhour, pretrans
from repro.model.config import AirshedConfig
from repro.model.ensemble import EmissionEnsemble, EnsembleSummary
from repro.model.physics import AirshedPhysics
from repro.model.results import (
    AirshedResult,
    HourTrace,
    StepTrace,
    WorkloadTrace,
)
from repro.model.sequential import TRACKED_SPECIES
from repro.observe.tracer import Tracer

__all__ = ["BatchedEnsemble", "run_batched"]

#: Config fields that must agree for members to share one physics
#: (solver controls, transport setup, step-count bounds, run window).
_SHARED_FIELDS = (
    "hours", "start_hour", "min_steps", "max_steps", "theta",
    "boundary_relax", "chem_eps", "chem_max_substeps",
    "track_surface_fields",
)


def _check_fusable(configs: Sequence[AirshedConfig]) -> None:
    if not configs:
        raise ValueError("need at least one member config")
    head = configs[0]
    for cfg in configs[1:]:
        for f in _SHARED_FIELDS:
            if getattr(cfg, f) != getattr(head, f):
                raise ValueError(
                    f"member configs disagree on {f!r}: cannot share "
                    "physics across the batch"
                )
        if cfg.dataset.shape != head.dataset.shape:
            raise ValueError("member datasets have different shapes")
        if cfg.dataset.name != head.dataset.name:
            raise ValueError("member datasets derive from different bases")


def run_batched(
    configs: Sequence[AirshedConfig],
    tracer: Optional[Tracer] = None,
) -> List[AirshedResult]:
    """Run member configs as one batched sweep; per-member results.

    The configs must share everything except their dataset's emission
    scaling (``PerturbedDataset`` members of one base dataset).  Each
    returned :class:`AirshedResult` is bitwise identical to running the
    corresponding config through :class:`SequentialAirshed` alone —
    batching over any subset of members is exact, which the scheduler
    relies on when some members are already science-cached.
    """
    _check_fusable(configs)
    tracer = tracer if tracer is not None else Tracer()
    nmem = len(configs)
    phys = AirshedPhysics(configs[0])
    solver = phys.solver
    datasets = [cfg.dataset for cfg in configs]
    ns, nl, npts = datasets[0].shape
    cells = nl * npts
    edges = np.arange(nmem + 1, dtype=np.int64) * cells

    concs = [cfg.starting_concentrations() for cfg in configs]
    traces = [
        WorkloadTrace(dataset_name=ds.name, shape=ds.shape)
        for ds in datasets
    ]
    hourly_mean: List[Dict[str, List[float]]] = [
        {s: [] for s in TRACKED_SPECIES} for _ in range(nmem)
    ]
    surfaces: List[List[np.ndarray]] = [[] for _ in range(nmem)]
    mech = datasets[0].mechanism
    track_surface = configs[0].track_surface_fields

    batch = np.empty((ns, nmem * cells))
    E_b = np.empty((ns, nmem * cells))

    span = tracer.span
    for h_idx in range(configs[0].hours):
        hour = configs[0].hour_of_day(h_idx)
        with span(f"hour:{hour:02d}", kind="hour", hour=hour,
                  members=nmem):
            # --- inputhour per member (each parses its own scaled
            # inventory through the real pack/unpack), pretrans once ---
            with span("io:inputhour", kind="io", members=nmem):
                inres = [inputhour(ds, hour) for ds in datasets]
            conds = [r.conditions for r in inres]
            # Perturbation touches only emissions; meteorology is the
            # base dataset's, identical for every member.
            for cond in conds[1:]:
                if (cond.temperature != conds[0].temperature
                        or cond.sun != conds[0].sun):
                    raise ValueError(
                        "members disagree on meteorology; cannot batch"
                    )
            nsteps, dt = phys.hour_steps(hour)
            with span("io:pretrans", kind="io"):
                operators, pre_ops = pretrans(
                    datasets[0], phys.transport, hour, dt / 2.0
                )

            steps: List[List[StepTrace]] = [[] for _ in range(nmem)]
            for j in range(nsteps):
                with span(f"step:{j}", kind="step", index=j):
                    with span("transport", kind="compute", members=nmem):
                        t1 = [
                            _transport_all(phys, concs[i], operators,
                                           conds[i])
                            for i in range(nmem)
                        ]
                    with span("chemistry", kind="compute", members=nmem):
                        t_chem = tracer.now()
                        chem_ops = _chemistry_batched(
                            phys, solver, concs, conds, dt,
                            batch, E_b, edges, tracer,
                        )
                        # Per-worker tile spans (no-op without a pool).
                        phys.chemistry.emit_tile_spans(tracer, t_chem)
                    with span("aerosol", kind="compute", members=nmem):
                        # The condensation sink is each member's own
                        # domain-global aerosol mean: strictly per run.
                        aero_ops = [
                            phys.aerosol_step(concs[i])
                            for i in range(nmem)
                        ]
                    with span("transport", kind="compute", members=nmem):
                        t2 = [
                            _transport_all(phys, concs[i], operators,
                                           conds[i])
                            for i in range(nmem)
                        ]
                for i in range(nmem):
                    steps[i].append(
                        StepTrace(
                            transport1_ops=t1[i],
                            chemistry_ops=chem_ops[i],
                            aerosol_ops=aero_ops[i],
                            transport2_ops=t2[i],
                        )
                    )

            with span("io:outputhour", kind="io", members=nmem):
                outs = [outputhour(hour, concs[i]) for i in range(nmem)]
        for i in range(nmem):
            _, out_bytes, out_ops = outs[i]
            traces[i].hours.append(
                HourTrace(
                    hour=hour,
                    input_bytes=inres[i].nbytes,
                    input_ops=inres[i].ops,
                    pretrans_ops=pre_ops,
                    nsteps=nsteps,
                    steps=steps[i],
                    output_bytes=out_bytes,
                    output_ops=out_ops,
                )
            )
            for s in TRACKED_SPECIES:
                hourly_mean[i][s].append(
                    float(concs[i][mech.index[s]].mean())
                )
            if track_surface:
                surfaces[i].append(concs[i][:, 0, :].copy())

    return [
        AirshedResult(
            trace=traces[i],
            final_conc=concs[i],
            hourly_mean=hourly_mean[i],
            hourly_surface=surfaces[i] if track_surface else None,
        )
        for i in range(nmem)
    ]


def _transport_all(phys, conc, operators, conditions) -> np.ndarray:
    """Per-layer transport in place (SequentialAirshed._transport_all)."""
    ops = np.zeros(phys.dataset.layers)
    for layer, op in enumerate(operators):
        conc[:, layer, :], ops[layer] = phys.transport_layer(
            conc[:, layer, :], op, conditions.boundary
        )
    return ops


def _chemistry_batched(
    phys: AirshedPhysics,
    solver,
    concs: List[np.ndarray],
    conds,
    dt: float,
    batch: np.ndarray,
    E_b: np.ndarray,
    edges: np.ndarray,
    tracer: Tracer,
) -> List[np.ndarray]:
    """One fused ``Lcz`` application; per-member op-count arrays.

    Mirrors :meth:`AirshedPhysics.chemistry_columns` with the solver
    call batched: members are packed into ``batch``/``E_b`` (pure data
    movement), integrated once with ``member_edges``, then unpacked for
    the per-member vertical diffusion and accounting.
    """
    nmem = len(concs)
    ns, nl, npts = concs[0].shape
    cells = nl * npts
    for i in range(nmem):
        s = i * cells
        batch[:, s:s + cells] = concs[i].reshape(ns, cells)
        cond = conds[i]
        E = np.zeros((ns, nl, npts))
        E[:, 0, :] = cond.emissions
        if cond.elevated is not None:
            E += cond.elevated
        E_b[:, s:s + cells] = E.reshape(ns, cells)

    stats = ChemistryStats()
    flat = solver.integrate(
        batch, dt, conds[0].temperature, conds[0].sun,
        emissions=E_b, stats=stats, member_edges=edges,
    )
    tracer.counters.inc("ensemble:batches")
    tracer.counters.inc("ensemble:batched_members", nmem)
    tracer.counters.observe("ensemble:members_per_batch", nmem)

    attempts = stats.per_point_substeps
    chem_ops: List[np.ndarray] = []
    for i in range(nmem):
        s = i * cells
        out = np.ascontiguousarray(flat[:, s:s + cells]).reshape(
            ns, nl, npts
        )
        out, vd_ops = phys.vertical.step(out, dt)
        per_cell = attempts[s:s + cells].reshape(nl, npts)
        chem_ops.append(
            per_cell.sum(axis=0) * ns * OPS_PER_SUBSTEP_PER_SPECIES
            + vd_ops / npts
        )
        concs[i] = out
    return chem_ops


class BatchedEnsemble(EmissionEnsemble):
    """An :class:`EmissionEnsemble` executed as one batched sweep.

    Same membership, seeding (``seed*7919 + index``) and summary as the
    independent runner — and, by the batching ground rules, the same
    results bit for bit — at a small multiple of single-run cost
    instead of N times it (see ``docs/PERFORMANCE.md`` for measured
    throughput).
    """

    def __init__(self, config: AirshedConfig, members: int = 8,
                 sigma: float = 0.3, seed: int = 0,
                 tracer: Optional[Tracer] = None):
        super().__init__(config, members=members, sigma=sigma, seed=seed)
        self.tracer = tracer if tracer is not None else Tracer()

    def run_members(self) -> List[AirshedResult]:
        """Per-member results, bitwise equal to N independent runs."""
        configs = [self.member_config(i) for i in range(self.members)]
        return run_batched(configs, tracer=self.tracer)

    def run(self) -> EnsembleSummary:
        results = self.run_members()
        series: Dict[str, List[np.ndarray]] = {
            s: [] for s in TRACKED_SPECIES
        }
        for result in results:
            for s in TRACKED_SPECIES:
                series[s].append(result.species_series(s))
        stacked = {s: np.vstack(v) for s, v in series.items()}
        return EnsembleSummary(
            members=self.members,
            sigma=self.sigma,
            mean={s: v.mean(axis=0) for s, v in stacked.items()},
            std={s: v.std(axis=0) for s, v in stacked.items()},
            peaks={s: v.max(axis=1) for s, v in stacked.items()},
        )
