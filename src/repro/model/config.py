"""Configuration for Airshed runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.generators import Dataset

__all__ = ["AirshedConfig"]


@dataclass
class AirshedConfig:
    """Parameters of one Airshed simulation.

    Parameters
    ----------
    dataset:
        The materialised :class:`~repro.datasets.generators.Dataset`.
    hours:
        Number of simulated hours (the paper's outer ``nhrs`` loop).
    start_hour:
        Local-time hour of day the run starts at (6 = morning rush).
    min_steps / max_steps:
        Bounds on the runtime-chosen per-hour step count.
    theta:
        Transport time-integration parameter (0.5 = Crank-Nicolson).
    boundary_relax:
        Per-step relaxation factor pulling inflow-boundary nodes toward
        the hourly background concentrations (1 = hard reset, 0 = off).
    chem_eps / chem_max_substeps:
        Young-Boris solver controls (accuracy versus work).
    chem_workers / chem_tile_cols:
        Multi-core tiled chemistry (:mod:`repro.model.tiled`):
        ``chem_workers > 1`` fans the solver's elementwise stages out
        over a persistent thread pool in contiguous column tiles
        (``chem_tile_cols`` wide, or one balanced tile per worker when
        ``None``).  Results are bitwise identical for every worker
        count and tile size — a wall-clock knob, never a science knob.
    track_surface_fields:
        Keep per-hour surface-layer snapshots in the result (used by the
        population exposure model); costs memory on large datasets.
    initial_conc:
        Starting concentrations ``(species, layers, points)``; defaults
        to the dataset's morning initial conditions.  Used to resume
        from a checkpoint.
    """

    dataset: Dataset
    hours: int = 6
    start_hour: int = 6
    min_steps: int = 2
    max_steps: int = 10
    theta: float = 0.5
    boundary_relax: float = 0.5
    chem_eps: float = 0.01
    chem_max_substeps: int = 300
    chem_workers: int = 1
    chem_tile_cols: Optional[int] = None
    track_surface_fields: bool = False
    initial_conc: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.hours < 1:
            raise ValueError("hours must be >= 1")
        if not (1 <= self.min_steps <= self.max_steps):
            raise ValueError("need 1 <= min_steps <= max_steps")
        if not (0.0 <= self.theta <= 1.0):
            raise ValueError("theta must lie in [0, 1]")
        if not (0.0 <= self.boundary_relax <= 1.0):
            raise ValueError("boundary_relax must lie in [0, 1]")
        if self.chem_workers < 1:
            raise ValueError("chem_workers must be >= 1")
        if self.chem_tile_cols is not None and self.chem_tile_cols < 1:
            raise ValueError("chem_tile_cols must be >= 1")
        if self.initial_conc is not None:
            self.initial_conc = np.asarray(self.initial_conc, dtype=float)
            if self.initial_conc.shape != self.dataset.shape:
                raise ValueError(
                    f"initial_conc shape {self.initial_conc.shape} != "
                    f"dataset shape {self.dataset.shape}"
                )

    def starting_concentrations(self) -> np.ndarray:
        """The run's starting state (checkpoint or dataset default)."""
        if self.initial_conc is not None:
            return self.initial_conc.copy()
        return self.dataset.initial_conditions()

    def hour_of_day(self, index: int) -> int:
        """Wall-clock hour for the ``index``-th simulated hour."""
        return (self.start_hour + index) % 24
