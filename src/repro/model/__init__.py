"""The Airshed application: sequential reference, data- and task-parallel."""

from repro.model.checkpoint import (
    Checkpoint,
    load_checkpoint,
    resume_config,
    save_checkpoint,
)
from repro.model.batched import BatchedEnsemble, run_batched
from repro.model.config import AirshedConfig
from repro.model.ensemble import EmissionEnsemble, EnsembleSummary, PerturbedDataset
from repro.model.dataparallel import (
    D_CHEM,
    D_REPL,
    D_TRANS,
    DataParallelAirshed,
    HourReplayer,
    ParallelTiming,
    replay_data_parallel,
)
from repro.model.physics import AirshedPhysics
from repro.model.results import (
    AirshedResult,
    HourTrace,
    StepTrace,
    WorkloadTrace,
    concat_results,
)
from repro.model.sequential import TRACKED_SPECIES, SequentialAirshed
from repro.model.taskparallel import (
    TaskParallelAirshed,
    replay_best_configuration,
    replay_task_parallel,
)

__all__ = [
    "AirshedConfig",
    "BatchedEnsemble",
    "Checkpoint",
    "EmissionEnsemble",
    "EnsembleSummary",
    "PerturbedDataset",
    "TaskParallelAirshed",
    "load_checkpoint",
    "replay_best_configuration",
    "resume_config",
    "save_checkpoint",
    "AirshedPhysics",
    "AirshedResult",
    "D_CHEM",
    "D_REPL",
    "D_TRANS",
    "DataParallelAirshed",
    "HourReplayer",
    "HourTrace",
    "ParallelTiming",
    "SequentialAirshed",
    "StepTrace",
    "TRACKED_SPECIES",
    "WorkloadTrace",
    "concat_results",
    "replay_data_parallel",
    "replay_task_parallel",
    "run_batched",
]
