"""Result containers: workload traces and run summaries.

The central artefact is the :class:`WorkloadTrace`.  A sequential run of
the real numerics records, deterministically, every quantity that
determines parallel performance:

* per hour: input/output byte counts, sequential preprocessing ops, and
  the runtime-chosen number of steps;
* per step: transport ops *per layer*, chemistry ops *per grid point*
  (the load the distributions have to spread), and the replicated
  aerosol ops.

Replaying a trace on the simulated machine for any (machine, P) is then
exact and cheap — precisely the decomposition the paper's Section 4
performance model exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "StepTrace",
    "HourTrace",
    "WorkloadTrace",
    "AirshedResult",
    "concat_results",
]


@dataclass
class StepTrace:
    """Work counts of one main-loop step (transport/chemistry/transport)."""

    transport1_ops: np.ndarray  # (layers,) ops per layer, first half-step
    chemistry_ops: np.ndarray   # (npoints,) ops per grid column (gas+vertical)
    aerosol_ops: float          # replicated ops
    transport2_ops: np.ndarray  # (layers,) ops per layer, second half-step

    def total_ops(self) -> float:
        return float(
            self.transport1_ops.sum()
            + self.chemistry_ops.sum()
            + self.aerosol_ops
            + self.transport2_ops.sum()
        )


@dataclass
class HourTrace:
    """Work counts of one simulated hour."""

    hour: int
    input_bytes: int
    input_ops: float
    pretrans_ops: float
    nsteps: int
    steps: List[StepTrace]
    output_bytes: int
    output_ops: float

    def io_bytes(self) -> int:
        return self.input_bytes + self.output_bytes


@dataclass
class WorkloadTrace:
    """Deterministic record of one full Airshed run's work."""

    dataset_name: str
    shape: Tuple[int, int, int]  # (species, layers, points)
    hours: List[HourTrace] = field(default_factory=list)

    @property
    def n_species(self) -> int:
        return self.shape[0]

    @property
    def layers(self) -> int:
        return self.shape[1]

    @property
    def npoints(self) -> int:
        return self.shape[2]

    @property
    def nhours(self) -> int:
        return len(self.hours)

    def total_steps(self) -> int:
        return sum(h.nsteps for h in self.hours)

    def total_ops_by_phase(self) -> Dict[str, float]:
        """Sequential op totals per phase (for the performance model)."""
        out = {"transport": 0.0, "chemistry": 0.0, "aerosol": 0.0, "io": 0.0}
        for h in self.hours:
            out["io"] += h.input_ops + h.pretrans_ops + h.output_ops
            for s in h.steps:
                out["transport"] += float(
                    s.transport1_ops.sum() + s.transport2_ops.sum()
                )
                out["chemistry"] += float(s.chemistry_ops.sum())
                out["aerosol"] += s.aerosol_ops
        return out

    def total_io_bytes(self) -> int:
        return sum(h.io_bytes() for h in self.hours)

    def expected_comm_steps(self) -> int:
        """Communication phases of the data-parallel main loop.

        Per step: ``D_Trans->D_Chem``, ``D_Chem->D_Repl`` and
        ``D_Repl->D_Trans`` (the last entering the second transport).
        Per hour: one end-of-hour output gather.  Plus the single
        initial ``D_Repl->D_Trans`` of the first step of the run (the
        array starts replicated; afterwards each hour already begins in
        ``D_Trans``): ``sum_h (3*nsteps_h + 1) + 1``.
        """
        return sum(3 * h.nsteps + 1 for h in self.hours) + 1


@dataclass
class AirshedResult:
    """Output of a full (sequential or parallel) Airshed run."""

    trace: WorkloadTrace
    final_conc: np.ndarray                    # (species, layers, points)
    hourly_mean: Dict[str, List[float]]       # species -> per-hour domain mean
    hourly_surface: Optional[List[np.ndarray]] = None  # per-hour layer-0 fields

    def species_series(self, name: str) -> np.ndarray:
        if name not in self.hourly_mean:
            raise KeyError(f"no series recorded for species {name!r}")
        return np.asarray(self.hourly_mean[name])

    def peak(self, name: str) -> float:
        """Peak hourly domain-mean of a species over the run."""
        return float(self.species_series(name).max())


def concat_results(parts: List["AirshedResult"]) -> AirshedResult:
    """Join consecutive chunk results into one run's result.

    ``parts`` must be results of back-to-back runs of the same dataset
    (hour ``k`` resumed from hour ``k-1``'s final state, e.g. via
    :mod:`repro.model.checkpoint`).  Because each hour's outputs depend
    only on the entering concentrations and the hour of day, the joined
    result is bitwise identical to an unbroken run over the same hours.
    """
    if not parts:
        raise ValueError("concat_results needs at least one part")
    if len(parts) == 1:
        return parts[0]
    first = parts[0]
    for p in parts[1:]:
        if p.trace.dataset_name != first.trace.dataset_name:
            raise ValueError(
                f"cannot concat results of {p.trace.dataset_name!r} onto "
                f"{first.trace.dataset_name!r}"
            )
        if p.trace.shape != first.trace.shape:
            raise ValueError("cannot concat results of different shapes")
        if set(p.hourly_mean) != set(first.hourly_mean):
            raise ValueError("cannot concat results tracking different species")
    trace = WorkloadTrace(
        dataset_name=first.trace.dataset_name,
        shape=first.trace.shape,
        hours=[h for p in parts for h in p.trace.hours],
    )
    hourly_mean = {
        s: [v for p in parts for v in p.hourly_mean[s]] for s in first.hourly_mean
    }
    if all(p.hourly_surface is not None for p in parts):
        surface = [f for p in parts for f in p.hourly_surface]
    else:
        surface = None
    return AirshedResult(
        trace=trace,
        final_conc=parts[-1].final_conc,
        hourly_mean=hourly_mean,
        hourly_surface=surface,
    )
