"""Hourly I/O processing (inputhour / pretrans / outputhour)."""

from repro.io.files import (
    pack_concentrations,
    pack_hourly,
    unpack_concentrations,
    unpack_hourly,
)
from repro.io.hourly import InputHourResult, inputhour, outputhour, pretrans

__all__ = [
    "InputHourResult",
    "inputhour",
    "outputhour",
    "pack_concentrations",
    "pack_hourly",
    "pretrans",
    "unpack_concentrations",
    "unpack_hourly",
]
