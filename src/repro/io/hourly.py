"""The I/O processing phase: inputhour / pretrans / outputhour.

The paper groups these three routines as "I/O processing": they have
limited parallelism and run sequentially, which makes them the Amdahl
bottleneck that Section 5's task parallelism attacks.  Here they do real
work — serialising and parsing actual byte streams — and report the byte
and op counts that the simulated machine prices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.datasets.generators import Dataset, HourlyConditions
from repro.io.files import pack_concentrations, pack_hourly, unpack_hourly
from repro.transport.supg import SUPGTransport, TransportOperator

__all__ = ["InputHourResult", "inputhour", "pretrans", "outputhour"]

#: Sequential ops charged per unpacked byte (parsing/unit conversion).
OPS_PER_INPUT_BYTE = 1.0
#: Sequential ops charged per packed output byte.
OPS_PER_OUTPUT_BYTE = 0.5


@dataclass
class InputHourResult:
    """What ``inputhour`` produces: parsed conditions plus I/O accounting."""

    conditions: HourlyConditions
    nbytes: int
    ops: float


def inputhour(dataset: Dataset, hour: int) -> InputHourResult:
    """Read and parse the hour's input record (a real pack/unpack)."""
    blob = pack_hourly(dataset.hourly(hour))
    conditions = unpack_hourly(blob)
    return InputHourResult(
        conditions=conditions,
        nbytes=len(blob),
        ops=len(blob) * OPS_PER_INPUT_BYTE,
    )


def pretrans(
    dataset: Dataset,
    transport: SUPGTransport,
    hour: int,
    dt: float,
) -> Tuple[List[TransportOperator], float]:
    """Pre-transport setup: per-layer wind interpolation + factorisation.

    Returns one factorised operator per layer and the sequential op
    count of the whole preprocessing (part of I/O processing in the
    paper's decomposition).
    """
    operators: List[TransportOperator] = []
    ops = 0.0
    for layer in range(dataset.layers):
        u = dataset.wind.velocity(dataset.grid.points, layer=layer, hour=hour)
        op = transport.prepare(u, dt)
        operators.append(op)
        ops += op.prep_ops
    return operators, ops


def outputhour(hour: int, conc: np.ndarray) -> Tuple[bytes, int, float]:
    """Pack the hourly concentration snapshot.

    Returns ``(blob, nbytes, ops)``.
    """
    blob = pack_concentrations(hour, conc)
    return blob, len(blob), len(blob) * OPS_PER_OUTPUT_BYTE
