"""Binary (de)serialisation of hourly records.

The real Airshed reads hourly meteorology/emissions files and writes
hourly concentration fields.  We serialise the synthetic equivalents to
actual bytes (``numpy`` ``.npz`` containers in memory or on disk) so the
I/O processing phase handles genuine byte streams whose sizes drive the
simulated sequential I/O cost.
"""

from __future__ import annotations

import io as _io
from typing import Tuple

import numpy as np

from repro.datasets.generators import HourlyConditions

__all__ = [
    "pack_hourly",
    "unpack_hourly",
    "pack_concentrations",
    "unpack_concentrations",
]


def pack_hourly(conditions: HourlyConditions) -> bytes:
    """Serialise an hourly input record to bytes."""
    buf = _io.BytesIO()
    payload = dict(
        hour=np.int64(conditions.hour),
        temperature=np.float64(conditions.temperature),
        sun=np.float64(conditions.sun),
        emissions=conditions.emissions,
        boundary=conditions.boundary,
    )
    if conditions.elevated is not None:
        payload["elevated"] = conditions.elevated
    np.savez(buf, **payload)
    return buf.getvalue()


def unpack_hourly(blob: bytes) -> HourlyConditions:
    """Parse bytes produced by :func:`pack_hourly`."""
    with np.load(_io.BytesIO(blob)) as z:
        return HourlyConditions(
            hour=int(z["hour"]),
            temperature=float(z["temperature"]),
            sun=float(z["sun"]),
            emissions=z["emissions"],
            boundary=z["boundary"],
            elevated=z["elevated"] if "elevated" in z.files else None,
        )


def pack_concentrations(hour: int, conc: np.ndarray) -> bytes:
    """Serialise an hourly concentration snapshot."""
    buf = _io.BytesIO()
    np.savez(buf, hour=np.int64(hour), conc=np.asarray(conc))
    return buf.getvalue()


def unpack_concentrations(blob: bytes) -> Tuple[int, np.ndarray]:
    with np.load(_io.BytesIO(blob)) as z:
        return int(z["hour"]), z["conc"]
