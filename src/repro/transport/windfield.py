"""Analytic wind and diffusivity fields.

The hourly meteorological inputs of the real Airshed datasets are
replaced by a deterministic analytic circulation: a diurnally rotating
synoptic flow plus a solid-body sea-breeze-like vortex centred on the
domain.  Both components are divergence-free, so the transport operators
see a mass-consistent wind, and the field varies smoothly hour to hour,
which is what drives the run-time choice of the number of transport
steps per hour (a CFL condition, "determined at runtime based on the
hourly inputs" in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["WindField"]


@dataclass(frozen=True)
class WindField:
    """Deterministic hourly wind over a rectangular domain.

    Parameters
    ----------
    domain:
        ``(width, height)`` in km.
    base_speed:
        Synoptic wind speed in km/s (0.005 km/s = 5 m/s).
    vortex_speed:
        Tangential speed of the recirculation at the domain edge (km/s).
    layer_shear:
        Fractional speed increase per vertical layer (winds strengthen
        aloft).
    diffusivity:
        Horizontal eddy diffusivity in km^2/s.
    period_hours:
        Period of the synoptic direction rotation.
    """

    domain: Tuple[float, float]
    base_speed: float = 0.004
    vortex_speed: float = 0.003
    layer_shear: float = 0.25
    diffusivity: float = 2.0e-3
    period_hours: float = 24.0

    def __post_init__(self) -> None:
        if self.domain[0] <= 0 or self.domain[1] <= 0:
            raise ValueError("domain extents must be positive")
        if self.base_speed < 0 or self.vortex_speed < 0:
            raise ValueError("speeds must be non-negative")
        if self.diffusivity < 0:
            raise ValueError("diffusivity must be non-negative")
        if self.period_hours <= 0:
            raise ValueError("period must be positive")

    def velocity(
        self, points: np.ndarray, layer: int = 0, hour: float = 0.0
    ) -> np.ndarray:
        """``(n, 2)`` wind vectors (km/s) at ``points`` for an hour index."""
        points = np.asarray(points, dtype=float)
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError("points must be (n, 2)")
        w, h = self.domain
        cx, cy = 0.5 * w, 0.5 * h
        theta = 2.0 * np.pi * (hour / self.period_hours)
        shear = 1.0 + self.layer_shear * layer

        # Rotating synoptic component (uniform over the domain).
        u = np.empty_like(points)
        u[:, 0] = self.base_speed * np.cos(theta)
        u[:, 1] = self.base_speed * np.sin(theta)

        # Solid-body vortex: u_t = omega * r, divergence-free.
        rx = points[:, 0] - cx
        ry = points[:, 1] - cy
        r_edge = 0.5 * min(w, h)
        omega = self.vortex_speed / r_edge
        u[:, 0] += -omega * ry
        u[:, 1] += omega * rx
        return u * shear

    def max_speed(self, layer: int, hour: float) -> float:
        """Upper bound on |u| over the domain (for CFL step selection)."""
        w, h = self.domain
        r_max = 0.5 * np.hypot(w, h)
        omega = self.vortex_speed / (0.5 * min(w, h))
        shear = 1.0 + self.layer_shear * layer
        return (self.base_speed + omega * r_max) * shear

    def cfl_steps_per_hour(
        self, cell_size: float, top_layer: int, hour: float, safety: float = 0.8
    ) -> int:
        """Transport steps needed this hour so that ``u dt <= safety*dx``.

        This is the runtime step-count decision of the Airshed main loop
        (Figure 1: ``nsteps`` depends on the hourly inputs).
        """
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        umax = self.max_speed(top_layer, hour)
        if umax == 0:
            return 1
        dt_max = safety * cell_size / umax
        return max(1, int(np.ceil(3600.0 / dt_max)))
