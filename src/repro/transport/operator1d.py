"""1-D operator-splitting transport on a uniform grid (the baseline).

The paper (Section 3) contrasts Airshed's 2-D multiscale SUPG operator
with the classic approach of the uniform-grid CIT model: split the
horizontal transport into 1-D ``Lx`` and ``Ly`` sweeps.  The rows (and
columns) are independent, so this operator parallelises over
``layers * ny`` (respectively ``layers * nx``) — far more parallelism —
but it needs a uniform grid (many more points for the same accuracy) and
a smaller time step when cross-flow is strong (splitting error).

Implemented as implicit upwind advection + central diffusion per line,
solved with a Thomas algorithm vectorised over all lines and species.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.grid.uniform import UniformGrid

__all__ = ["Splitting1DTransport"]

#: Abstract ops per cell per 1-D implicit sweep.
OPS_PER_CELL_SWEEP = 10.0


def _thomas_batch(lower, diag, upper, rhs):
    """Solve batched tridiagonal systems.

    ``lower/diag/upper``: (..., n) coefficient arrays (lower[...,0] and
    upper[...,-1] ignored); ``rhs``: (..., n).  Vectorised over leading
    dimensions.
    """
    n = rhs.shape[-1]
    cp = np.empty_like(rhs)
    dp = np.empty_like(rhs)
    cp[..., 0] = upper[..., 0] / diag[..., 0]
    dp[..., 0] = rhs[..., 0] / diag[..., 0]
    for i in range(1, n):
        denom = diag[..., i] - lower[..., i] * cp[..., i - 1]
        cp[..., i] = upper[..., i] / denom if i < n - 1 else 0.0
        dp[..., i] = (rhs[..., i] - lower[..., i] * dp[..., i - 1]) / denom
    x = np.empty_like(rhs)
    x[..., n - 1] = dp[..., n - 1]
    for i in range(n - 2, -1, -1):
        x[..., i] = dp[..., i] - cp[..., i] * x[..., i + 1]
    return x


class Splitting1DTransport:
    """``Lx(dt) Ly(dt)`` splitting on a uniform grid."""

    def __init__(self, grid: UniformGrid, diffusivity: float):
        if diffusivity < 0:
            raise ValueError("diffusivity must be non-negative")
        self.grid = grid
        self.diffusivity = float(diffusivity)

    # ------------------------------------------------------------------
    def _sweep_coefficients(
        self, vel: np.ndarray, spacing: float, dt: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Implicit upwind + diffusion coefficients along the last axis.

        ``vel``: (..., n) face-centred velocity approximated by the cell
        value.  No-flux boundaries (first/last cell couple inward only).
        """
        co = dt / spacing
        cd = self.diffusivity * dt / spacing**2
        up = np.maximum(vel, 0.0) * co   # donor flux to the right
        dn = np.maximum(-vel, 0.0) * co  # donor flux to the left

        # Donor-cell form: cell i gains up[i-1]*c[i-1] from the left and
        # dn[i+1]*c[i+1] from the right, and loses its own up[i]+dn[i].
        # Interior column sums of the implicit matrix are exactly 1, so
        # the sweep conserves mass away from the open boundaries.
        lower = np.zeros_like(vel)
        upper = np.zeros_like(vel)
        lower[..., 1:] = -(up[..., :-1] + cd)
        upper[..., :-1] = -(dn[..., 1:] + cd)
        diag = 1.0 + up + dn + 2.0 * cd
        return lower, diag, upper

    def _sweep(self, field: np.ndarray, vel: np.ndarray, spacing: float,
               dt: float, boundary: float) -> np.ndarray:
        """One implicit 1-D sweep along the last axis of ``field``.

        Boundaries are open: outflow leaves the domain and inflow
        carries the background concentration ``boundary``.
        """
        lower, diag, upper = self._sweep_coefficients(vel, spacing, dt)
        co = dt / spacing
        cd = self.diffusivity * dt / spacing**2
        rhs = field.copy()
        # Ghost-cell inflow at the two ends.
        rhs[..., 0] += (np.maximum(vel[..., 0], 0.0) * co + cd) * boundary
        rhs[..., -1] += (np.maximum(-vel[..., -1], 0.0) * co + cd) * boundary
        return _thomas_batch(lower, diag, upper, rhs)

    # ------------------------------------------------------------------
    def step(
        self,
        conc: np.ndarray,
        u_field: np.ndarray,
        dt: float,
        boundary: float = 0.0,
    ) -> Tuple[np.ndarray, float]:
        """Advance ``conc`` (n_species, nx*ny) by ``dt`` via Lx then Ly.

        ``u_field``: (nx*ny, 2) cell velocities; ``boundary`` is the
        inflow (background) concentration at the open domain edges.
        Returns the new concentrations and the deterministic op count.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        conc = np.atleast_2d(np.asarray(conc, dtype=float))
        g = self.grid
        if conc.shape[1] != g.npoints:
            raise ValueError(
                f"conc has {conc.shape[1]} points, grid has {g.npoints}"
            )
        nspec = conc.shape[0]
        c = conc.reshape(nspec, g.nx, g.ny)
        ux = np.asarray(u_field)[:, 0].reshape(g.nx, g.ny)
        uy = np.asarray(u_field)[:, 1].reshape(g.nx, g.ny)

        # Lx: sweep along x (axis 1).  Move x last: (nspec, ny, nx).
        cx = np.swapaxes(c, 1, 2)
        vx = np.broadcast_to(ux.T, cx.shape[1:])
        cx = self._sweep(cx, np.broadcast_to(vx, cx.shape), g.dx, dt, boundary)
        c = np.swapaxes(cx, 1, 2)

        # Ly: sweep along y (axis 2, already last).
        vy = np.broadcast_to(uy, c.shape)
        c = self._sweep(c, vy, g.dy, dt, boundary)

        ops = 2.0 * nspec * g.npoints * OPS_PER_CELL_SWEEP
        return c.reshape(nspec, g.npoints), float(ops)

    def total_mass(self, conc: np.ndarray) -> np.ndarray:
        conc = np.atleast_2d(conc)
        return conc.sum(axis=1) * self.grid.dx * self.grid.dy

    def degree_of_parallelism(self, layers: int) -> int:
        """Independent work units per sweep: layers x cross-dimension."""
        return layers * min(self.grid.nx, self.grid.ny)
