"""SUPG finite-element horizontal transport.

Airshed solves horizontal transport with the Streamline Upwind
Petrov-Galerkin (SUPG) finite element method of Odman & Russell on the
multiscale grid.  The crucial structural property (paper, Sections 2-3):
the 2-D operator couples *all* grid points of a layer in one implicit
solve, so the transport phase parallelises only over layers — 5-way
parallelism for the paper's datasets — unlike 1-D splitting operators.

Implementation: P1 elements on the Delaunay mesh, lumped mass matrix,
element-wise constant velocity, streamline stabilisation
``tau_e = h_e / (2|u_e|)``, and a theta-scheme (Crank-Nicolson by
default) whose implicit matrix is factorised once per hour per layer and
reused across species and steps — mirroring how the Fortran code
amortises its solver setup over the 35 species.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp
from scipy.sparse.linalg import splu

from repro.grid.mesh import TriMesh

__all__ = ["SUPGTransport", "TransportOperator"]

#: Abstract ops per nonzero of the LU factors per triangular solve.
OPS_PER_NNZ_SOLVE = 4.0
#: Abstract ops per nonzero of the assembled matrix for the rhs product.
OPS_PER_NNZ_MATVEC = 2.0
#: Abstract ops per nonzero for the factorisation itself.
OPS_PER_NNZ_FACTOR = 30.0


class SUPGTransport:
    """Assembles SUPG advection-diffusion operators on a mesh."""

    def __init__(self, mesh: TriMesh, diffusivity: float, theta: float = 0.5):
        if diffusivity < 0:
            raise ValueError("diffusivity must be non-negative")
        if not (0.0 <= theta <= 1.0):
            raise ValueError("theta must lie in [0, 1]")
        self.mesh = mesh
        self.diffusivity = float(diffusivity)
        self.theta = float(theta)
        self._mass = sp.diags(mesh.node_areas).tocsc()

    # ------------------------------------------------------------------
    def element_velocities(self, u_nodes: np.ndarray) -> np.ndarray:
        """Element-mean velocity from nodal values."""
        u_nodes = np.asarray(u_nodes, dtype=float)
        if u_nodes.shape != (self.mesh.npoints, 2):
            raise ValueError(
                f"u_nodes must be ({self.mesh.npoints}, 2); got {u_nodes.shape}"
            )
        return u_nodes[self.mesh.triangles].mean(axis=1)

    def assemble(self, u_nodes: np.ndarray) -> sp.csr_matrix:
        """Spatial operator ``A = C_adv + K_diff + S_supg`` (n x n).

        The semi-discrete system is ``M dc/dt + A c = 0``.
        """
        mesh = self.mesh
        tris = mesh.triangles
        areas = mesh.areas
        grads = mesh.grads  # (m, 3, 2)
        u_e = self.element_velocities(u_nodes)  # (m, 2)

        m = mesh.ntriangles
        # u . grad(phi_j) per element and local basis function: (m, 3)
        ug = np.einsum("me,mje->mj", u_e, grads)

        rows = np.repeat(tris, 3, axis=1).reshape(m, 9)
        cols = np.tile(tris, (1, 3)).reshape(m, 9)

        # Advection (Galerkin): integral phi_i (u.grad phi_j) = A/3 * ug_j.
        adv = np.repeat(areas[:, None] / 3.0, 9, axis=1).reshape(m, 9) * np.tile(
            ug, (1, 3)
        ).reshape(m, 9)

        # Diffusion: K * A * (g_i . g_j).
        gg = np.einsum("mie,mje->mij", grads, grads)  # (m, 3, 3)
        diff = self.diffusivity * areas[:, None] * gg.reshape(m, 9)

        # SUPG stabilisation: tau * A * (u.g_i)(u.g_j),
        # tau = h_e / (2 |u_e|) with h_e = sqrt(2 A_e).
        speed = np.linalg.norm(u_e, axis=1)
        h_e = np.sqrt(2.0 * areas)
        tau = np.where(speed > 1e-14, h_e / (2.0 * np.maximum(speed, 1e-14)), 0.0)
        supg = (tau * areas)[:, None] * np.einsum(
            "mi,mj->mij", ug, ug
        ).reshape(m, 9)

        data = (adv + diff + supg).ravel()
        A = sp.coo_matrix(
            (data, (rows.ravel(), cols.ravel())),
            shape=(mesh.npoints, mesh.npoints),
        )
        return A.tocsr()

    def prepare(self, u_nodes: np.ndarray, dt: float) -> "TransportOperator":
        """Factorise the theta-scheme for a given wind and step size."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        A = self.assemble(u_nodes).tocsc()
        Mdt = self._mass / dt
        lhs = (Mdt + self.theta * A).tocsc()
        rhs = (Mdt - (1.0 - self.theta) * A).tocsr()
        lu = splu(lhs)
        factor_nnz = int(lu.nnz)
        prep_ops = factor_nnz * OPS_PER_NNZ_FACTOR + A.nnz * 6.0
        return TransportOperator(
            mesh=self.mesh,
            lu=lu,
            rhs=rhs,
            factor_nnz=factor_nnz,
            prep_ops=prep_ops,
        )


@dataclass
class TransportOperator:
    """A factorised transport step, reusable across species and steps."""

    mesh: TriMesh
    lu: object
    rhs: sp.csr_matrix
    factor_nnz: int
    prep_ops: float

    def step(self, conc: np.ndarray) -> Tuple[np.ndarray, float]:
        """Advance ``conc`` (n_species, n_points) one step.

        Returns the new concentrations and the deterministic op count
        (one multi-RHS triangular solve across all species).
        """
        conc = np.asarray(conc, dtype=float)
        single = conc.ndim == 1
        c = conc[None, :] if single else conc
        if c.shape[1] != self.mesh.npoints:
            raise ValueError(
                f"conc has {c.shape[1]} points, mesh has {self.mesh.npoints}"
            )
        b = self.rhs @ c.T  # (n, nspec)
        out = self.lu.solve(np.ascontiguousarray(b))
        nspec = c.shape[0]
        ops = nspec * (
            self.factor_nnz * OPS_PER_NNZ_SOLVE + self.rhs.nnz * OPS_PER_NNZ_MATVEC
        )
        result = out.T
        return (result[0] if single else result, float(ops))

    def total_mass(self, conc: np.ndarray) -> np.ndarray:
        """Area-weighted total mass per species (conservation checks)."""
        conc = np.atleast_2d(conc)
        return conc @ self.mesh.node_areas
