"""Horizontal transport: SUPG FEM (multiscale) and 1-D splitting baseline."""

from repro.transport.operator1d import Splitting1DTransport
from repro.transport.supg import SUPGTransport, TransportOperator
from repro.transport.windfield import WindField

__all__ = [
    "SUPGTransport",
    "Splitting1DTransport",
    "TransportOperator",
    "WindField",
]
