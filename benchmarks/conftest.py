"""Shared benchmark fixtures: cached traces and a results directory."""

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

import trace_cache  # noqa: E402

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def la_trace():
    """LA-basin workload trace (grows the cache on first use)."""
    return trace_cache.la_trace()


@pytest.fixture(scope="session")
def ne_trace():
    """North-East workload trace."""
    return trace_cache.ne_trace()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_series(path: Path, title: str, header, rows) -> None:
    """Write one regenerated figure as an aligned text table."""
    with path.open("w") as fh:
        fh.write(f"# {title}\n")
        fh.write("  ".join(f"{h:>14s}" for h in header) + "\n")
        for row in rows:
            cells = [
                f"{c:>14.6g}" if isinstance(c, float) else f"{str(c):>14s}"
                for c in row
            ]
            fh.write("  ".join(cells) + "\n")
