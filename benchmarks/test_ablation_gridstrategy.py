"""Ablation (Section 3 / related work): multiscale 2-D Airshed versus
the uniform-grid 1-D-operator Airshed, as whole applications.

Paper: "models based on a uniform grid and 1-dimensional operators will
offer better speedups, but because of their lower efficiency, they may
not necessarily have better absolute performance.  In fact, related
research appears to indicate that the improved parallelization does not
make up for the reduced sequential performance."
"""

import pytest

from conftest import write_series
from repro.datasets import make_la
from repro.perfmodel.alternatives import UniformAirshedModel, compare_grid_strategies
from repro.vm import CRAY_T3E

NODE_COUNTS = (1, 4, 16, 64, 128, 256)


@pytest.fixture(scope="module")
def comparison(la_trace):
    return compare_grid_strategies(
        la_trace, make_la().grid, CRAY_T3E, node_counts=NODE_COUNTS
    )


class TestGridStrategy:
    def test_uniform_speedups_are_better(self, comparison):
        for P in (16, 64, 128):
            assert (
                comparison[P]["uniform_speedup"]
                > comparison[P]["multiscale_speedup"]
            ), P

    def test_multiscale_absolute_time_wins(self, comparison):
        """...but not by enough to overcome the sequential handicap."""
        for P in NODE_COUNTS:
            assert comparison[P]["multiscale"] < comparison[P]["uniform"], P

    def test_sequential_handicap_matches_point_ratio(self, la_trace):
        model = UniformAirshedModel(la_trace, make_la().grid, CRAY_T3E)
        assert model.point_ratio > 3.0
        ops = model.sequential_ops()
        ms_ops = la_trace.total_ops_by_phase()
        assert ops["chemistry"] / ms_ops["chemistry"] == pytest.approx(
            model.point_ratio
        )

    def test_gap_narrows_with_P(self, comparison):
        """The uniform variant catches up as P grows (better speedup),
        so the ratio uniform/multiscale falls monotonically."""
        ratios = [
            comparison[P]["uniform"] / comparison[P]["multiscale"]
            for P in NODE_COUNTS
        ]
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] > 1.0  # still hasn't crossed at 256 nodes

    def test_write_series(self, comparison, results_dir):
        rows = [
            [
                P,
                comparison[P]["multiscale"],
                comparison[P]["uniform"],
                comparison[P]["multiscale_speedup"],
                comparison[P]["uniform_speedup"],
            ]
            for P in NODE_COUNTS
        ]
        write_series(
            results_dir / "ablation_gridstrategy.txt",
            "Section 3 ablation: whole-app time (s) and speedup, T3E, LA",
            ["nodes", "multiscale", "uniform", "ms speedup", "uni speedup"],
            rows,
        )


def test_benchmark_strategy_comparison(benchmark, la_trace):
    grid = make_la().grid
    benchmark(compare_grid_strategies, la_trace, grid, CRAY_T3E)
