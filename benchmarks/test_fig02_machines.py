"""Figure 2: Airshed execution times, LA dataset, on T3E / T3D / Paragon.

Paper claims reproduced here:

* significant (sub-linear) speedups on every machine;
* on the Paragon, going 4 -> 32 nodes (8x) gives a speedup around 4.5;
* the log-scale curves of the three machines are nearly parallel
  ("performance portable");
* the T3D is just under 2x faster than the Paragon, the T3E ~10x.
"""


import numpy as np
import pytest

from conftest import write_series
from repro.model import replay_data_parallel
from repro.vm import CRAY_T3D, CRAY_T3E, INTEL_PARAGON
from trace_cache import PAPER_NODE_COUNTS

MACHINES = (CRAY_T3E, CRAY_T3D, INTEL_PARAGON)


@pytest.fixture(scope="module")
def fig2(la_trace):
    """{machine: [total time at each P]}."""
    return {
        m.name: [
            replay_data_parallel(la_trace, m, P).total_time
            for P in PAPER_NODE_COUNTS
        ]
        for m in MACHINES
    }


class TestFigure2:
    def test_speedup_on_every_machine(self, fig2):
        for name, times in fig2.items():
            assert times == sorted(times, reverse=True), name
            assert times[0] / times[-1] > 3.0, name  # 4 -> 128 nodes

    def test_paragon_4_to_32_speedup(self, fig2):
        """Paper: 'a speedup of around 4.5' for 8x more nodes."""
        times = fig2[INTEL_PARAGON.name]
        speedup = times[0] / times[PAPER_NODE_COUNTS.index(32)]
        assert 3.0 < speedup < 6.0

    def test_machine_ratios(self, fig2):
        """T3D just under 2x Paragon; T3E ~10x Paragon, across P."""
        for i in range(len(PAPER_NODE_COUNTS)):
            para = fig2[INTEL_PARAGON.name][i]
            t3d = fig2[CRAY_T3D.name][i]
            t3e = fig2[CRAY_T3E.name][i]
            assert 1.5 < para / t3d < 2.3
            assert 6.0 < para / t3e < 13.0

    def test_log_curves_nearly_parallel(self, fig2):
        """Performance portability: same qualitative speedup behaviour.

        On the log scale, the shift between two machines' curves should
        be nearly constant in P.
        """
        ref = np.log(fig2[INTEL_PARAGON.name])
        for name in (CRAY_T3E.name, CRAY_T3D.name):
            shift = ref - np.log(fig2[name])
            assert shift.max() - shift.min() < 0.35, name

    def test_write_series(self, fig2, results_dir):
        rows = [
            [P] + [fig2[m.name][i] for m in MACHINES]
            for i, P in enumerate(PAPER_NODE_COUNTS)
        ]
        write_series(
            results_dir / "fig02_machines.txt",
            "Figure 2: Airshed execution time (s), LA dataset",
            ["nodes"] + [m.name for m in MACHINES],
            rows,
        )


def test_benchmark_replay_la_t3e_32(benchmark, la_trace):
    """Cost of one full parallel-execution simulation (T3E, P=32)."""
    benchmark(replay_data_parallel, la_trace, CRAY_T3E, 32)
