"""Figure 5: scaling of the communication steps, LA on the T3E.

Paper claims reproduced:

* ``D_Repl->D_Trans`` is copy-only: large drop from 4 to 8 nodes (2
  layers -> 1 layer per node), constant afterwards;
* ``D_Trans->D_Chem`` drops 4 -> 8, then gradually increases (constant
  data volume, growing latency term from more, smaller messages);
* ``D_Chem->D_Repl`` is the most expensive step and gradually increases
  with P (every node receives the whole array; message count grows).
"""

import pytest

from conftest import write_series
from repro.model import replay_data_parallel
from repro.vm import CRAY_T3E
from trace_cache import PAPER_NODE_COUNTS

STEPS = ("D_Repl->D_Trans", "D_Trans->D_Chem", "D_Chem->D_Repl")


@pytest.fixture(scope="module")
def fig5(la_trace):
    """{P: {step: cumulative time}} (cumulative over the whole run)."""
    return {
        P: replay_data_parallel(la_trace, CRAY_T3E, P).comm_by_step
        for P in PAPER_NODE_COUNTS
    }


class TestFigure5:
    def test_repl_to_trans_halves_then_constant(self, fig5):
        s = "D_Repl->D_Trans"
        assert fig5[4][s] / fig5[8][s] == pytest.approx(2.0, rel=0.02)
        for P in (16, 32, 64, 128):
            assert fig5[P][s] == pytest.approx(fig5[8][s], rel=1e-9)

    def test_trans_to_chem_drop_then_gradual_rise(self, fig5):
        s = "D_Trans->D_Chem"
        assert fig5[8][s] < fig5[4][s]
        assert fig5[8][s] < fig5[32][s] < fig5[128][s]
        # The rise is gradual: far less than the factor-2 initial drop.
        assert fig5[128][s] / fig5[8][s] < 3.0

    def test_chem_to_repl_most_expensive_and_rising(self, fig5):
        for P in PAPER_NODE_COUNTS:
            others = [fig5[P][s] for s in STEPS[:2]]
            assert fig5[P]["D_Chem->D_Repl"] > max(others), P
        assert fig5[128]["D_Chem->D_Repl"] > fig5[8]["D_Chem->D_Repl"]

    def test_gather_is_cheap(self, fig5):
        """The end-of-hour output gather stays below the all-gather."""
        for P in PAPER_NODE_COUNTS:
            assert fig5[P]["gather:outputhour"] < fig5[P]["D_Chem->D_Repl"]

    def test_write_series(self, fig5, results_dir):
        rows = [
            [P] + [fig5[P][s] for s in STEPS]
            for P in PAPER_NODE_COUNTS
        ]
        write_series(
            results_dir / "fig05_redistribution.txt",
            "Figure 5: cumulative redistribution time (s), LA on T3E",
            ["nodes"] + list(STEPS),
            rows,
        )


def test_benchmark_redistribution_planning(benchmark):
    """Planning cost of the heaviest redistribution (cache cleared)."""
    from repro.fx import Distribution, plan_redistribution
    from repro.fx import redistribute as _r

    src = Distribution.block(3, 2).layout((35, 5, 700), 64)
    dst = Distribution.replicated(3).layout((35, 5, 700), 64)

    def plan():
        _r._PLAN_CACHE.clear()
        return plan_redistribution(src, dst, 8)

    assert not benchmark(plan).is_empty()
