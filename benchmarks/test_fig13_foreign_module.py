"""Figure 13: Airshed + PopExp with PopExp as a native Fx task versus as
a PVM foreign module, on the Intel Paragon.

Paper claims reproduced:

* the two versions compute the same result (we additionally verify the
  exposure numbers agree exactly);
* "there is a fixed, relatively small, extra overhead associated with
  the foreign module approach", which "does not significantly impact
  overall performance".
"""

import numpy as np
import pytest

from conftest import write_series
from repro.datasets import make_la
from repro.foreign import Scenario, run_integrated
from repro.vm import INTEL_PARAGON

NODE_COUNTS = (8, 16, 32, 64)


@pytest.fixture(scope="module")
def la_dataset():
    return make_la()


@pytest.fixture(scope="module")
def fig13(la_trace, la_dataset):
    out = {}
    for P in NODE_COUNTS:
        native = run_integrated(la_trace, la_dataset, INTEL_PARAGON, P,
                                mode="native")
        foreign = run_integrated(la_trace, la_dataset, INTEL_PARAGON, P,
                                 mode="foreign")
        out[P] = (native, foreign)
    return out


class TestFigure13:
    def test_exposures_identical(self, fig13):
        for P, (native, foreign) in fig13.items():
            assert np.allclose(native.exposure, foreign.exposure), P
            assert native.exposure.sum() > 0

    def test_foreign_overhead_small(self, fig13):
        for P, (native, foreign) in fig13.items():
            overhead = (foreign.total_time - native.total_time) / native.total_time
            assert 0.0 <= overhead < 0.25, (P, overhead)

    def test_foreign_overhead_roughly_fixed(self, fig13):
        """'a fixed ... extra overhead': absolute gap varies far less
        than the total time does across the node range."""
        gaps = [
            fig13[P][1].total_time - fig13[P][0].total_time
            for P in NODE_COUNTS
        ]
        totals = [fig13[P][0].total_time for P in NODE_COUNTS]
        gap_ratio = max(gaps) / max(min(gaps), 1e-12)
        total_ratio = max(totals) / min(totals)
        assert gap_ratio < total_ratio

    def test_both_versions_scale(self, fig13):
        n_times = [fig13[P][0].total_time for P in NODE_COUNTS]
        f_times = [fig13[P][1].total_time for P in NODE_COUNTS]
        assert n_times == sorted(n_times, reverse=True)
        assert f_times == sorted(f_times, reverse=True)

    def test_write_series(self, fig13, results_dir):
        rows = [
            [P, fig13[P][0].total_time, fig13[P][1].total_time]
            for P in NODE_COUNTS
        ]
        write_series(
            results_dir / "fig13_foreign_module.txt",
            "Figure 13: Airshed+PopExp time (s) on the Paragon: native vs foreign",
            ["nodes", "native", "foreign"],
            rows,
        )


def test_benchmark_integrated_run(benchmark, la_trace, la_dataset):
    benchmark(
        run_integrated, la_trace, la_dataset, INTEL_PARAGON, 16,
        mode="foreign", scenario=Scenario.A,
    )
