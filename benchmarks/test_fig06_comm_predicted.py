"""Figure 6: predicted vs measured communication-step times, LA on T3E.

The predictions come from the paper's closed-form equations (Section
4.2) with the machine's L/G/H; the measurements from the simulator's
exact per-transfer accounting.  The paper: "the estimated and measured
values are close to each other ... Small differences between the two
sets of values do exist, which is not surprising given the simple nature
of the estimates."
"""

import pytest

from conftest import write_series
from repro.model import replay_data_parallel
from repro.perfmodel import PerformancePredictor
from repro.vm import CRAY_T3E
from trace_cache import PAPER_NODE_COUNTS

STEPS = ("D_Repl->D_Trans", "D_Trans->D_Chem", "D_Chem->D_Repl")


@pytest.fixture(scope="module")
def fig6(la_trace):
    predictor = PerformancePredictor(la_trace, CRAY_T3E)
    out = {}
    for P in PAPER_NODE_COUNTS:
        measured = replay_data_parallel(la_trace, CRAY_T3E, P).comm_by_step
        predicted = predictor.predict(P).comm_by_step
        out[P] = (measured, predicted)
    return out


class TestFigure6:
    def test_predictions_close_to_measurements(self, fig6):
        for P, (measured, predicted) in fig6.items():
            for step in STEPS:
                rel = abs(predicted[step] - measured[step]) / measured[step]
                assert rel < 0.45, (P, step, rel)

    def test_copy_only_step_predicted_exactly(self, fig6):
        """D_Repl->D_Trans has no approximation: exact match."""
        for P, (measured, predicted) in fig6.items():
            step = "D_Repl->D_Trans"
            assert predicted[step] == pytest.approx(measured[step], rel=1e-9)

    def test_prediction_preserves_step_ordering(self, fig6):
        """The model agrees on which step dominates."""
        for P, (measured, predicted) in fig6.items():
            m_max = max(STEPS, key=lambda s: measured[s])
            p_max = max(STEPS, key=lambda s: predicted[s])
            assert m_max == p_max == "D_Chem->D_Repl"

    def test_total_comm_predicted(self, fig6):
        for P, (measured, predicted) in fig6.items():
            m_tot = sum(measured.values())
            p_tot = sum(predicted.values())
            assert p_tot == pytest.approx(m_tot, rel=0.4), P

    def test_write_series(self, fig6, results_dir):
        rows = []
        for P, (measured, predicted) in fig6.items():
            for step in STEPS:
                rows.append([P, step, measured[step], predicted[step]])
        write_series(
            results_dir / "fig06_comm_predicted.txt",
            "Figure 6: measured (M) vs predicted (P) comm time (s), LA on T3E",
            ["nodes", "step", "measured", "predicted"],
            rows,
        )


def test_benchmark_comm_prediction(benchmark, la_trace):
    predictor = PerformancePredictor(la_trace, CRAY_T3E)
    benchmark(predictor.predict, 64)
