"""Cached workload traces for the benchmarks.

Generating a trace means running the real numerics once (tens of
seconds for LA, minutes for NE).  Every benchmark replays traces
thousands of times, so traces are generated once per (dataset, hours)
and cached on disk.  Delete ``benchmarks/_cache`` to force regeneration
(e.g. after changing the model's numerics).
"""

from __future__ import annotations

import pickle
import warnings
from pathlib import Path

from repro.datasets import make_la, make_ne
from repro.model import AirshedConfig, SequentialAirshed, WorkloadTrace

#: Bump when trace-affecting numerics change, to invalidate caches.
TRACE_VERSION = 3

CACHE_DIR = Path(__file__).parent / "_cache"

#: Benchmark run lengths.  The paper simulates a full episode; we use a
#: daylight window (the shapes of all figures are hour-count invariant,
#: every phase scales with the same step count).
LA_HOURS = 8
NE_HOURS = 4
START_HOUR = 6

#: Node counts of the paper's figures.
PAPER_NODE_COUNTS = (4, 8, 16, 32, 64, 128)


def _load_or_build(name: str, builder) -> WorkloadTrace:
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{name}_v{TRACE_VERSION}.pkl"
    if path.exists():
        try:
            with path.open("rb") as fh:
                trace = pickle.load(fh)
            if isinstance(trace, WorkloadTrace):
                return trace
            warnings.warn(
                f"trace cache {path} holds {type(trace).__name__}, rebuilding"
            )
        except (pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError) as exc:
            # A truncated/corrupt pickle, or one written by an old code
            # layout, must never break the benchmarks: rebuild it.
            warnings.warn(f"corrupt trace cache {path} ({exc}), rebuilding")
        path.unlink(missing_ok=True)
    trace = builder()
    with path.open("wb") as fh:
        pickle.dump(trace, fh)
    return trace


def la_trace() -> WorkloadTrace:
    """The LA-basin trace (A(35,5,700), 8 daylight hours)."""

    def build():
        cfg = AirshedConfig(dataset=make_la(), hours=LA_HOURS,
                            start_hour=START_HOUR)
        return SequentialAirshed(cfg).run().trace

    return _load_or_build("la", build)


def ne_trace() -> WorkloadTrace:
    """The North-East trace (A(35,5,3328), 4 daylight hours)."""

    def build():
        cfg = AirshedConfig(dataset=make_ne(), hours=NE_HOURS,
                            start_hour=START_HOUR)
        return SequentialAirshed(cfg).run().trace

    return _load_or_build("ne", build)
