"""Figure 9: speedup of Airshed on the Intel Paragon — data parallelism
versus task+data parallelism.

Paper claims reproduced:

* I/O processing consumes well under 2% sequentially but ~30% of the
  execution time on 64 nodes (the Amdahl bottleneck);
* pipelined task parallelism significantly improves scalability;
* the execution time on 64 nodes drops by around 25%.
"""

import pytest

from conftest import write_series
from repro.model import replay_data_parallel, replay_task_parallel
from repro.vm import INTEL_PARAGON

NODE_COUNTS = (4, 8, 16, 32, 64)


@pytest.fixture(scope="module")
def fig9(la_trace):
    base = replay_data_parallel(la_trace, INTEL_PARAGON, 1).total_time
    rows = {}
    for P in NODE_COUNTS:
        dp = replay_data_parallel(la_trace, INTEL_PARAGON, P)
        tp = replay_task_parallel(la_trace, INTEL_PARAGON, P)
        rows[P] = (base / dp.total_time, base / tp.total_time, dp, tp)
    return base, rows


class TestFigure9:
    def test_io_under_2_percent_sequential(self, la_trace):
        seq = replay_data_parallel(la_trace, INTEL_PARAGON, 1)
        assert seq.breakdown["io"] / seq.total_time < 0.02

    def test_io_over_25_percent_at_64_nodes(self, fig9):
        _, rows = fig9
        dp64 = rows[64][2]
        assert dp64.breakdown["io"] / dp64.total_time > 0.25

    def test_task_parallel_wins_at_64(self, fig9):
        """Paper: ~25% execution-time reduction on 64 nodes."""
        _, rows = fig9
        dp, tp = rows[64][2].total_time, rows[64][3].total_time
        gain = (dp - tp) / dp
        assert 0.15 < gain < 0.35

    def test_task_parallel_speedup_keeps_growing(self, fig9):
        _, rows = fig9
        tp_speedups = [rows[P][1] for P in NODE_COUNTS]
        assert tp_speedups == sorted(tp_speedups)
        # And the gap over data-parallel widens with P.
        gaps = [rows[P][1] - rows[P][0] for P in (16, 32, 64)]
        assert gaps == sorted(gaps)

    def test_write_series(self, fig9, results_dir):
        _, rows = fig9
        table = [
            [P, rows[P][0], rows[P][1]]
            for P in NODE_COUNTS
        ]
        write_series(
            results_dir / "fig09_taskparallel.txt",
            "Figure 9: speedup on the Intel Paragon (vs 1 node), LA dataset",
            ["nodes", "data-parallel", "task+data"],
            table,
        )


def test_benchmark_taskparallel_replay(benchmark, la_trace):
    benchmark(replay_task_parallel, la_trace, INTEL_PARAGON, 32)
