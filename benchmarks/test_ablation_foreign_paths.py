"""Ablation (Figure 11): foreign-module communication scenarios A/B/C.

The paper implements scenario A (relay through the representative task
and the interface node) and sketches B (direct to all foreign nodes) and
C (variable-to-variable) as increasingly efficient options.  We measure
all three on the simulated machine.
"""

import numpy as np
import pytest

from conftest import write_series
from repro.foreign import ForeignModuleBinding, Scenario
from repro.vm import Cluster, INTEL_PARAGON

PAYLOAD_BYTES = 35 * 700 * 8  # one surface field of the LA dataset


def scenario_cost(scenario: Scenario, n_native: int, n_foreign: int) -> float:
    cluster = Cluster(INTEL_PARAGON, n_native + n_foreign)
    binding = ForeignModuleBinding(
        cluster.subgroup(range(n_native)),
        cluster.subgroup(range(n_native, n_native + n_foreign)),
        scenario=scenario,
    )
    return binding.relative_cost(PAYLOAD_BYTES)


@pytest.fixture(scope="module")
def fig11():
    sizes = [(4, 2), (8, 4), (16, 4), (32, 8)]
    return {
        (nn, nf): {s: scenario_cost(s, nn, nf) for s in Scenario}
        for nn, nf in sizes
    }


class TestFigure11:
    def test_cost_ordering_everywhere(self, fig11):
        for key, costs in fig11.items():
            assert costs[Scenario.A] > costs[Scenario.B] > costs[Scenario.C], key

    def test_relay_overhead_grows_with_payload_handling(self, fig11):
        """Scenario A moves the payload ~3x (gather, forward, spread)."""
        for key, costs in fig11.items():
            assert costs[Scenario.A] > 2.0 * costs[Scenario.C], key

    def test_direct_path_beats_relay_by_less_than_variable(self, fig11):
        for key, costs in fig11.items():
            gain_b = costs[Scenario.A] - costs[Scenario.B]
            gain_c = costs[Scenario.A] - costs[Scenario.C]
            assert gain_c > gain_b > 0, key

    def test_write_series(self, fig11, results_dir):
        rows = [
            [f"{nn}+{nf}", costs[Scenario.A], costs[Scenario.B], costs[Scenario.C]]
            for (nn, nf), costs in fig11.items()
        ]
        write_series(
            results_dir / "ablation_foreign_paths.txt",
            "Figure 11 ablation: transfer cost (s) of scenarios A/B/C",
            ["native+foreign", "A (relay)", "B (direct)", "C (variable)"],
            rows,
        )


def test_benchmark_scenario_a_transfer(benchmark):
    cluster = Cluster(INTEL_PARAGON, 12)
    binding = ForeignModuleBinding(
        cluster.subgroup(range(8)), cluster.subgroup(range(8, 12)),
        scenario=Scenario.A,
    )
    payload = np.zeros(PAYLOAD_BYTES // 8)
    benchmark(binding.transfer_to_foreign, payload)
