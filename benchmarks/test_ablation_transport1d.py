"""Ablation (Section 3): 2-D SUPG operator versus 1-D splitting.

Paper: the 2-D operator's parallelism is restricted to the number of
layers, whereas 1-D uniform-grid operators parallelise over layers and
one grid dimension — "models based on a uniform grid and 1-dimensional
operators will offer better speedups, but because of their lower
efficiency, they may not necessarily have better absolute performance".
And: "in conditions where significant cross-flow components exist ... a
2-dimensional method can also use a larger time step than a
1-dimensional method to achieve the same accuracy."
"""

import numpy as np
import pytest

from conftest import write_series
from repro.grid import UniformGrid, triangulate
from repro.transport import SUPGTransport, Splitting1DTransport

LAYERS = 5


@pytest.fixture(scope="module")
def setup():
    grid = UniformGrid(domain=(100.0, 100.0), nx=30, ny=30)
    mesh = triangulate(grid.points())
    return grid, mesh


def advect_diag(setup, method: str, dt: float, hours: float = 2.0):
    """Advect a blob diagonally (maximal cross-flow for the splitting)
    and report the final peak (diffusion-free transport keeps peak=1)."""
    grid, mesh = setup
    speed = 0.006  # km/s
    u = np.tile([speed / np.sqrt(2), speed / np.sqrt(2)], (grid.npoints, 1))
    pts = grid.points()
    c0 = np.exp(
        -0.5 * ((pts[:, 0] - 30) ** 2 + (pts[:, 1] - 30) ** 2) / 6.0**2
    )[None, :]
    steps = int(round(hours * 3600 / dt))
    if method == "supg":
        op = SUPGTransport(mesh, diffusivity=1e-6).prepare(u, dt)
        c = c0
        for _ in range(steps):
            c, _ = op.step(c)
    else:
        tr = Splitting1DTransport(grid, diffusivity=1e-6)
        c = c0
        for _ in range(steps):
            c, _ = tr.step(c, u, dt)
    return float(c.max())


class TestParallelismStructure:
    def test_1d_operator_has_more_parallelism(self, setup):
        grid, _ = setup
        tr = Splitting1DTransport(grid, diffusivity=1e-3)
        par_1d = tr.degree_of_parallelism(LAYERS)
        par_2d = LAYERS  # the whole layer is one implicit solve
        assert par_1d == LAYERS * 30
        assert par_1d / par_2d == 30

    def test_2d_speedup_saturates_earlier(self, setup):
        """Model the paper's argument: T(P) = max-load(P) per operator."""
        grid, _ = setup
        import math

        def t_model(par, P):
            return math.ceil(par / min(par, P)) / par

        # At P=64: 2-D is stuck at 1/5 of sequential, 1-D reaches ~1/60.
        assert t_model(LAYERS, 64) == pytest.approx(1 / 5)
        assert t_model(LAYERS * 30, 64) < 1 / 40


class TestCrossFlowAccuracy:
    def test_2d_retains_peak_better_in_cross_flow(self, setup):
        """Diagonal advection: SUPG keeps the blob sharper than the
        split 1-D upwind sweeps at the same dt."""
        dt = 300.0
        peak_2d = advect_diag(setup, "supg", dt)
        peak_1d = advect_diag(setup, "1d", dt)
        assert peak_2d > peak_1d

    def test_1d_needs_smaller_step_for_same_accuracy(self, setup):
        """The 1-D method only approaches the 2-D method's dt=300 peak
        when its own step is much smaller."""
        peak_2d_300 = advect_diag(setup, "supg", 300.0)
        peak_1d_300 = advect_diag(setup, "1d", 300.0)
        peak_1d_75 = advect_diag(setup, "1d", 75.0)
        assert peak_1d_75 > peak_1d_300
        assert abs(peak_1d_75 - peak_2d_300) < abs(peak_1d_300 - peak_2d_300)

    def test_write_series(self, setup, results_dir):
        rows = [
            ["supg dt=300", advect_diag(setup, "supg", 300.0)],
            ["1d dt=300", advect_diag(setup, "1d", 300.0)],
            ["1d dt=150", advect_diag(setup, "1d", 150.0)],
            ["1d dt=75", advect_diag(setup, "1d", 75.0)],
        ]
        write_series(
            results_dir / "ablation_transport1d.txt",
            "Section 3 ablation: peak retention, diagonal (cross-flow) advection",
            ["method", "final peak"],
            rows,
        )


def test_benchmark_supg_step(benchmark, setup):
    grid, mesh = setup
    u = np.tile([0.005, 0.003], (grid.npoints, 1))
    op = SUPGTransport(mesh, diffusivity=1e-4).prepare(u, 300.0)
    c = np.random.default_rng(0).uniform(0, 1, (35, grid.npoints))
    benchmark(op.step, c)


def test_benchmark_1d_step(benchmark, setup):
    grid, _ = setup
    tr = Splitting1DTransport(grid, diffusivity=1e-4)
    u = np.tile([0.005, 0.003], (grid.npoints, 1))
    c = np.random.default_rng(0).uniform(0, 1, (35, grid.npoints))
    benchmark(tr.step, c, u, 300.0)
