"""Ablation (Section 4.2's premise): endpoints, not wires, bound cost.

The paper asserts that "communication performance is typically limited
by the communication overhead on the end-points, and not by the
aggregate bandwidth of the actual interconnect", and builds its whole
model on it.  Here we route every Airshed redistribution over a 3-D
torus (T3E-like) and a 2-D mesh (Paragon-like) with dimension-ordered
routing and measure the busiest link: the link-limited time stays a
small fraction of the endpoint-limited time at every node count.
"""

import pytest

from conftest import write_series
from repro.fx import Distribution, plan_redistribution
from repro.vm import CRAY_T3E, INTEL_PARAGON
from repro.vm.topology import (
    PARAGON_LINK_COST,
    T3E_LINK_COST,
    analyze_contention,
    torus_for,
)

SHAPE = (35, 5, 700)
STEPS = {
    "D_Repl->D_Trans": (Distribution.replicated(3), Distribution.block(3, 1)),
    "D_Trans->D_Chem": (Distribution.block(3, 1), Distribution.block(3, 2)),
    "D_Chem->D_Repl": (Distribution.block(3, 2), Distribution.replicated(3)),
}
NODE_COUNTS = (8, 16, 32, 64, 128)


def ratios_for(machine, link_cost, ndims):
    out = {}
    for P in NODE_COUNTS:
        topo = torus_for(P, link_cost, ndims=ndims)
        for name, (src, dst) in STEPS.items():
            plan = plan_redistribution(
                src.layout(SHAPE, P), dst.layout(SHAPE, P), 8
            )
            la = analyze_contention(machine, topo, plan.transfers)
            out[(P, name)] = la.contention_ratio
    return out


@pytest.fixture(scope="module")
def t3e_ratios():
    return ratios_for(CRAY_T3E, T3E_LINK_COST, ndims=3)


@pytest.fixture(scope="module")
def paragon_ratios():
    return ratios_for(INTEL_PARAGON, PARAGON_LINK_COST, ndims=2)


class TestEndpointAssumption:
    def test_t3e_endpoints_dominate(self, t3e_ratios):
        """3-D torus: the busiest link never reaches 25% of the
        endpoint cost for any Airshed redistribution."""
        for key, ratio in t3e_ratios.items():
            assert ratio < 0.25, key

    def test_paragon_endpoints_dominate(self, paragon_ratios):
        """Even the 2-D Paragon mesh (worse bisection) stays below 1."""
        for key, ratio in paragon_ratios.items():
            assert ratio < 1.0, key

    def test_copy_only_step_has_no_link_traffic(self, t3e_ratios):
        for P in NODE_COUNTS:
            assert t3e_ratios[(P, "D_Repl->D_Trans")] == 0.0

    def test_write_series(self, t3e_ratios, paragon_ratios, results_dir):
        rows = []
        for P in NODE_COUNTS:
            for name in STEPS:
                rows.append([
                    P, name, t3e_ratios[(P, name)], paragon_ratios[(P, name)],
                ])
        write_series(
            results_dir / "ablation_endpoint_assumption.txt",
            "Section 4.2 premise: link-limited / endpoint-limited time ratio",
            ["nodes", "step", "T3E 3D torus", "Paragon 2D mesh"],
            rows,
        )


def test_benchmark_contention_analysis(benchmark):
    topo = torus_for(64, T3E_LINK_COST, ndims=3)
    plan = plan_redistribution(
        Distribution.block(3, 2).layout(SHAPE, 64),
        Distribution.replicated(3).layout(SHAPE, 64),
        8,
    )
    benchmark(analyze_contention, CRAY_T3E, topo, plan.transfers)
