"""Section 4.3 'table': the estimated machine parameters.

The paper estimates, from small-node measurements on the T3E::

    L = 5.2e-5 s/message
    G = 2.47e-8 s/byte
    H = 2.04e-8 s/byte

We run the application at a few small node counts, fit L, G, H from the
observed communication phases (plus the compute rate from the compute
phases), and check the fit recovers the machine's constants — i.e. the
whole accounting chain is self-consistent, which is what makes the
extrapolation use case ("measure small, predict large") sound.
"""

import pytest

from conftest import write_series
from repro.fx.runtime import FxRuntime
from repro.model.dataparallel import HourReplayer
from repro.perfmodel import fit_comm_parameters, fit_compute_rate
from repro.vm import CRAY_T3E

SMALL_NODE_COUNTS = (2, 3, 4, 6, 8)


@pytest.fixture(scope="module")
def timelines(la_trace):
    out = []
    for P in SMALL_NODE_COUNTS:
        rt = FxRuntime(CRAY_T3E, P)
        replayer = HourReplayer(rt.world, la_trace)
        for hour in la_trace.hours[:2]:
            replayer.run_hour(hour)
        out.append(rt.timeline)
    return out


class TestCalibration:
    def test_comm_fit_recovers_constants(self, timelines):
        fit = fit_comm_parameters(timelines)
        assert fit.gap == pytest.approx(CRAY_T3E.gap, rel=0.10)
        assert fit.copy_cost == pytest.approx(CRAY_T3E.copy_cost, rel=0.10)
        # Latency is the smallest term in these phases; recover loosely.
        assert fit.latency == pytest.approx(CRAY_T3E.latency, rel=0.9)

    def test_compute_rate_recovered(self, timelines):
        rate = fit_compute_rate(timelines)
        assert rate == pytest.approx(CRAY_T3E.seconds_per_op, rel=1e-6)

    def test_write_series(self, timelines, results_dir):
        fit = fit_comm_parameters(timelines)
        rows = [
            ["L (s/msg)", 5.2e-5, CRAY_T3E.latency, fit.latency],
            ["G (s/B)", 2.47e-8, CRAY_T3E.gap, fit.gap],
            ["H (s/B)", 2.04e-8, CRAY_T3E.copy_cost, fit.copy_cost],
        ]
        write_series(
            results_dir / "params_calibration.txt",
            "Section 4.3: T3E parameters (paper / configured / re-fit)",
            ["param", "paper", "configured", "fitted"],
            rows,
        )


def test_benchmark_parameter_fit(benchmark, timelines):
    fit = benchmark(fit_comm_parameters, timelines)
    assert fit.samples > 50
