"""Figure 8 (quantified): the pipelined schedule's overlap.

The paper's Figure 8 is a schematic of the three-stage pipeline.  We
regenerate it as a text Gantt chart from the simulated schedule and
quantify the property the schematic conveys: the main computation stays
busy while the I/O stages tick along on their own nodes — i.e. the
sequential I/O has left the critical path.
"""

import pytest

from repro.analysis import render_gantt
from repro.fx.runtime import FxRuntime
from repro.fx.tasks import PipelineStage
from repro.model.dataparallel import HourReplayer
from repro.vm import INTEL_PARAGON, utilization

P = 16


@pytest.fixture(scope="module")
def pipeline_run(la_trace):
    import numpy as np

    rt = FxRuntime(INTEL_PARAGON, P)
    in_g, main_g, out_g = rt.split([1, P - 2, 1])
    rep = HourReplayer(main_g, la_trace)
    hours = la_trace.hours
    array_bytes = int(np.prod(la_trace.shape)) * 8
    stages = [
        PipelineStage(
            "input", in_g,
            lambda i: (
                in_g.charge_io("io:inputhour", hours[i].input_bytes,
                               ops=hours[i].input_ops),
                in_g.charge_io("io:pretrans", 0.0, ops=hours[i].pretrans_ops),
            ),
            output_bytes=lambda i: hours[i].input_bytes,
        ),
        PipelineStage(
            "main", main_g,
            lambda i: rep.run_hour(hours[i], gather=False),
            output_bytes=lambda i: array_bytes,
        ),
        PipelineStage(
            "output", out_g,
            lambda i: out_g.charge_io("io:outputhour", hours[i].output_bytes,
                                      ops=hours[i].output_ops),
        ),
    ]
    rt.pipeline(stages).execute(len(hours))
    groups = {"input": in_g.node_ids, "main": main_g.node_ids,
              "output": out_g.node_ids}
    return rt, groups


class TestFigure8:
    def test_main_group_dominates_busy_time(self, pipeline_run):
        rt, groups = pipeline_run
        rep = utilization(rt.timeline, P)
        main_busy = sum(rep.nodes[i].busy for i in groups["main"])
        io_busy = sum(
            rep.nodes[i].busy for i in groups["input"] + groups["output"]
        )
        assert main_busy > 10 * io_busy

    def test_io_runs_concurrently_with_main(self, pipeline_run):
        """Input phases overlap main compute phases in simulated time."""
        rt, groups = pipeline_run
        main_ids = set(groups["main"])
        compute_windows = [
            (r.start, r.end) for r in rt.timeline
            if r.kind == "compute" and set(r.node_ids) <= main_ids
        ]
        overlapped = 0
        io_recs = [
            r for r in rt.timeline
            if r.kind == "io" and r.node_ids[0] in groups["input"]
        ]
        for rec in io_recs:
            if any(s < rec.end and rec.start < e for s, e in compute_windows):
                overlapped += 1
        assert overlapped >= len(io_recs) - 2  # all but the warm-up hours

    def test_write_gantt(self, pipeline_run, results_dir):
        rt, groups = pipeline_run
        text = render_gantt(rt.timeline, groups, width=76)
        (results_dir / "fig08_pipeline_gantt.txt").write_text(
            "# Figure 8: pipelined task parallelism (Paragon, 16 nodes, LA)\n"
            + text + "\n"
        )
        assert "#" in text


def test_benchmark_gantt_rendering(benchmark, pipeline_run):
    rt, groups = pipeline_run
    benchmark(render_gantt, rt.timeline, groups)
