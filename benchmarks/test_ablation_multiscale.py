"""Ablation (Section 2.1): multiscale grid versus uniform grid.

Paper: "to provide a given accuracy, a well-chosen multiscale grid is
computationally significantly more efficient than a uniform grid, as it
requires evaluation of the Lcz operator at fewer points."

We quantify that: the accuracy-equivalent uniform grid (matching the
multiscale grid's finest resolution) needs several times more points,
and since the dominant chemistry cost is linear in points, the cost
ratio follows directly.
"""

import pytest

from conftest import write_series
from repro.datasets import LA_SPEC, NE_SPEC
from repro.grid import uniform_from_multiscale


@pytest.fixture(scope="module")
def grids():
    la = LA_SPEC.build().grid
    ne = NE_SPEC.build().grid
    return {"la": la, "ne": ne}


class TestMultiscaleEfficiency:
    def test_uniform_equivalent_needs_more_points(self, grids):
        for name, grid in grids.items():
            ratio = grid.equivalent_uniform_npoints() / grid.npoints
            assert ratio > 3.0, name

    def test_uniform_grid_construction_matches_estimate(self, grids):
        for grid in grids.values():
            uni = uniform_from_multiscale(grid)
            assert uni.npoints == grid.equivalent_uniform_npoints()

    def test_refinement_concentrated_on_cores(self, grids):
        """Fine cells cover a small fraction of the domain area."""
        for name, grid in grids.items():
            fine = grid.areas < 1.5 * grid.areas.min()
            fine_area_fraction = grid.areas[fine].sum() / grid.total_area()
            fine_count_fraction = fine.sum() / grid.npoints
            assert fine_count_fraction > 3 * fine_area_fraction, name

    def test_chemistry_cost_scales_with_points(self, grids, la_trace):
        """Chemistry ops per point are resolution-independent, so the
        point ratio IS the Lcz cost ratio."""
        grid = grids["la"]
        step = la_trace.hours[0].steps[0]
        per_point = step.chemistry_ops.mean()
        uniform_cost = per_point * grid.equivalent_uniform_npoints()
        multiscale_cost = step.chemistry_ops.sum()
        assert uniform_cost / multiscale_cost > 3.0

    def test_write_series(self, grids, results_dir):
        rows = []
        for name, grid in grids.items():
            rows.append([
                name,
                float(grid.npoints),
                float(grid.equivalent_uniform_npoints()),
                grid.equivalent_uniform_npoints() / grid.npoints,
            ])
        write_series(
            results_dir / "ablation_multiscale.txt",
            "Section 2.1 ablation: multiscale vs accuracy-equivalent uniform grid",
            ["dataset", "multiscale", "uniform", "cost ratio"],
            rows,
        )


def test_benchmark_grid_generation(benchmark):
    benchmark(lambda: LA_SPEC.build().grid)
