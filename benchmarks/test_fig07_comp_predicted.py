"""Figure 7: predicted vs measured computation-phase times, LA on T3E.

Paper: "the estimates and measured values match closely for the
computation phases also.  In fact, the values for the computation phases
appear to be closer to the predictions than the communication phases."
"""

import pytest

from conftest import write_series
from repro.model import replay_data_parallel
from repro.perfmodel import PerformancePredictor
from repro.vm import CRAY_T3E
from trace_cache import PAPER_NODE_COUNTS

PHASES = ("chemistry", "transport", "io")


@pytest.fixture(scope="module")
def fig7(la_trace):
    predictor = PerformancePredictor(la_trace, CRAY_T3E)
    out = {}
    for P in PAPER_NODE_COUNTS:
        measured = replay_data_parallel(la_trace, CRAY_T3E, P).breakdown
        predicted = predictor.predict(P).compute_breakdown()
        out[P] = (measured, predicted)
    return out


class TestFigure7:
    def test_computation_phases_predicted_tightly(self, fig7):
        for P, (measured, predicted) in fig7.items():
            for phase in PHASES:
                rel = abs(predicted[phase] - measured[phase]) / measured[phase]
                assert rel < 0.05, (P, phase, rel)

    def test_totals_predicted(self, fig7):
        for P, (measured, predicted) in fig7.items():
            m_tot = sum(measured.values())
            p_tot = sum(predicted.values())
            assert p_tot == pytest.approx(m_tot, rel=0.10), P

    def test_computation_closer_than_communication(self, fig7):
        """The paper's observation about relative prediction quality."""
        for P, (measured, predicted) in fig7.items():
            comp_err = max(
                abs(predicted[ph] - measured[ph]) / measured[ph]
                for ph in PHASES
            )
            comm_err = abs(
                predicted["communication"] - measured["communication"]
            ) / measured["communication"]
            assert comp_err <= comm_err + 1e-12, P

    def test_write_series(self, fig7, results_dir):
        rows = []
        for P, (measured, predicted) in fig7.items():
            for phase in PHASES + ("communication",):
                rows.append([P, phase, measured[phase], predicted[phase]])
        write_series(
            results_dir / "fig07_comp_predicted.txt",
            "Figure 7: measured vs predicted phase times (s), LA on T3E",
            ["nodes", "phase", "measured", "predicted"],
            rows,
        )


def test_benchmark_full_prediction_sweep(benchmark, la_trace):
    predictor = PerformancePredictor(la_trace, CRAY_T3E)

    def sweep():
        return [predictor.predict_total(P) for P in PAPER_NODE_COUNTS]

    totals = benchmark(sweep)
    assert all(t > 0 for t in totals)
