"""Hot-path perf microbenchmarks with a committed pre-change baseline.

Each benchmark measures one hot path of the simulator with the exact
setup used to capture ``baseline.json`` *before* the hot-path overhaul
(batched communication charging, memoized redistribution plans, the
fused chemistry kernel), so the recorded speedups compare like with
like:

``replay_2la_t3e_p64``
    Replay two real LA hours data-parallel on a 64-node Cray T3E.
``charge_comm_allgather_p64_x10``
    Charge the ``D_Chem -> D_Repl`` all-gather (4096 transfers) ten
    times on a fresh 64-node subgroup.
``chemistry_hour_la``
    One sequential LA chemistry hour (real numerics); also reports the
    SHA-256 of the final concentration field, which must equal the
    baseline hash — the overhaul's contract is *faster, bitwise equal*.
``chemistry_hour_la_mc4``
    The same LA chemistry hour on a 4-wide tiled worker pool
    (``chem_workers=4``), baselined against the *single-core* median
    and hash: the speedup is the multi-core gain and the hash check
    pins bitwise identity of the tiled path.  The run meta's
    ``host_cores`` qualifies the wall number on narrow hosts.
``plan_redistribution_cold_p64``
    Plan the main loop's four redistribution pairs from a cold cache.
``replay_synthetic_2h_t3e_p64``
    Replay a deterministic synthetic 2-hour trace (no dataset needed;
    this is the CI smoke benchmark).
``ensemble_4demo_batched``
    A 4-member demo-dataset :class:`BatchedEnsemble` sweep (one fused
    kernel call per substep).  Reports the batched median, the median
    of the same members run independently, their ratio
    (``speedup_vs_independent``) and ``matches_independent`` — the
    batched results must be bitwise identical to the independent runs.
``ensemble_16la_batched_vs_independent``
    The 16-member LA uncertainty ensemble, batched vs. 16 independent
    :class:`SequentialAirshed` runs (single rep each; these are
    multi-second macro runs).  Same keys as the demo case.  Note the
    measured regimes (see ``docs/PERFORMANCE.md``): batching amortizes
    per-call overhead and wins when members are small; at LA member
    size on one core the 16x working set is DRAM-bound and batching
    roughly breaks even, so the production lever for large members is
    scheduler fusion (shared science cache + pretrans), not raw kernel
    throughput.

Timings are wall-clock medians; the concentration hash is the only
machine-independent number.  ``tests/perf`` separately pins replayed
*simulated* timings to machine-independent goldens.

Runs are appended to a history file (``BENCH_perf.json``,
``{"runs": [...]}``, one timestamped record per invocation) so perf can
be tracked over time; ``--check-regression`` judges the latest entry.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import statistics
import sys
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable, Dict, Optional

import numpy as np

from repro.datasets import make_la
from repro.fx import redistribute
from repro.fx.distribution import Distribution
from repro.datasets import get_dataset
from repro.model import AirshedConfig, BatchedEnsemble, SequentialAirshed
from repro.model.dataparallel import replay_data_parallel
from repro.model.results import HourTrace, StepTrace, WorkloadTrace
from repro.vm.cluster import Cluster
from repro.vm.machine import CRAY_T3E

REPO_ROOT = Path(__file__).resolve().parents[2]
BASELINE_PATH = Path(__file__).with_name("baseline.json")
DEFAULT_OUT = REPO_ROOT / "BENCH_perf.json"

SHAPE = (35, 5, 700)
NPROCS = 64

D_CHEM = Distribution.block(3, 2)
D_REPL = Distribution.replicated(3)
D_TRANS = Distribution.block(3, 1)


def det_trace(shape=SHAPE, hours=2, steps=6, start=6) -> WorkloadTrace:
    """The deterministic synthetic trace the goldens were captured on."""
    ns, nl, npts = shape
    tr = WorkloadTrace(dataset_name="golden", shape=shape)
    for i in range(hours):
        st = []
        for j in range(steps):
            st.append(StepTrace(
                transport1_ops=np.arange(nl, dtype=float) * 1000.0 + i + j,
                chemistry_ops=(np.arange(npts, dtype=float) % 17) * 50.0 + 3.0 * j,
                aerosol_ops=125000.0 + 10.0 * i,
                transport2_ops=np.arange(nl, dtype=float) * 900.0 + 2.0 * i + j,
            ))
        tr.hours.append(HourTrace(
            hour=start + i, input_bytes=1 << 21, input_ops=40000.0,
            pretrans_ops=90000.0, nsteps=steps, steps=st,
            output_bytes=1 << 20, output_ops=20000.0,
        ))
    return tr


def _median(fn: Callable[[], None], reps: int) -> float:
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return statistics.median(times)


# ---------------------------------------------------------------------------
# benchmarks
# ---------------------------------------------------------------------------
def bench_replay_la(reps: int = 7) -> Dict[str, float]:
    from benchmarks.trace_cache import la_trace

    full = la_trace()
    trace = WorkloadTrace(dataset_name=full.dataset_name, shape=full.shape,
                          hours=list(full.hours[:2]))
    replay_data_parallel(trace, CRAY_T3E, NPROCS)  # warm caches/JIT-ish costs
    return {"median_s": _median(
        lambda: replay_data_parallel(trace, CRAY_T3E, NPROCS), reps)}


def bench_charge_comm(reps: int = 7) -> Dict[str, float]:
    plan = redistribute.plan_redistribution(
        D_CHEM.layout(SHAPE, NPROCS), D_REPL.layout(SHAPE, NPROCS), 8)
    batch = plan.batch

    def charge_once() -> None:
        cluster = Cluster(CRAY_T3E, NPROCS)
        group = cluster.subgroup(range(NPROCS))
        for _ in range(10):
            group.charge_communication("D_Chem->D_Repl", batch)

    charge_once()
    return {"median_s": _median(charge_once, reps)}


def _time_chemistry_hour(cfg: AirshedConfig, reps: int) -> Dict[str, object]:
    times = []
    digest: Optional[str] = None
    for _ in range(reps):
        t0 = time.perf_counter()
        res = SequentialAirshed(cfg).run()
        times.append(time.perf_counter() - t0)
        digest = hashlib.sha256(res.final_conc.tobytes()).hexdigest()
    return {"median_s": statistics.median(times), "final_conc_sha256": digest}


def bench_chemistry_hour(reps: int = 3) -> Dict[str, object]:
    cfg = AirshedConfig(dataset=make_la(), hours=1, start_hour=12)
    return _time_chemistry_hour(cfg, reps)


def bench_chemistry_hour_mc(reps: int = 3, workers: int = 4) -> Dict[str, object]:
    """The LA chemistry hour on a 4-wide tiled worker pool.

    Baselined against the single-core fused-kernel median and hash:
    ``speedup_vs_baseline`` is the multi-core gain and
    ``bitwise_identical`` pins the tiled result to the sequential
    golden.  ``host_cores`` in the run meta qualifies the wall number —
    on fewer physical cores than ``chem_workers`` the speedup is
    bounded by the hardware, never the identity.
    """
    cfg = AirshedConfig(dataset=make_la(), hours=1, start_hour=12,
                        chem_workers=workers)
    out = _time_chemistry_hour(cfg, reps)
    out["chem_workers"] = workers
    return out


def bench_plan_cold(reps: int = 7) -> Dict[str, float]:
    pairs = [(D_REPL, D_TRANS), (D_TRANS, D_CHEM),
             (D_CHEM, D_REPL), (D_REPL, D_TRANS)]

    def plan_cold() -> None:
        redistribute._PLAN_CACHE.clear()
        for a, b in pairs:
            redistribute.plan_redistribution(
                a.layout(SHAPE, NPROCS), b.layout(SHAPE, NPROCS), 8)

    plan_cold()
    return {"median_s": _median(plan_cold, reps)}


def bench_replay_synthetic(reps: int = 9) -> Dict[str, float]:
    trace = det_trace()
    replay_data_parallel(trace, CRAY_T3E, NPROCS)
    return {"median_s": _median(
        lambda: replay_data_parallel(trace, CRAY_T3E, NPROCS), reps)}


def _bench_ensemble(dataset, members: int, reps: int) -> Dict[str, object]:
    """Batched vs independent ensemble medians + bitwise cross-check."""
    cfg = AirshedConfig(dataset=dataset, hours=1, start_hour=12)

    def batched():
        return BatchedEnsemble(cfg, members=members, sigma=0.3,
                               seed=0).run_members()

    def independent():
        ens = BatchedEnsemble(cfg, members=members, sigma=0.3, seed=0)
        return [SequentialAirshed(ens.member_config(i)).run()
                for i in range(members)]

    # The correctness pass doubles as warm-up; with reps=0 (the LA
    # macro case) its wall times are the single timed rep.
    t0 = time.perf_counter()
    b_results = batched()
    b_times = [time.perf_counter() - t0]
    t0 = time.perf_counter()
    i_results = independent()
    i_times = [time.perf_counter() - t0]
    matches = all(
        np.array_equal(b.final_conc, i.final_conc)
        for b, i in zip(b_results, i_results)
    )
    for _ in range(reps):
        t0 = time.perf_counter()
        batched()
        b_times.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        independent()
        i_times.append(time.perf_counter() - t0)
    if reps:  # drop the cold warm-up rep when timed reps exist
        b_times, i_times = b_times[1:], i_times[1:]
    b_med = statistics.median(b_times)
    i_med = statistics.median(i_times)
    return {
        "median_s": b_med,
        "independent_median_s": i_med,
        "speedup_vs_independent": i_med / b_med,
        "members": members,
        "matches_independent": matches,
        "final_conc_sha256": hashlib.sha256(
            b_results[0].final_conc.tobytes()).hexdigest(),
    }


def bench_ensemble_demo(reps: int = 3) -> Dict[str, object]:
    return _bench_ensemble(get_dataset("demo"), members=4, reps=reps)


def bench_ensemble_la() -> Dict[str, object]:
    from repro.datasets import make_la

    return _bench_ensemble(make_la(), members=16, reps=0)


#: name -> (runs in --quick mode, benchmark callable)
BENCHES = {
    "replay_2la_t3e_p64": (False, bench_replay_la),
    "charge_comm_allgather_p64_x10": (True, bench_charge_comm),
    "chemistry_hour_la": (False, bench_chemistry_hour),
    "chemistry_hour_la_mc4": (False, bench_chemistry_hour_mc),
    "plan_redistribution_cold_p64": (True, bench_plan_cold),
    "replay_synthetic_2h_t3e_p64": (True, bench_replay_synthetic),
    "ensemble_4demo_batched": (True, bench_ensemble_demo),
    "ensemble_16la_batched_vs_independent": (False, bench_ensemble_la),
}


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def tune_meta(store_root) -> Dict[str, object]:
    """Calibration provenance for the run meta (``--tune-store``).

    Records the store's generation/fingerprint and the latest autotuner
    decision, so a perf-trajectory point is attributable to the tuner
    state that produced it.  A missing or empty store records zeros —
    the bench ran untuned.
    """
    from repro.tune.store import CalibrationStore

    store = CalibrationStore(store_root)
    scan = store.scan()
    out: Dict[str, object] = {
        "store": str(store.root),
        "generation": len(scan.observations),
        "fingerprint": store.fingerprint,
        "n_decisions": len(scan.decisions),
    }
    if scan.decisions:
        out["latest_decision"] = scan.decisions[-1]
    return out


def run_suite(quick: bool = False,
              baseline_path: Path = BASELINE_PATH,
              tune_store=None) -> Dict[str, object]:
    baseline = json.loads(baseline_path.read_text())["benchmarks"]
    results: Dict[str, Dict[str, object]] = {}
    for name, (in_quick, fn) in BENCHES.items():
        if quick and not in_quick:
            continue
        out = dict(fn())
        base = baseline.get(name, {})
        if "median_s" in base:
            out["baseline_median_s"] = base["median_s"]
            out["speedup_vs_baseline"] = base["median_s"] / out["median_s"]
        if "final_conc_sha256" in base:
            out["baseline_final_conc_sha256"] = base["final_conc_sha256"]
            out["bitwise_identical"] = (
                out.get("final_conc_sha256") == base["final_conc_sha256"])
        results[name] = out
    meta: Dict[str, object] = {
        "mode": "quick" if quick else "full",
        "numpy": np.__version__,
        "python": platform.python_version(),
        "host_cores": os.cpu_count(),
        "baseline": str(baseline_path.relative_to(REPO_ROOT))
        if baseline_path.is_relative_to(REPO_ROOT) else str(baseline_path),
    }
    if tune_store is not None:
        meta["tune"] = tune_meta(tune_store)
    return {
        "benchmarks": results,
        "meta": meta,
    }


def load_history(path: Path) -> Dict[str, object]:
    """The run history at ``path``, migrating pre-history files.

    The original format was one bare report (``{"benchmarks": ...,
    "meta": ...}``); it becomes the history's first record.  Bare
    reports and history records whose timestamp is a legacy ``null``
    are stamped with the file's mtime — the closest honest UTC time
    for a record that never carried one — so the next ``append_run``
    rewrite heals the file in place.  Unreadable files start a fresh
    history.
    """
    if not path.exists():
        return {"runs": []}
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {"runs": []}

    def _stamp():
        return datetime.fromtimestamp(
            path.stat().st_mtime, timezone.utc).isoformat(timespec="seconds")

    if isinstance(data, dict) and isinstance(data.get("runs"), list):
        runs = [dict(r) for r in data["runs"] if isinstance(r, dict)]
        for run in runs:
            if not run.get("timestamp"):
                run["timestamp"] = _stamp()
        return {"runs": runs}
    if isinstance(data, dict) and "benchmarks" in data:
        if not data.get("timestamp"):
            data["timestamp"] = _stamp()
        return {"runs": [data]}
    return {"runs": []}


def append_run(report: Dict[str, object], path: Path,
               timestamp: Optional[str] = None) -> Dict[str, object]:
    """Append ``report`` as a timestamped record and rewrite ``path``."""
    history = load_history(path)
    record = dict(report)
    record["timestamp"] = timestamp or datetime.now(
        timezone.utc).isoformat(timespec="seconds")
    history["runs"].append(record)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return history


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Hot-path perf microbenchmarks (see benchmarks/perf).")
    parser.add_argument("--quick", action="store_true",
                        help="only the sub-second benchmarks (CI smoke mode)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="history JSON path; runs append "
                             f"(default {DEFAULT_OUT})")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument(
        "--check-regression", type=float, default=None, metavar="FACTOR",
        help="exit 1 if, in the latest history entry, any median exceeds "
             "FACTOR x its baseline median, or the chemistry result is "
             "not bitwise identical")
    parser.add_argument(
        "--tune-store", type=Path, default=None,
        help="record this calibration store's generation and latest "
             "decision into the run meta")
    args = parser.parse_args(argv)

    report = run_suite(quick=args.quick, baseline_path=args.baseline,
                       tune_store=args.tune_store)
    history = append_run(report, args.out)
    latest = history["runs"][-1]

    failed = []
    for name, res in latest["benchmarks"].items():
        base = res.get("baseline_median_s")
        line = f"{name}: {res['median_s']:.6f}s"
        if base is not None:
            line += f"  (baseline {base:.6f}s, {res['speedup_vs_baseline']:.2f}x)"
            if (args.check_regression is not None
                    and res["median_s"] > args.check_regression * base):
                failed.append(f"{name} regressed beyond "
                              f"{args.check_regression:g}x baseline")
        if "speedup_vs_independent" in res:
            line += (f"  [batched vs independent: "
                     f"{res['speedup_vs_independent']:.2f}x, "
                     f"{res['members']} members]")
        if res.get("bitwise_identical") is False:
            failed.append(f"{name} result is not bitwise identical to baseline")
        if res.get("matches_independent") is False:
            failed.append(f"{name}: batched members are not bitwise "
                          "identical to independent runs")
        print(line)
    print(f"appended run to {args.out} "
          f"({len(history['runs'])} run(s) in history)")
    for run in history["runs"][-5:]:
        # Legacy records may carry a null timestamp; render, don't crash.
        stamp = run.get("timestamp") or "(no timestamp)"
        mode = (run.get("meta") or {}).get("mode", "?")
        print(f"  {stamp}  {mode}  {len(run.get('benchmarks') or {})} "
              "benchmark(s)")
    for msg in failed:
        print(f"FAIL: {msg}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
