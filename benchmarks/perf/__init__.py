"""Perf microbenchmark suite for the simulator's hot paths.

Run ``python -m benchmarks.perf.suite`` to measure the hot paths
(trace replay, batched communication charging, redistribution
planning, one sequential chemistry hour) and write ``BENCH_perf.json``
at the repo root with before/after medians against the committed
pre-change baseline (``benchmarks/perf/baseline.json``).

``--quick`` restricts the run to the sub-second benchmarks (the CI
smoke mode); ``--check-regression F`` exits non-zero when any measured
median exceeds ``F`` times its baseline.
"""
