"""Figure 4: scaling of Airshed components on the Cray T3E, LA dataset.

Paper claims reproduced:

* most time is chemistry, then transport, then I/O processing;
* chemistry scales well to large node counts;
* transport scales only up to ~8 nodes (parallelism bounded by the 5
  layers: halves from 4 to 8, then flat);
* I/O processing time is constant;
* communication is a small fraction of the total everywhere.
"""

import pytest

from conftest import write_series
from repro.model import replay_data_parallel
from repro.vm import CRAY_T3E
from trace_cache import PAPER_NODE_COUNTS


@pytest.fixture(scope="module")
def fig4(la_trace):
    return {
        P: replay_data_parallel(la_trace, CRAY_T3E, P).breakdown
        for P in PAPER_NODE_COUNTS
    }


class TestFigure4:
    def test_component_ordering_at_small_P(self, fig4):
        b = fig4[4]
        assert b["chemistry"] > b["transport"] > b["io"]

    def test_chemistry_scales_nearly_linearly(self, fig4):
        c4, c32 = fig4[4]["chemistry"], fig4[32]["chemistry"]
        assert c4 / c32 > 6.0  # ideal 8x, some load imbalance allowed

    def test_transport_halves_then_flattens(self, fig4):
        """5 layers: 2 per node at P=4, 1 at P=8, constant afterwards."""
        t4, t8 = fig4[4]["transport"], fig4[8]["transport"]
        assert t4 / t8 == pytest.approx(2.0, rel=0.05)
        for P in (16, 32, 64, 128):
            assert fig4[P]["transport"] == pytest.approx(t8, rel=1e-9)

    def test_io_constant(self, fig4):
        io4 = fig4[4]["io"]
        for P in PAPER_NODE_COUNTS[1:]:
            assert fig4[P]["io"] == pytest.approx(io4, rel=1e-9)

    def test_communication_small_fraction(self, fig4):
        """'communication accounts for a very small fraction'."""
        for P, b in fig4.items():
            total = sum(b.values())
            assert b["communication"] / total < 0.15, P

    def test_io_becomes_relatively_important(self, fig4):
        """The Amdahl seed of Section 5: flat I/O grows in proportion."""
        frac4 = fig4[4]["io"] / sum(fig4[4].values())
        frac128 = fig4[128]["io"] / sum(fig4[128].values())
        assert frac128 > 3 * frac4

    def test_write_series(self, fig4, results_dir):
        rows = [
            [P, b["communication"], b["chemistry"], b["transport"], b["io"]]
            for P, b in fig4.items()
        ]
        write_series(
            results_dir / "fig04_components.txt",
            "Figure 4: component times (s) on the Cray T3E, LA dataset",
            ["nodes", "comm", "chemistry", "transport", "io"],
            rows,
        )


def test_benchmark_breakdown_extraction(benchmark, la_trace):
    def run():
        return replay_data_parallel(la_trace, CRAY_T3E, 8).breakdown

    assert benchmark(run)["chemistry"] > 0
