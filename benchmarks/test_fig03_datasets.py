"""Figure 3: Airshed execution times on the Cray T3E, LA vs NE datasets.

Paper claim: "the qualitative execution behavior is similar for the two
data sets.  In particular, the logarithmic graph shows that they follow
broadly similar speedup patterns."  (NE has 4.75x the grid points, so
its absolute times sit above LA's.)
"""

import numpy as np
import pytest

from conftest import write_series
from repro.model import replay_data_parallel
from repro.vm import CRAY_T3E
from trace_cache import LA_HOURS, NE_HOURS, PAPER_NODE_COUNTS


@pytest.fixture(scope="module")
def fig3(la_trace, ne_trace):
    la = [
        replay_data_parallel(la_trace, CRAY_T3E, P).total_time
        for P in PAPER_NODE_COUNTS
    ]
    ne = [
        replay_data_parallel(ne_trace, CRAY_T3E, P).total_time
        for P in PAPER_NODE_COUNTS
    ]
    return la, ne


class TestFigure3:
    def test_both_datasets_speed_up(self, fig3):
        la, ne = fig3
        assert la == sorted(la, reverse=True)
        assert ne == sorted(ne, reverse=True)

    def test_ne_is_larger_everywhere(self, fig3):
        """3328 points vs 700: NE costs more per simulated hour."""
        la, ne = fig3
        # Normalise to per-hour cost (the traces cover different windows).
        for a, b in zip(la, ne):
            assert b / NE_HOURS > a / LA_HOURS

    def test_similar_speedup_patterns(self, fig3):
        """Log-scale curves are broadly parallel (the paper's claim)."""
        la, ne = fig3
        shift = np.log(ne) - np.log(la)
        assert shift.max() - shift.min() < 0.8

    def test_ne_scales_a_bit_better(self, fig3):
        """More grid points = more chemistry parallelism to exploit: the
        larger dataset keeps speeding up at least as long as the small
        one (classic Gustafson behaviour)."""
        la, ne = fig3
        la_gain = la[0] / la[-1]
        ne_gain = ne[0] / ne[-1]
        assert ne_gain > 0.9 * la_gain

    def test_write_series(self, fig3, results_dir):
        la, ne = fig3
        rows = [
            [P, la[i], ne[i]]
            for i, P in enumerate(PAPER_NODE_COUNTS)
        ]
        write_series(
            results_dir / "fig03_datasets.txt",
            f"Figure 3: T3E execution time (s); LA={LA_HOURS}h, NE={NE_HOURS}h windows",
            ["nodes", "LA", "NE"],
            rows,
        )


def test_benchmark_replay_ne_t3e_64(benchmark, ne_trace):
    benchmark(replay_data_parallel, ne_trace, CRAY_T3E, 64)
