"""Emission-inventory uncertainty: error bars for the policy numbers.

Emission inventories are uncertain to tens of percent.  This example
runs an 8-member ensemble of perturbed inventories (log-normal species
factors, sigma = 30%) over the demo smog episode and reports the spread
of the peak ozone — the honest version of the single number
``policy_scenario.py`` prints.

The members execute as one batched sweep (``BatchedEnsemble``): a
single fused solver call per substep covers all 8 members, with
results bitwise identical to running each member alone — see
docs/ENSEMBLES.md.

Run:  python examples/uncertainty.py
"""


from repro.datasets import DEMO_SPEC
from repro.core import AirshedConfig
from repro.model import BatchedEnsemble


def main() -> None:
    config = AirshedConfig(dataset=DEMO_SPEC.build(), hours=6,
                           start_hour=8, max_steps=3)
    ensemble = BatchedEnsemble(config, members=8, sigma=0.3, seed=7)
    print(f"Running {ensemble.members} perturbed-inventory members "
          f"(sigma = {ensemble.sigma:.0%})...")
    summary = ensemble.run()

    print("\nPeak domain-mean concentrations across the ensemble:")
    print(f"{'species':>8} {'mean':>9} {'std':>9} {'rel':>6} "
          f"{'90% interval':>22}")
    for s in ("O3", "NO2", "PAN", "HCHO", "AERO"):
        p = summary.peaks[s]
        lo, hi = summary.peak_interval(s, quantile=0.9)
        print(f"{s:>8} {p.mean():>9.5f} {p.std():>9.5f} "
              f"{100 * summary.relative_spread(s):>5.1f}% "
              f"[{lo:>9.5f}, {hi:>9.5f}]")

    print("\nHourly O3 envelope (mean ± 1 std, ppm):")
    for i in range(config.hours):
        hour = config.hour_of_day(i)
        m = summary.mean["O3"][i]
        sd = summary.std["O3"][i]
        band = "=" * int(400 * sd)
        print(f"  {hour:02d}:00  {m:.4f} ± {sd:.4f}  {band}")

    print(
        "\nA ~30% inventory uncertainty maps into a "
        f"{100 * summary.relative_spread('O3'):.1f}% spread in peak O3 — "
        "the nonlinear chemistry damps it."
    )


if __name__ == "__main__":
    main()
