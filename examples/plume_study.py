"""Power-plant plume study: elevated point sources in action.

Adds a large coastal power plant (NOx/SO2 from a 200 m plume) to the
demo domain and compares against the no-plant baseline: sulfate aloft,
downwind surface impact, and the effect on ozone — the kind of
source-attribution question regulatory Airshed runs answer.

Run:  python examples/plume_study.py
"""

import numpy as np

from repro.core import AirshedConfig, SequentialAirshed
from repro.datasets import DatasetSpec, PointSource
from repro.grid import RefinementCore

PLANT = PointSource(
    x=40.0, y=30.0, plume_height=200.0,
    strengths={"NO": 8e-5, "NO2": 1e-5, "SO2": 1.2e-4},
    name="coastal-power-plant",
)

BASE = dict(
    domain=(160.0, 120.0),
    base_shape=(6, 5),
    npoints=30 + 3 * 40,
    cores=(RefinementCore(60.0, 60.0, 8.0, 25.0),),
    layers=4,
    seed=5,
)


def run(name, sources):
    spec = DatasetSpec(name=name, point_sources=sources, **BASE)
    dataset = spec.build()
    cfg = AirshedConfig(dataset=dataset, hours=8, start_hour=6, max_steps=4)
    return dataset, SequentialAirshed(cfg).run()


def main() -> None:
    print("Simulating 8 daylight hours with and without the power plant...")
    ds, with_plant = run("with-plant", (PLANT,))
    _, baseline = run("no-plant", ())
    mech = ds.mechanism

    d_conc = with_plant.final_conc - baseline.final_conc
    print("\nPlant contribution to final concentrations (ppb, domain max):")
    print(f"{'species':>8} " + " ".join(f"layer{l:>2}" for l in range(ds.layers)))
    for s in ("SO2", "NO2", "O3", "AERO", "HNO3"):
        row = " ".join(
            f"{1e3 * d_conc[mech.index[s], l].max():7.3f}"
            for l in range(ds.layers)
        )
        print(f"{s:>8} {row}")

    # Where does the plume land? Surface SO2 delta by distance downwind.
    so2_delta = d_conc[mech.index["SO2"], 0]
    dist = np.hypot(ds.grid.points[:, 0] - PLANT.x, ds.grid.points[:, 1] - PLANT.y)
    print("\nSurface SO2 impact vs distance from the stack (ppb):")
    for lo, hi in ((0, 15), (15, 40), (40, 80), (80, 200)):
        sel = (dist >= lo) & (dist < hi)
        if sel.any():
            print(f"  {lo:>3}-{hi:<3} km: mean {1e3 * so2_delta[sel].mean():7.4f}  "
                  f"max {1e3 * so2_delta[sel].max():7.4f}")

    o3_with = with_plant.peak("O3")
    o3_base = baseline.peak("O3")
    print(f"\nPeak domain-mean O3: baseline {o3_base:.4f} ppm, "
          f"with plant {o3_with:.4f} ppm "
          f"({100 * (o3_with - o3_base) / o3_base:+.1f}%)")
    print("(Fresh elevated NOx typically titrates ozone near the plume "
          "before producing it far downwind.)")


if __name__ == "__main__":
    main()
