"""Emission-control policy study — the application the paper motivates.

"An important use of Airshed is to help in the development of
environmental policies.  The effect of air pollution control measures
can be evaluated at a low cost making it possible to select the best
strategy under a given set of constraints."

This example compares three control strategies over a smog day on a
reduced urban domain: business-as-usual, a 50% NOx cut, and a 50% VOC
cut — the classic (and famously non-obvious) NOx-vs-VOC control
question — reporting peak ozone and population exposure for each.

Run:  python examples/policy_scenario.py
"""


from repro.core import AirshedConfig, DatasetSpec, SequentialAirshed
from repro.datasets.generators import Dataset
from repro.foreign import PopulationRaster, exposure_sequential
from repro.grid import RefinementCore

NOX = ("NO", "NO2")
VOC = ("ETH", "OLE", "PAR", "TOL", "XYL", "HCHO", "ALD2", "MEK",
       "MEOH", "ETOH")

DEMO_SPEC = DatasetSpec(
    name="demo-city",
    domain=(160.0, 120.0),
    base_shape=(6, 5),
    npoints=30 + 3 * 40,  # 150 points
    cores=(RefinementCore(60.0, 60.0, 8.0, 25.0),),
    layers=4,
    seed=5,
)


class ControlledDataset(Dataset):
    """A dataset with per-species emission scaling (the control knob)."""

    def __init__(self, spec, scale: dict):
        super().__init__(spec)
        self._scale = scale

    def hourly(self, hour):
        cond = super().hourly(hour)
        E = cond.emissions.copy()
        for species, factor in self._scale.items():
            E[self.mechanism.index[species]] *= factor
        return type(cond)(
            hour=cond.hour, temperature=cond.temperature, sun=cond.sun,
            emissions=E, boundary=cond.boundary,
        )


def run_policy(name: str, scale: dict) -> dict:
    dataset = ControlledDataset(DEMO_SPEC, scale)
    config = AirshedConfig(
        dataset=dataset, hours=8, start_hour=6, max_steps=4,
        track_surface_fields=True,
    )
    result = SequentialAirshed(config).run()
    mech = dataset.mechanism
    population = PopulationRaster.from_grid(dataset.grid)
    exposure = exposure_sequential(result.hourly_surface, population, mech)
    return {
        "name": name,
        "peak_o3": result.peak("O3"),
        "peak_aero": result.peak("AERO"),
        "exposure": float(exposure.sum()),
        "o3_series": result.species_series("O3"),
    }


def main() -> None:
    policies = [
        ("business as usual", {}),
        ("50% NOx cut", {s: 0.5 for s in NOX}),
        ("50% VOC cut", {s: 0.5 for s in VOC}),
    ]
    print("Evaluating control strategies (8-hour smog episode, demo city)\n")
    rows = [run_policy(name, scale) for name, scale in policies]

    base = rows[0]
    print(f"{'strategy':>20} {'peak O3 ppm':>12} {'dO3':>7} "
          f"{'exposure (person-ppm-h)':>24}")
    for r in rows:
        do3 = 100 * (r["peak_o3"] - base["peak_o3"]) / base["peak_o3"]
        print(f"{r['name']:>20} {r['peak_o3']:>12.4f} {do3:>6.1f}% "
              f"{r['exposure']:>24.4g}")
    print(
        "\nNote the classic VOC-limited result: in a dense urban core, "
        "cutting NOx\nalone can RAISE ozone (less NO titration), while "
        "cutting VOCs lowers it —\nexactly the policy trade-off Airshed "
        "exists to quantify."
    )

    print("\nHourly mean O3 (ppm) per strategy:")
    hours = [6 + i for i in range(8)]
    print("    hour " + "  ".join(f"{h:>6}" for h in hours))
    for r in rows:
        series = "  ".join(f"{v:6.4f}" for v in r["o3_series"])
        print(f"{r['name'][:8]:>8} {series}")


if __name__ == "__main__":
    main()
