"""Performance portability: one application, three machines (Figure 2).

Replays the same LA workload on the simulated Cray T3E, Cray T3D and
Intel Paragon across the paper's node counts, printing the execution
times and per-machine speedups — the paper's headline "performance
portable" demonstration.

Run:  python examples/machine_comparison.py
"""

import math

from repro.core import (
    AirshedConfig,
    CRAY_T3D,
    CRAY_T3E,
    INTEL_PARAGON,
    SequentialAirshed,
    make_la,
    replay_data_parallel,
)

MACHINES = (CRAY_T3E, CRAY_T3D, INTEL_PARAGON)
NODES = (4, 8, 16, 32, 64, 128)


def main() -> None:
    print("Generating the LA workload...")
    config = AirshedConfig(dataset=make_la(), hours=3, start_hour=8)
    trace = SequentialAirshed(config).run().trace

    times = {
        m.name: [replay_data_parallel(trace, m, P).total_time for P in NODES]
        for m in MACHINES
    }

    print("\nExecution time (s):")
    header = f"{'nodes':>6}" + "".join(f"{m.name:>16}" for m in MACHINES)
    print(header)
    for i, P in enumerate(NODES):
        row = f"{P:>6}" + "".join(f"{times[m.name][i]:>16.1f}" for m in MACHINES)
        print(row)

    print("\nSpeedup relative to 4 nodes:")
    print(header)
    for i, P in enumerate(NODES):
        row = f"{P:>6}" + "".join(
            f"{times[m.name][0] / times[m.name][i]:>16.2f}" for m in MACHINES
        )
        print(row)

    print("\nMachine ratios (vs Paragon), by node count:")
    for i, P in enumerate(NODES):
        para = times[INTEL_PARAGON.name][i]
        print(f"  P={P:>3}:  T3E {para / times[CRAY_T3E.name][i]:5.1f}x   "
              f"T3D {para / times[CRAY_T3D.name][i]:5.2f}x")

    print("\nLog-scale curve parallelism (performance portability):")
    ref = [math.log(t) for t in times[INTEL_PARAGON.name]]
    for m in (CRAY_T3E, CRAY_T3D):
        shifts = [r - math.log(t) for r, t in zip(ref, times[m.name])]
        spread = max(shifts) - min(shifts)
        print(f"  {m.name}: log-shift spread {spread:.3f} "
              f"({'nearly parallel' if spread < 0.4 else 'diverging'})")


if __name__ == "__main__":
    main()
