"""Coupling Airshed with the PVM population-exposure model (Section 6).

Reproduces the paper's integration experiment end to end: the same
Airshed workload drives (a) an all-Fx version where PopExp is a native
task, and (b) the foreign-module version where PopExp is an independent
PVM program coupled through the shared communication layer (scenario A).
Both produce identical exposure numbers; the foreign version pays a
small fixed overhead.

Run:  python examples/popexp_coupling.py
"""

from repro.core import (
    AirshedConfig,
    INTEL_PARAGON,
    Scenario,
    SequentialAirshed,
    make_la,
    run_integrated,
)
from repro.foreign import HEALTH_SPECIES


def main() -> None:
    print("Generating the LA workload...")
    dataset = make_la()
    config = AirshedConfig(dataset=dataset, hours=3, start_hour=9)
    trace = SequentialAirshed(config).run().trace

    print("Running the integrated Airshed+PopExp application "
          "(Intel Paragon, pipelined)\n")
    print(f"{'nodes':>6} {'native s':>10} {'foreign s':>10} {'overhead':>9}")
    last = {}
    for P in (8, 16, 32, 64):
        native = run_integrated(trace, dataset, INTEL_PARAGON, P, mode="native")
        foreign = run_integrated(
            trace, dataset, INTEL_PARAGON, P, mode="foreign",
            scenario=Scenario.A,
        )
        over = 100 * (foreign.total_time - native.total_time) / native.total_time
        print(f"{P:>6} {native.total_time:>10.1f} {foreign.total_time:>10.1f} "
              f"{over:>8.1f}%")
        last = {"native": native, "foreign": foreign}

    print("\nExposure results (identical across integration modes):")
    species = list(HEALTH_SPECIES)
    for i, s in enumerate(species):
        n = last["native"].exposure[i]
        f = last["foreign"].exposure[i]
        match = "==" if abs(n - f) < 1e-9 * max(abs(n), 1.0) else "!="
        print(f"  {s:>5}: native {n:12.4g}  {match}  foreign {f:12.4g}")

    print("\nScenario cost comparison for one surface-field transfer:")
    from repro.foreign import ForeignModuleBinding
    from repro.vm import Cluster

    nbytes = 35 * dataset.npoints * 8
    for scenario in Scenario:
        cluster = Cluster(INTEL_PARAGON, 12)
        binding = ForeignModuleBinding(
            cluster.subgroup(range(8)), cluster.subgroup(range(8, 12)),
            scenario=scenario,
        )
        cost = binding.relative_cost(nbytes)
        print(f"  scenario {scenario.name} ({scenario.value:>8}): {cost * 1e3:7.2f} ms")


if __name__ == "__main__":
    main()
