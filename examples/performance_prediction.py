"""Predictable performance: calibrate small, predict large (Section 4).

The paper's pitch: "the measurements obtained by executing an
application on a small number of nodes can be used to extrapolate the
performance to larger numbers of nodes ... small parallel computers are
fairly widely available as development platforms, while large ones are
the domain of a select set of institutions like supercomputing centers."

This example:
1. runs the Airshed workload on the simulated T3E at P in {2, 4, 8},
2. fits the machine's L/G/H and compute rate from those runs only,
3. predicts execution at P in {16 ... 128},
4. compares against the "supercomputing centre" measurement.

Run:  python examples/performance_prediction.py
"""

from repro.core import (
    AirshedConfig,
    CRAY_T3E,
    MachineSpec,
    SequentialAirshed,
    fit_comm_parameters,
    fit_compute_rate,
    make_la,
    replay_data_parallel,
    PerformancePredictor,
)
from repro.fx.runtime import FxRuntime
from repro.model.dataparallel import HourReplayer


def main() -> None:
    print("Generating the LA workload (sequential run, real numerics)...")
    config = AirshedConfig(dataset=make_la(), hours=2, start_hour=8)
    trace = SequentialAirshed(config).run().trace

    print("Measuring on small 'development' machines: P = 2, 4, 8")
    timelines = []
    for P in (2, 4, 8):
        rt = FxRuntime(CRAY_T3E, P)
        replayer = HourReplayer(rt.world, trace)
        for hour in trace.hours:
            replayer.run_hour(hour)
        timelines.append(rt.timeline)

    comm = fit_comm_parameters(timelines)
    rate = fit_compute_rate(timelines)
    fitted = MachineSpec(
        name="fitted T3E",
        latency=comm.latency,
        gap=comm.gap,
        copy_cost=comm.copy_cost,
        seconds_per_op=rate,
        io_seconds_per_byte=CRAY_T3E.io_seconds_per_byte,
    )
    print(f"  fitted L = {comm.latency:.3g} s/msg   (paper: 5.2e-05)")
    print(f"  fitted G = {comm.gap:.3g} s/B     (paper: 2.47e-08)")
    print(f"  fitted H = {comm.copy_cost:.3g} s/B     (paper: 2.04e-08)")
    print(f"  fitted compute rate = {rate:.3g} s/op")

    predictor = PerformancePredictor(trace, fitted)
    print(f"\n{'nodes':>6} {'predicted s':>12} {'measured s':>12} {'error':>7}")
    for P in (16, 32, 64, 128):
        predicted = predictor.predict_total(P)
        measured = replay_data_parallel(trace, CRAY_T3E, P).total_time
        err = 100 * (predicted - measured) / measured
        print(f"{P:>6} {predicted:>12.2f} {measured:>12.2f} {err:>6.1f}%")


if __name__ == "__main__":
    main()
