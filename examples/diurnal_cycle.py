"""A full diurnal cycle with checkpoint/restart and a pipeline Gantt.

Simulates 24 hours over the demo city — morning rush, midday
photochemistry, evening titration, night-time NO3/N2O5 chemistry —
stopping at noon to write a checkpoint and resuming from it (the split
run is verified against the unbroken one).  Finishes by rendering the
task-parallel pipeline schedule as a text Gantt chart (the paper's
Figure 8).

Run:  python examples/diurnal_cycle.py
"""

from dataclasses import replace
import io

import numpy as np

from repro.analysis import render_gantt
from repro.core import AirshedConfig, INTEL_PARAGON, SequentialAirshed
from repro.datasets import DEMO_SPEC
from repro.model.checkpoint import load_checkpoint, resume_config, save_checkpoint
from repro.model.taskparallel import TaskParallelAirshed


def main() -> None:
    dataset = DEMO_SPEC.build()
    config = AirshedConfig(dataset=dataset, hours=24, start_hour=5,
                           max_steps=3)

    print("Simulating 24 hours (unbroken run)...")
    full = SequentialAirshed(config).run()

    print("\nDiurnal ozone cycle (domain mean, ppm):")
    o3 = full.species_series("O3")
    peak = float(o3.max())
    for i in range(24):
        hour = config.hour_of_day(i)
        bar = "#" * int(40 * o3[i] / peak)
        sun = "*" if 6 <= hour <= 20 else " "
        print(f"  {hour:02d}:00 {sun} {o3[i]:.4f} {bar}")

    # ------------------------------------------------------------------
    print("\nCheckpoint/restart: stop at noon, resume, compare...")
    first_cfg = replace(config, hours=7)  # 05:00 -> 12:00
    first = SequentialAirshed(first_cfg).run()
    buffer = io.BytesIO()
    save_checkpoint(first_cfg, first, buffer)
    buffer.seek(0)
    resumed_cfg = resume_config(config, load_checkpoint(buffer))
    second = SequentialAirshed(resumed_cfg).run()
    identical = np.array_equal(second.final_conc, full.final_conc)
    print(f"  resumed run equals unbroken run: {identical}")

    # ------------------------------------------------------------------
    print("\nPipelined task-parallel schedule on a 16-node Paragon "
          "(first 6 hours):")
    short_cfg = replace(config, hours=6)
    tp = TaskParallelAirshed(short_cfg, INTEL_PARAGON, 16)
    _, timing = tp.run()
    print(render_gantt(
        tp.runtime.timeline,
        {
            "input": tp.in_grp.node_ids,
            "main": tp.main_grp.node_ids,
            "output": tp.out_grp.node_ids,
        },
        width=70,
    ))
    print(f"\n  makespan {timing.total_time:.1f} s simulated")


if __name__ == "__main__":
    main()
