"""A 12-job LA sweep run through the campaign scheduler.

The paper's predictability claim, operationalised: a machine-comparison
study (3 machines x 4 node counts over the LA basin) is submitted as a
*campaign* — content-hashed jobs packed onto a bounded worker pool by
predicted runtime — instead of a hand-written loop.  The script then
verifies the scheduler's contracts end to end:

1. all 12 jobs share one science key, so the expensive numerics run
   once and the result is **bitwise identical** to a direct
   `SequentialAirshed` run;
2. an injected fault (one job raises mid-science, once) is recovered
   by retry, resuming from the checkpoint rather than restarting;
3. resubmitting the finished campaign is pure cache: zero simulated
   hours of work;
4. the report prices the campaign in advance and logs predicted vs
   observed makespan.

Run:  python examples/campaign_sweep.py
"""

import hashlib
import tempfile

from repro.core import AirshedConfig, SequentialAirshed, make_la
from repro.sched import CampaignRunner, FaultPolicy, machine_grid

MACHINES = ("t3e", "t3d", "paragon")
NODES = (8, 16, 32, 64)
HOURS = 2


def main() -> None:
    specs = machine_grid(dataset="la", machines=MACHINES,
                         node_counts=NODES, hours=HOURS)
    assert len(specs) == 12
    assert len({s.science_key for s in specs}) == 1

    # deterministically fault one of the 12 jobs, once, mid-science
    policy = FaultPolicy.pick([s.key for s in specs], 1, seed=0,
                              mode="raise", after_hours=1)

    with tempfile.TemporaryDirectory(prefix="campaign-") as cache_dir:
        runner = CampaignRunner(cache_dir, workers=4, retries=2,
                                backoff=0.0, fault_policy=policy)
        plan = runner.plan(specs)
        print(f"campaign: {plan.n_jobs} jobs on {plan.workers} workers, "
              f"predicted makespan {plan.predicted_makespan:.2f}s")

        report = runner.run(specs, plan=plan)
        print(report.render())
        assert report.complete, "campaign did not complete"

        faults = report.counters.get("campaign:faults", 0)
        retries = report.total_retries
        print(f"\ninjected faults recovered: {faults:.0f} "
              f"(via {retries} retries)")
        assert faults >= 1 and retries >= 1

        # one science run for all 12 jobs, and it matches a direct run
        print("verifying bitwise identity against a direct run...")
        direct = SequentialAirshed(AirshedConfig(
            dataset=make_la(), hours=HOURS, start_hour=6)).run()
        want = hashlib.sha256(direct.final_conc.tobytes()).hexdigest()
        digests = {r.final_conc_sha256() for r in report.results}
        assert digests == {want}, "campaign results diverge from direct run"
        print(f"all 12 jobs bitwise identical to the direct run "
              f"(sha256 {want[:12]}...)")

        # resubmission is pure cache: zero simulation
        rerun = CampaignRunner(cache_dir, workers=4).run(specs)
        sim_hours = rerun.counters.get("campaign:sim_hours", 0)
        assert rerun.cache_hits == 12 and sim_hours == 0
        print(f"\nresubmission: {rerun.cache_hits} cache hits, "
              f"{sim_hours:.0f} simulated hours of work")
        print(f"makespan: predicted {report.predicted_makespan_s:.2f}s, "
              f"observed {report.observed_makespan_s:.2f}s")


if __name__ == "__main__":
    main()
