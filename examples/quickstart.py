"""Quickstart: simulate a Los Angeles smog morning and time it on a T3E.

Runs the real numerics sequentially (a few hours of simulated time over
the 700-point LA basin grid), then replays the recorded workload on the
simulated Cray T3E at several node counts.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AirshedConfig,
    CRAY_T3E,
    SequentialAirshed,
    make_la,
    replay_data_parallel,
)


def main() -> None:
    print("Building the Los Angeles dataset (700 points, 5 layers, 35 species)")
    dataset = make_la()
    config = AirshedConfig(dataset=dataset, hours=3, start_hour=7)

    print("Running the sequential Airshed model (real numerics)...")
    result = SequentialAirshed(config).run()

    print("\nHourly domain-mean concentrations (ppm):")
    print(f"{'hour':>6} {'O3':>10} {'NO2':>10} {'PAN':>10} {'AERO':>10}")
    for i in range(config.hours):
        print(
            f"{config.hour_of_day(i):>6} "
            f"{result.hourly_mean['O3'][i]:>10.4f} "
            f"{result.hourly_mean['NO2'][i]:>10.4f} "
            f"{result.hourly_mean['PAN'][i]:>10.5f} "
            f"{result.hourly_mean['AERO'][i]:>10.5f}"
        )

    trace = result.trace
    ops = trace.total_ops_by_phase()
    print(f"\nWorkload: {trace.total_steps()} main-loop steps, "
          f"{trace.expected_comm_steps()} redistributions")
    print("Sequential work split: " + ", ".join(
        f"{k} {100 * v / sum(ops.values()):.1f}%" for k, v in ops.items()
    ))

    print(f"\nSimulated execution on the {CRAY_T3E.name}:")
    print(f"{'nodes':>6} {'total s':>9} {'chemistry':>10} {'transport':>10} "
          f"{'io':>7} {'comm':>7}")
    for P in (1, 4, 16, 64):
        t = replay_data_parallel(trace, CRAY_T3E, P)
        b = t.breakdown
        print(
            f"{P:>6} {t.total_time:>9.2f} {b['chemistry']:>10.2f} "
            f"{b['transport']:>10.2f} {b['io']:>7.2f} "
            f"{b['communication']:>7.2f}"
        )


if __name__ == "__main__":
    main()
