"""Tests for triangulation and P1 finite-element geometry."""

import numpy as np
import pytest

from repro.grid import RefinementCore, generate_multiscale_grid, triangulate


@pytest.fixture(scope="module")
def unit_square_mesh():
    xs, ys = np.meshgrid(np.linspace(0, 1, 5), np.linspace(0, 1, 5))
    pts = np.column_stack([xs.ravel(), ys.ravel()])
    return triangulate(pts)


class TestGeometry:
    def test_total_area(self, unit_square_mesh):
        assert unit_square_mesh.areas.sum() == pytest.approx(1.0)

    def test_areas_positive(self, unit_square_mesh):
        assert np.all(unit_square_mesh.areas > 0)

    def test_node_areas_partition_domain(self, unit_square_mesh):
        assert unit_square_mesh.node_areas.sum() == pytest.approx(1.0)
        assert np.all(unit_square_mesh.node_areas > 0)

    def test_gradients_sum_to_zero(self, unit_square_mesh):
        """P1 basis functions partition unity, so gradients cancel."""
        total = unit_square_mesh.grads.sum(axis=1)
        assert np.allclose(total, 0.0, atol=1e-12)

    def test_gradient_reproduces_linear_function(self, unit_square_mesh):
        """grad of f = 2x + 3y must be (2, 3) on every element."""
        m = unit_square_mesh
        f = 2.0 * m.points[:, 0] + 3.0 * m.points[:, 1]
        grad_f = np.einsum("tie,ti->te", m.grads, f[m.triangles])
        assert np.allclose(grad_f[:, 0], 2.0, atol=1e-10)
        assert np.allclose(grad_f[:, 1], 3.0, atol=1e-10)

    def test_triangles_ccw(self, unit_square_mesh):
        m = unit_square_mesh
        p0 = m.points[m.triangles[:, 0]]
        p1 = m.points[m.triangles[:, 1]]
        p2 = m.points[m.triangles[:, 2]]
        det = (p1[:, 0] - p0[:, 0]) * (p2[:, 1] - p0[:, 1]) - (
            p2[:, 0] - p0[:, 0]
        ) * (p1[:, 1] - p0[:, 1])
        assert np.all(det > 0)

    def test_boundary_nodes_on_hull(self, unit_square_mesh):
        m = unit_square_mesh
        for idx in m.boundary:
            x, y = m.points[idx]
            assert (
                min(abs(x), abs(x - 1), abs(y), abs(y - 1)) < 1e-12
            ), f"node {idx} at ({x},{y}) not on the square boundary"

    def test_edge_lengths_positive(self, unit_square_mesh):
        assert np.all(unit_square_mesh.edge_lengths() > 0)


class TestInterpolation:
    def test_linear_exactness(self, unit_square_mesh):
        m = unit_square_mesh
        nodal = 4.0 * m.points[:, 0] - m.points[:, 1] + 0.5
        rng = np.random.default_rng(3)
        xy = rng.uniform(0.05, 0.95, size=(40, 2))
        vals = m.interpolate(nodal, xy)
        assert np.allclose(vals, 4.0 * xy[:, 0] - xy[:, 1] + 0.5, atol=1e-10)

    def test_outside_hull_uses_nearest(self, unit_square_mesh):
        m = unit_square_mesh
        nodal = m.points[:, 0]
        vals = m.interpolate(nodal, np.array([[5.0, 5.0]]))
        assert vals[0] == pytest.approx(1.0)  # nearest node is a corner


class TestMultiscaleMesh:
    def test_mesh_on_multiscale_grid(self):
        grid = generate_multiscale_grid(
            (100.0, 100.0), (5, 5), 100,
            [RefinementCore(50, 50, 5, 20)],
        )
        mesh = triangulate(grid.points)
        assert mesh.npoints == 100
        assert mesh.ntriangles > 100
        # The hull of the cell centres is inset by half a coarse cell on
        # each side, so the meshed area is somewhat below the domain area.
        assert 0.5 * grid.total_area() < mesh.areas.sum() <= grid.total_area()


class TestValidation:
    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            triangulate(np.array([[0.0, 0.0], [1.0, 1.0]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            triangulate(np.zeros((5, 3)))
