"""Tests for quadtree multiscale grid generation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import RefinementCore, generate_multiscale_grid

CORES = [RefinementCore(x=100.0, y=80.0, weight=10.0, sigma=30.0)]


def make(target=196, base=(7, 7), domain=(280.0, 210.0), cores=CORES):
    return generate_multiscale_grid(domain, base, target, cores)


class TestGeneration:
    def test_exact_target_count(self):
        grid = make(target=196)
        assert grid.npoints == 196

    def test_base_grid_only(self):
        grid = make(target=49)
        assert grid.npoints == 49
        assert np.all(grid.levels == 0)
        assert np.allclose(grid.areas, grid.areas[0])

    def test_area_is_conserved(self):
        grid = make(target=196)
        assert grid.total_area() == pytest.approx(280.0 * 210.0)

    def test_points_inside_domain(self):
        grid = make(target=196)
        assert np.all(grid.points[:, 0] > 0) and np.all(grid.points[:, 0] < 280)
        assert np.all(grid.points[:, 1] > 0) and np.all(grid.points[:, 1] < 210)

    def test_points_unique(self):
        grid = make(target=196)
        rounded = {tuple(np.round(p, 9)) for p in grid.points}
        assert len(rounded) == grid.npoints

    def test_refinement_concentrates_near_core(self):
        grid = make(target=196)
        d = np.hypot(grid.points[:, 0] - 100.0, grid.points[:, 1] - 80.0)
        near = grid.areas[d < 40.0]
        far = grid.areas[d > 120.0]
        assert near.mean() < far.mean()
        assert grid.finest_cell_size < grid.coarsest_cell_size

    def test_deterministic(self):
        g1, g2 = make(), make()
        assert np.array_equal(g1.points, g2.points)
        assert np.array_equal(g1.areas, g2.areas)

    def test_equivalent_uniform_is_larger(self):
        grid = make(target=196)
        assert grid.equivalent_uniform_npoints() > grid.npoints


class TestValidation:
    def test_unreachable_target_rejected(self):
        with pytest.raises(ValueError, match="% 3"):
            make(target=50)  # 50 - 49 = 1, not divisible by 3

    def test_target_below_base_rejected(self):
        with pytest.raises(ValueError):
            make(target=10)

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            generate_multiscale_grid((0.0, 10.0), (2, 2), 4, CORES)

    def test_bad_base_rejected(self):
        with pytest.raises(ValueError):
            generate_multiscale_grid((10.0, 10.0), (0, 2), 4, CORES)


class TestPaperDatasetShapes:
    """The two datasets' exact point counts are reachable by splits."""

    def test_la_700_points(self):
        # 700 = 10*10 + 3*200
        grid = generate_multiscale_grid(
            (400.0, 300.0), (10, 10), 700,
            [RefinementCore(120, 120, 10, 40), RefinementCore(260, 150, 6, 50)],
        )
        assert grid.npoints == 700

    def test_ne_3328_points(self):
        # 3328 = 16*13 + 3*1040
        grid = generate_multiscale_grid(
            (1100.0, 800.0), (16, 13), 3328,
            [RefinementCore(300, 300, 10, 80), RefinementCore(700, 500, 8, 90)],
        )
        assert grid.npoints == 3328


@settings(max_examples=25, deadline=None)
@given(nsplits=st.integers(min_value=0, max_value=60))
def test_property_count_and_area(nsplits):
    target = 36 + 3 * nsplits
    grid = generate_multiscale_grid((120.0, 90.0), (6, 6), target, CORES)
    assert grid.npoints == target
    assert grid.total_area() == pytest.approx(120.0 * 90.0)
    assert grid.levels.max() >= (1 if nsplits else 0)
