"""Tests for the uniform-grid baseline."""

import numpy as np
import pytest

from repro.grid import (
    RefinementCore,
    UniformGrid,
    generate_multiscale_grid,
    uniform_from_multiscale,
)


class TestUniformGrid:
    def test_points_layout(self):
        g = UniformGrid(domain=(10.0, 6.0), nx=5, ny=3)
        pts = g.points()
        assert pts.shape == (15, 2)
        assert pts[0] == pytest.approx([1.0, 1.0])
        assert pts[-1] == pytest.approx([9.0, 5.0])

    def test_spacing(self):
        g = UniformGrid(domain=(10.0, 6.0), nx=5, ny=3)
        assert g.dx == pytest.approx(2.0)
        assert g.dy == pytest.approx(2.0)

    def test_areas_sum_to_domain(self):
        g = UniformGrid(domain=(10.0, 6.0), nx=5, ny=3)
        assert g.areas().sum() == pytest.approx(60.0)

    def test_field_roundtrip(self):
        g = UniformGrid(domain=(4.0, 4.0), nx=4, ny=4)
        flat = np.arange(16.0)
        assert np.array_equal(g.from_field(g.to_field(flat)), flat)

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformGrid(domain=(4.0, 4.0), nx=1, ny=4)
        with pytest.raises(ValueError):
            UniformGrid(domain=(-4.0, 4.0), nx=4, ny=4)


class TestAccuracyEquivalent:
    def test_uniform_needs_more_points(self):
        """The paper's efficiency argument for multiscale grids."""
        grid = generate_multiscale_grid(
            (200.0, 150.0), (8, 6), 48 + 3 * 50,
            [RefinementCore(60, 60, 8, 25)],
        )
        uni = uniform_from_multiscale(grid)
        assert uni.npoints == grid.equivalent_uniform_npoints()
        assert uni.npoints > 3 * grid.npoints

    def test_matches_finest_resolution(self):
        grid = generate_multiscale_grid(
            (200.0, 150.0), (8, 6), 48 + 3 * 50,
            [RefinementCore(60, 60, 8, 25)],
        )
        uni = uniform_from_multiscale(grid)
        assert uni.dx <= grid.finest_cell_size * 1.01
