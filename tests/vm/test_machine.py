"""Tests for machine profiles and the L/G/H cost model."""

import pytest

from repro.vm import CRAY_T3D, CRAY_T3E, INTEL_PARAGON, MachineSpec, get_machine


class TestMachineSpec:
    def test_comm_cost_linear_model(self):
        m = MachineSpec("toy", latency=1.0, gap=0.1, copy_cost=0.01,
                        seconds_per_op=1e-9, io_seconds_per_byte=1e-9)
        assert m.comm_cost(2, 30, 100) == pytest.approx(2.0 + 3.0 + 1.0)

    def test_comm_cost_zero_traffic_is_free(self):
        assert CRAY_T3E.comm_cost(0, 0, 0) == 0.0

    def test_comm_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            CRAY_T3E.comm_cost(-1, 0, 0)
        with pytest.raises(ValueError):
            CRAY_T3E.comm_cost(0, -1, 0)
        with pytest.raises(ValueError):
            CRAY_T3E.comm_cost(0, 0, -1)

    def test_compute_cost_scales_linearly(self):
        assert CRAY_T3E.compute_cost(2e6) == pytest.approx(2 * CRAY_T3E.compute_cost(1e6))

    def test_compute_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            CRAY_T3E.compute_cost(-1.0)

    def test_io_cost_combines_bytes_and_ops(self):
        c = CRAY_T3E.io_cost(1000, ops=500)
        assert c == pytest.approx(
            1000 * CRAY_T3E.io_seconds_per_byte + 500 * CRAY_T3E.seconds_per_op
        )

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            MachineSpec("bad", latency=-1, gap=0, copy_cost=0,
                        seconds_per_op=1, io_seconds_per_byte=1)
        with pytest.raises(ValueError):
            MachineSpec("bad", latency=0, gap=0, copy_cost=0,
                        seconds_per_op=0, io_seconds_per_byte=1)
        with pytest.raises(ValueError):
            MachineSpec("bad", latency=0, gap=0, copy_cost=0,
                        seconds_per_op=1, io_seconds_per_byte=1, wordsize=0)

    def test_scaled_machine(self):
        slow = CRAY_T3E.scaled(compute_factor=10.0)
        assert slow.seconds_per_op == pytest.approx(10 * CRAY_T3E.seconds_per_op)
        assert slow.latency == pytest.approx(CRAY_T3E.latency)
        slow_net = CRAY_T3E.scaled(comm_factor=3.0)
        assert slow_net.gap == pytest.approx(3 * CRAY_T3E.gap)
        assert slow_net.seconds_per_op == pytest.approx(CRAY_T3E.seconds_per_op)


class TestPaperParameters:
    """The T3E constants are the paper's Section 4.3 estimates."""

    def test_t3e_parameters_match_paper(self):
        assert CRAY_T3E.latency == pytest.approx(5.2e-5)
        assert CRAY_T3E.gap == pytest.approx(2.47e-8)
        assert CRAY_T3E.copy_cost == pytest.approx(2.04e-8)
        assert CRAY_T3E.wordsize == 8

    def test_machine_speed_ordering(self):
        """Paper: T3D just under 2x Paragon; T3E ~10x Paragon."""
        t3d_vs_paragon = INTEL_PARAGON.seconds_per_op / CRAY_T3D.seconds_per_op
        t3e_vs_paragon = INTEL_PARAGON.seconds_per_op / CRAY_T3E.seconds_per_op
        assert 1.5 < t3d_vs_paragon < 2.0
        assert 8.0 < t3e_vs_paragon < 12.0

    def test_registry_lookup(self):
        assert get_machine("t3e") is CRAY_T3E
        assert get_machine("T3D") is CRAY_T3D
        assert get_machine(" paragon ") is INTEL_PARAGON
        with pytest.raises(KeyError):
            get_machine("sp2")
