"""Tests for utilisation and load-imbalance metrics."""

import pytest

from repro.vm import Cluster, MachineSpec, Transfer, usage_from_spans, utilization

TOY = MachineSpec("toy", latency=1.0, gap=0.5, copy_cost=0.25,
                  seconds_per_op=1.0, io_seconds_per_byte=1.0)


class TestUtilization:
    def test_perfectly_balanced_compute(self):
        cluster = Cluster(TOY, 4)
        cluster.charge_compute("w", {i: 10.0 for i in range(4)})
        rep = utilization(cluster.timeline, 4)
        assert rep.utilization == pytest.approx(1.0)
        assert rep.load_imbalance == pytest.approx(1.0)

    def test_imbalanced_compute(self):
        cluster = Cluster(TOY, 2)
        cluster.charge_compute("w", {0: 10.0, 1: 5.0})
        rep = utilization(cluster.timeline, 2)
        # Node 0 busy 10s, node 1 busy 5s, total time 10s.
        assert rep.nodes[0].compute == pytest.approx(10.0)
        assert rep.nodes[1].compute == pytest.approx(5.0)
        assert rep.utilization == pytest.approx(15.0 / 20.0)
        assert rep.load_imbalance == pytest.approx(10.0 / 7.5)
        assert rep.busiest_node() == 0

    def test_sequential_io_counts_one_node(self):
        cluster = Cluster(TOY, 4)
        cluster.charge_io("in", nbytes=10, node_id=0, blocking_group=range(4))
        rep = utilization(cluster.timeline, 4)
        assert rep.nodes[0].io == pytest.approx(10.0)
        assert rep.nodes[1].io == 0.0
        assert rep.utilization == pytest.approx(0.25)

    def test_blocking_wait_not_counted_as_busy(self):
        """A group stalled on late members doesn't inflate I/O busy."""
        cluster = Cluster(TOY, 2)
        cluster.charge_compute("warm", {1: 100.0})
        cluster.charge_io("in", nbytes=10, node_id=0, blocking_group=[0, 1])
        rep = utilization(cluster.timeline, 2)
        assert rep.nodes[0].io == pytest.approx(10.0)

    def test_communication_in_comm_bucket(self):
        """Comm time lands in its own bucket, not in useful work."""
        cluster = Cluster(TOY, 2)
        cluster.charge_communication("x", [Transfer(0, 1, 100)])
        rep = utilization(cluster.timeline, 2)
        # Ct = L*1 + G*100 = 51 on each endpoint.
        assert rep.nodes[0].comm == pytest.approx(51.0)
        assert rep.nodes[1].comm == pytest.approx(51.0)
        assert rep.total_useful == 0.0
        assert rep.utilization == 0.0
        assert rep.comm_fraction == pytest.approx(1.0)
        assert rep.total_time > 0

    def test_buckets_sum_to_busy(self):
        """compute + io + comm == busy on every node; the rest is idle."""
        cluster = Cluster(TOY, 2)
        cluster.charge_compute("w", {0: 4.0, 1: 2.0})
        cluster.charge_communication("x", [Transfer(0, 1, 8)])
        cluster.charge_io("in", nbytes=3, node_id=1, blocking_group=[0, 1])
        rep = utilization(cluster.timeline, 2)
        for usage in rep.nodes.values():
            assert usage.busy == pytest.approx(
                usage.compute + usage.io + usage.comm
            )
            assert usage.comm > 0
        # Node 1's comm cost is smaller than node 0's wait; no bucket
        # absorbs the difference — it is idle time.
        capacity = rep.total_time * rep.nprocs
        idle = capacity - rep.total_busy
        assert idle > 0
        assert rep.idle_fraction == pytest.approx(idle / capacity)

    def test_span_stream_matches_timeline(self):
        """usage_from_spans agrees with utilization over the timeline."""
        cluster = Cluster(TOY, 3)
        cluster.charge_compute("w", {0: 5.0, 1: 3.0, 2: 1.0})
        cluster.charge_communication("x", [Transfer(0, 2, 16), Transfer(1, 2, 4)])
        cluster.charge_io("out", nbytes=7, node_id=2, blocking_group=range(3))
        from_timeline = utilization(cluster.timeline, 3)
        from_spans = usage_from_spans(cluster.tracer.spans, 3)
        assert from_spans.total_time == pytest.approx(from_timeline.total_time)
        for i in range(3):
            a, b = from_spans.nodes[i], from_timeline.nodes[i]
            assert a.compute == pytest.approx(b.compute)
            assert a.io == pytest.approx(b.io)
            assert a.comm == pytest.approx(b.comm)

    def test_amdahl_visible_in_utilization(self):
        """Data-parallel Airshed: utilisation decays with P because of
        the sequential I/O — the Figure 9 story in one number."""
        from repro.fx.runtime import FxRuntime
        from repro.model.dataparallel import HourReplayer

        def util_at(trace, P):
            rt = FxRuntime(TOY, P)
            replayer = HourReplayer(rt.world, trace)
            for hour in trace.hours:
                rt.sequential_io("in", hour.input_bytes, ops=hour.input_ops)
                replayer.run_hour(hour)
            return utilization(rt.timeline, P).utilization

        import numpy as np
        from repro.model import StepTrace, HourTrace, WorkloadTrace

        trace = WorkloadTrace(dataset_name="t", shape=(2, 3, 12))
        trace.hours.append(
            HourTrace(
                hour=0, input_bytes=50, input_ops=0.0, pretrans_ops=0.0,
                nsteps=1,
                steps=[StepTrace(
                    transport1_ops=np.full(3, 5.0),
                    chemistry_ops=np.full(12, 5.0),
                    aerosol_ops=1.0,
                    transport2_ops=np.full(3, 5.0),
                )],
                output_bytes=0, output_ops=0.0,
            )
        )
        assert util_at(trace, 2) > util_at(trace, 12)

    def test_empty_timeline(self):
        cluster = Cluster(TOY, 3)
        rep = utilization(cluster.timeline, 3)
        assert rep.utilization == 0.0
        assert rep.load_imbalance == 1.0
