"""Tests for the torus topology and contention analysis."""

import pytest

from repro.vm import CRAY_T3E, Transfer
from repro.vm.topology import (
    T3E_LINK_COST,
    TorusTopology,
    analyze_contention,
    torus_for,
)


class TestTorusGeometry:
    def test_coords_roundtrip(self):
        topo = TorusTopology(dims=(4, 3, 2), link_cost=1e-9)
        for node in range(topo.nprocs):
            assert topo.node_of(topo.coords(node)) == node

    def test_nprocs(self):
        assert TorusTopology((4, 4), 1e-9).nprocs == 16

    def test_route_is_shortest_with_wraparound(self):
        topo = TorusTopology(dims=(8,), link_cost=1e-9)
        # 0 -> 6 is 2 hops backwards around the ring, not 6 forwards.
        assert topo.hop_count(0, 6) == 2
        assert topo.hop_count(0, 4) == 4
        assert topo.hop_count(3, 3) == 0

    def test_route_links_are_adjacent(self):
        topo = TorusTopology(dims=(4, 4), link_cost=1e-9)
        for src, dst in [(0, 15), (5, 10), (1, 14)]:
            path = topo.route(src, dst)
            assert path[0][0] == src
            assert path[-1][1] == dst
            for (a, b), (c, d) in zip(path, path[1:]):
                assert b == c
            for a, b in path:
                ca, cb = topo.coords(a), topo.coords(b)
                diff = sum(
                    min(abs(x - y), dd - abs(x - y))
                    for x, y, dd in zip(ca, cb, topo.dims)
                )
                assert diff == 1  # one hop per link

    def test_validation(self):
        with pytest.raises(ValueError):
            TorusTopology(dims=(), link_cost=1e-9)
        with pytest.raises(ValueError):
            TorusTopology(dims=(0, 4), link_cost=1e-9)
        with pytest.raises(ValueError):
            TorusTopology(dims=(4,), link_cost=-1.0)
        with pytest.raises(ValueError):
            TorusTopology(dims=(4,), link_cost=1e-9).coords(9)

    def test_torus_for_covers_nprocs(self):
        for P in (1, 7, 16, 100, 128):
            topo = torus_for(P, 1e-9, ndims=3)
            assert topo.nprocs >= P


class TestLinkLoads:
    def test_single_transfer_loads_path(self):
        topo = TorusTopology(dims=(4,), link_cost=1e-9)
        loads = topo.link_loads([Transfer(0, 2, 100)])
        assert sum(loads.values()) == 200  # 2 hops x 100 B
        assert topo.link_time([Transfer(0, 2, 100)]) == pytest.approx(1e-7)

    def test_local_copy_no_load(self):
        topo = TorusTopology(dims=(4,), link_cost=1e-9)
        assert topo.link_loads([Transfer(1, 1, 100)]) == {}

    def test_contended_link_serialises(self):
        """Two transfers sharing a link double its bytes."""
        topo = TorusTopology(dims=(8,), link_cost=1e-9)
        t = [Transfer(0, 2, 100), Transfer(1, 3, 100)]
        # Both use link (1->2) or (2->3)? 0->2: links 0-1,1-2; 1->3: 1-2,2-3.
        loads = topo.link_loads(t)
        assert loads[(1, 2)] == 200


class TestContentionAnalysis:
    def test_endpoint_dominates_for_modest_traffic(self):
        topo = torus_for(8, T3E_LINK_COST, ndims=3)
        transfers = [Transfer(0, i, 10_000) for i in range(1, 8)]
        la = analyze_contention(CRAY_T3E, topo, transfers)
        assert la.contention_ratio < 1.0

    def test_link_would_dominate_on_slow_network(self):
        slow = TorusTopology(dims=(8,), link_cost=1e-5)
        transfers = [Transfer(0, 4, 1_000_000)]
        la = analyze_contention(CRAY_T3E, slow, transfers)
        assert la.contention_ratio > 1.0

    def test_empty_phase(self):
        topo = torus_for(4, T3E_LINK_COST)
        la = analyze_contention(CRAY_T3E, topo, [])
        assert la.link_time == 0.0
        assert la.max_link_bytes == 0
