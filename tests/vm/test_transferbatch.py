"""TransferBatch: batched transfers price identically to the records."""

import numpy as np
import pytest

from repro.vm.cluster import Cluster, Transfer
from repro.vm.machine import CRAY_T3E
from repro.vm.transferbatch import TransferBatch


def mixed_transfers():
    """Net transfers, a local copy, a multi-message and a zero-byte one."""
    return [
        Transfer(0, 1, 1024),
        Transfer(1, 2, 4096, messages=3),
        Transfer(2, 2, 512),       # local copy: H term only
        Transfer(3, 0, 0),         # participates with zero bytes
        Transfer(0, 2, 2048),
    ]


class TestConstruction:
    def test_roundtrip_preserves_records(self):
        records = mixed_transfers()
        batch = TransferBatch.from_transfers(records)
        assert len(batch) == len(records)
        assert batch.to_transfers() == records

    def test_messages_array_omitted_when_all_single(self):
        batch = TransferBatch.from_transfers([Transfer(0, 1, 8), Transfer(1, 0, 8)])
        assert batch.messages is None

    def test_arrays_are_immutable(self):
        batch = TransferBatch([0], [1], [64])
        with pytest.raises(ValueError):
            batch.src[0] = 5

    @pytest.mark.parametrize("kwargs", [
        dict(src=[0, 1], dst=[1], nbytes=[8, 8]),
        dict(src=[0], dst=[1], nbytes=[8], messages=[1, 1]),
        dict(src=[-1], dst=[1], nbytes=[8]),
        dict(src=[0], dst=[-2], nbytes=[8]),
        dict(src=[0], dst=[1], nbytes=[-8]),
        dict(src=[0], dst=[1], nbytes=[8], messages=[-1]),
        dict(src=[[0]], dst=[[1]], nbytes=[[8]]),
    ])
    def test_invalid_inputs_raise(self, kwargs):
        with pytest.raises(ValueError):
            TransferBatch(**kwargs)


class TestAggregation:
    def test_traffic_by_node_matches_record_walk(self):
        records = mixed_transfers()
        batch = TransferBatch.from_transfers(records)
        cl_records = Cluster(CRAY_T3E, 4)
        cl_batch = Cluster(CRAY_T3E, 4)
        rec_r = cl_records.charge_communication("x", records)
        rec_b = cl_batch.charge_communication("x", batch)
        assert rec_b.traffic == rec_r.traffic
        assert rec_b.ops == rec_r.ops
        assert rec_b.node_ids == rec_r.node_ids
        assert (rec_b.start, rec_b.end) == (rec_r.start, rec_r.end)

    def test_every_endpoint_participates(self):
        batch = TransferBatch.from_transfers([Transfer(1, 3, 0)])
        traffic = batch.traffic_by_node()
        assert set(traffic) == {1, 3}

    def test_node_costs_match_scalar_comm_cost(self):
        batch = TransferBatch.from_transfers(mixed_transfers())
        costs = batch.node_costs(CRAY_T3E)
        for node, t in batch.traffic_by_node().items():
            expected = CRAY_T3E.comm_cost(t.messages, t.bytes_moved,
                                          t.bytes_copied)
            assert costs[node] == expected

    def test_counters_match_record_path(self):
        records = mixed_transfers()
        cl_records = Cluster(CRAY_T3E, 4)
        cl_batch = Cluster(CRAY_T3E, 4)
        cl_records.charge_communication("x", records)
        cl_batch.charge_communication("x", TransferBatch.from_transfers(records))
        snap_r = cl_records.tracer.counters.snapshot()["counters"]
        snap_b = cl_batch.tracer.counters.snapshot()["counters"]
        assert snap_b == snap_r

    def test_span_stream_matches_record_path(self):
        records = mixed_transfers()
        cl_records = Cluster(CRAY_T3E, 4)
        cl_batch = Cluster(CRAY_T3E, 4)
        cl_records.charge_communication("x", records)
        cl_batch.charge_communication("x", TransferBatch.from_transfers(records))
        assert [
            (s.name, s.kind, s.start, s.end, s.node, s.busy, s.span_id)
            for s in cl_batch.tracer.spans
        ] == [
            (s.name, s.kind, s.start, s.end, s.node, s.busy, s.span_id)
            for s in cl_records.tracer.spans
        ]


class TestRemap:
    def test_identity_returns_self(self):
        batch = TransferBatch.from_transfers(mixed_transfers())
        assert batch.remap(np.arange(4)) is batch

    def test_remap_translates_endpoints(self):
        batch = TransferBatch([0, 1], [1, 0], [64, 32])
        mapped = batch.remap(np.array([10, 20]))
        assert mapped.src.tolist() == [10, 20]
        assert mapped.dst.tolist() == [20, 10]
        assert mapped.nbytes.tolist() == [64, 32]

    def test_remap_is_memoized_per_mapping(self):
        batch = TransferBatch([0, 1], [1, 0], [64, 32])
        mapping = np.array([10, 20])
        assert batch.remap(mapping) is batch.remap(np.array([10, 20]))
        assert batch.remap(np.array([5, 6])) is not batch.remap(mapping)

    def test_subgroup_charges_through_remap(self):
        """A subgroup charge equals charging pre-translated records."""
        batch = TransferBatch([0, 1], [1, 0], [1024, 2048])
        cl_sub = Cluster(CRAY_T3E, 8)
        cl_direct = Cluster(CRAY_T3E, 8)
        rec_s = cl_sub.subgroup([3, 5]).charge_communication("x", batch)
        rec_d = cl_direct.charge_communication(
            "x", [Transfer(3, 5, 1024), Transfer(5, 3, 2048)],
            node_ids=[3, 5],
        )
        assert rec_s.traffic == rec_d.traffic
        assert rec_s.ops == rec_d.ops
        assert (rec_s.start, rec_s.end) == (rec_d.start, rec_d.end)
