"""Tests for the simulated cluster's timing semantics."""

import pytest

from repro.vm import Cluster, MachineSpec, Transfer

TOY = MachineSpec("toy", latency=1.0, gap=0.5, copy_cost=0.25,
                  seconds_per_op=2.0, io_seconds_per_byte=0.1)


@pytest.fixture
def cluster():
    return Cluster(TOY, 4)


class TestCompute:
    def test_compute_advances_nodes_independently(self, cluster):
        cluster.charge_compute("work", {0: 1.0, 1: 3.0})
        assert cluster.clock(0) == pytest.approx(2.0)
        assert cluster.clock(1) == pytest.approx(6.0)
        assert cluster.clock(2) == 0.0

    def test_replicated_compute_charges_everyone(self, cluster):
        cluster.charge_replicated_compute("aerosol", 2.0)
        assert all(cluster.clock(i) == pytest.approx(4.0) for i in range(4))

    def test_phase_record_captures_ops(self, cluster):
        rec = cluster.charge_compute("work", {0: 1.0, 2: 2.0})
        assert rec.kind == "compute"
        assert rec.ops == {0: 1.0, 2: 2.0}
        assert rec.node_ids == (0, 2)

    def test_rejects_out_of_range_node(self, cluster):
        with pytest.raises(ValueError):
            cluster.charge_compute("bad", {7: 1.0})


class TestCommunication:
    def test_phase_paced_by_most_loaded_node(self, cluster):
        # node0 sends 10B to node1 (1 msg) and node2 sends 2B to node3.
        rec = cluster.charge_communication(
            "x", [Transfer(0, 1, 10), Transfer(2, 3, 2)]
        )
        # node0: L*1 + G*10 = 1 + 5 = 6; node1 same receiving; node2: 1+1=2.
        assert rec.duration == pytest.approx(6.0)
        # Collective: every participating node leaves at the same time.
        assert all(cluster.clock(i) == pytest.approx(6.0) for i in range(4))

    def test_local_copy_uses_H_only(self, cluster):
        rec = cluster.charge_communication(
            "copy", [Transfer(1, 1, 100)], node_ids=[0, 1, 2, 3]
        )
        assert rec.duration == pytest.approx(0.25 * 100)
        t = rec.traffic[1]
        assert t.messages == 0
        assert t.bytes_copied == 100

    def test_send_and_receive_bytes_use_max_direction(self, cluster):
        # node0 sends 10B to 1 and receives 8B from 2: byte term is max(10,8).
        rec = cluster.charge_communication(
            "x", [Transfer(0, 1, 10), Transfer(2, 0, 8)]
        )
        # node0 cost: L*(1+1) + G*max(10, 8) = 2 + 5 = 7
        assert rec.duration == pytest.approx(7.0)

    def test_collective_starts_at_latest_participant(self, cluster):
        cluster.charge_compute("warm", {0: 5.0})  # node0 at t=10
        rec = cluster.charge_communication("x", [Transfer(0, 1, 2)])
        assert rec.start == pytest.approx(10.0)
        assert cluster.clock(1) == pytest.approx(10.0 + 1.0 + 1.0)

    def test_group_can_include_silent_nodes(self, cluster):
        rec = cluster.charge_communication(
            "x", [Transfer(0, 1, 2)], node_ids=[0, 1, 2]
        )
        assert cluster.clock(2) == pytest.approx(rec.end)
        assert cluster.clock(3) == 0.0

    def test_transfer_outside_group_rejected(self, cluster):
        with pytest.raises(ValueError):
            cluster.charge_communication("x", [Transfer(0, 3, 2)], node_ids=[0, 1])

    def test_zero_transfers_with_default_group_is_barrier(self, cluster):
        cluster.charge_compute("w", {1: 2.0})
        cluster.charge_communication("sync", [])
        assert all(cluster.clock(i) == pytest.approx(4.0) for i in range(4))


class TestIO:
    def test_sequential_io_on_one_node(self, cluster):
        rec = cluster.charge_io("inputhour", nbytes=100, node_id=0)
        assert cluster.clock(0) == pytest.approx(10.0)
        assert cluster.clock(1) == 0.0
        assert rec.kind == "io"

    def test_blocking_io_stalls_the_group(self, cluster):
        cluster.charge_io("inputhour", nbytes=100, node_id=0,
                          blocking_group=[0, 1, 2, 3])
        assert all(cluster.clock(i) == pytest.approx(10.0) for i in range(4))

    def test_blocking_io_waits_for_late_members(self, cluster):
        cluster.charge_compute("warm", {3: 50.0})  # node3 at t=100
        cluster.charge_io("in", nbytes=100, node_id=0, blocking_group=range(4))
        # io finished at t=10 on node0, but group syncs to node3's t=100.
        assert all(cluster.clock(i) == pytest.approx(100.0) for i in range(4))


class TestBarrierAndTimeline:
    def test_barrier_syncs_group(self, cluster):
        cluster.charge_compute("w", {0: 1.0, 1: 2.0})
        cluster.barrier([0, 1])
        assert cluster.clock(0) == cluster.clock(1) == pytest.approx(4.0)
        assert cluster.clock(2) == 0.0

    def test_timeline_aggregations(self, cluster):
        cluster.charge_compute("chemistry", {0: 1.0})
        cluster.charge_compute("chemistry", {0: 1.0})
        cluster.charge_communication("D_Chem->D_Repl", [Transfer(0, 1, 2)])
        by_name = cluster.timeline.time_by_name()
        assert by_name["chemistry"] == pytest.approx(4.0)
        assert cluster.timeline.communication_steps() == 1
        assert cluster.timeline.time_by_kind()["compute"] == pytest.approx(4.0)
        assert cluster.timeline.total_time() == pytest.approx(cluster.time())

    def test_needs_at_least_one_node(self):
        with pytest.raises(ValueError):
            Cluster(TOY, 0)


class TestSubgroup:
    def test_subgroup_rank_mapping(self, cluster):
        grp = cluster.subgroup([2, 3])
        grp.charge_compute("w", {0: 1.0, 1: 2.0})
        assert cluster.clock(2) == pytest.approx(2.0)
        assert cluster.clock(3) == pytest.approx(4.0)
        assert cluster.clock(0) == 0.0

    def test_subgroup_communication_uses_local_ranks(self, cluster):
        grp = cluster.subgroup([1, 3])
        rec = grp.charge_communication("x", [Transfer(0, 1, 10)])
        assert 1 in rec.traffic and 3 in rec.traffic
        assert rec.traffic[1].bytes_sent == 10
        assert rec.traffic[3].bytes_received == 10

    def test_subgroups_overlap_in_time(self, cluster):
        """Disjoint subgroups progress independently (task parallelism)."""
        a = cluster.subgroup([0, 1])
        b = cluster.subgroup([2, 3])
        a.charge_compute("io", {0: 10.0})
        b.charge_compute("main", {0: 10.0, 1: 10.0})
        # Total time is max, not sum, of the two tasks.
        assert cluster.time() == pytest.approx(20.0)

    def test_subgroup_io(self, cluster):
        grp = cluster.subgroup([1, 2])
        grp.charge_io("out", nbytes=10, rank=1, blocking=True)
        assert cluster.clock(1) == cluster.clock(2) == pytest.approx(1.0)
