"""Property-based tests of the simulated machine's timing invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vm import Cluster, MachineSpec, Transfer

TOY = MachineSpec("toy", latency=0.5, gap=0.01, copy_cost=0.005,
                  seconds_per_op=1.0, io_seconds_per_byte=0.1)


@st.composite
def phase_sequences(draw):
    """Random sequences of compute/comm/io phases on a small cluster."""
    P = draw(st.integers(min_value=2, max_value=6))
    n = draw(st.integers(min_value=1, max_value=12))
    phases = []
    for _ in range(n):
        kind = draw(st.sampled_from(["compute", "comm", "io"]))
        if kind == "compute":
            ops = {
                i: draw(st.floats(min_value=0.0, max_value=50.0))
                for i in range(P)
            }
            phases.append(("compute", ops))
        elif kind == "comm":
            nt = draw(st.integers(min_value=1, max_value=4))
            transfers = [
                Transfer(
                    draw(st.integers(0, P - 1)),
                    draw(st.integers(0, P - 1)),
                    draw(st.integers(0, 5000)),
                )
                for _ in range(nt)
            ]
            phases.append(("comm", transfers))
        else:
            phases.append(
                ("io", (draw(st.integers(0, 1000)), draw(st.integers(0, P - 1))))
            )
    return P, phases


def run_phases(P, phases):
    cluster = Cluster(TOY, P)
    for kind, payload in phases:
        if kind == "compute":
            cluster.charge_compute("w", payload)
        elif kind == "comm":
            cluster.charge_communication("c", payload, node_ids=range(P))
        else:
            nbytes, node = payload
            cluster.charge_io("io", nbytes, node_id=node,
                              blocking_group=range(P))
    return cluster


class TestTimingInvariants:
    @settings(max_examples=80, deadline=None)
    @given(phase_sequences())
    def test_clocks_never_regress_and_records_are_causal(self, seq):
        P, phases = seq
        cluster = run_phases(P, phases)
        # Every record ends no earlier than it starts.
        for rec in cluster.timeline:
            assert rec.end >= rec.start - 1e-12
        # The timeline total equals the latest clock.
        assert cluster.timeline.total_time() == pytest.approx(cluster.time())

    @settings(max_examples=80, deadline=None)
    @given(phase_sequences())
    def test_time_decomposition_covers_total(self, seq):
        """Phase durations sum to at least the makespan (they overlap
        only through per-node concurrency, never through gaps that the
        aggregation would miss)."""
        P, phases = seq
        cluster = run_phases(P, phases)
        total = cluster.time()
        summed = sum(r.duration for r in cluster.timeline)
        assert summed >= total - 1e-9

    @settings(max_examples=60, deadline=None)
    @given(phase_sequences())
    def test_determinism(self, seq):
        P, phases = seq
        c1 = run_phases(P, phases)
        c2 = run_phases(P, phases)
        assert c1.time() == c2.time()
        for i in range(P):
            assert c1.clock(i) == c2.clock(i)

    @settings(max_examples=60, deadline=None)
    @given(phase_sequences(), st.floats(min_value=1.5, max_value=10.0))
    def test_slower_machine_is_never_faster(self, seq, factor):
        """Monotonicity: scaling every machine cost up scales every
        clock up (or leaves it equal when the phase cost was zero)."""
        P, phases = seq
        fast = run_phases(P, phases)
        slow_machine = TOY.scaled(compute_factor=factor, comm_factor=factor)

        cluster = Cluster(slow_machine, P)
        for kind, payload in phases:
            if kind == "compute":
                cluster.charge_compute("w", payload)
            elif kind == "comm":
                cluster.charge_communication("c", payload, node_ids=range(P))
            else:
                nbytes, node = payload
                cluster.charge_io("io", nbytes, node_id=node,
                                  blocking_group=range(P))
        assert cluster.time() >= fast.time() - 1e-12


class TestReplayScalingProperties:
    """Whole-application properties over random small traces."""

    @staticmethod
    def random_trace(rng, layers, npoints, hours, steps):
        from repro.model import HourTrace, StepTrace, WorkloadTrace

        trace = WorkloadTrace(dataset_name="rnd", shape=(5, layers, npoints))
        for h in range(hours):
            step_list = [
                StepTrace(
                    transport1_ops=rng.uniform(1, 10, layers),
                    chemistry_ops=rng.uniform(1, 10, npoints),
                    aerosol_ops=float(rng.uniform(0, 2)),
                    transport2_ops=rng.uniform(1, 10, layers),
                )
                for _ in range(steps)
            ]
            trace.hours.append(
                HourTrace(
                    hour=h, input_bytes=int(rng.integers(10, 1000)),
                    input_ops=float(rng.uniform(0, 10)),
                    pretrans_ops=float(rng.uniform(0, 10)),
                    nsteps=steps, steps=step_list,
                    output_bytes=int(rng.integers(10, 1000)),
                    output_ops=float(rng.uniform(0, 10)),
                )
            )
        return trace

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        layers=st.integers(1, 6),
        npoints=st.integers(1, 30),
        hours=st.integers(1, 3),
        steps=st.integers(1, 3),
    )
    def test_compute_time_bounded_by_sequential(self, seed, layers, npoints,
                                                hours, steps):
        """Partitioned compute stays between perfect speedup and the
        one-node time.

        (Strict monotonicity in P does not hold: BLOCK boundaries shift
        with P, and a repartition can co-locate two heavy layers on one
        node — e.g. layer ops (0, 0, 1, 10, 0) cost max 10 on 2 nodes
        but 11 on 4.  The sequential time is the true upper bound.)
        """
        from repro.model import replay_data_parallel

        rng = np.random.default_rng(seed)
        trace = self.random_trace(rng, layers, npoints, hours, steps)
        seq = replay_data_parallel(trace, TOY, 1).breakdown
        for P in (2, 4, 8):
            b = replay_data_parallel(trace, TOY, P).breakdown
            for comp in ("chemistry", "transport"):
                assert b[comp] <= seq[comp] + 1e-9
                # The slowest node carries at least the mean share.
                assert b[comp] >= seq[comp] / P - 1e-9

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_comm_steps_match_formula(self, seed):
        from repro.model import replay_data_parallel

        rng = np.random.default_rng(seed)
        trace = self.random_trace(rng, 3, 10, 2, 2)
        rep = replay_data_parallel(trace, TOY, 4)
        assert rep.comm_steps == trace.expected_comm_steps()
