"""Content-addressed result cache behaviour."""

import pickle

import pytest

from repro.sched import JobSpec, ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _payload(spec, **extra):
    return {"spec": spec.to_dict(), "science_key": spec.science_key,
            "status": "ok", **extra}


class TestScience:
    def test_roundtrip(self, cache):
        cache.put_science("aa" * 32, {"x": 1})
        assert cache.get_science("aa" * 32) == {"x": 1}

    def test_miss(self, cache):
        assert cache.get_science("bb" * 32) is None

    def test_corrupt_entry_is_a_removed_miss(self, cache):
        key = "cc" * 32
        cache.put_science(key, {"x": 1})
        cache.science_path(key).write_bytes(b"not a pickle")
        assert cache.get_science(key) is None
        assert not cache.science_path(key).is_file()

    def test_overwrite_is_atomic_no_leftover_tmp(self, cache):
        key = "dd" * 32
        cache.put_science(key, {"x": 1})
        cache.put_science(key, {"x": 2})
        assert cache.get_science(key) == {"x": 2}
        leftovers = [p for p in cache.science_path(key).parent.iterdir()
                     if ".tmp." in p.name]
        assert leftovers == []


class TestJobs:
    def test_roundtrip_resolves_science(self, cache):
        spec = JobSpec()
        cache.put_science(spec.science_key, {"conc": 42})
        cache.put_job(spec.key, _payload(spec))
        got = cache.get_job(spec.key)
        assert got["result"] == {"conc": 42}
        assert got["science_key"] == spec.science_key

    def test_payload_never_duplicates_the_result(self, cache):
        spec = JobSpec()
        cache.put_science(spec.science_key, {"conc": 42})
        cache.put_job(spec.key, _payload(spec, result={"conc": 42}))
        with cache.job_path(spec.key).open("rb") as fh:
            on_disk = pickle.load(fh)
        assert "result" not in on_disk

    def test_requires_science_key(self, cache):
        with pytest.raises(ValueError):
            cache.put_job("ee" * 32, {"status": "ok"})

    def test_evicted_science_invalidates_job(self, cache):
        spec = JobSpec()
        cache.put_science(spec.science_key, {"conc": 42})
        cache.put_job(spec.key, _payload(spec))
        cache.science_path(spec.science_key).unlink()
        assert cache.get_job(spec.key) is None
        assert not cache.job_path(spec.key).is_file()

    def test_iter_jobs(self, cache):
        assert list(cache.iter_jobs()) == []
        for hours in (1, 2, 3):
            spec = JobSpec(hours=hours)
            cache.put_science(spec.science_key, {})
            cache.put_job(spec.key, _payload(spec))
        assert len(list(cache.iter_jobs())) == 3


class TestScratch:
    def test_scratch_dir_creates_and_clears(self, cache):
        d = cache.scratch_dir("ff" * 32)
        (d / "part_000.pkl").write_bytes(b"x")
        cache.clear_scratch("ff" * 32)
        assert not d.exists()

    def test_clear_missing_scratch_is_noop(self, cache):
        cache.clear_scratch("00" * 32)
