"""Content-addressed result cache behaviour."""

import pickle

import pytest

from repro.sched import JobSpec, ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _payload(spec, **extra):
    return {"spec": spec.to_dict(), "science_key": spec.science_key,
            "status": "ok", **extra}


class TestScience:
    def test_roundtrip(self, cache):
        cache.put_science("aa" * 32, {"x": 1})
        assert cache.get_science("aa" * 32) == {"x": 1}

    def test_miss(self, cache):
        assert cache.get_science("bb" * 32) is None

    def test_corrupt_entry_is_a_removed_miss(self, cache):
        key = "cc" * 32
        cache.put_science(key, {"x": 1})
        cache.science_path(key).write_bytes(b"not a pickle")
        assert cache.get_science(key) is None
        assert not cache.science_path(key).is_file()

    def test_overwrite_is_atomic_no_leftover_tmp(self, cache):
        key = "dd" * 32
        cache.put_science(key, {"x": 1})
        cache.put_science(key, {"x": 2})
        assert cache.get_science(key) == {"x": 2}
        leftovers = [p for p in cache.science_path(key).parent.iterdir()
                     if ".tmp." in p.name]
        assert leftovers == []


class TestJobs:
    def test_roundtrip_resolves_science(self, cache):
        spec = JobSpec()
        cache.put_science(spec.science_key, {"conc": 42})
        cache.put_job(spec.key, _payload(spec))
        got = cache.get_job(spec.key)
        assert got["result"] == {"conc": 42}
        assert got["science_key"] == spec.science_key

    def test_payload_never_duplicates_the_result(self, cache):
        spec = JobSpec()
        cache.put_science(spec.science_key, {"conc": 42})
        cache.put_job(spec.key, _payload(spec, result={"conc": 42}))
        with cache.job_path(spec.key).open("rb") as fh:
            on_disk = pickle.load(fh)
        assert "result" not in on_disk

    def test_requires_science_key(self, cache):
        with pytest.raises(ValueError):
            cache.put_job("ee" * 32, {"status": "ok"})

    def test_evicted_science_invalidates_job(self, cache):
        spec = JobSpec()
        cache.put_science(spec.science_key, {"conc": 42})
        cache.put_job(spec.key, _payload(spec))
        cache.science_path(spec.science_key).unlink()
        assert cache.get_job(spec.key) is None
        assert not cache.job_path(spec.key).is_file()

    def test_iter_jobs(self, cache):
        assert list(cache.iter_jobs()) == []
        for hours in (1, 2, 3):
            spec = JobSpec(hours=hours)
            cache.put_science(spec.science_key, {})
            cache.put_job(spec.key, _payload(spec))
        assert len(list(cache.iter_jobs())) == 3


class TestScratch:
    def test_scratch_dir_creates_and_clears(self, cache):
        d = cache.scratch_dir("ff" * 32)
        (d / "part_000.pkl").write_bytes(b"x")
        cache.clear_scratch("ff" * 32)
        assert not d.exists()

    def test_clear_missing_scratch_is_noop(self, cache):
        cache.clear_scratch("00" * 32)


class TestStatsAndCounters:
    def test_hit_miss_corrupt_tallies(self, cache):
        key = "ee" * 32
        assert cache.get_science(key) is None          # miss
        cache.put_science(key, {"x": 1})
        assert cache.get_science(key) == {"x": 1}      # hit
        cache.science_path(key).write_bytes(b"rot")
        assert cache.get_science(key) is None          # corrupt -> miss
        counters = cache.stats()["counters"]
        assert counters["hits"] == 1
        assert counters["misses"] == 2
        assert counters["corrupt_entries"] == 1

    def test_stats_reports_shard_occupancy(self, cache):
        spec = JobSpec(dataset="demo", hours=1)
        cache.put_science(spec.science_key, {"x": 1})
        cache.put_job(spec.key, _payload(spec))
        stats = cache.stats()
        assert stats["total_entries"] == 2
        assert stats["total_bytes"] > 0
        assert stats["kinds"]["science"]["entries"] == 1
        assert stats["kinds"]["jobs"]["entries"] == 1
        # plain cache shards are the key[:2] fan-out directories
        assert spec.science_key[:2] in stats["kinds"]["science"]["shards"]
        assert spec.key[:2] in stats["kinds"]["jobs"]["shards"]

    def test_pickled_cache_keeps_root_and_fresh_lock(self, cache):
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.root == cache.root
        clone._bump("hits")  # the recreated lock works


class TestIterJobsTolerance:
    def _store_three(self, cache):
        specs = [JobSpec(dataset="demo", hours=h) for h in (1, 2, 3)]
        for spec in specs:
            cache.put_job(spec.key, _payload(spec))
        return specs

    def test_corrupt_entry_skipped_not_deleted(self, cache):
        specs = self._store_three(cache)
        victim = cache.job_path(specs[0].key)
        victim.write_bytes(b"definitely not a pickle")
        rows = list(cache.iter_jobs())
        assert len(rows) == 2
        assert victim.is_file()  # a status scan never deletes
        assert cache.stats()["counters"]["corrupt_entries"] == 1

    def test_non_dict_payload_counts_as_corrupt(self, cache):
        specs = self._store_three(cache)
        with cache.job_path(specs[1].key).open("wb") as fh:
            pickle.dump(["not", "a", "payload"], fh)
        rows = list(cache.iter_jobs())
        assert len(rows) == 2
        assert cache.stats()["counters"]["corrupt_entries"] == 1


class TestShardedCache:
    def test_fixed_shard_layout(self, tmp_path):
        from repro.sched import ShardedResultCache

        cache = ShardedResultCache(tmp_path / "c", shards=4)
        spec = JobSpec(dataset="demo", hours=1)
        cache.put_science(spec.science_key, {"x": 1})
        shard = int(spec.science_key[:8], 16) % 4
        assert (tmp_path / "c" / "science" / f"shard-{shard:03d}"
                / f"{spec.science_key}.pkl").is_file()
        stats = cache.stats()
        assert list(stats["kinds"]["science"]["shards"]) == [
            f"shard-{shard:03d}"
        ]

    def test_validation(self, tmp_path):
        from repro.sched import ShardedResultCache

        with pytest.raises(ValueError):
            ShardedResultCache(tmp_path / "c", shards=0)
        with pytest.raises(ValueError):
            ShardedResultCache(tmp_path / "c", max_bytes=0)

    def test_size_cap_evicts_lru_jobs_before_science(self, tmp_path):
        from repro.sched import ShardedResultCache

        cache = ShardedResultCache(tmp_path / "c", shards=2,
                                   max_bytes=1)  # everything over budget
        specs = [JobSpec(dataset="demo", hours=h) for h in (1, 2)]
        cache.put_science(specs[0].science_key, {"x": 1})
        cache.put_job(specs[0].key, _payload(specs[0]))
        # the put that overflows evicts older entries, never itself
        assert cache.job_path(specs[0].key).is_file()
        assert not cache.science_path(specs[0].science_key).is_file()
        assert cache.stats()["counters"]["evictions"] >= 1

    def test_unbounded_sharded_cache_keeps_everything(self, tmp_path):
        from repro.sched import ShardedResultCache

        cache = ShardedResultCache(tmp_path / "c", shards=2)
        for h in (1, 2, 3):
            spec = JobSpec(dataset="demo", hours=h)
            cache.put_science(spec.science_key, {"h": h})
            cache.put_job(spec.key, _payload(spec))
        assert cache.stats()["total_entries"] == 6
        assert cache.stats()["counters"]["evictions"] == 0

    def test_reads_refresh_recency(self, tmp_path):
        import os

        from repro.sched import ShardedResultCache

        cache = ShardedResultCache(tmp_path / "c", shards=2)
        a, b = (JobSpec(dataset="demo", hours=h) for h in (1, 2))
        cache.put_science(a.science_key, {"h": 1})
        cache.put_science(b.science_key, {"h": 2})
        # age both, then touch a via a read: b becomes the LRU victim
        for spec in (a, b):
            os.utime(cache.science_path(spec.science_key), (1, 1))
        assert cache.get_science(a.science_key) == {"h": 1}
        sizes = [
            cache.science_path(s.science_key).stat().st_size
            for s in (a, b)
        ]
        cache.max_bytes = sum(sizes) - 1
        cache._after_store(cache.science_path(a.science_key))
        assert cache.science_path(a.science_key).is_file()
        assert not cache.science_path(b.science_key).is_file()

    def test_runner_integration(self, tmp_path):
        from repro.sched import CampaignRunner, ShardedResultCache
        from repro.sched import scaling_ladder

        cache = ShardedResultCache(tmp_path / "c", shards=4)
        runner = CampaignRunner(cache, workers=1, executor="inline",
                                sleep=lambda s: None)
        specs = scaling_ladder(dataset="demo", machine="t3e",
                               node_counts=(4, 16), hours=1)
        report = runner.run(specs)
        assert report.complete
        rerun = CampaignRunner(
            ShardedResultCache(tmp_path / "c", shards=4),
            workers=1, executor="inline", sleep=lambda s: None,
        ).run(specs)
        assert all(r.from_cache for r in rerun.results)
